//! Integration tests for the VFS layer: mount resolution, descriptor
//! sharing through descriptor segments, label-filtered `/proc`, and the
//! cross-mount rename error.

use histar_kernel::syscall::SyscallError;
use histar_label::Level;
use histar_unix::fs::OpenFlags;
use histar_unix::{UnixEnv, UnixError};

/// §5.3: "descriptor state lives in the descriptor segment" — `dup`'d
/// descriptors and fork-shared descriptors observe each other's seek
/// position, because there is exactly one position and it lives in the
/// shared segment, not in any per-process table.
#[test]
fn dup_and_fork_share_seek_position_through_the_fd_segment() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/f", b"abcdefghij", None).unwrap();
    let fd = env.open(init, "/f", OpenFlags::read_only()).unwrap();
    let dup = env.dup(init, fd).unwrap();

    // A read through either descriptor number advances the one shared
    // position.
    assert_eq!(env.read(init, fd, 2).unwrap(), b"ab");
    assert_eq!(env.read(init, dup, 2).unwrap(), b"cd");

    // An absolute seek through the dup is visible through the original.
    env.lseek(init, dup, 8).unwrap();
    assert_eq!(env.read(init, fd, 2).unwrap(), b"ij");

    // A forked child shares the same descriptor segment: its reads
    // continue from the parent's position and vice versa — even though
    // the child's thread resolves the segment through the *parent's*
    // process container and keeps its own vnode (and capability
    // handles).
    env.lseek(init, fd, 4).unwrap();
    let child = env.fork(init).unwrap();
    assert_eq!(env.read(child, fd, 2).unwrap(), b"ef");
    assert_eq!(env.read(init, fd, 2).unwrap(), b"gh");
    env.lseek(child, dup, 0).unwrap();
    assert_eq!(env.read(init, fd, 2).unwrap(), b"ab");
}

/// A rename whose paths resolve into different mounted filesystems fails
/// with a distinct error and corrupts neither directory.
#[test]
fn cross_mount_rename_fails_without_corrupting_either_directory() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let exported = env.mkdir(init, "/exported", None).unwrap();
    env.write_file_as(init, "/exported/keep", b"k", None)
        .unwrap();
    env.mount("/mnt", exported);
    env.mkdir(init, "/srcdir", None).unwrap();
    env.write_file_as(init, "/srcdir/file", b"payload", None)
        .unwrap();

    let err = env.rename(init, "/srcdir/file", "/mnt/file").unwrap_err();
    match err {
        UnixError::CrossMount { from, to } => {
            assert_eq!(from, "/srcdir/file");
            assert_eq!(to, "/mnt/file");
        }
        other => panic!("expected CrossMount, got {other:?}"),
    }
    // Source untouched, destination untouched.
    assert_eq!(env.read_file_as(init, "/srcdir/file").unwrap(), b"payload");
    let mnt = env.readdir(init, "/mnt").unwrap();
    assert_eq!(mnt.len(), 1);
    assert_eq!(mnt[0].name, "keep");
    // Renaming into /proc or /dev is also a cross-mount rename.
    assert!(matches!(
        env.rename(init, "/srcdir/file", "/proc/file"),
        Err(UnixError::CrossMount { .. })
    ));
    // Renames inside the mounted filesystem still work.
    env.rename(init, "/mnt/keep", "/mnt/kept").unwrap();
    assert_eq!(env.read_file_as(init, "/mnt/kept").unwrap(), b"k");
}

/// `/proc` is label-filtered by the kernel: a tainted observer cannot
/// stat (or read) an untainted process's entry, because entering the PID
/// directory requires observing that process's internal container
/// (`{pr 3, pw 0, 1}`), and the kernel refuses.  The process itself — in
/// particular a process whose label *does* admit the entry — succeeds.
#[test]
fn tainted_observer_cannot_stat_untainted_proc_entry() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();

    // A taint category owned by init; the observer starts tainted in it.
    let init_thread = env.process(init).unwrap().thread;
    let taint = env.kernel_mut().trap_create_category(init_thread).unwrap();
    env.process_record_mut(init)
        .unwrap()
        .extra_ownership
        .push(taint);
    let observer = env
        .spawn_with_label(init, "/bin_observer", vec![], vec![(taint, Level::L3)])
        .unwrap();
    let victim = env.spawn(init, "/bin_victim", None).unwrap();

    // Listing /proc is public information (PIDs only).
    let pids = env.readdir(observer, "/proc").unwrap();
    assert!(pids.iter().any(|e| e.name == victim.to_string()));

    // But stat'ing the victim's entry is not: the kernel denies the
    // observe on the victim's internal container.
    let err = env
        .stat(observer, &format!("/proc/{victim}/status"))
        .unwrap_err();
    assert!(matches!(
        err,
        UnixError::Kernel(SyscallError::CannotObserve(_))
    ));
    // Same for the PID directory itself and for reads.
    assert!(env.stat(observer, &format!("/proc/{victim}")).is_err());
    assert!(env
        .read_file_as(observer, &format!("/proc/{victim}/status"))
        .is_err());

    // The victim's own label admits its entry: it reads its own status,
    // label and fd table.
    let status = env
        .read_file_as(victim, &format!("/proc/{victim}/status"))
        .unwrap();
    assert!(String::from_utf8(status)
        .unwrap()
        .contains("state:\trunning"));
    let label = env
        .read_file_as(victim, &format!("/proc/{victim}/label"))
        .unwrap();
    assert!(!label.is_empty());
    let fds = env
        .read_file_as(victim, &format!("/proc/{victim}/fds"))
        .unwrap();
    assert!(String::from_utf8(fds).unwrap().contains("open fds"));
}

/// An open `/proc` descriptor stays label-checked: every read re-runs the
/// kernel check, so content is never served from the snapshot alone.
#[test]
fn proc_reads_recheck_labels_on_every_read() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let child = env.spawn(init, "/bin_child", None).unwrap();
    // The child opens its own status file — allowed.
    let fd = env
        .open(
            child,
            &format!("/proc/{child}/status"),
            OpenFlags::read_only(),
        )
        .unwrap();
    let first = env.read(child, fd, 16).unwrap();
    assert!(!first.is_empty());
    // Each read performed a fresh container-list check; a second read
    // continues from the shared seek position.
    let second = env.read(child, fd, 16).unwrap();
    assert_ne!(first, second);
    env.close(child, fd).unwrap();
}

/// Paths resolve across mount boundaries in one resolver: `..` escapes a
/// mount point lexically, mount points shadow directories, and unmount
/// restores the underlying namespace.
#[test]
fn mount_resolution_and_dotdot_escape() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.mkdir(init, "/data", None).unwrap();
    env.write_file_as(init, "/data/under", b"under", None)
        .unwrap();
    let exported = env.mkdir(init, "/exported", None).unwrap();
    env.write_file_as(init, "/exported/over", b"over", None)
        .unwrap();

    // Mounting shadows the directory; unmounting restores it.
    env.mount("/data", exported);
    assert_eq!(env.read_file_as(init, "/data/over").unwrap(), b"over");
    assert!(matches!(
        env.read_file_as(init, "/data/under"),
        Err(UnixError::NotFound(_))
    ));
    env.vfs_mut().unmount("/data").unwrap();
    assert_eq!(env.read_file_as(init, "/data/under").unwrap(), b"under");

    // `..` walks out of a mounted filesystem back into the parent
    // namespace (lexically, before any lookup).
    env.mount("/data", exported);
    env.chdir(init, "/data").unwrap();
    assert_eq!(env.read_file_as(init, "over").unwrap(), b"over");
    assert_eq!(env.read_file_as(init, "../exported/over").unwrap(), b"over");
    assert_eq!(env.read_file_as(init, "../dev/null").unwrap(), b"");
}

/// The fd-table numbering is per-process but the refcount lives in the
/// shared descriptor segment: closing one process's number keeps the
/// descriptor alive for the other sharer.
#[test]
fn refcounts_survive_one_sharer_closing() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/shared", b"0123456789", None)
        .unwrap();
    let fd = env.open(init, "/shared", OpenFlags::read_only()).unwrap();
    let child = env.fork(init).unwrap();
    env.close(init, fd).unwrap();
    // The child still reads through the shared descriptor.
    assert_eq!(env.read(child, fd, 4).unwrap(), b"0123");
    env.close(child, fd).unwrap();
    assert!(matches!(env.read(child, fd, 1), Err(UnixError::BadFd(_))));
}

/// Regression: a zero-length read returns immediately (it used to spin
/// forever revalidating the cached file length), and an oversized device
/// read is served as a short count instead of sizing an allocation from
/// the untrusted length.
#[test]
fn zero_length_and_oversized_reads_terminate() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/f", b"abc", None).unwrap();
    let fd = env.open(init, "/f", OpenFlags::read_only()).unwrap();
    assert_eq!(env.read(init, fd, 0).unwrap(), b"");
    assert_eq!(env.read(init, fd, 2).unwrap(), b"ab");
    env.close(init, fd).unwrap();

    let zero = env.open(init, "/dev/zero", OpenFlags::read_only()).unwrap();
    let huge = env.read(init, zero, u64::MAX).unwrap();
    assert_eq!(huge.len() as u64, histar_unix::devfs::DEV_READ_MAX);
    env.close(init, zero).unwrap();
}

/// Regression: closing an inherited label-gated /proc descriptor must
/// succeed (dropping a descriptor is always allowed) and must decrement
/// the shared refcount even though the closing process cannot rebuild
/// the vnode behind it.
#[test]
fn child_can_close_inherited_proc_descriptor() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let fd = env
        .open(init, "/proc/1/status", OpenFlags::read_only())
        .unwrap();
    let child = env.fork(init).unwrap();
    // The child does not own init's pr category, so it could never
    // rebuild the proc vnode — but close must still work.
    env.close(child, fd).unwrap();
    // The refcount dropped: init's close is the last one.
    env.close(init, fd).unwrap();
    assert!(matches!(env.read(init, fd, 1), Err(UnixError::BadFd(_))));
}

/// Regression: a failed data operation must not move the shared seek
/// position — batches have no rollback, so the hot path compensates.
#[test]
fn failed_io_does_not_move_the_shared_position() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/f", b"0123456789", None).unwrap();
    // Open read-write, advance to 4, then make the *kernel* refuse the
    // write by dropping to a read-only view: simplest kernel-refused
    // write is a denied /proc gate, so test via a fork that cannot
    // observe a /proc file inherited from the parent.
    let fd = env
        .open(init, "/proc/1/status", OpenFlags::read_only())
        .unwrap();
    assert!(!env.read(init, fd, 4).unwrap().is_empty());
    let child = env.fork(init).unwrap();
    // The child's read is denied by the label gate...
    assert!(env.read(child, fd, 4).is_err());
    // ...and the shared position did not move: the parent's next read
    // continues exactly where it left off.
    let rest = env.read(init, fd, 4).unwrap();
    assert_eq!(rest.len(), 4);
    let full = env.read_file_as(init, "/proc/1/status").unwrap();
    assert_eq!(&full[4..8], &rest[..]);
}

/// Regression: oversized /proc reads with a nonzero position must not
/// overflow (they used to panic computing `start + len`).
#[test]
fn oversized_proc_read_is_clamped() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let fd = env
        .open(init, "/proc/1/status", OpenFlags::read_only())
        .unwrap();
    assert_eq!(env.read(init, fd, 1).unwrap().len(), 1);
    let rest = env.read(init, fd, u64::MAX).unwrap();
    assert!(!rest.is_empty());
    env.close(init, fd).unwrap();
}

/// Regression: operations on a mount point itself fail cleanly instead
/// of creating or renaming entries the mount table shadows.
#[test]
fn mount_point_paths_refuse_namespace_edits() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let exported = env.mkdir(init, "/exported", None).unwrap();
    env.mount("/mnt", exported);
    env.write_file_as(init, "/a.txt", b"a", None).unwrap();
    // Renaming *onto* a mount point must not shadow the file.
    assert!(matches!(
        env.rename(init, "/a.txt", "/mnt"),
        Err(UnixError::Unsupported(_))
    ));
    assert_eq!(env.read_file_as(init, "/a.txt").unwrap(), b"a");
    // mkdir/unlink on mount points fail cleanly too.
    assert!(matches!(
        env.mkdir(init, "/proc", None),
        Err(UnixError::Unsupported(_))
    ));
    assert!(matches!(
        env.unlink(init, "/dev"),
        Err(UnixError::Unsupported(_))
    ));
    // Remounting the same container does not grow the filesystem table.
    let before = env.vfs_mut().mount_count();
    env.mount("/mnt", exported);
    assert_eq!(env.vfs_mut().mount_count(), before);
}
