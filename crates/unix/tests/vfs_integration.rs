//! Integration tests for the VFS layer: mount resolution, descriptor
//! sharing through descriptor segments, label-filtered `/proc`, the
//! cross-mount rename error, and blocking-read semantics under the
//! deterministic scheduler.

use histar_kernel::sched::{RunLimit, SchedConfig, SchedContext, Scheduler, Step, StopReason};
use histar_kernel::syscall::SyscallError;
use histar_kernel::Kernel;
use histar_label::{Label, Level};
use histar_unix::fs::OpenFlags;
use histar_unix::{UnixEnv, UnixError};

/// Crashes the environment's machine and rebuilds a fresh environment on
/// the recovered one; `/persist` reattaches itself from the store.
fn crash_and_remount(env: UnixEnv) -> UnixEnv {
    let machine = env
        .into_machine()
        .crash_and_recover()
        .expect("recovery succeeds");
    UnixEnv::on_machine(machine)
}

/// §5.3: "descriptor state lives in the descriptor segment" — `dup`'d
/// descriptors and fork-shared descriptors observe each other's seek
/// position, because there is exactly one position and it lives in the
/// shared segment, not in any per-process table.
#[test]
fn dup_and_fork_share_seek_position_through_the_fd_segment() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/f", b"abcdefghij", None).unwrap();
    let fd = env.open(init, "/f", OpenFlags::read_only()).unwrap();
    let dup = env.dup(init, fd).unwrap();

    // A read through either descriptor number advances the one shared
    // position.
    assert_eq!(env.read(init, fd, 2).unwrap(), b"ab");
    assert_eq!(env.read(init, dup, 2).unwrap(), b"cd");

    // An absolute seek through the dup is visible through the original.
    env.lseek(init, dup, 8).unwrap();
    assert_eq!(env.read(init, fd, 2).unwrap(), b"ij");

    // A forked child shares the same descriptor segment: its reads
    // continue from the parent's position and vice versa — even though
    // the child's thread resolves the segment through the *parent's*
    // process container and keeps its own vnode (and capability
    // handles).
    env.lseek(init, fd, 4).unwrap();
    let child = env.fork(init).unwrap();
    assert_eq!(env.read(child, fd, 2).unwrap(), b"ef");
    assert_eq!(env.read(init, fd, 2).unwrap(), b"gh");
    env.lseek(child, dup, 0).unwrap();
    assert_eq!(env.read(init, fd, 2).unwrap(), b"ab");
}

/// A rename whose paths resolve into different mounted filesystems fails
/// with a distinct error and corrupts neither directory.
#[test]
fn cross_mount_rename_fails_without_corrupting_either_directory() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let exported = env.mkdir(init, "/exported", None).unwrap();
    env.write_file_as(init, "/exported/keep", b"k", None)
        .unwrap();
    env.mount("/mnt", exported);
    env.mkdir(init, "/srcdir", None).unwrap();
    env.write_file_as(init, "/srcdir/file", b"payload", None)
        .unwrap();

    let err = env.rename(init, "/srcdir/file", "/mnt/file").unwrap_err();
    match err {
        UnixError::CrossMount { from, to } => {
            assert_eq!(from, "/srcdir/file");
            assert_eq!(to, "/mnt/file");
        }
        other => panic!("expected CrossMount, got {other:?}"),
    }
    // Source untouched, destination untouched.
    assert_eq!(env.read_file_as(init, "/srcdir/file").unwrap(), b"payload");
    let mnt = env.readdir(init, "/mnt").unwrap();
    assert_eq!(mnt.len(), 1);
    assert_eq!(mnt[0].name, "keep");
    // Renaming into /proc or /dev is also a cross-mount rename.
    assert!(matches!(
        env.rename(init, "/srcdir/file", "/proc/file"),
        Err(UnixError::CrossMount { .. })
    ));
    // Renames inside the mounted filesystem still work.
    env.rename(init, "/mnt/keep", "/mnt/kept").unwrap();
    assert_eq!(env.read_file_as(init, "/mnt/kept").unwrap(), b"k");
}

/// `/proc` is label-filtered by the kernel: a tainted observer cannot
/// stat (or read) an untainted process's entry, because entering the PID
/// directory requires observing that process's internal container
/// (`{pr 3, pw 0, 1}`), and the kernel refuses.  The process itself — in
/// particular a process whose label *does* admit the entry — succeeds.
#[test]
fn tainted_observer_cannot_stat_untainted_proc_entry() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();

    // A taint category owned by init; the observer starts tainted in it.
    let init_thread = env.process(init).unwrap().thread;
    let taint = env.kernel_mut().trap_create_category(init_thread).unwrap();
    env.process_record_mut(init)
        .unwrap()
        .extra_ownership
        .push(taint);
    let observer = env
        .spawn_with_label(init, "/bin_observer", vec![], vec![(taint, Level::L3)])
        .unwrap();
    let victim = env.spawn(init, "/bin_victim", None).unwrap();

    // Listing /proc is public information (PIDs only).
    let pids = env.readdir(observer, "/proc").unwrap();
    assert!(pids.iter().any(|e| e.name == victim.to_string()));

    // But stat'ing the victim's entry is not: the kernel denies the
    // observe on the victim's internal container.
    let err = env
        .stat(observer, &format!("/proc/{victim}/status"))
        .unwrap_err();
    assert!(matches!(
        err,
        UnixError::Kernel(SyscallError::CannotObserve(_))
    ));
    // Same for the PID directory itself and for reads.
    assert!(env.stat(observer, &format!("/proc/{victim}")).is_err());
    assert!(env
        .read_file_as(observer, &format!("/proc/{victim}/status"))
        .is_err());

    // The victim's own label admits its entry: it reads its own status,
    // label and fd table.
    let status = env
        .read_file_as(victim, &format!("/proc/{victim}/status"))
        .unwrap();
    assert!(String::from_utf8(status)
        .unwrap()
        .contains("state:\trunning"));
    let label = env
        .read_file_as(victim, &format!("/proc/{victim}/label"))
        .unwrap();
    assert!(!label.is_empty());
    let fds = env
        .read_file_as(victim, &format!("/proc/{victim}/fds"))
        .unwrap();
    assert!(String::from_utf8(fds).unwrap().contains("open fds"));
}

/// An open `/proc` descriptor stays label-checked: every read re-runs the
/// kernel check, so content is never served from the snapshot alone.
#[test]
fn proc_reads_recheck_labels_on_every_read() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let child = env.spawn(init, "/bin_child", None).unwrap();
    // The child opens its own status file — allowed.
    let fd = env
        .open(
            child,
            &format!("/proc/{child}/status"),
            OpenFlags::read_only(),
        )
        .unwrap();
    let first = env.read(child, fd, 16).unwrap();
    assert!(!first.is_empty());
    // Each read performed a fresh container-list check; a second read
    // continues from the shared seek position.
    let second = env.read(child, fd, 16).unwrap();
    assert_ne!(first, second);
    env.close(child, fd).unwrap();
}

/// Paths resolve across mount boundaries in one resolver: `..` escapes a
/// mount point lexically, mount points shadow directories, and unmount
/// restores the underlying namespace.
#[test]
fn mount_resolution_and_dotdot_escape() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.mkdir(init, "/data", None).unwrap();
    env.write_file_as(init, "/data/under", b"under", None)
        .unwrap();
    let exported = env.mkdir(init, "/exported", None).unwrap();
    env.write_file_as(init, "/exported/over", b"over", None)
        .unwrap();

    // Mounting shadows the directory; unmounting restores it.
    env.mount("/data", exported);
    assert_eq!(env.read_file_as(init, "/data/over").unwrap(), b"over");
    assert!(matches!(
        env.read_file_as(init, "/data/under"),
        Err(UnixError::NotFound(_))
    ));
    env.vfs_mut().unmount("/data").unwrap();
    assert_eq!(env.read_file_as(init, "/data/under").unwrap(), b"under");

    // `..` walks out of a mounted filesystem back into the parent
    // namespace (lexically, before any lookup).
    env.mount("/data", exported);
    env.chdir(init, "/data").unwrap();
    assert_eq!(env.read_file_as(init, "over").unwrap(), b"over");
    assert_eq!(env.read_file_as(init, "../exported/over").unwrap(), b"over");
    assert_eq!(env.read_file_as(init, "../dev/null").unwrap(), b"");
}

/// The fd-table numbering is per-process but the refcount lives in the
/// shared descriptor segment: closing one process's number keeps the
/// descriptor alive for the other sharer.
#[test]
fn refcounts_survive_one_sharer_closing() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/shared", b"0123456789", None)
        .unwrap();
    let fd = env.open(init, "/shared", OpenFlags::read_only()).unwrap();
    let child = env.fork(init).unwrap();
    env.close(init, fd).unwrap();
    // The child still reads through the shared descriptor.
    assert_eq!(env.read(child, fd, 4).unwrap(), b"0123");
    env.close(child, fd).unwrap();
    assert!(matches!(env.read(child, fd, 1), Err(UnixError::BadFd(_))));
}

/// Regression: a zero-length read returns immediately (it used to spin
/// forever revalidating the cached file length), and an oversized device
/// read is served as a short count instead of sizing an allocation from
/// the untrusted length.
#[test]
fn zero_length_and_oversized_reads_terminate() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/f", b"abc", None).unwrap();
    let fd = env.open(init, "/f", OpenFlags::read_only()).unwrap();
    assert_eq!(env.read(init, fd, 0).unwrap(), b"");
    assert_eq!(env.read(init, fd, 2).unwrap(), b"ab");
    env.close(init, fd).unwrap();

    let zero = env.open(init, "/dev/zero", OpenFlags::read_only()).unwrap();
    let huge = env.read(init, zero, u64::MAX).unwrap();
    assert_eq!(huge.len() as u64, histar_unix::devfs::DEV_READ_MAX);
    env.close(init, zero).unwrap();
}

/// Regression: closing an inherited label-gated /proc descriptor must
/// succeed (dropping a descriptor is always allowed) and must decrement
/// the shared refcount even though the closing process cannot rebuild
/// the vnode behind it.
#[test]
fn child_can_close_inherited_proc_descriptor() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let fd = env
        .open(init, "/proc/1/status", OpenFlags::read_only())
        .unwrap();
    let child = env.fork(init).unwrap();
    // The child does not own init's pr category, so it could never
    // rebuild the proc vnode — but close must still work.
    env.close(child, fd).unwrap();
    // The refcount dropped: init's close is the last one.
    env.close(init, fd).unwrap();
    assert!(matches!(env.read(init, fd, 1), Err(UnixError::BadFd(_))));
}

/// Regression: a failed data operation must not move the shared seek
/// position — batches have no rollback, so the hot path compensates.
#[test]
fn failed_io_does_not_move_the_shared_position() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/f", b"0123456789", None).unwrap();
    // Open read-write, advance to 4, then make the *kernel* refuse the
    // write by dropping to a read-only view: simplest kernel-refused
    // write is a denied /proc gate, so test via a fork that cannot
    // observe a /proc file inherited from the parent.
    let fd = env
        .open(init, "/proc/1/status", OpenFlags::read_only())
        .unwrap();
    assert!(!env.read(init, fd, 4).unwrap().is_empty());
    let child = env.fork(init).unwrap();
    // The child's read is denied by the label gate...
    assert!(env.read(child, fd, 4).is_err());
    // ...and the shared position did not move: the parent's next read
    // continues exactly where it left off.
    let rest = env.read(init, fd, 4).unwrap();
    assert_eq!(rest.len(), 4);
    let full = env.read_file_as(init, "/proc/1/status").unwrap();
    assert_eq!(&full[4..8], &rest[..]);
}

/// Regression: oversized /proc reads with a nonzero position must not
/// overflow (they used to panic computing `start + len`).
#[test]
fn oversized_proc_read_is_clamped() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let fd = env
        .open(init, "/proc/1/status", OpenFlags::read_only())
        .unwrap();
    assert_eq!(env.read(init, fd, 1).unwrap().len(), 1);
    let rest = env.read(init, fd, u64::MAX).unwrap();
    assert!(!rest.is_empty());
    env.close(init, fd).unwrap();
}

/// Regression: operations on a mount point itself fail cleanly instead
/// of creating or renaming entries the mount table shadows.
#[test]
fn mount_point_paths_refuse_namespace_edits() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let exported = env.mkdir(init, "/exported", None).unwrap();
    env.mount("/mnt", exported);
    env.write_file_as(init, "/a.txt", b"a", None).unwrap();
    // Renaming *onto* a mount point must not shadow the file.
    assert!(matches!(
        env.rename(init, "/a.txt", "/mnt"),
        Err(UnixError::Unsupported(_))
    ));
    assert_eq!(env.read_file_as(init, "/a.txt").unwrap(), b"a");
    // mkdir/unlink on mount points fail cleanly too.
    assert!(matches!(
        env.mkdir(init, "/proc", None),
        Err(UnixError::Unsupported(_))
    ));
    assert!(matches!(
        env.unlink(init, "/dev"),
        Err(UnixError::Unsupported(_))
    ));
    // Remounting the same container does not grow the filesystem table.
    let before = env.vfs_mut().mount_count();
    env.mount("/mnt", exported);
    assert_eq!(env.vfs_mut().mount_count(), before);
}

// ------------------------------------------------ /persist semantics --

/// The acceptance story: a file written under `/persist` and fsynced
/// survives a simulated crash and is readable after recovery, while an
/// unsynced write is cleanly absent.
#[test]
fn persist_fsynced_data_survives_crash_unsynced_data_does_not() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.mkdir(init, "/persist/etc", None).unwrap();
    env.write_file_as(init, "/persist/etc/motd", b"durable greeting", None)
        .unwrap();
    env.fsync_path(init, "/persist/etc/motd").unwrap();
    // Also fsync the directory chain so the namespace entries are logged.
    env.fsync_path(init, "/persist/etc").unwrap();
    env.write_file_as(init, "/persist/etc/scratch", b"never synced", None)
        .unwrap();

    let mut env = crash_and_remount(env);
    let init = env.init_pid();
    assert_eq!(
        env.read_file_as(init, "/persist/etc/motd").unwrap(),
        b"durable greeting"
    );
    assert!(matches!(
        env.read_file_as(init, "/persist/etc/scratch"),
        Err(UnixError::NotFound(_))
    ));
    // The recovered tree is fully usable: new writes and a second crash
    // round-trip cleanly.
    env.write_file_as(init, "/persist/etc/motd2", b"second life", None)
        .unwrap();
    env.fsync_path(init, "/persist/etc/motd2").unwrap();
    let mut env = crash_and_remount(env);
    let init = env.init_pid();
    assert_eq!(
        env.read_file_as(init, "/persist/etc/motd2").unwrap(),
        b"second life"
    );
}

/// Labels are enforced across recovery: a secret file recovered from the
/// write-ahead log still carries its label inside the record, and the
/// kernel re-checks it on every read — an unprivileged reader is refused
/// exactly as before the crash.
#[test]
fn persist_labels_are_enforced_across_recovery() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let alice = env.create_user("alice").unwrap();
    env.write_file_as(
        init,
        "/persist/diary",
        b"alice's secrets",
        Some(alice.private_file_label()),
    )
    .unwrap();
    env.fsync_path(init, "/persist/diary").unwrap();

    let mut env = crash_and_remount(env);
    let init = env.init_pid();
    // The recovered environment has no users table (library state), but
    // kernel-side category ownership recovered with init's thread; an
    // unprivileged sibling cannot observe the file.
    let snoop = env.spawn(init, "/bin_snoop", None).unwrap();
    let err = env.read_file_as(snoop, "/persist/diary").unwrap_err();
    assert!(
        matches!(err, UnixError::Kernel(SyscallError::CannotObserveRecord(_))),
        "got {err:?}"
    );
    // init still owns alice's categories (they were snapshotted with its
    // thread), so it reads the recovered bytes.
    assert_eq!(
        env.read_file_as(init, "/persist/diary").unwrap(),
        b"alice's secrets"
    );
}

/// A rename between `/persist` and the heap-backed root filesystem fails
/// with `CrossMount` and corrupts neither namespace.
#[test]
fn persist_rename_across_mounts_fails_cleanly() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/persist/keep", b"p", None)
        .unwrap();
    env.write_file_as(init, "/heap.txt", b"h", None).unwrap();
    for (from, to) in [
        ("/persist/keep", "/stolen"),
        ("/heap.txt", "/persist/heap.txt"),
    ] {
        let err = env.rename(init, from, to).unwrap_err();
        assert!(matches!(err, UnixError::CrossMount { .. }), "{from}->{to}");
    }
    assert_eq!(env.read_file_as(init, "/persist/keep").unwrap(), b"p");
    assert_eq!(env.read_file_as(init, "/heap.txt").unwrap(), b"h");
    // Renames inside /persist work, including across directories.
    env.mkdir(init, "/persist/a", None).unwrap();
    env.mkdir(init, "/persist/b", None).unwrap();
    env.write_file_as(init, "/persist/a/f", b"x", None).unwrap();
    env.rename(init, "/persist/a/f", "/persist/b/g").unwrap();
    assert_eq!(env.read_file_as(init, "/persist/b/g").unwrap(), b"x");
    assert!(env.stat(init, "/persist/a/f").is_err());
}

/// Descriptor semantics on /persist match the heap filesystem: shared
/// seek positions through dup/fork, append mode, truncation, unlink, and
/// an unlink made durable (it does not resurrect after a crash).
#[test]
fn persist_descriptor_semantics_match_segfs() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/persist/f", b"0123456789", None)
        .unwrap();
    let fd = env
        .open(init, "/persist/f", OpenFlags::read_only())
        .unwrap();
    let dup = env.dup(init, fd).unwrap();
    assert_eq!(env.read(init, fd, 4).unwrap(), b"0123");
    assert_eq!(env.read(init, dup, 4).unwrap(), b"4567");
    env.lseek(init, dup, 1).unwrap();
    assert_eq!(env.read(init, fd, 2).unwrap(), b"12");
    let child = env.fork(init).unwrap();
    assert_eq!(env.read(child, fd, 2).unwrap(), b"34");
    env.close(init, fd).unwrap();
    env.close(init, dup).unwrap();

    // Append always writes at the end.
    let fda = env
        .open(
            init,
            "/persist/f",
            OpenFlags {
                write: true,
                append: true,
                ..Default::default()
            },
        )
        .unwrap();
    env.write(init, fda, b"ab").unwrap();
    env.close(init, fda).unwrap();
    assert_eq!(
        env.read_file_as(init, "/persist/f").unwrap(),
        b"0123456789ab"
    );

    // Truncating open resets the contents.
    env.write_file_as(init, "/persist/f", b"short", None)
        .unwrap();
    assert_eq!(env.read_file_as(init, "/persist/f").unwrap(), b"short");
    let stat = env.stat(init, "/persist/f").unwrap();
    assert_eq!(stat.len, 5);

    // Unlink is durable: after fsyncing the create, unlinking and
    // crashing must not resurrect the file.
    env.fsync_path(init, "/persist/f").unwrap();
    env.unlink(init, "/persist/f").unwrap();
    let mut env = crash_and_remount(env);
    let init = env.init_pid();
    assert!(matches!(
        env.read_file_as(init, "/persist/f"),
        Err(UnixError::NotFound(_))
    ));
}

/// Large files span many extent records; contents round-trip through
/// crash/recovery intact, and readdir lists the tree.
#[test]
fn persist_multi_extent_files_and_readdir() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    env.write_file_as(init, "/persist/big.bin", &big, None)
        .unwrap();
    env.write_file_as(init, "/persist/small", b"s", None)
        .unwrap();
    env.fsync_path(init, "/persist/big.bin").unwrap();
    let names: Vec<String> = env
        .readdir(init, "/persist")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(names.contains(&"big.bin".to_string()));
    assert!(names.contains(&"small".to_string()));

    let mut env = crash_and_remount(env);
    let init = env.init_pid();
    assert_eq!(env.read_file_as(init, "/persist/big.bin").unwrap(), big);
    // Partial reads across extent boundaries behave.
    let fd = env
        .open(init, "/persist/big.bin", OpenFlags::read_only())
        .unwrap();
    env.lseek(init, fd, 4090).unwrap();
    assert_eq!(env.read(init, fd, 12).unwrap(), big[4090..4102].to_vec());
    env.close(init, fd).unwrap();
}

/// A tainted process cannot create records it could not modify, and a
/// labeled private directory under /persist hides its entries from
/// unprivileged listers at the kernel, not in the library.
#[test]
fn persist_private_directory_is_label_gated() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let bob = env.create_user("bob").unwrap();
    env.mkdir(init, "/persist/bob", Some(bob.private_file_label()))
        .unwrap();
    env.write_file_as(init, "/persist/bob/mail", b"private", None)
        .unwrap();
    // An unprivileged process cannot even look up inside the directory.
    let other = env.spawn(init, "/bin_other", None).unwrap();
    let err = env.read_file_as(other, "/persist/bob/mail").unwrap_err();
    assert!(
        matches!(err, UnixError::Kernel(SyscallError::CannotObserveRecord(_))),
        "got {err:?}"
    );
    assert!(env.readdir(other, "/persist/bob").is_err());
    // A process running as bob reads it (files inherit the directory's
    // label when created without an explicit one).
    let shell = env.spawn(init, "/bin_sh", Some("bob")).unwrap();
    assert_eq!(
        env.read_file_as(shell, "/persist/bob/mail").unwrap(),
        b"private"
    );
    let _ = Label::unrestricted();
}

/// Regression: a rename must be durable as a unit.  Renaming a fully
/// fsynced file and crashing used to log only the old entry's tombstone,
/// orphaning the file from both directories; now the new entry (and the
/// moved inode) are logged with it.
#[test]
fn persist_rename_then_crash_keeps_the_file_reachable() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.mkdir(init, "/persist/a", None).unwrap();
    env.mkdir(init, "/persist/b", None).unwrap();
    env.fsync_path(init, "/persist/a").unwrap();
    env.fsync_path(init, "/persist/b").unwrap();
    env.write_file_as(init, "/persist/a/f", b"move me", None)
        .unwrap();
    env.fsync_path(init, "/persist/a/f").unwrap();
    env.rename(init, "/persist/a/f", "/persist/b/g").unwrap();

    let mut env = crash_and_remount(env);
    let init = env.init_pid();
    assert_eq!(env.read_file_as(init, "/persist/b/g").unwrap(), b"move me");
    assert!(matches!(
        env.read_file_as(init, "/persist/a/f"),
        Err(UnixError::NotFound(_))
    ));
}

/// Regression: a vnode whose cached length went stale (another
/// descriptor's vnode grew the file) must not shrink the authoritative
/// inode length when it writes.
#[test]
fn persist_stale_length_cache_does_not_truncate_on_write() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/persist/f", b"0123456789", None)
        .unwrap();
    // fd1's vnode caches len = 10.
    let fd1 = env
        .open(
            init,
            "/persist/f",
            OpenFlags {
                read: true,
                write: true,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(env.read(init, fd1, 10).unwrap(), b"0123456789");
    // fd2 (a separate open, separate vnode) grows the file.
    let fd2 = env
        .open(
            init,
            "/persist/f",
            OpenFlags {
                write: true,
                append: true,
                ..Default::default()
            },
        )
        .unwrap();
    let tail = vec![0xEEu8; 5000];
    env.write(init, fd2, &tail).unwrap();
    env.close(init, fd2).unwrap();
    // fd1 writes within its stale idea of the file; the real length must
    // survive.
    env.lseek(init, fd1, 2).unwrap();
    env.write(init, fd1, b"XY").unwrap();
    env.close(init, fd1).unwrap();
    let all = env.read_file_as(init, "/persist/f").unwrap();
    assert_eq!(all.len(), 10 + 5000, "stale cache must not shrink the file");
    assert_eq!(&all[..10], b"01XY456789");
    assert_eq!(&all[10..], &tail[..]);
}

/// `/metrics` is label-filtered end to end, and — unlike `/proc` — its
/// per-activity namespaces carry **no existence channel**: a reader that
/// cannot observe an activity's label gets the byte-identical `NotFound`
/// a genuinely missing entry produces, and directory listings silently
/// omit the entry.  The uncontained administrator (`init`, who owns the
/// metrics-gate category and the secret activity's category) sees the
/// full set.
#[test]
fn metrics_entries_are_label_filtered() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let init_thread = env.process(init).unwrap().thread;

    // High-secrecy activity: a container labeled with a fresh category
    // only init owns.
    let secret_cat = env.kernel_mut().trap_create_category(init_thread).unwrap();
    let kroot = env.kernel_mut().root_container();
    let secret = env
        .kernel_mut()
        .trap_container_create(
            init_thread,
            kroot,
            Label::unrestricted().with(secret_cat, Level::L3),
            "secret activity",
            0,
            1 << 16,
        )
        .unwrap();

    let reader = env.spawn(init, "/bin_reader", None).unwrap();
    let victim = env.spawn(init, "/bin_victim", None).unwrap();

    // The /metrics namespace itself is public: names, not contents.
    let names: Vec<String> = env
        .readdir(reader, "/metrics")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    for expected in [
        "kernel",
        "dispatch",
        "labels",
        "store",
        "sched",
        "tasks",
        "containers",
    ] {
        assert!(names.contains(&expected.to_string()), "missing {expected}");
    }

    // Global counter files aggregate every label's activity, so they are
    // gated like /proc gates a process — an explicit CannotObserve (the
    // file visibly exists; only its contents are privileged).
    let err = env.read_file_as(reader, "/metrics/kernel").unwrap_err();
    assert!(matches!(
        err,
        UnixError::Kernel(SyscallError::CannotObserve(_))
    ));
    let global = String::from_utf8(env.read_file_as(init, "/metrics/kernel").unwrap()).unwrap();
    assert!(global.contains("kernel.syscalls\t"), "got: {global}");
    assert!(global.contains("spans.recorded\t"), "got: {global}");

    // The store file carries the WAL group-commit counters — same gate:
    // privileged readers see them, the contained reader gets an explicit
    // CannotObserve.
    env.write_file_as(init, "/persist/gauged", b"count me", None)
        .unwrap();
    env.fsync_path(init, "/persist/gauged").unwrap();
    let store = String::from_utf8(env.read_file_as(init, "/metrics/store").unwrap()).unwrap();
    for counter in [
        "wal.frames\t",
        "wal.group_commits\t",
        "wal.records_coalesced\t",
        "wal.flush_batch.bucket.",
    ] {
        assert!(store.contains(counter), "missing {counter} in: {store}");
    }
    let err = env.read_file_as(reader, "/metrics/store").unwrap_err();
    assert!(matches!(
        err,
        UnixError::Kernel(SyscallError::CannotObserve(_))
    ));

    // The uncontained reader sees the secret container and its counters.
    let listed: Vec<String> = env
        .readdir(init, "/metrics/containers")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(listed.contains(&secret.raw().to_string()));
    let body = String::from_utf8(
        env.read_file_as(init, &format!("/metrics/containers/{}", secret.raw()))
            .unwrap(),
    )
    .unwrap();
    assert!(body.contains("container.entries\t"), "got: {body}");

    // The contained reader does not — and cannot tell the entry exists.
    let listed: Vec<String> = env
        .readdir(reader, "/metrics/containers")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(!listed.contains(&secret.raw().to_string()));
    let denied = env
        .read_file_as(reader, &format!("/metrics/containers/{}", secret.raw()))
        .unwrap_err();
    let missing = env
        .read_file_as(reader, "/metrics/containers/999999")
        .unwrap_err();
    // Structurally identical errors: NotFound carrying exactly the probed
    // path — no variant, payload or wording distinguishes "denied" from
    // "absent".
    assert!(
        matches!(denied, UnixError::NotFound(ref n)
            if *n == format!("/metrics/containers/{}", secret.raw())),
        "denial must read as absence, got {denied:?}"
    );
    assert!(
        matches!(missing, UnixError::NotFound(ref n) if n == "/metrics/containers/999999"),
        "got {missing:?}"
    );

    // Per-task entries are framed by each process's own secrecy category
    // (the spawner deliberately drops it after process creation): a
    // process reads its own measurements, and a sibling sees neither the
    // numbers nor the fact that the task is measured.
    let own = String::from_utf8(
        env.read_file_as(victim, &format!("/metrics/tasks/{victim}"))
            .unwrap(),
    )
    .unwrap();
    assert!(own.contains("task.syscalls\t"), "got: {own}");
    let tasks_as_init: Vec<String> = env
        .readdir(init, "/metrics/tasks")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(tasks_as_init.contains(&init.to_string()));
    assert!(!tasks_as_init.contains(&victim.to_string()));
    let tasks_as_reader: Vec<String> = env
        .readdir(reader, "/metrics/tasks")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(tasks_as_reader.contains(&reader.to_string()));
    assert!(!tasks_as_reader.contains(&victim.to_string()));
    let denied = env
        .read_file_as(reader, &format!("/metrics/tasks/{victim}"))
        .unwrap_err();
    assert!(
        matches!(denied, UnixError::NotFound(ref n)
            if *n == format!("/metrics/tasks/{victim}")),
        "task denial must read as absence, got {denied:?}"
    );
    assert!(matches!(
        env.read_file_as(reader, "/metrics/tasks/9999"),
        Err(UnixError::NotFound(_))
    ));
}

/// An open `/metrics` descriptor re-runs its label gate on every read:
/// a fork-inherited descriptor for the parent's own task entry yields
/// `NotFound` — not stale snapshot bytes, and not a telltale denial —
/// in the child, which does not own the parent's secrecy category.
#[test]
fn metrics_reads_recheck_labels_and_deny_as_absence() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let parent = env.spawn(init, "/bin_parent", None).unwrap();
    let fd = env
        .open(
            parent,
            &format!("/metrics/tasks/{parent}"),
            OpenFlags::read_only(),
        )
        .unwrap();
    assert!(!env.read(parent, fd, 8).unwrap().is_empty());

    let child = env.fork(parent).unwrap();
    let err = env.read(child, fd, 8).unwrap_err();
    assert!(
        matches!(err, UnixError::NotFound(_)),
        "inherited gated descriptor must deny as absence, got {err:?}"
    );
    // The failed read did not move the shared position, and closing the
    // inherited descriptor still works.
    let rest = env.read(parent, fd, u64::MAX).unwrap();
    assert!(!rest.is_empty());
    env.close(child, fd).unwrap();
    env.close(parent, fd).unwrap();
}

/// Shared world for the blocking-semantics test below: two scheduled
/// programs around one pipe, with per-program turn counters.
struct PipeWorld {
    env: UnixEnv,
    reader_turns: u64,
    writer_turns: u64,
    got: Vec<u8>,
}

impl SchedContext for PipeWorld {
    fn sched_kernel(&mut self) -> &mut Kernel {
        self.env.machine_mut().kernel_mut()
    }
}

/// `read(2)` semantics on a pipe: a reader parked on an empty pipe
/// consumes **zero quanta** until the writer's bytes wake it.  The reader
/// runs exactly twice — the attempt that parks it and the turn after the
/// kernel's readiness completion — no matter how long the writer dawdles
/// first, and the scheduler's quanta bill covers only turns that actually
/// ran.
#[test]
fn reader_parked_on_empty_pipe_consumes_zero_quanta_until_woken() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let reader = env.spawn(init, "/bin/reader", None).unwrap();
    let writer = env.spawn(init, "/bin/writer", None).unwrap();
    // The pipe is created in the reader and its write end handed to the
    // writer; the reader drops its own copy so exactly one writer holds
    // the ring.
    let (rfd, wfd_local) = env.pipe(reader).unwrap();
    let wfd = env.share_fd(reader, wfd_local, writer).unwrap();
    env.close(reader, wfd_local).unwrap();

    let reader_thread = env.process(reader).unwrap().thread;
    let writer_thread = env.process(writer).unwrap().thread;

    const WRITER_SPINS: u64 = 40;
    let mut sched: Scheduler<PipeWorld> = Scheduler::new(SchedConfig::new().seed(0xb10c));
    sched.spawn(
        reader_thread,
        Box::new(move |world: &mut PipeWorld, _tid| {
            world.reader_turns += 1;
            match world.env.read_blocking(reader, rfd, 64).unwrap() {
                None => Step::Block,
                Some(data) => {
                    world.got.extend_from_slice(&data);
                    Step::Done
                }
            }
        }),
    );
    sched.spawn(
        writer_thread,
        Box::new(move |world: &mut PipeWorld, _tid| {
            world.writer_turns += 1;
            if world.writer_turns <= WRITER_SPINS {
                return Step::Yield;
            }
            let wrote = world.env.write_blocking(writer, wfd, b"wake up").unwrap();
            assert_eq!(wrote, Some(7));
            world.env.close(writer, wfd).unwrap();
            Step::Done
        }),
    );

    let mut world = PipeWorld {
        env,
        reader_turns: 0,
        writer_turns: 0,
        got: Vec::new(),
    };
    let report = sched.run(&mut world, RunLimit::to_completion());

    assert_eq!(report.stop, StopReason::AllComplete);
    assert_eq!(world.got, b"wake up");
    assert_eq!(
        world.reader_turns, 2,
        "a parked reader must not be scheduled while the pipe stays empty"
    );
    assert_eq!(world.writer_turns, WRITER_SPINS + 1);
    // Blocked threads are billed nothing: the total quanta are exactly
    // the turns the two programs actually took.
    assert_eq!(
        sched.stats().quanta,
        world.reader_turns + world.writer_turns,
        "parked turns must cost zero quanta"
    );
    // The wake came from the kernel's readiness completion on the pipe
    // segment, not from polling.
    assert!(
        sched.stats().completion_wakeups >= 1,
        "the reader's wake must be a kernel completion"
    );
}

/// A finished scheduler run publishes its counters into the kernel's
/// metric registry, so `/metrics/sched` serves them — aggregate counters
/// and the per-shard queue gauges — behind the same global-file gate as
/// the other counter files.
#[test]
fn scheduler_counters_are_served_at_metrics_sched() {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let worker = env.spawn(init, "/bin/worker", None).unwrap();
    let worker_thread = env.process(worker).unwrap().thread;

    struct W {
        env: UnixEnv,
    }
    impl SchedContext for W {
        fn sched_kernel(&mut self) -> &mut Kernel {
            self.env.machine_mut().kernel_mut()
        }
    }

    let mut sched: Scheduler<W> = Scheduler::new(SchedConfig::new().seed(7).shards(4));
    let mut steps = 0u32;
    sched.spawn(
        worker_thread,
        Box::new(move |_w: &mut W, _tid| {
            steps += 1;
            if steps < 3 {
                Step::Yield
            } else {
                Step::Done
            }
        }),
    );
    let mut world = W { env };
    let report = sched.run(&mut world, RunLimit::to_completion());
    assert_eq!(report.stop, StopReason::AllComplete);

    let text = String::from_utf8(world.env.read_file_as(init, "/metrics/sched").unwrap()).unwrap();
    for line in [
        "sched.quanta\t3",
        "sched.completed\t1",
        "sched.shard_queue_depth.0\t",
        "sched.shard_queue_depth.3\t",
        "sched.shard_parked.0\t",
        "sched.parked_high_water\t",
    ] {
        assert!(text.contains(line), "missing {line} in: {text}");
    }
    // Only sched.* counters live here; the kernel file keeps its own.
    assert!(!text.contains("kernel.syscalls"));
}
