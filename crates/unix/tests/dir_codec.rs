//! Property tests for the directory-segment codec: round-trips over
//! adversarial names and rejection of malformed encodings.
//!
//! The repo runs offline, so these are seeded pseudo-property tests (like
//! the label-algebra ones): a deterministic RNG drives many iterations
//! over a generator of adversarial inputs.

use histar_sim::SimRng;
use histar_store::codec::Encoder;
use histar_unix::fs::{DirEntry, Directory};

fn oid(n: u64) -> histar_kernel::object::ObjectId {
    // Object IDs are 61-bit; clamp generated values into range.
    histar_kernel::object::ObjectId::from_raw(n & histar_kernel::object::OBJECT_ID_MASK)
}

/// Generates an adversarial (but valid-UTF-8) name.
fn adversarial_name(rng: &mut SimRng, salt: u64) -> String {
    match rng.next_below(8) {
        // Empty name: the codec must carry it even though the VFS never
        // creates one.
        0 => String::new(),
        // Slash-bearing names: never produced by path resolution, but
        // the codec must not corrupt neighbouring entries over them.
        1 => format!("a/b/{salt}"),
        2 => "/".to_string(),
        // Maximum-length (255-byte) names.
        3 => "x".repeat(255),
        // Multi-byte UTF-8.
        4 => format!("ファイル-{salt}-✓"),
        // Names that look like codec framing.
        5 => "\u{0}\u{0}\u{0}\u{0}".to_string(),
        6 => format!(".{salt}"),
        // Plain names.
        _ => format!("file-{salt}"),
    }
}

#[test]
fn round_trip_over_adversarial_names() {
    let mut rng = SimRng::new(0xd1c0de);
    for iter in 0..500 {
        let mut dir = Directory::new();
        let entries = rng.next_below(12);
        for i in 0..entries {
            dir.insert(DirEntry {
                // Suffix with the index so insert() replacement semantics
                // don't shrink the directory under us.
                name: format!("{}#{i}", adversarial_name(&mut rng, iter)),
                object: oid(rng.next_u64()),
                is_dir: rng.next_below(2) == 1,
            });
        }
        let encoded = dir.encode();
        let decoded = Directory::decode(&encoded)
            .unwrap_or_else(|| panic!("iteration {iter}: decode failed for {dir:?}"));
        assert_eq!(decoded, dir, "iteration {iter}");
    }
}

#[test]
fn round_trip_preserves_exact_255_byte_and_empty_names() {
    let mut dir = Directory::new();
    for name in ["", "/", "a/b", &"n".repeat(255)] {
        dir.insert(DirEntry {
            name: name.to_string(),
            object: oid(7),
            is_dir: false,
        });
    }
    let decoded = Directory::decode(&dir.encode()).unwrap();
    assert_eq!(decoded, dir);
    for name in ["", "/", "a/b"] {
        assert!(decoded.lookup(name).is_some(), "lost {name:?}");
    }
    assert_eq!(decoded.lookup(&"n".repeat(255)).unwrap().object, oid(7));
}

/// Non-UTF-8 name bytes are rejected: the decoder returns `None` instead
/// of fabricating a lossy name that would no longer round-trip.
#[test]
fn non_utf8_names_are_rejected() {
    // Hand-encode a directory whose single entry has invalid UTF-8 bytes.
    let mut e = Encoder::new();
    e.put_u64(1); // generation
    e.put_u64(1); // entry count
    e.put_bytes(&[0xff, 0xfe, 0x80]); // invalid UTF-8 "name"
    e.put_u64(42); // object id
    e.put_u8(0); // is_dir
    assert_eq!(Directory::decode(&e.finish()), None);
}

/// Truncated and garbage encodings are rejected rather than decoded into
/// a partial directory.
#[test]
fn malformed_encodings_are_rejected() {
    let mut rng = SimRng::new(0xbadc0de);
    let mut dir = Directory::new();
    for i in 0..8 {
        dir.insert(DirEntry {
            name: format!("entry-{i}"),
            object: oid(i),
            is_dir: i % 2 == 0,
        });
    }
    let good = dir.encode();
    // Every strict prefix long enough to not look like a fresh (zeroed)
    // segment must fail to decode.
    for cut in 1..good.len() {
        let prefix = &good[..cut];
        if prefix.iter().all(|&b| b == 0) {
            continue; // decodes as an empty directory by design
        }
        assert_eq!(
            Directory::decode(prefix),
            None,
            "prefix of {cut} bytes decoded"
        );
    }
    // Random byte flips either decode to *some* directory or are
    // rejected — but never panic.
    for _ in 0..200 {
        let mut bytes = good.clone();
        let idx = rng.next_below(bytes.len() as u64) as usize;
        bytes[idx] ^= (1 + rng.next_below(255)) as u8;
        let _ = Directory::decode(&bytes);
    }
}

/// Out-of-range object IDs (beyond the kernel's 61-bit space) are
/// rejected — the decoder must not panic on untrusted segment bytes.
#[test]
fn out_of_range_object_ids_are_rejected() {
    let mut e = Encoder::new();
    e.put_u64(1); // generation
    e.put_u64(1); // entry count
    e.put_str("evil");
    e.put_u64(u64::MAX); // object id outside the 61-bit space
    e.put_u8(0);
    assert_eq!(Directory::decode(&e.finish()), None);
}
