//! The Unix environment: the library state tying processes, the VFS and
//! file descriptors together over a simulated HiStar machine.
//!
//! Everything in this module is *untrusted library code* in the paper's
//! sense: it only ever acts through kernel system calls made on behalf of
//! some process's thread, so every access it performs is subject to the
//! kernel's label checks.  A process with insufficient privilege simply gets
//! `CannotObserve`/`CannotModify` errors back, exactly as a buggy or
//! malicious library would.
//!
//! File and descriptor operations are thin wrappers here: paths resolve
//! through the [`Vfs`] mount table (segment fs at `/`, label-filtered
//! `/proc`, devices at `/dev`, plus whatever [`UnixEnv::mount`] overlays)
//! and every descriptor dispatches through its [`Vnode`], which owns the
//! batched hot path.  What remains in this file is the process machinery
//! (§5.2) and the descriptor-segment bookkeeping that must straddle
//! processes (`dup`/`fork` sharing, reference counts).

use crate::devfs::DevFs;
use crate::fdtable::{Fd, FdState, FdTable, FLAG_NONBLOCK};
use crate::fs::DirEntry;
use crate::fs::{join_path, FileStat, OpenFlags};
use crate::metricsfs::{MetricsFs, TaskInfo};
use crate::persistfs::PersistFs;
use crate::process::{ExitStatus, Pid, Process, ProcessState};
use crate::procfs::{ProcFs, ProcInfo};
use crate::segfs::SegFs;
use crate::users::{User, UserTable};
use crate::vfs::{ensure_quota, Vfs};
use crate::vnode::{self, create_pipe, FdRef, VfsCtx, Vnode};
use histar_kernel::bodies::{Mapping, MappingFlags};
use histar_kernel::kernel::PAGE_SIZE;
use histar_kernel::object::{ContainerEntry, ObjectId};
use histar_kernel::syscall::SyscallError;
use histar_kernel::{Machine, MachineConfig, Syscall, SyscallResult};
use histar_label::{Category, Label, Level};
use std::collections::BTreeMap;

/// Errors returned by the Unix library.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnixError {
    /// A kernel system call failed (usually a label check).
    Kernel(SyscallError),
    /// A path component does not exist.
    NotFound(String),
    /// The path already exists.
    Exists(String),
    /// A non-directory appeared where a directory was required.
    NotADirectory(String),
    /// A directory appeared where a file was required.
    IsADirectory(String),
    /// The file descriptor is not open.
    BadFd(Fd),
    /// No such process.
    NoSuchProcess(Pid),
    /// The process has not exited yet.
    StillRunning(Pid),
    /// The operation would block (e.g. reading an empty pipe).
    WouldBlock,
    /// No such user.
    NoSuchUser(String),
    /// The descriptor or operation does not support this action.
    Unsupported(&'static str),
    /// The corrupted state was detected in a library data structure.
    Corrupt(&'static str),
    /// The paths of a rename resolve into different mounted filesystems;
    /// neither directory was modified.
    CrossMount {
        /// The (normalized) source path.
        from: String,
        /// The (normalized) destination path.
        to: String,
    },
    /// The filesystem does not support modification.
    ReadOnly(&'static str),
}

impl From<SyscallError> for UnixError {
    fn from(e: SyscallError) -> UnixError {
        UnixError::Kernel(e)
    }
}

impl core::fmt::Display for UnixError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UnixError::Kernel(e) => write!(f, "kernel error: {e}"),
            UnixError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            UnixError::Exists(p) => write!(f, "file exists: {p}"),
            UnixError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            UnixError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            UnixError::BadFd(fd) => write!(f, "bad file descriptor: {fd}"),
            UnixError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            UnixError::StillRunning(p) => write!(f, "process {p} is still running"),
            UnixError::WouldBlock => write!(f, "operation would block"),
            UnixError::NoSuchUser(u) => write!(f, "no such user: {u}"),
            UnixError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            UnixError::Corrupt(what) => write!(f, "corrupt library state: {what}"),
            UnixError::CrossMount { from, to } => {
                write!(f, "rename across mount points: {from} -> {to}")
            }
            UnixError::ReadOnly(fs) => write!(f, "read-only filesystem: {fs}"),
        }
    }
}

impl std::error::Error for UnixError {}

type Result<T> = core::result::Result<T, UnixError>;

/// Default quota handed to each process container.
const PROCESS_QUOTA: u64 = 64 * 1024 * 1024;
/// Number of pages in a freshly exec'd heap.
const HEAP_PAGES: u64 = 16;
/// Number of pages in a freshly exec'd stack.
const STACK_PAGES: u64 = 4;
/// Seed for `/dev/urandom` streams.
const DEV_RNG_SEED: u64 = 0x0dd5_eed5;

/// One live (per-thread) view of an open descriptor: the resolved
/// location of its descriptor segment and the vnode serving its I/O.
/// Keyed by `(thread, descriptor segment)` — each process sharing a
/// descriptor keeps its own vnode (capability handles are per-thread),
/// while the shared state (seek position, flags, refs) stays in the
/// descriptor segment.
#[derive(Debug)]
struct OpenFd {
    fd_ref: FdRef,
    vnode: Box<dyn Vnode>,
    /// Snapshot of the descriptor state at open.  The *identity* fields
    /// (kind, target, flags) never change after install, so readiness
    /// polling can consult this copy without re-reading the descriptor
    /// segment; the mutable fields (position, refs) are still read fresh
    /// by [`UnixEnv::with_fd`] on every operation.
    meta: FdState,
}

/// The Unix environment (§5): the untrusted library that makes a HiStar
/// machine feel like Unix.
#[derive(Debug)]
pub struct UnixEnv {
    machine: Machine,
    processes: BTreeMap<Pid, Process>,
    next_pid: Pid,
    users: UserTable,
    vfs: Vfs,
    fs_root: ObjectId,
    init_pid: Pid,
    open_vnodes: BTreeMap<(ObjectId, ObjectId), OpenFd>,
    /// Library bookkeeping: the container each descriptor segment was
    /// created in, so sharing a descriptor across processes resolves in
    /// O(1) instead of scanning every process container.  Purely a cache —
    /// a stale or missing entry falls back to the scan.
    fd_homes: BTreeMap<ObjectId, ObjectId>,
}

impl UnixEnv {
    /// Boots a fresh machine and builds a Unix environment on it, with a
    /// root file system, `/proc` and `/dev`, and an `init` process (PID 1).
    pub fn boot() -> UnixEnv {
        UnixEnv::on_machine(Machine::boot(MachineConfig::default()))
    }

    /// Builds a Unix environment on an existing machine.
    pub fn on_machine(mut machine: Machine) -> UnixEnv {
        let boot_thread = machine.kernel_thread();
        let kroot = machine.kernel().root_container();
        // The root directory and its filesystem.
        let root_fs = {
            let mut ctx = VfsCtx {
                machine: &mut machine,
                thread: boot_thread,
            };
            SegFs::format(&mut ctx, kroot, Label::unrestricted(), "/")
                .expect("creating the root directory cannot fail on a fresh machine")
        };
        let fs_root = root_fs.root_container();
        let mut vfs = Vfs::new(Box::new(root_fs));
        let procfs = vfs.add_filesystem(Box::new(ProcFs::new()));
        vfs.mount("/proc", procfs);
        let devfs = vfs.add_filesystem(Box::new(DevFs::new(DEV_RNG_SEED)));
        vfs.mount("/dev", devfs);
        // The store-backed persistent filesystem: reattached when the
        // store already holds a formatted tree (this machine was
        // recovered from a crash — the write-ahead log has been replayed
        // by the store and the tree is simply mounted again), formatted
        // fresh otherwise.
        let persistfs = {
            let mut ctx = VfsCtx {
                machine: &mut machine,
                thread: boot_thread,
            };
            PersistFs::mount_or_format(&mut ctx, Label::unrestricted())
                .expect("mounting /persist cannot fail on a bootable machine")
        };
        let persistfs = vfs.add_filesystem(Box::new(persistfs));
        vfs.mount("/persist", persistfs);
        let mut env = UnixEnv {
            machine,
            processes: BTreeMap::new(),
            next_pid: 1,
            users: UserTable::new(),
            vfs,
            fs_root,
            init_pid: 1,
            open_vnodes: BTreeMap::new(),
            fd_homes: BTreeMap::new(),
        };
        // PID 1.
        let init = env
            .create_process(boot_thread, None, None, "/sbin/init", Vec::new(), &[])
            .expect("creating init cannot fail on a fresh machine");
        env.init_pid = init;
        // `/metrics`: global counter files are gated by a container
        // labeled with a fresh secrecy category only init owns, so an
        // unprivileged or tainted thread cannot observe whole-machine
        // aggregates; per-task entries reuse each process's own gate.
        {
            let init_thread = env.process(init).expect("init exists at boot").thread;
            let kernel = env.machine.kernel_mut();
            let mr = kernel
                .trap_create_category(init_thread)
                .expect("creating the metrics category cannot fail at boot");
            let gate = kernel
                .trap_container_create(
                    init_thread,
                    kroot,
                    Label::unrestricted().with(mr, Level::L3),
                    "metrics gate",
                    0,
                    PAGE_SIZE,
                )
                .expect("creating the metrics gate cannot fail at boot");
            env.processes
                .get_mut(&init)
                .expect("init exists at boot")
                .extra_ownership
                .push(mr);
            let metricsfs = env.vfs.add_filesystem(Box::new(MetricsFs::new(gate)));
            env.vfs.mount("/metrics", metricsfs);
            // Init was created before the mount existed; refresh its
            // task mirror now.
            env.sync_proc_mirror(init);
        }
        // A store that has never checkpointed cannot recover at all (no
        // superblock); seed one system snapshot at boot so that from here
        // on, `/persist` fsyncs alone decide what a crash preserves.
        if env.machine.store().sequence() == 0 {
            env.machine.snapshot();
        }
        env
    }

    /// Consumes the environment, returning the underlying machine (for
    /// crash/recovery tests: crash the machine, then build a fresh
    /// environment on the recovered one — `/persist` reattaches itself).
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The underlying machine, mutably (benchmarks use this to reach the
    /// store and clock).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The kernel, mutably — shorthand for `machine_mut().kernel_mut()`,
    /// the path every `trap_*` syscall takes.
    pub fn kernel_mut(&mut self) -> &mut histar_kernel::Kernel {
        self.machine.kernel_mut()
    }

    /// The PID of the `init` process.
    pub fn init_pid(&self) -> Pid {
        self.init_pid
    }

    /// The object ID of the root directory container.
    pub fn fs_root(&self) -> ObjectId {
        self.fs_root
    }

    /// The registered users.
    pub fn users(&self) -> &UserTable {
        &self.users
    }

    /// The mount layer, mutably (to mount additional filesystems).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    /// Mounts an existing directory container at a path, as its own
    /// segment filesystem (how daemons export their namespaces).
    /// Remounting the same container reuses its registered filesystem.
    pub fn mount(&mut self, path: &str, container: ObjectId) {
        let fs = match self.vfs.segfs_with_root(container) {
            Some(fs) => fs,
            None => self.vfs.add_filesystem(Box::new(SegFs::new(container))),
        };
        self.vfs.mount(path, fs);
    }

    /// A process's bookkeeping record.
    pub fn process(&self, pid: Pid) -> Result<&Process> {
        self.processes
            .get(&pid)
            .ok_or(UnixError::NoSuchProcess(pid))
    }

    fn process_mut(&mut self, pid: Pid) -> Result<&mut Process> {
        self.processes
            .get_mut(&pid)
            .ok_or(UnixError::NoSuchProcess(pid))
    }

    /// Mutable access to a process's library bookkeeping record.
    ///
    /// Services that legitimately change what a process is (the
    /// authentication service granting a user's categories, a shell
    /// adjusting ownership it received through a gate) update the record
    /// here; the kernel-side state is always changed through system calls
    /// first, so this bookkeeping can never grant privilege by itself.
    pub fn process_record_mut(&mut self, pid: Pid) -> Result<&mut Process> {
        self.process_mut(pid)
    }

    /// Number of live (non-reaped) processes.
    pub fn process_count(&self) -> usize {
        self.processes
            .values()
            .filter(|p| p.state != ProcessState::Reaped)
            .count()
    }

    /// Refreshes one process's `/proc` mirror from the library's
    /// bookkeeping (called on every lifecycle and descriptor change).
    fn sync_proc_mirror(&mut self, pid: Pid) {
        let Some(p) = self.processes.get(&pid) else {
            return;
        };
        let reaped = p.state == ProcessState::Reaped;
        let info = ProcInfo {
            pid,
            parent: p.parent,
            user: p.user.clone(),
            executable: p.executable.clone(),
            state: match p.state {
                ProcessState::Running => "running",
                ProcessState::Zombie(_) => "zombie",
                ProcessState::Reaped => "reaped",
            },
            thread: p.thread,
            process_container: p.process_container,
            internal_container: p.internal_container,
            open_fds: p.fds.open_count() as u64,
        };
        let task = TaskInfo {
            thread: info.thread,
            internal_container: info.internal_container,
        };
        if let Some(procfs) = self.vfs.find_fs_mut::<ProcFs>() {
            if reaped {
                procfs.remove(pid);
            } else {
                procfs.update(info);
            }
        }
        // The same lifecycle events keep `/metrics/tasks` fresh; its
        // entries are gated by the same per-process internal container.
        if let Some(mfs) = self.vfs.find_fs_mut::<MetricsFs>() {
            if reaped {
                mfs.remove_task(pid);
            } else {
                mfs.update_task(pid, task);
            }
        }
    }

    // ----- users -----------------------------------------------------------

    /// Creates a user account: allocates its `ur`/`uw` categories on the
    /// init process's thread (which therefore holds the privilege to grant
    /// them, playing the role of the user's authentication service owner).
    pub fn create_user(&mut self, name: &str) -> Result<User> {
        let init_thread = self.process(self.init_pid)?.thread;
        let kernel = self.machine.kernel_mut();
        let read_cat = kernel.trap_create_category(init_thread)?;
        let write_cat = kernel.trap_create_category(init_thread)?;
        let user = User {
            name: name.to_string(),
            read_cat,
            write_cat,
        };
        let init = self.process_mut(self.init_pid)?;
        init.extra_ownership.push(read_cat);
        init.extra_ownership.push(write_cat);
        self.users.add(user.clone());
        Ok(user)
    }

    /// Looks up a user by name.
    pub fn user(&self, name: &str) -> Result<User> {
        self.users
            .lookup(name)
            .cloned()
            .ok_or_else(|| UnixError::NoSuchUser(name.to_string()))
    }

    // ----- process management (§5.2) ---------------------------------------

    /// Spawns a new process running `path` as a child of `parent`, with the
    /// given user's privileges (if any).  This is the paper's `spawn`: it
    /// builds the process directly rather than going through fork + exec,
    /// which is roughly 3× cheaper.
    pub fn spawn(&mut self, parent: Pid, path: &str, user: Option<&str>) -> Result<Pid> {
        let creator = self.process(parent)?.thread;
        let user = match user {
            Some(name) => Some(self.user(name)?),
            None => None,
        };
        let extra = match &user {
            Some(u) => vec![u.read_cat, u.write_cat],
            None => Vec::new(),
        };
        let pid = self.create_process(
            creator,
            Some(parent),
            user.as_ref().map(|u| u.name.clone()),
            path,
            extra,
            &[],
        )?;
        Ok(pid)
    }

    /// Spawns a new process whose thread additionally owns the given
    /// categories and/or starts out tainted in others — the hook `wrap`
    /// uses to launch the virus scanner tainted in its isolation category.
    ///
    /// The creating (parent) process's thread must own every category it
    /// grants or taints the child with; the kernel's spawn rule
    /// (`L_T ⊑ L_{T'} ⊑ C_{T'} ⊑ C_T`) enforces this.
    pub fn spawn_with_label(
        &mut self,
        parent: Pid,
        path: &str,
        extra_ownership: Vec<Category>,
        extra_taint: Vec<(Category, Level)>,
    ) -> Result<Pid> {
        let creator = self.process(parent)?.thread;
        self.create_process(
            creator,
            Some(parent),
            None,
            path,
            extra_ownership,
            &extra_taint,
        )
    }

    /// Forks a process: the child gets copies of the parent's text, heap and
    /// stack segments and shares its open file descriptors.
    pub fn fork(&mut self, parent: Pid) -> Result<Pid> {
        #[allow(clippy::type_complexity)]
        let (creator, user, executable, cwd, extra, fds): (
            ObjectId,
            Option<String>,
            String,
            String,
            Vec<Category>,
            Vec<(Fd, ObjectId)>,
        ) = {
            let p = self.process(parent)?;
            (
                p.thread,
                p.user.clone(),
                p.executable.clone(),
                p.cwd.clone(),
                p.extra_ownership.clone(),
                p.fds.iter().collect(),
            )
        };
        let child = self.create_process(creator, Some(parent), user, &executable, extra, &[])?;

        // Copy the parent's memory image into the child's segments.
        let parent_proc = self.process(parent)?.clone();
        let child_proc = self.process(child)?.clone();
        for (src, dst) in [
            (parent_proc.text_segment, child_proc.text_segment),
            (parent_proc.heap_segment, child_proc.heap_segment),
            (parent_proc.stack_segment, child_proc.stack_segment),
        ] {
            self.copy_segment_contents(
                parent_proc.thread,
                parent_proc.internal_container,
                src,
                child_proc.thread,
                child_proc.internal_container,
                dst,
            )?;
        }

        // Share file descriptors: the child references the same descriptor
        // segments and each descriptor's reference count goes up by one.
        {
            let mut child_table = FdTable::new();
            for (fd, seg) in &fds {
                child_table.install(*fd, *seg);
            }
            self.process_mut(child)?.fds = child_table;
            self.process_mut(child)?.cwd = cwd;
        }
        for (_, seg) in fds {
            self.adjust_fd_refs(parent, seg, 1)?;
        }
        self.sync_proc_mirror(child);
        Ok(child)
    }

    /// Replaces a process's image with the named executable (the file's
    /// contents become the text segment; heap and stack are reallocated).
    pub fn exec(&mut self, pid: Pid, path: &str) -> Result<()> {
        let image = match self.read_file_as(pid, path) {
            Ok(bytes) => bytes,
            Err(UnixError::NotFound(_)) => format!("#!{path}").into_bytes(),
            Err(e) => return Err(e),
        };
        let (thread, internal, internal_label, aspace) = {
            let p = self.process(pid)?;
            (
                p.thread,
                p.internal_container,
                p.internal_label(),
                p.address_space,
            )
        };
        let kernel = self.machine.kernel_mut();

        // Fresh text/heap/stack segments (the old ones are unreferenced).
        let text = kernel.trap_segment_create(
            thread,
            internal,
            internal_label.clone(),
            image.len().max(1) as u64,
            "text",
        )?;
        kernel.trap_segment_write(thread, ContainerEntry::new(internal, text), 0, &image)?;
        let heap = kernel.trap_segment_create(
            thread,
            internal,
            internal_label.clone(),
            HEAP_PAGES * PAGE_SIZE,
            "heap",
        )?;
        let stack = kernel.trap_segment_create(
            thread,
            internal,
            internal_label,
            STACK_PAGES * PAGE_SIZE,
            "stack",
        )?;

        let old = {
            let p = self.process(pid)?;
            [p.text_segment, p.heap_segment, p.stack_segment]
        };
        let kernel = self.machine.kernel_mut();
        for seg in old {
            let _ = kernel.trap_obj_unref(thread, ContainerEntry::new(internal, seg));
        }
        self.map_process_image(pid, aspace, text, heap, stack)?;
        {
            let p = self.process_mut(pid)?;
            p.text_segment = text;
            p.heap_segment = heap;
            p.stack_segment = stack;
            p.executable = path.to_string();
        }
        self.sync_proc_mirror(pid);
        Ok(())
    }

    /// Terminates a process with the given status: the exit status is
    /// written to the (externally readable) exit segment and the thread is
    /// halted.  Resources are reclaimed when the parent waits.
    pub fn exit(&mut self, pid: Pid, status: ExitStatus) -> Result<()> {
        let (thread, process_container, exit_segment, fds): (
            ObjectId,
            ObjectId,
            ObjectId,
            Vec<(Fd, ObjectId)>,
        ) = {
            let p = self.process(pid)?;
            (
                p.thread,
                p.process_container,
                p.exit_segment,
                p.fds.iter().collect(),
            )
        };
        for (fd, _) in fds {
            let _ = self.close(pid, fd);
        }
        let kernel = self.machine.kernel_mut();
        kernel.trap_segment_write(
            thread,
            ContainerEntry::new(process_container, exit_segment),
            0,
            &status.encode(),
        )?;
        kernel.trap_self_halt(thread)?;
        self.process_mut(pid)?.state = ProcessState::Zombie(status);
        self.sync_proc_mirror(pid);
        Ok(())
    }

    /// Waits for a child to exit, returning its status and reclaiming its
    /// resources.  Returns [`UnixError::StillRunning`] if it has not exited.
    pub fn wait(&mut self, parent: Pid, child: Pid) -> Result<ExitStatus> {
        let parent_thread = self.process(parent)?.thread;
        let (child_container, exit_segment, state) = {
            let c = self.process(child)?;
            (c.process_container, c.exit_segment, c.state)
        };
        match state {
            ProcessState::Running => return Err(UnixError::StillRunning(child)),
            ProcessState::Reaped => return Err(UnixError::NoSuchProcess(child)),
            ProcessState::Zombie(_) => {}
        }
        // Read the exit status through the kernel (checks that the parent
        // may observe the exit segment, which anyone may — {pw 0, 1}).
        let kernel = self.machine.kernel_mut();
        let bytes = kernel.trap_segment_read(
            parent_thread,
            ContainerEntry::new(child_container, exit_segment),
            0,
            8,
        )?;
        let status = ExitStatus::decode(&bytes).ok_or(UnixError::Corrupt("exit segment"))?;
        // Reclaim: unreference the child's process container from the
        // kernel root, which drops the whole subtree.
        let kroot = kernel.root_container();
        kernel.trap_obj_unref(parent_thread, ContainerEntry::new(kroot, child_container))?;
        let child_thread = self.process(child)?.thread;
        self.process_mut(child)?.state = ProcessState::Reaped;
        self.open_vnodes.retain(|(t, _), _| *t != child_thread);
        self.sync_proc_mirror(child);
        Ok(status)
    }

    /// Sends a signal to a process by invoking its signal gate, which alerts
    /// one of the process's threads (§5.6).
    pub fn kill(&mut self, sender: Pid, target: Pid, signal: u64) -> Result<()> {
        let sender_thread = self.process(sender)?.thread;
        let (target_container, signal_gate, target_thread) = {
            let t = self.process(target)?;
            (t.process_container, t.signal_gate, t.thread)
        };
        // Invoking the signal gate requires passing its clearance check; we
        // then deliver the alert with the privilege the gate carries.
        let kernel = self.machine.kernel_mut();
        let tl = kernel.thread_label(sender_thread)?;
        let tc = kernel.thread_clearance(sender_thread)?;
        let gate_entry = ContainerEntry::new(target_container, signal_gate);
        let glabel = kernel.trap_obj_get_label(sender_thread, gate_entry)?;
        let requested = tl.ownership_union(&glabel);
        kernel.trap_gate_enter(sender_thread, gate_entry, requested, tc.clone(), tl.clone())?;
        // Running in the gate's privilege, alert the target thread.
        kernel.trap_thread_alert(
            sender_thread,
            ContainerEntry::new(target_container, target_thread),
            signal,
        )?;
        // Return to the sender's own label (it owned everything it had).
        kernel.trap_self_set_label(sender_thread, tl)?;
        kernel.trap_self_set_clearance(sender_thread, tc)?;
        Ok(())
    }

    /// Takes the next pending signal for a process, if any.
    pub fn take_signal(&mut self, pid: Pid) -> Result<Option<u64>> {
        let thread = self.process(pid)?.thread;
        let alert = self.machine.kernel_mut().trap_self_take_alert(thread)?;
        Ok(alert.map(|a| a.code))
    }

    // ----- internal process construction ------------------------------------

    fn create_process(
        &mut self,
        creator: ObjectId,
        parent: Option<Pid>,
        user: Option<String>,
        executable: &str,
        extra_ownership: Vec<Category>,
        extra_taint: &[(Category, Level)],
    ) -> Result<Pid> {
        let kroot = self.machine.kernel().root_container();
        let kernel = self.machine.kernel_mut();

        let saved_label = kernel.thread_label(creator)?;
        let saved_clearance = kernel.thread_clearance(creator)?;

        // Allocate the process's secrecy and integrity categories.
        let pr = kernel.trap_create_category(creator)?;
        let pw = kernel.trap_create_category(creator)?;

        // A process launched pre-tainted (e.g. the virus scanner tainted
        // `v 3`) needs that taint on everything it must be able to write:
        // its thread, its private containers and segments, and its exit
        // segment (reading the exit status then requires owning the taint
        // category, which is the §5.8 "explicit leak" decision left to the
        // category's owner).
        let mut external_builder = Label::builder().set(pw, Level::L0);
        let mut internal_builder = Label::builder().set(pr, Level::L3).set(pw, Level::L0);
        let mut thread_label_builder = Label::builder().own(pr).own(pw);
        let mut clearance_builder = Label::builder()
            .set(pr, Level::L3)
            .set(pw, Level::L3)
            .default_level(Level::L2);
        for &c in &extra_ownership {
            thread_label_builder = thread_label_builder.own(c);
            clearance_builder = clearance_builder.set(c, Level::L3);
        }
        for &(c, lvl) in extra_taint {
            thread_label_builder = thread_label_builder.set(c, lvl);
            external_builder = external_builder.set(c, lvl);
            internal_builder = internal_builder.set(c, lvl);
            clearance_builder = clearance_builder.set(c, Level::L3);
        }
        let external_label = external_builder.build();
        let internal_label = internal_builder.build();
        let thread_label = thread_label_builder.build();
        let thread_clearance = clearance_builder.build();

        // Process container and internal container (Figure 6).
        let process_container = kernel.trap_container_create(
            creator,
            kroot,
            external_label.clone(),
            &format!("proc {executable}"),
            0,
            PROCESS_QUOTA,
        )?;
        let internal_container = kernel.trap_container_create(
            creator,
            process_container,
            internal_label.clone(),
            "internal",
            0,
            PROCESS_QUOTA / 2,
        )?;
        // Exit status segment, readable by anyone.
        let exit_segment = kernel.trap_segment_create(
            creator,
            process_container,
            external_label,
            8,
            "exit status",
        )?;
        // The process's thread.
        let thread = kernel.trap_thread_create(
            creator,
            process_container,
            thread_label.clone(),
            thread_clearance,
            0,
            &format!("thread {executable}"),
        )?;
        // Signal gate, invocable by holders of the user's write category (or
        // anyone, for user-less system processes).  A pre-tainted process's
        // gate carries the taint, so its clearance must admit it.
        let mut signal_gate_clearance =
            match (&user, self.users.lookup(user.as_deref().unwrap_or(""))) {
                (Some(_), Some(u)) => Label::builder()
                    .set(u.write_cat, Level::L0)
                    .default_level(Level::L2)
                    .build(),
                _ => Label::default_clearance(),
            };
        for &(c, lvl) in extra_taint {
            signal_gate_clearance = signal_gate_clearance.with(c, lvl);
        }
        let signal_gate = kernel.trap_gate_create(
            creator,
            process_container,
            thread_label.clone(),
            signal_gate_clearance,
            None,
            0,
            vec![],
            "signal gate",
        )?;

        // Address space and the initial memory image.
        let address_space = kernel.trap_as_create(
            creator,
            internal_container,
            internal_label.clone(),
            "address space",
        )?;
        let text = kernel.trap_segment_create(
            creator,
            internal_container,
            internal_label.clone(),
            PAGE_SIZE,
            "text",
        )?;
        let heap = kernel.trap_segment_create(
            creator,
            internal_container,
            internal_label.clone(),
            HEAP_PAGES * PAGE_SIZE,
            "heap",
        )?;
        let stack = kernel.trap_segment_create(
            creator,
            internal_container,
            internal_label,
            STACK_PAGES * PAGE_SIZE,
            "stack",
        )?;

        // The creator drops the new process's categories again: from here on
        // only the new process's own thread owns them.
        kernel.trap_self_set_label(creator, saved_label)?;
        kernel.trap_self_set_clearance(creator, saved_clearance)?;

        let pid = self.next_pid;
        self.next_pid += 1;
        let cwd = parent
            .and_then(|p| self.processes.get(&p))
            .map(|p| p.cwd.clone())
            .unwrap_or_else(|| "/".to_string());
        let process = Process {
            pid,
            parent,
            user,
            read_cat: pr,
            write_cat: pw,
            process_container,
            internal_container,
            thread,
            address_space,
            exit_segment,
            signal_gate,
            text_segment: text,
            heap_segment: heap,
            stack_segment: stack,
            executable: executable.to_string(),
            fds: FdTable::new(),
            cwd,
            state: ProcessState::Running,
            extra_ownership,
            signal_handlers: Vec::new(),
        };
        self.processes.insert(pid, process);
        self.map_process_image(pid, address_space, text, heap, stack)?;
        self.sync_proc_mirror(pid);
        Ok(pid)
    }

    /// Installs the standard text/heap/stack mappings and switches the
    /// process's thread onto its address space.
    fn map_process_image(
        &mut self,
        pid: Pid,
        address_space: ObjectId,
        text: ObjectId,
        heap: ObjectId,
        stack: ObjectId,
    ) -> Result<()> {
        let (thread, internal) = {
            let p = self.process(pid)?;
            (p.thread, p.internal_container)
        };
        let kernel = self.machine.kernel_mut();
        let as_entry = ContainerEntry::new(internal, address_space);
        let mappings = [
            (0x0040_0000u64, text, MappingFlags::rx(), 16u64),
            (0x1000_0000u64, heap, MappingFlags::rw(), HEAP_PAGES),
            (0x7fff_0000u64, stack, MappingFlags::rw(), STACK_PAGES),
        ];
        for (va, seg, flags, npages) in mappings {
            kernel.trap_as_map(
                thread,
                as_entry,
                Mapping {
                    va,
                    segment: ContainerEntry::new(internal, seg),
                    offset: 0,
                    npages,
                    flags,
                },
            )?;
        }
        kernel.trap_self_set_as(thread, as_entry)?;
        Ok(())
    }

    fn copy_segment_contents(
        &mut self,
        src_thread: ObjectId,
        src_container: ObjectId,
        src: ObjectId,
        dst_thread: ObjectId,
        dst_container: ObjectId,
        dst: ObjectId,
    ) -> Result<()> {
        let kernel = self.machine.kernel_mut();
        let len = kernel.trap_segment_len(src_thread, ContainerEntry::new(src_container, src))?;
        if len == 0 {
            return Ok(());
        }
        let data = kernel.trap_segment_read(
            src_thread,
            ContainerEntry::new(src_container, src),
            0,
            len,
        )?;
        kernel.trap_segment_write(
            dst_thread,
            ContainerEntry::new(dst_container, dst),
            0,
            &data,
        )?;
        Ok(())
    }

    // ----- descriptor plumbing ----------------------------------------------

    /// Finds a container entry through which `thread` can name a (possibly
    /// shared) descriptor segment.  After `fork`, a descriptor segment
    /// created by the parent is still linked only in the parent's process
    /// container, so the child names it through that container instead.
    fn locate_fd_segment(
        &mut self,
        thread: ObjectId,
        preferred_container: ObjectId,
        fd_seg: ObjectId,
    ) -> Result<ContainerEntry> {
        let home = self.fd_homes.get(&fd_seg).copied();
        let kernel = self.machine.kernel_mut();
        if let Some(home) = home {
            let entry = ContainerEntry::new(home, fd_seg);
            if kernel.trap_segment_len(thread, entry).is_ok() {
                return Ok(entry);
            }
        }
        let entry = ContainerEntry::new(preferred_container, fd_seg);
        if kernel.trap_segment_len(thread, entry).is_ok() {
            return Ok(entry);
        }
        for p in self.processes.values() {
            let cand = ContainerEntry::new(p.process_container, fd_seg);
            if kernel.trap_segment_len(thread, cand).is_ok() {
                return Ok(cand);
            }
        }
        Err(UnixError::Corrupt("shared fd segment not reachable"))
    }

    /// Ensures a live `(thread, descriptor segment)` cache entry exists:
    /// resolves the descriptor segment's location (caching a capability
    /// handle for it) and rebuilds the vnode from the stored state if
    /// this thread has not touched the descriptor before.
    fn ensure_open_fd(
        &mut self,
        thread: ObjectId,
        container: ObjectId,
        seg: ObjectId,
    ) -> Result<()> {
        if self.open_vnodes.contains_key(&(thread, seg)) {
            return Ok(());
        }
        let entry = self.locate_fd_segment(thread, container, seg)?;
        let handle = self
            .machine
            .kernel_mut()
            .handle_open_reuse(thread, entry)
            .ok();
        let fd_ref = FdRef { seg, entry, handle };
        let state = {
            let mut ctx = VfsCtx {
                machine: &mut self.machine,
                thread,
            };
            vnode::read_fd_state(&mut ctx, &fd_ref)?
        };
        let vnode = {
            let mut ctx = VfsCtx {
                machine: &mut self.machine,
                thread,
            };
            self.vfs.vnode_from_state(&mut ctx, &state)?
        };
        self.open_vnodes.insert(
            (thread, seg),
            OpenFd {
                fd_ref,
                vnode,
                meta: state,
            },
        );
        Ok(())
    }

    /// Runs one descriptor operation: reads the (shared) descriptor state
    /// once, then dispatches to the vnode.
    fn with_fd<T>(
        &mut self,
        pid: Pid,
        fd: Fd,
        f: impl FnOnce(&mut VfsCtx, &FdRef, &mut dyn Vnode, &FdState) -> Result<T>,
    ) -> Result<T> {
        let (thread, container, seg) = {
            let p = self.process(pid)?;
            let seg = p.fds.get(fd).ok_or(UnixError::BadFd(fd))?;
            (p.thread, p.process_container, seg)
        };
        self.ensure_open_fd(thread, container, seg)?;
        let ofd = self
            .open_vnodes
            .get_mut(&(thread, seg))
            .expect("ensure_open_fd installed the entry");
        let mut ctx = VfsCtx {
            machine: &mut self.machine,
            thread,
        };
        // The descriptor-segment handle is primed on first I/O (not at
        // open), so open/close-only descriptors never pay for one.
        if ofd.fd_ref.handle.is_none() {
            ofd.fd_ref.handle = ctx
                .kernel()
                .handle_open_reuse(thread, ofd.fd_ref.entry)
                .ok();
        }
        let state = vnode::read_fd_state(&mut ctx, &ofd.fd_ref)?;
        f(&mut ctx, &ofd.fd_ref, ofd.vnode.as_mut(), &state)
    }

    /// Creates the descriptor segment for `state` and installs it in the
    /// process's table, seeding the vnode cache when the opener already
    /// built one.
    fn install_fd(
        &mut self,
        pid: Pid,
        state: FdState,
        vnode: Option<Box<dyn Vnode>>,
    ) -> Result<Fd> {
        let (thread, container) = {
            let p = self.process(pid)?;
            (p.thread, p.process_container)
        };
        let kernel = self.machine.kernel_mut();
        // The descriptor segment carries the opening thread's taint (but not
        // its ownership) so that tainted processes can still maintain their
        // own descriptor state.
        let fd_label = kernel.thread_label(thread)?.drop_ownership(Level::L1);
        let fd_seg =
            kernel.trap_segment_create(thread, container, fd_label, 0, "file descriptor")?;
        let entry = ContainerEntry::new(container, fd_seg);
        kernel.trap_segment_write(thread, entry, 0, &state.encode())?;
        self.fd_homes.insert(fd_seg, container);
        if let Some(vnode) = vnode {
            self.open_vnodes.insert(
                (thread, fd_seg),
                OpenFd {
                    fd_ref: FdRef {
                        seg: fd_seg,
                        entry,
                        handle: None,
                    },
                    vnode,
                    meta: state,
                },
            );
        }
        let fd = self.process_mut(pid)?.fds.allocate(fd_seg);
        self.sync_proc_mirror(pid);
        Ok(fd)
    }

    /// Adjusts a shared descriptor's reference count on behalf of `pid`.
    fn adjust_fd_refs(&mut self, pid: Pid, seg: ObjectId, delta: i64) -> Result<FdState> {
        let (thread, container) = {
            let p = self.process(pid)?;
            (p.thread, p.process_container)
        };
        let entry = self.locate_fd_segment(thread, container, seg)?;
        let fd_ref = FdRef {
            seg,
            entry,
            handle: None,
        };
        let mut ctx = VfsCtx {
            machine: &mut self.machine,
            thread,
        };
        vnode::update_fd_state(&mut ctx, &fd_ref, |st| {
            if delta < 0 {
                st.refs = st.refs.saturating_sub(delta.unsigned_abs() as u32);
            } else {
                st.refs += delta as u32;
            }
        })
    }

    // ----- descriptor operations (thin wrappers over the vnode layer) -------

    /// Creates (or opens) a file and returns a descriptor for it.
    pub fn open(&mut self, pid: Pid, path: &str, flags: OpenFlags) -> Result<Fd> {
        self.open_labeled(pid, path, flags, None)
    }

    /// Creates (or opens) a file with an explicit label for newly created
    /// files (e.g. `{ur 3, uw 0, 1}` for a user's private data).
    pub fn open_labeled(
        &mut self,
        pid: Pid,
        path: &str,
        flags: OpenFlags,
        label: Option<Label>,
    ) -> Result<Fd> {
        let (thread, cwd) = {
            let p = self.process(pid)?;
            (p.thread, p.cwd.clone())
        };
        let (state, vnode) = {
            let mut ctx = VfsCtx {
                machine: &mut self.machine,
                thread,
            };
            self.vfs.open(&mut ctx, &cwd, path, flags, label)?
        };
        self.install_fd(pid, state, Some(vnode))
    }

    /// Closes a descriptor; the descriptor segment is dropped when the last
    /// process sharing it closes it.
    ///
    /// Closing must never require re-opening the vnode: an inherited
    /// `/proc` descriptor, for example, is rebuilt through a label check
    /// the closing process may not pass — but dropping a descriptor is
    /// always allowed.  The refcount is adjusted directly on the
    /// descriptor segment; a vnode is only consulted (and built on
    /// demand, best-effort) for the last-close hook.
    pub fn close(&mut self, pid: Pid, fd: Fd) -> Result<()> {
        let (thread, container, seg) = {
            let p = self.process_mut(pid)?;
            let seg = p.fds.remove(fd).ok_or(UnixError::BadFd(fd))?;
            (p.thread, p.process_container, seg)
        };
        let cached = self.open_vnodes.remove(&(thread, seg));
        let fd_ref = match &cached {
            Some(ofd) => ofd.fd_ref,
            None => {
                let entry = self.locate_fd_segment(thread, container, seg)?;
                FdRef {
                    seg,
                    entry,
                    handle: None,
                }
            }
        };
        let mut ctx = VfsCtx {
            machine: &mut self.machine,
            thread,
        };
        let state =
            vnode::update_fd_state(&mut ctx, &fd_ref, |st| st.refs = st.refs.saturating_sub(1))?;
        let mut vnode = match cached {
            Some(ofd) => Some(ofd.vnode),
            // Only the last-close hook needs a vnode; building one can
            // legitimately fail (label-gated /proc state), in which case
            // there is nothing to clean up anyway.
            None if state.refs == 0 => self.vfs.vnode_from_state(&mut ctx, &state).ok(),
            None => None,
        };
        if let Some(vnode) = vnode.as_mut() {
            if state.refs == 0 {
                let _ = vnode.on_last_close(&mut ctx, &state);
            }
            vnode.release(&mut ctx);
        }
        if let Some(h) = fd_ref.handle {
            ctx.kernel().handle_close(thread, h);
        }
        if state.refs == 0 {
            self.fd_homes.remove(&seg);
        }
        self.sync_proc_mirror(pid);
        Ok(())
    }

    /// Duplicates a descriptor (both numbers share the same descriptor
    /// segment, hence offset and flags).
    pub fn dup(&mut self, pid: Pid, fd: Fd) -> Result<Fd> {
        let seg = {
            let p = self.process(pid)?;
            p.fds.get(fd).ok_or(UnixError::BadFd(fd))?
        };
        self.adjust_fd_refs(pid, seg, 1)?;
        let new_fd = self.process_mut(pid)?.fds.allocate(seg);
        self.sync_proc_mirror(pid);
        Ok(new_fd)
    }

    /// Reads up to `len` bytes from a descriptor.
    pub fn read(&mut self, pid: Pid, fd: Fd, len: u64) -> Result<Vec<u8>> {
        self.with_fd(pid, fd, |ctx, fd_ref, vnode, state| {
            vnode.read(ctx, fd_ref, state, len)
        })
    }

    /// Writes bytes to a descriptor, returning the number written.
    pub fn write(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> Result<u64> {
        self.with_fd(pid, fd, |ctx, fd_ref, vnode, state| {
            vnode.write(ctx, fd_ref, state, data)
        })
    }

    /// Repositions a file descriptor (absolute seek).
    pub fn lseek(&mut self, pid: Pid, fd: Fd, position: u64) -> Result<()> {
        self.with_fd(pid, fd, |ctx, fd_ref, vnode, _state| {
            vnode.seek(ctx, fd_ref, position)
        })
    }

    /// `stat` on an open descriptor.
    pub fn fstat(&mut self, pid: Pid, fd: Fd) -> Result<FileStat> {
        self.with_fd(pid, fd, |ctx, _fd_ref, vnode, state| vnode.stat(ctx, state))
    }

    /// Creates a pipe, returning `(read end, write end)`.
    pub fn pipe(&mut self, pid: Pid) -> Result<(Fd, Fd)> {
        let (thread, container) = {
            let p = self.process(pid)?;
            (p.thread, p.process_container)
        };
        let (read_state, write_state) = {
            let mut ctx = VfsCtx {
                machine: &mut self.machine,
                thread,
            };
            create_pipe(&mut ctx, container)?
        };
        let read_fd = self.install_fd(pid, read_state, None)?;
        let write_fd = self.install_fd(pid, write_state, None)?;
        Ok((read_fd, write_fd))
    }

    // ----- blocking I/O and readiness ---------------------------------------
    //
    // Real `read(2)` semantics on top of the kernel's one-shot readiness
    // watches: an operation that cannot make progress registers a watch on
    // the descriptor's backing segment and returns `None`, the caller's
    // thread program issues `Step::Block`, and the scheduler parks the
    // thread — zero quanta are charged until a peer's write (or hangup)
    // pushes an `ObjectReady` completion and wakes it.

    /// Installs an externally built descriptor (e.g. a socket handed over
    /// by netd) into a process's table.  The descriptor segment is created
    /// in the process's container as usual.
    pub fn install_descriptor(&mut self, pid: Pid, state: FdState) -> Result<Fd> {
        self.install_fd(pid, state, None)
    }

    /// Shares an open descriptor with another process (the launcher →
    /// worker handoff): bumps the shared descriptor segment's refcount and
    /// allocates a number for it in the target's table.  Both processes
    /// now see the same seek position and flags, exactly like `fork`.
    pub fn share_fd(&mut self, from: Pid, fd: Fd, to: Pid) -> Result<Fd> {
        let seg = {
            let p = self.process(from)?;
            p.fds.get(fd).ok_or(UnixError::BadFd(fd))?
        };
        self.adjust_fd_refs(from, seg, 1)?;
        let new_fd = self.process_mut(to)?.fds.allocate(seg);
        self.sync_proc_mirror(to);
        Ok(new_fd)
    }

    /// Reads a descriptor's current state (one segment read, no vnode).
    pub fn fd_snapshot(&mut self, pid: Pid, fd: Fd) -> Result<FdState> {
        let (thread, container, seg) = {
            let p = self.process(pid)?;
            let seg = p.fds.get(fd).ok_or(UnixError::BadFd(fd))?;
            (p.thread, p.process_container, seg)
        };
        let entry = self.locate_fd_segment(thread, container, seg)?;
        let fd_ref = FdRef {
            seg,
            entry,
            handle: None,
        };
        let mut ctx = VfsCtx {
            machine: &mut self.machine,
            thread,
        };
        vnode::read_fd_state(&mut ctx, &fd_ref)
    }

    /// Blocking read: `Ok(Some(bytes))` on progress (empty = EOF),
    /// `Ok(None)` when the descriptor has no data yet — a readiness watch
    /// has been registered and the caller must block the thread and retry
    /// after the wake-up.  `O_NONBLOCK` descriptors surface
    /// [`UnixError::WouldBlock`] instead of parking.
    pub fn read_blocking(&mut self, pid: Pid, fd: Fd, len: u64) -> Result<Option<Vec<u8>>> {
        let thread = self.process(pid)?.thread;
        // Drain any stale wake-up notifications so this attempt's watch
        // (if needed) is the only one outstanding.
        self.machine.kernel_mut().reap_completions(thread);
        self.with_fd(pid, fd, |ctx, fd_ref, vnode, state| {
            match vnode.read(ctx, fd_ref, state, len) {
                Ok(data) => Ok(Some(data)),
                Err(UnixError::WouldBlock) if state.flags & FLAG_NONBLOCK == 0 => {
                    let watch = ContainerEntry::new(state.target_container, state.target);
                    let thread = ctx.thread;
                    ctx.kernel().trap_segment_watch(thread, watch)?;
                    Ok(None)
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Blocking write: `Ok(Some(n))` when at least one byte was accepted,
    /// `Ok(None)` when the ring is full — a readiness watch has been
    /// registered (the reader's next drain wakes the writer) and the
    /// caller must block the thread and retry.
    pub fn write_blocking(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> Result<Option<u64>> {
        let thread = self.process(pid)?.thread;
        self.machine.kernel_mut().reap_completions(thread);
        self.with_fd(pid, fd, |ctx, fd_ref, vnode, state| {
            match vnode.write(ctx, fd_ref, state, data) {
                Ok(n) => Ok(Some(n)),
                Err(UnixError::WouldBlock) if state.flags & FLAG_NONBLOCK == 0 => {
                    let watch = ContainerEntry::new(state.target_container, state.target);
                    let thread = ctx.thread;
                    ctx.kernel().trap_segment_watch(thread, watch)?;
                    Ok(None)
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Readiness poll over a set of descriptors: one batched submission of
    /// ring-header reads, one `bool` per descriptor.  Descriptors without
    /// a blocking discipline (files, devices) always report ready.
    pub fn poll(&mut self, pid: Pid, fds: &[Fd]) -> Result<Vec<bool>> {
        self.poll_inner(pid, fds, false)
            .map(|r| r.expect("non-registering poll always returns a result"))
    }

    /// Blocking poll: like [`UnixEnv::poll`], but when *nothing* is ready
    /// it arms a one-shot readiness watch on every polled descriptor (one
    /// batched submission) and returns `None`; the caller blocks the
    /// thread and re-polls after the wake-up.  This is how one launcher
    /// thread multiplexes a listening socket and thousands of idle
    /// connections without burning a quantum on any of them.
    pub fn poll_block(&mut self, pid: Pid, fds: &[Fd]) -> Result<Option<Vec<bool>>> {
        let thread = self.process(pid)?.thread;
        self.machine.kernel_mut().reap_completions(thread);
        self.poll_inner(pid, fds, true)
    }

    fn poll_inner(&mut self, pid: Pid, fds: &[Fd], register: bool) -> Result<Option<Vec<bool>>> {
        let (thread, container, segs) = {
            let p = self.process(pid)?;
            let segs = fds
                .iter()
                .map(|&fd| p.fds.get(fd).ok_or(UnixError::BadFd(fd)))
                .collect::<Result<Vec<_>>>()?;
            (p.thread, p.process_container, segs)
        };
        for &seg in &segs {
            self.ensure_open_fd(thread, container, seg)?;
        }
        // Probe targets from the cached descriptor metadata: the probe for
        // each blocking descriptor is a read of its ring header, and all
        // probes go down in ONE submission batch.
        let probes: Vec<Option<(ContainerEntry, u64, u64, bool)>> = segs
            .iter()
            .map(|&seg| {
                let meta = &self.open_vnodes[&(thread, seg)].meta;
                vnode::readiness_probe(meta).map(|(header, capacity, write_side)| {
                    (
                        ContainerEntry::new(meta.target_container, meta.target),
                        header,
                        capacity,
                        write_side,
                    )
                })
            })
            .collect();
        let calls: Vec<Syscall> = probes
            .iter()
            .flatten()
            .map(|&(entry, header, _, _)| Syscall::SegmentRead {
                entry,
                offset: header,
                len: vnode::PIPE_HEADER,
            })
            .collect();
        let results = self.machine.kernel_mut().submit_calls(thread, calls);
        let mut it = results.into_iter();
        let mut ready = Vec::with_capacity(fds.len());
        for probe in &probes {
            match probe {
                None => ready.push(true),
                Some((_, _, capacity, write_side)) => {
                    let (capacity, write_side) = (*capacity, *write_side);
                    match it.next().expect("one result per probe") {
                        Ok(SyscallResult::Bytes(b)) => {
                            ready.push(vnode::readiness_from_header(&b, capacity, write_side));
                        }
                        Ok(_) => return Err(UnixError::Corrupt("poll probe result")),
                        Err(e) => return Err(UnixError::Kernel(e)),
                    }
                }
            }
        }
        if !register || ready.iter().any(|&r| r) {
            return Ok(Some(ready));
        }
        // Nothing ready: arm one-shot watches on every probe target as a
        // second single batch, then tell the caller to park.  Probe and
        // watch both run inside the calling thread's quantum, so no peer
        // can slip a write between them — there is no lost-wakeup window.
        let watches: Vec<Syscall> = probes
            .iter()
            .flatten()
            .map(|&(entry, ..)| Syscall::SegmentWatch { entry })
            .collect();
        for r in self.machine.kernel_mut().submit_calls(thread, watches) {
            r.map_err(UnixError::Kernel)?;
        }
        Ok(None)
    }

    // ----- path operations (thin wrappers over the VFS) ---------------------

    /// Creates a directory at `path` with an optional explicit label.
    pub fn mkdir(&mut self, pid: Pid, path: &str, label: Option<Label>) -> Result<ObjectId> {
        let node = self.vfs_op(pid, |vfs, ctx, cwd| vfs.mkdir(ctx, cwd, path, label))?;
        Ok(ObjectId::from_raw(node))
    }

    /// `stat` on a path.
    pub fn stat(&mut self, pid: Pid, path: &str) -> Result<FileStat> {
        self.vfs_op(pid, |vfs, ctx, cwd| vfs.stat(ctx, cwd, path))
    }

    /// Lists a directory.
    pub fn readdir(&mut self, pid: Pid, path: &str) -> Result<Vec<DirEntry>> {
        self.vfs_op(pid, |vfs, ctx, cwd| vfs.readdir(ctx, cwd, path))
    }

    /// Removes a file (or empty directory entry) from its directory.
    pub fn unlink(&mut self, pid: Pid, path: &str) -> Result<()> {
        self.vfs_op(pid, |vfs, ctx, cwd| vfs.unlink(ctx, cwd, path))
    }

    /// Renames a file.  Both paths must live in the same mounted
    /// filesystem (and, as in real HiStar, the same directory — renames
    /// are atomic under the directory mutex); a rename across mount
    /// points fails with [`UnixError::CrossMount`] without touching
    /// either directory.
    pub fn rename(&mut self, pid: Pid, from: &str, to: &str) -> Result<()> {
        self.vfs_op(pid, |vfs, ctx, cwd| vfs.rename(ctx, cwd, from, to))
    }

    /// Changes a process's working directory.
    pub fn chdir(&mut self, pid: Pid, path: &str) -> Result<()> {
        let comps = {
            let p = self.process(pid)?;
            Vfs::normalize(&p.cwd, path)
        };
        self.vfs_op(pid, |vfs, ctx, cwd| {
            vfs.resolve_dir(ctx, cwd, path).map(|_| ())
        })?;
        self.process_mut(pid)?.cwd = join_path(&comps);
        Ok(())
    }

    /// A process's current working directory.
    pub fn getcwd(&self, pid: Pid) -> Result<String> {
        Ok(self.process(pid)?.cwd.clone())
    }

    /// Pre-reserves quota for a directory so that processes which cannot
    /// modify the directory's ancestors (e.g. network-tainted downloaders)
    /// can still grow files inside it.  The calling process must be able to
    /// write the directory and its ancestors — this is the §5.8 observation
    /// that quota adjustments for tainted work must be arranged by an owner
    /// ahead of time.
    pub fn reserve_quota(&mut self, pid: Pid, path: &str, bytes: u64) -> Result<()> {
        self.vfs_op(pid, |vfs, ctx, cwd| {
            let (fs, dir) = vfs.resolve_dir(ctx, cwd, path)?;
            if vfs
                .filesystem_mut(fs)
                .as_any_mut()
                .downcast_mut::<SegFs>()
                .is_none()
            {
                return Err(UnixError::Unsupported(
                    "quota reservation on a pseudo filesystem",
                ));
            }
            ensure_quota(ctx, ObjectId::from_raw(dir), bytes)
        })
    }

    fn vfs_op<T>(
        &mut self,
        pid: Pid,
        f: impl FnOnce(&mut Vfs, &mut VfsCtx, &str) -> Result<T>,
    ) -> Result<T> {
        let (thread, cwd) = {
            let p = self.process(pid)?;
            (p.thread, p.cwd.clone())
        };
        let mut ctx = VfsCtx {
            machine: &mut self.machine,
            thread,
        };
        f(&mut self.vfs, &mut ctx, &cwd)
    }

    // ----- higher-level file helpers ------------------------------------------

    /// Reads an entire file into memory on behalf of a process.
    pub fn read_file_as(&mut self, pid: Pid, path: &str) -> Result<Vec<u8>> {
        let fd = self.open(pid, path, OpenFlags::read_only())?;
        let stat = self.fstat(pid, fd)?;
        let data = self.read(pid, fd, stat.len)?;
        self.close(pid, fd)?;
        Ok(data)
    }

    /// Writes an entire file (creating or truncating it) on behalf of a
    /// process, with an optional label for newly created files.
    pub fn write_file_as(
        &mut self,
        pid: Pid,
        path: &str,
        data: &[u8],
        label: Option<Label>,
    ) -> Result<()> {
        let fd = self.open_labeled(pid, path, OpenFlags::write_create(), label)?;
        self.write(pid, fd, data)?;
        self.close(pid, fd)?;
        Ok(())
    }

    // ----- durability (§7.1) -----------------------------------------------------

    /// `fsync`: makes one file (and the directory naming it) durable.  Under
    /// the single-level store this serializes the kernel objects into the
    /// store; with the per-operation policy that is a sequential append to
    /// the write-ahead log.
    pub fn fsync_path(&mut self, pid: Pid, path: &str) -> Result<()> {
        self.vfs_op(pid, |vfs, ctx, cwd| vfs.fsync_path(ctx, cwd, path))
    }

    /// `fsync` over several paths at once — the group-commit entry point.
    /// Store-backed paths are resolved to their record keys, deduplicated,
    /// and synced with ONE `persist_sync`, so the whole group shares a
    /// single WAL frame and is acked together once that frame is durable.
    /// Paths on filesystems without a store-backed sync fall back to an
    /// individual `fsync` each.
    pub fn fsync_paths(&mut self, pid: Pid, paths: &[&str]) -> Result<()> {
        self.vfs_op(pid, |vfs, ctx, cwd| {
            let mut keys: Vec<u64> = Vec::new();
            let mut seen = std::collections::BTreeSet::new();
            for path in paths {
                match vfs.sync_keys_path(ctx, cwd, path)? {
                    Some(path_keys) => {
                        keys.extend(path_keys.into_iter().filter(|k| seen.insert(*k)));
                    }
                    None => vfs.fsync_path(ctx, cwd, path)?,
                }
            }
            if !keys.is_empty() {
                let thread = ctx.thread;
                ctx.kernel().trap_persist_sync(thread, keys)?;
            }
            Ok(())
        })
    }

    /// `fdatasync` limited to specific pages of an open file: flushes those
    /// pages of the backing segment in place, without writing any metadata —
    /// the fast path for random writes to large existing files.
    pub fn fsync_pages(&mut self, pid: Pid, fd: Fd, pages: &[u64]) -> Result<()> {
        self.with_fd(pid, fd, |ctx, _fd_ref, vnode, state| {
            vnode.fsync_pages(ctx, state, pages)
        })
    }

    /// Group sync: one system-wide snapshot covering everything (the
    /// single-level store's whole-machine checkpoint).
    pub fn sync_all(&mut self) {
        self.machine.snapshot();
    }

    /// Drains everything written to the console device (for examples/tests).
    pub fn console_output(&mut self) -> Vec<Vec<u8>> {
        match self.machine.console_device() {
            Some(dev) => self
                .machine
                .kernel_mut()
                .device_drain_tx(dev)
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

/// The Unix environment can host scheduled programs: the scheduler reaches
/// the kernel through the environment, so multiprogrammed processes issue
/// their Unix-library work (which traps through `Kernel::dispatch`) from
/// inside their own quanta.
impl histar_kernel::sched::SchedContext for UnixEnv {
    fn sched_kernel(&mut self) -> &mut histar_kernel::Kernel {
        self.machine.kernel_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> (UnixEnv, Pid) {
        let env = UnixEnv::boot();
        let init = env.init_pid();
        (env, init)
    }

    #[test]
    fn boot_creates_init_and_root() {
        let (env, init) = env();
        assert_eq!(init, 1);
        assert_eq!(env.process_count(), 1);
        assert_eq!(env.getcwd(init).unwrap(), "/");
    }

    #[test]
    fn file_create_read_write() {
        let (mut env, init) = env();
        env.write_file_as(init, "/hello.txt", b"hello world", None)
            .unwrap();
        assert_eq!(
            env.read_file_as(init, "/hello.txt").unwrap(),
            b"hello world"
        );
        let stat = env.stat(init, "/hello.txt").unwrap();
        assert_eq!(stat.len, 11);
        assert!(!stat.is_dir);
        // Reading a missing file fails.
        assert!(matches!(
            env.read_file_as(init, "/missing"),
            Err(UnixError::NotFound(_))
        ));
    }

    #[test]
    fn directories_and_paths() {
        let (mut env, init) = env();
        env.mkdir(init, "/home", None).unwrap();
        env.mkdir(init, "/home/bob", None).unwrap();
        env.write_file_as(init, "/home/bob/notes.txt", b"secret", None)
            .unwrap();
        let entries = env.readdir(init, "/home/bob").unwrap();
        assert!(entries.iter().any(|e| e.name == "notes.txt"));
        // Relative paths use the cwd.
        env.chdir(init, "/home/bob").unwrap();
        assert_eq!(env.getcwd(init).unwrap(), "/home/bob");
        assert_eq!(env.read_file_as(init, "notes.txt").unwrap(), b"secret");
        assert_eq!(
            env.read_file_as(init, "../bob/notes.txt").unwrap(),
            b"secret"
        );
        // Sloppy paths normalize to the same file.
        assert_eq!(
            env.read_file_as(init, "/home//bob/./notes.txt/").unwrap(),
            b"secret"
        );
        // mkdir over an existing name fails.
        assert!(matches!(
            env.mkdir(init, "/home/bob", None),
            Err(UnixError::Exists(_))
        ));
        env.chdir(init, "/").unwrap();
    }

    #[test]
    fn unlink_and_rename() {
        let (mut env, init) = env();
        env.write_file_as(init, "/a.txt", b"a", None).unwrap();
        env.rename(init, "/a.txt", "/b.txt").unwrap();
        assert!(env.stat(init, "/a.txt").is_err());
        assert_eq!(env.read_file_as(init, "/b.txt").unwrap(), b"a");
        env.unlink(init, "/b.txt").unwrap();
        assert!(env.stat(init, "/b.txt").is_err());
        assert!(matches!(
            env.unlink(init, "/b.txt"),
            Err(UnixError::NotFound(_))
        ));
    }

    #[test]
    fn fds_seek_append_dup() {
        let (mut env, init) = env();
        env.write_file_as(init, "/f", b"0123456789", None).unwrap();
        let fd = env
            .open(
                init,
                "/f",
                OpenFlags {
                    read: true,
                    write: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(env.read(init, fd, 4).unwrap(), b"0123");
        assert_eq!(env.read(init, fd, 4).unwrap(), b"4567");
        env.lseek(init, fd, 1).unwrap();
        assert_eq!(env.read(init, fd, 3).unwrap(), b"123");
        // dup shares the seek position.
        let fd2 = env.dup(init, fd).unwrap();
        assert_eq!(env.read(init, fd2, 2).unwrap(), b"45");
        assert_eq!(env.read(init, fd, 2).unwrap(), b"67");
        env.close(init, fd).unwrap();
        assert_eq!(env.read(init, fd2, 2).unwrap(), b"89");
        env.close(init, fd2).unwrap();
        assert!(matches!(env.read(init, fd2, 1), Err(UnixError::BadFd(_))));

        // Append mode always writes at the end.
        let fda = env
            .open(
                init,
                "/f",
                OpenFlags {
                    write: true,
                    append: true,
                    ..Default::default()
                },
            )
            .unwrap();
        env.write(init, fda, b"ab").unwrap();
        env.close(init, fda).unwrap();
        assert_eq!(env.read_file_as(init, "/f").unwrap(), b"0123456789ab");
    }

    #[test]
    fn pipes_move_data_and_signal_eof() {
        let (mut env, init) = env();
        let (r, w) = env.pipe(init).unwrap();
        assert!(matches!(env.read(init, r, 8), Err(UnixError::WouldBlock)));
        env.write(init, w, b"ping").unwrap();
        assert_eq!(env.read(init, r, 8).unwrap(), b"ping");
        // Large transfers wrap around the ring buffer.
        let big = vec![7u8; 50_000];
        let written = env.write(init, w, &big).unwrap();
        assert_eq!(env.read(init, r, written).unwrap().len() as u64, written);
        // Closing the write end signals end of file.
        env.close(init, w).unwrap();
        assert_eq!(env.read(init, r, 8).unwrap(), b"");
        env.close(init, r).unwrap();
    }

    #[test]
    fn spawn_exit_wait() {
        let (mut env, init) = env();
        env.write_file_as(init, "/bin_true", b"#!true", None)
            .unwrap();
        let child = env.spawn(init, "/bin_true", None).unwrap();
        assert_eq!(env.process(child).unwrap().parent, Some(init));
        assert!(matches!(
            env.wait(init, child),
            Err(UnixError::StillRunning(_))
        ));
        env.exit(child, ExitStatus::Exited(0)).unwrap();
        assert_eq!(env.wait(init, child).unwrap(), ExitStatus::Exited(0));
        // A second wait finds nothing.
        assert!(env.wait(init, child).is_err());
    }

    #[test]
    fn fork_copies_memory_and_shares_fds() {
        let (mut env, init) = env();
        env.write_file_as(init, "/data", b"shared input", None)
            .unwrap();
        let fd = env.open(init, "/data", OpenFlags::read_only()).unwrap();
        assert_eq!(env.read(init, fd, 7).unwrap(), b"shared ");
        let child = env.fork(init).unwrap();
        // The child's descriptor continues from the shared seek position.
        assert_eq!(env.read(child, fd, 5).unwrap(), b"input");
        // Processes are isolated: the child's thread does not own the
        // parent's categories.
        let parent_proc = env.process(init).unwrap().clone();
        let child_proc = env.process(child).unwrap().clone();
        assert_ne!(parent_proc.read_cat, child_proc.read_cat);
        let kernel_label = env
            .machine()
            .kernel()
            .thread_label(child_proc.thread)
            .unwrap();
        assert!(!kernel_label.owns(parent_proc.read_cat));
        env.exit(child, ExitStatus::Exited(3)).unwrap();
        assert_eq!(env.wait(init, child).unwrap(), ExitStatus::Exited(3));
    }

    #[test]
    fn exec_replaces_image() {
        let (mut env, init) = env();
        env.write_file_as(init, "/bin_prog", b"PROGRAM IMAGE CONTENTS", None)
            .unwrap();
        let child = env.spawn(init, "/bin_sh", None).unwrap();
        let old_text = env.process(child).unwrap().text_segment;
        env.exec(child, "/bin_prog").unwrap();
        let p = env.process(child).unwrap().clone();
        assert_ne!(p.text_segment, old_text);
        assert_eq!(p.executable, "/bin_prog");
        // The new text segment holds the executable's bytes.
        let kernel_thread = p.thread;
        let data = env
            .machine_mut()
            .kernel_mut()
            .trap_segment_read(
                kernel_thread,
                ContainerEntry::new(p.internal_container, p.text_segment),
                0,
                22,
            )
            .unwrap();
        assert_eq!(data, b"PROGRAM IMAGE CONTENTS");
    }

    #[test]
    fn user_private_files_are_protected_by_the_kernel() {
        let (mut env, init) = env();
        let bob = env.create_user("bob").unwrap();
        env.mkdir(init, "/home", None).unwrap();
        env.mkdir(init, "/home/bob", None).unwrap();
        // init (owning bob's categories) writes bob's private file.
        env.write_file_as(
            init,
            "/home/bob/secret",
            b"bob's diary",
            Some(bob.private_file_label()),
        )
        .unwrap();
        // A process running *without* bob's privilege cannot read it.
        let other = env.spawn(init, "/bin_other", None).unwrap();
        let err = env.read_file_as(other, "/home/bob/secret").unwrap_err();
        assert!(matches!(
            err,
            UnixError::Kernel(SyscallError::CannotObserve(_))
        ));
        // A process running as bob can.
        let shell = env.spawn(init, "/bin_sh", Some("bob")).unwrap();
        assert_eq!(
            env.read_file_as(shell, "/home/bob/secret").unwrap(),
            b"bob's diary"
        );
    }

    #[test]
    fn signals_are_delivered_through_the_signal_gate() {
        let (mut env, init) = env();
        let child = env.spawn(init, "/bin_sleepy", None).unwrap();
        env.kill(init, child, 15).unwrap();
        assert_eq!(env.take_signal(child).unwrap(), Some(15));
        assert_eq!(env.take_signal(child).unwrap(), None);
    }

    #[test]
    fn fsync_survives_crash() {
        let (mut env, init) = env();
        env.sync_all();
        env.write_file_as(init, "/durable.txt", b"must survive", None)
            .unwrap();
        env.fsync_path(init, "/durable.txt").unwrap();
        env.write_file_as(init, "/volatile.txt", b"may vanish", None)
            .unwrap();
        // Crash and recover the machine.
        let mut machine = {
            let UnixEnv { machine, .. } = env;
            machine.crash_and_recover().unwrap()
        };
        // The durable file's segment exists in the recovered kernel with its
        // contents; the volatile one is gone.
        let recovered: Vec<Vec<u8>> = machine
            .kernel()
            .objects()
            .filter_map(|(_, o)| match &o.body {
                histar_kernel::bodies::ObjectBody::Segment(s) => Some(s.bytes.clone()),
                _ => None,
            })
            .collect();
        assert!(recovered
            .iter()
            .any(|b| b.windows(12).any(|w| w == b"must survive")));
        assert!(!recovered
            .iter()
            .any(|b| b.windows(10).any(|w| w == b"may vanish")));
        let _ = machine.kernel_mut();
    }

    #[test]
    fn console_writes_reach_the_device() {
        let (mut env, init) = env();
        let fd = env
            .open(
                init,
                "/dev/console",
                OpenFlags {
                    write: true,
                    ..Default::default()
                },
            )
            .unwrap();
        env.write(init, fd, b"hello tty").unwrap();
        let out = env.console_output();
        assert_eq!(out, vec![b"hello tty".to_vec()]);
        // Console reads return end-of-file.
        assert_eq!(env.read(init, fd, 8).unwrap(), b"");
        env.close(init, fd).unwrap();
    }

    #[test]
    fn dev_null_zero_urandom() {
        let (mut env, init) = env();
        let entries = env.readdir(init, "/dev").unwrap();
        for dev in ["console", "null", "zero", "urandom"] {
            assert!(entries.iter().any(|e| e.name == dev), "missing {dev}");
        }
        let null = env.open(init, "/dev/null", OpenFlags::read_only()).unwrap();
        assert_eq!(env.read(init, null, 16).unwrap(), b"");
        let zero = env.open(init, "/dev/zero", OpenFlags::read_only()).unwrap();
        assert_eq!(env.read(init, zero, 4).unwrap(), vec![0u8; 4]);
        let ur = env
            .open(init, "/dev/urandom", OpenFlags::read_only())
            .unwrap();
        let a = env.read(init, ur, 32).unwrap();
        let b = env.read(init, ur, 32).unwrap();
        assert_eq!(a.len(), 32);
        assert_ne!(a, b, "urandom streams");
        // Writes to read-only devices fail; /dev/null swallows.
        assert!(matches!(
            env.write(init, zero, b"x"),
            Err(UnixError::ReadOnly(_))
        ));
        for fd in [null, zero, ur] {
            env.close(init, fd).unwrap();
        }
    }

    #[test]
    fn proc_lists_processes_and_serves_own_status() {
        let (mut env, init) = env();
        let child = env.spawn(init, "/bin_child", None).unwrap();
        let entries = env.readdir(init, "/proc").unwrap();
        assert!(entries.iter().any(|e| e.name == init.to_string()));
        assert!(entries.iter().any(|e| e.name == child.to_string()));
        // A process can read its own /proc entry.
        let status = env
            .read_file_as(init, &format!("/proc/{init}/status"))
            .unwrap();
        let text = String::from_utf8(status).unwrap();
        assert!(text.contains("exe:\t/sbin/init"), "got: {text}");
        assert!(text.contains("state:\trunning"));
        // ...but not a sibling's (the kernel denies observing the internal
        // container).
        let err = env
            .read_file_as(init, &format!("/proc/{child}/status"))
            .unwrap_err();
        assert!(matches!(
            err,
            UnixError::Kernel(SyscallError::CannotObserve(_))
        ));
    }

    #[test]
    fn rename_across_mounts_fails_cleanly() {
        let (mut env, init) = env();
        let exported = env.mkdir(init, "/exported", None).unwrap();
        env.mount("/mnt", exported);
        env.write_file_as(init, "/a.txt", b"a", None).unwrap();
        let err = env.rename(init, "/a.txt", "/mnt/a.txt").unwrap_err();
        assert!(matches!(err, UnixError::CrossMount { .. }));
        // Neither namespace was touched.
        assert_eq!(env.read_file_as(init, "/a.txt").unwrap(), b"a");
        assert!(env.readdir(init, "/mnt").unwrap().is_empty());
    }

    #[test]
    fn mount_table_overlays_directories() {
        let (mut env, init) = env();
        // Create a directory that will act as a daemon's exported container.
        let exported = env.mkdir(init, "/exported", None).unwrap();
        env.write_file_as(init, "/exported/status", b"ready", None)
            .unwrap();
        env.mount("/netd", exported);
        assert_eq!(env.read_file_as(init, "/netd/status").unwrap(), b"ready");
        // `..` escapes the mount point lexically.
        assert_eq!(
            env.read_file_as(init, "/netd/../exported/status").unwrap(),
            b"ready"
        );
    }
}
