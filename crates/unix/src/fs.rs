//! File-system conventions (§5.1).
//!
//! The HiStar file system is untrusted library code: a file is a segment, a
//! directory is a container holding a *directory segment* that maps names to
//! object IDs, and permissions are nothing but the labels on those kernel
//! objects, enforced by the kernel rather than by this library.  This module
//! defines the on-segment directory format, path manipulation and open
//! flags; the directory operations live in [`SegFs`](crate::segfs::SegFs)
//! and the mount table in [`Vfs`](crate::vfs::Vfs).

use histar_kernel::object::ObjectId;
use histar_store::codec::{Decoder, Encoder};

/// Flags for [`UnixEnv::open`](crate::env::UnixEnv::open).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate the file to zero length on open.
    pub truncate: bool,
    /// All writes append to the end of the file.
    pub append: bool,
}

impl OpenFlags {
    /// Read-only open.
    pub fn read_only() -> OpenFlags {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }

    /// Write-only open, creating and truncating the file.
    pub fn write_create() -> OpenFlags {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..Default::default()
        }
    }

    /// Read-write open, creating the file if needed.
    pub fn read_write_create() -> OpenFlags {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            ..Default::default()
        }
    }
}

/// One entry in a directory segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// The file or subdirectory name (no slashes).
    pub name: String,
    /// The object named by this entry (a segment or a container).
    pub object: ObjectId,
    /// True if the entry names a directory (container).
    pub is_dir: bool,
}

/// The decoded contents of a directory segment.
///
/// A generation counter is incremented by every update, letting readers that
/// cannot take the directory mutex detect concurrent modification and retry
/// (§5.1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Directory {
    /// Update generation counter.
    pub generation: u64,
    /// The directory's entries, unordered.
    pub entries: Vec<DirEntry>,
}

impl Directory {
    /// Creates an empty directory image.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Looks up an entry by name.
    pub fn lookup(&self, name: &str) -> Option<&DirEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Inserts or replaces an entry, bumping the generation counter.
    pub fn insert(&mut self, entry: DirEntry) {
        self.entries.retain(|e| e.name != entry.name);
        self.entries.push(entry);
        self.generation += 1;
    }

    /// Removes an entry by name, bumping the generation counter; returns the
    /// removed entry.
    pub fn remove(&mut self, name: &str) -> Option<DirEntry> {
        let idx = self.entries.iter().position(|e| e.name == name)?;
        self.generation += 1;
        Some(self.entries.remove(idx))
    }

    /// Renames an entry within this directory (the paper's atomic rename
    /// under the directory mutex), returning false if `from` does not exist.
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        if self.lookup(from).is_none() {
            return false;
        }
        self.entries.retain(|e| e.name != to);
        for e in &mut self.entries {
            if e.name == from {
                e.name = to.to_string();
                break;
            }
        }
        self.generation += 1;
        true
    }

    /// Serializes the directory into segment bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.generation);
        e.put_u64(self.entries.len() as u64);
        for entry in &self.entries {
            e.put_str(&entry.name);
            e.put_u64(entry.object.raw());
            e.put_u8(u8::from(entry.is_dir));
        }
        e.finish()
    }

    /// Decodes a directory segment (empty segments decode to an empty
    /// directory, which is how freshly created directories start out).
    ///
    /// Directory segments are writable by anything the kernel's labels
    /// admit, so the bytes are untrusted input: malformed framing,
    /// non-UTF-8 names and out-of-range object IDs are all rejected with
    /// `None` (the library reports corruption) rather than panicking.
    pub fn decode(bytes: &[u8]) -> Option<Directory> {
        if bytes.iter().all(|&b| b == 0) {
            return Some(Directory::new());
        }
        let mut d = Decoder::new(bytes);
        let generation = d.get_u64().ok()?;
        let n = d.get_u64().ok()? as usize;
        let mut entries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = d.get_str().ok()?;
            let raw = d.get_u64().ok()?;
            if raw > histar_kernel::object::OBJECT_ID_MASK {
                return None;
            }
            let object = ObjectId::from_raw(raw);
            let is_dir = d.get_u8().ok()? != 0;
            entries.push(DirEntry {
                name,
                object,
                is_dir,
            });
        }
        Some(Directory {
            generation,
            entries,
        })
    }
}

/// Splits an absolute or relative path into its components, resolving `.`
/// and `..` lexically.  This is a thin alias for
/// [`Vfs::normalize`](crate::vfs::Vfs::normalize) — path parsing lives in
/// exactly one place.
pub fn split_path(cwd: &str, path: &str) -> Vec<String> {
    crate::vfs::Vfs::normalize(cwd, path)
}

/// Joins components back into an absolute path.
pub fn join_path(components: &[String]) -> String {
    if components.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", components.join("/"))
    }
}

/// Metadata returned by `stat`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileStat {
    /// The underlying object.
    pub object: ObjectId,
    /// True for directories.
    pub is_dir: bool,
    /// File length in bytes (0 for directories).
    pub len: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn directory_encode_decode_round_trip() {
        let mut d = Directory::new();
        d.insert(DirEntry {
            name: "passwd".to_string(),
            object: oid(5),
            is_dir: false,
        });
        d.insert(DirEntry {
            name: "home".to_string(),
            object: oid(9),
            is_dir: true,
        });
        let decoded = Directory::decode(&d.encode()).unwrap();
        assert_eq!(decoded, d);
        // A zeroed (fresh) segment is an empty directory.
        assert_eq!(Directory::decode(&[0u8; 64]).unwrap(), Directory::new());
    }

    #[test]
    fn directory_operations_bump_generation() {
        let mut d = Directory::new();
        assert_eq!(d.generation, 0);
        d.insert(DirEntry {
            name: "a".to_string(),
            object: oid(1),
            is_dir: false,
        });
        assert_eq!(d.generation, 1);
        assert!(d.lookup("a").is_some());
        assert!(d.rename("a", "b"));
        assert_eq!(d.generation, 2);
        assert!(d.lookup("a").is_none());
        assert_eq!(d.lookup("b").unwrap().object, oid(1));
        assert!(!d.rename("missing", "c"));
        assert!(d.remove("b").is_some());
        assert!(d.remove("b").is_none());
        assert_eq!(d.generation, 3);
    }

    #[test]
    fn insert_replaces_same_name() {
        let mut d = Directory::new();
        d.insert(DirEntry {
            name: "x".to_string(),
            object: oid(1),
            is_dir: false,
        });
        d.insert(DirEntry {
            name: "x".to_string(),
            object: oid(2),
            is_dir: false,
        });
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.lookup("x").unwrap().object, oid(2));
    }

    #[test]
    fn rename_overwrites_destination() {
        let mut d = Directory::new();
        d.insert(DirEntry {
            name: "a".to_string(),
            object: oid(1),
            is_dir: false,
        });
        d.insert(DirEntry {
            name: "b".to_string(),
            object: oid(2),
            is_dir: false,
        });
        assert!(d.rename("a", "b"));
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.lookup("b").unwrap().object, oid(1));
    }

    #[test]
    fn path_splitting() {
        assert_eq!(split_path("/", "/a/b/c"), vec!["a", "b", "c"]);
        assert_eq!(split_path("/a/b", "c"), vec!["a", "b", "c"]);
        assert_eq!(split_path("/a/b", "../c"), vec!["a", "c"]);
        assert_eq!(split_path("/a/b", "./c/./d"), vec!["a", "b", "c", "d"]);
        assert_eq!(split_path("/", ".."), Vec::<String>::new());
        assert_eq!(split_path("/", "//x///y/"), vec!["x", "y"]);
        assert_eq!(join_path(&split_path("/", "/a/b")), "/a/b");
        assert_eq!(join_path(&[]), "/");
    }

    #[test]
    fn open_flag_presets() {
        assert!(OpenFlags::read_only().read);
        assert!(!OpenFlags::read_only().write);
        assert!(OpenFlags::write_create().truncate);
        assert!(OpenFlags::read_write_create().create);
    }
}
