//! Processes as user-space conventions (§5.2, Figure 6).
//!
//! A HiStar process is not a kernel object; it is a *convention* built from
//! kernel objects: a process container exposing the process's external
//! interface (signal gate, exit-status segment), an internal container
//! holding everything private (address space, text/heap/stack segments, file
//! descriptor segments), and a pair of categories `pr`/`pw` protecting the
//! process's secrecy and integrity.

use crate::fdtable::FdTable;
use histar_kernel::object::ObjectId;
use histar_label::{Category, Label, Level};

/// A process identifier (a Unix-library notion, not a kernel one).
pub type Pid = u64;

/// How a process terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitStatus {
    /// The process called `exit` with the given code.
    Exited(i32),
    /// The process was terminated by the given signal number.
    Signaled(i32),
}

impl ExitStatus {
    /// Encodes the status into the 8 bytes stored in the exit segment.
    pub fn encode(self) -> [u8; 8] {
        let (tag, code) = match self {
            ExitStatus::Exited(c) => (0u32, c),
            ExitStatus::Signaled(s) => (1u32, s),
        };
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&tag.to_le_bytes());
        out[4..].copy_from_slice(&code.to_le_bytes());
        out
    }

    /// Decodes a status written by [`ExitStatus::encode`].
    pub fn decode(bytes: &[u8]) -> Option<ExitStatus> {
        if bytes.len() < 8 {
            return None;
        }
        let tag = u32::from_le_bytes(bytes[..4].try_into().ok()?);
        let code = i32::from_le_bytes(bytes[4..8].try_into().ok()?);
        match tag {
            0 => Some(ExitStatus::Exited(code)),
            1 => Some(ExitStatus::Signaled(code)),
            _ => None,
        }
    }

    /// True if the process exited normally with status zero.
    pub fn success(self) -> bool {
        self == ExitStatus::Exited(0)
    }
}

/// Lifecycle state of a process as tracked by the Unix library.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessState {
    /// The process is running (its thread is runnable).
    Running,
    /// The process has exited but has not been waited on.
    Zombie(ExitStatus),
    /// The process has been waited on and its resources reclaimed.
    Reaped,
}

/// The Unix library's bookkeeping for one process.
#[derive(Clone, Debug)]
pub struct Process {
    /// The process identifier.
    pub pid: Pid,
    /// Parent process, if any.
    pub parent: Option<Pid>,
    /// The user this process runs as, if any.
    pub user: Option<String>,
    /// Category protecting the process's secrecy (`pr`).
    pub read_cat: Category,
    /// Category protecting the process's integrity (`pw`).
    pub write_cat: Category,
    /// The externally visible process container, labelled `{pw 0, 1}`.
    pub process_container: ObjectId,
    /// The internal container, labelled `{pr 3, pw 0, 1}`.
    pub internal_container: ObjectId,
    /// The process's (single) thread.
    pub thread: ObjectId,
    /// The process's address space object.
    pub address_space: ObjectId,
    /// The exit-status segment, labelled `{pw 0, 1}`.
    pub exit_segment: ObjectId,
    /// The signal gate, labelled `{pr ⋆, pw ⋆, 1}`.
    pub signal_gate: ObjectId,
    /// Text segment (the loaded executable image).
    pub text_segment: ObjectId,
    /// Heap segment.
    pub heap_segment: ObjectId,
    /// Stack segment.
    pub stack_segment: ObjectId,
    /// Path of the executable this process is running.
    pub executable: String,
    /// Open file descriptors.
    pub fds: FdTable,
    /// Current working directory (an absolute path).
    pub cwd: String,
    /// Lifecycle state.
    pub state: ProcessState,
    /// Extra categories this process's thread owns beyond `pr`/`pw` (user
    /// privileges, grants received through gates).
    pub extra_ownership: Vec<Category>,
    /// Signal handlers installed by the process: signal number → handler id.
    pub signal_handlers: Vec<(u64, u64)>,
}

impl Process {
    /// The label of the process's thread(s): `{pr ⋆, pw ⋆, ..., 1}` plus any
    /// extra owned categories.
    pub fn thread_label(&self) -> Label {
        let mut b = Label::builder().own(self.read_cat).own(self.write_cat);
        for &c in &self.extra_ownership {
            b = b.own(c);
        }
        b.build()
    }

    /// The label of the process container and exit segment: `{pw 0, 1}`.
    pub fn external_label(&self) -> Label {
        Label::builder().set(self.write_cat, Level::L0).build()
    }

    /// The label of the internal container and private segments:
    /// `{pr 3, pw 0, 1}`.
    pub fn internal_label(&self) -> Label {
        Label::builder()
            .set(self.read_cat, Level::L3)
            .set(self.write_cat, Level::L0)
            .build()
    }

    /// True if the process is still running.
    pub fn is_running(&self) -> bool {
        self.state == ProcessState::Running
    }

    /// Records a signal handler (replacing any previous handler for the
    /// same signal).
    pub fn set_signal_handler(&mut self, signal: u64, handler: u64) {
        self.signal_handlers.retain(|(s, _)| *s != signal);
        self.signal_handlers.push((signal, handler));
    }

    /// Looks up the handler for a signal.
    pub fn signal_handler(&self, signal: u64) -> Option<u64> {
        self.signal_handlers
            .iter()
            .find(|(s, _)| *s == signal)
            .map(|(_, h)| *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_status_round_trip() {
        for s in [
            ExitStatus::Exited(0),
            ExitStatus::Exited(42),
            ExitStatus::Exited(-1),
            ExitStatus::Signaled(9),
        ] {
            assert_eq!(ExitStatus::decode(&s.encode()), Some(s));
        }
        assert_eq!(ExitStatus::decode(&[1, 2]), None);
        assert!(ExitStatus::Exited(0).success());
        assert!(!ExitStatus::Exited(1).success());
        assert!(!ExitStatus::Signaled(0).success());
    }

    fn sample_process() -> Process {
        Process {
            pid: 7,
            parent: Some(1),
            user: Some("bob".to_string()),
            read_cat: Category::from_raw(10),
            write_cat: Category::from_raw(11),
            process_container: ObjectId::from_raw(100),
            internal_container: ObjectId::from_raw(101),
            thread: ObjectId::from_raw(102),
            address_space: ObjectId::from_raw(103),
            exit_segment: ObjectId::from_raw(104),
            signal_gate: ObjectId::from_raw(105),
            text_segment: ObjectId::from_raw(106),
            heap_segment: ObjectId::from_raw(107),
            stack_segment: ObjectId::from_raw(108),
            executable: "/bin/true".to_string(),
            fds: FdTable::new(),
            cwd: "/".to_string(),
            state: ProcessState::Running,
            extra_ownership: vec![Category::from_raw(50)],
            signal_handlers: Vec::new(),
        }
    }

    #[test]
    fn figure6_labels() {
        let p = sample_process();
        let thread = p.thread_label();
        assert!(thread.owns(p.read_cat));
        assert!(thread.owns(p.write_cat));
        assert!(thread.owns(Category::from_raw(50)));

        // Other processes can read the exit status but not write it.
        let external = p.external_label();
        let stranger = Label::unrestricted();
        assert!(stranger.can_observe(&external));
        assert!(!stranger.can_modify(&external));
        assert!(p.thread_label().can_modify(&external));

        // The internal container is invisible to strangers.
        let internal = p.internal_label();
        assert!(!stranger.can_observe(&internal));
        assert!(p.thread_label().can_modify(&internal));
    }

    #[test]
    fn signal_handler_registry() {
        let mut p = sample_process();
        assert_eq!(p.signal_handler(15), None);
        p.set_signal_handler(15, 0x1000);
        p.set_signal_handler(9, 0x2000);
        assert_eq!(p.signal_handler(15), Some(0x1000));
        p.set_signal_handler(15, 0x3000);
        assert_eq!(p.signal_handler(15), Some(0x3000));
        assert_eq!(p.signal_handlers.len(), 2);
    }

    #[test]
    fn lifecycle_flags() {
        let mut p = sample_process();
        assert!(p.is_running());
        p.state = ProcessState::Zombie(ExitStatus::Exited(3));
        assert!(!p.is_running());
    }
}
