//! The gate-call convention (§5.5, Figure 7).
//!
//! Gates have no implicit return mechanism, so the Unix library implements
//! RPC-style calls as follows: the caller allocates a *return category* `r`
//! and creates a *return gate* (clearance `{r 0, 2}`, so only a thread
//! owning `r` can invoke it) that restores all of the caller's privileges.
//! It then invokes the service gate, granting `r` so the thread can come
//! back.  To keep its arguments private from the service, the caller may
//! additionally allocate a taint category `t` and enter the service tainted
//! `t 3`, donating a resource container labelled `{t 3, r 0, 1}` for any
//! allocations the tainted call needs.

use crate::env::{UnixEnv, UnixError};
use crate::process::Pid;
use histar_kernel::kernel::GateEntryResult;
use histar_kernel::object::{ContainerEntry, ObjectId};
use histar_label::{Category, Label, Level};

type Result<T> = core::result::Result<T, UnixError>;

/// A service gate exported by a daemon process.
#[derive(Clone, Copy, Debug)]
pub struct ServiceGate {
    /// Container entry through which clients name the gate.
    pub gate: ContainerEntry,
    /// The daemon process that owns the service.
    pub provider: Pid,
}

/// Creates a service gate in a daemon's process container.  The gate label
/// carries the daemon's ownership (its `pr`/`pw` and any user categories),
/// which is what the invoking client thread temporarily gains.
pub fn create_service_gate(
    env: &mut UnixEnv,
    provider: Pid,
    entry_point: u64,
    descrip: &str,
) -> Result<ServiceGate> {
    let (thread, container) = {
        let p = env.process(provider)?;
        (p.thread, p.process_container)
    };
    let kernel = env.machine_mut().kernel_mut();
    let label = kernel.thread_label(thread)?;
    let gate = kernel.sys_gate_create(
        thread,
        container,
        label,
        Label::default_clearance(),
        None,
        entry_point,
        vec![],
        descrip,
    )?;
    Ok(ServiceGate {
        gate: ContainerEntry::new(container, gate),
        provider,
    })
}

/// State saved across a gate call so the caller can return to itself.
#[derive(Debug)]
pub struct GateSession {
    caller: Pid,
    caller_thread: ObjectId,
    saved_label: Label,
    saved_clearance: Label,
    return_category: Category,
    return_gate: ContainerEntry,
    /// The taint category protecting the caller's arguments, if any.
    pub taint: Option<Category>,
    /// Resource container donated for tainted allocations, if any.
    pub resource_container: Option<ContainerEntry>,
    /// What the kernel handed back when the service gate was entered.
    pub entry: GateEntryResult,
}

impl GateSession {
    /// The label the calling thread is running with inside the service.
    pub fn service_label(&self) -> &Label {
        &self.entry.label
    }
}

/// Invokes a service gate on behalf of `caller`, optionally tainting the
/// call so the service cannot leak the caller's arguments.
///
/// Returns a [`GateSession`] which must be passed to
/// [`return_from_service`] to restore the caller's privileges.
pub fn enter_service(
    env: &mut UnixEnv,
    caller: Pid,
    service: &ServiceGate,
    taint_call: bool,
) -> Result<GateSession> {
    let (caller_thread, internal_container, caller_container) = {
        let p = env.process(caller)?;
        (p.thread, p.internal_container, p.process_container)
    };
    let kernel = env.machine_mut().kernel_mut();
    let saved_label = kernel.thread_label(caller_thread)?;
    let saved_clearance = kernel.thread_clearance(caller_thread)?;

    // Return category, and — for a private call — the taint category,
    // allocated up front so the return gate's clearance can admit the
    // tainted thread on its way back.
    let return_category = kernel.sys_create_category(caller_thread)?;
    let taint = if taint_call {
        Some(kernel.sys_create_category(caller_thread)?)
    } else {
        None
    };

    // Return gate (Figure 7): label carries everything the caller owns, and
    // the clearance requires the return category to invoke it.
    let label_with_r = kernel.thread_label(caller_thread)?;
    let mut return_gate_clearance_builder = Label::builder()
        .set(return_category, Level::L0)
        .default_level(Level::L2);
    if let Some(t) = taint {
        return_gate_clearance_builder = return_gate_clearance_builder.set(t, Level::L3);
    }
    let return_gate = kernel.sys_gate_create(
        caller_thread,
        caller_container,
        label_with_r.clone(),
        return_gate_clearance_builder.build(),
        None,
        0,
        vec![],
        "return gate",
    )?;

    // Donated resource container for tainted allocations.
    let resource_container = if let Some(t) = taint {
        let rc_label = Label::builder()
            .set(t, Level::L3)
            .set(return_category, Level::L0)
            .build();
        let rc = kernel.sys_container_create(
            caller_thread,
            internal_container,
            rc_label,
            "gate call resources",
            0,
            1 << 20,
        )?;
        Some(ContainerEntry::new(internal_container, rc))
    } else {
        None
    };

    // Request label: keep everything we own (including r and t ownership at
    // this point), add the gate's ownership, and drop to taint level 3 in t.
    let gate_label = kernel.sys_obj_get_label(caller_thread, service.gate)?;
    let gate_clearance = kernel.sys_gate_clearance(caller_thread, service.gate)?;
    let current_label = kernel.thread_label(caller_thread)?;
    let mut requested = current_label.ownership_union(&gate_label);
    if let Some(t) = taint {
        requested = requested.with(t, Level::L3);
    }
    let requested_clearance = kernel
        .thread_clearance(caller_thread)?
        .lub(&gate_clearance);
    let entry = kernel.sys_gate_enter(
        caller_thread,
        service.gate,
        requested,
        requested_clearance,
        saved_label.clone(),
    )?;

    Ok(GateSession {
        caller,
        caller_thread,
        saved_label,
        saved_clearance,
        return_category,
        return_gate: ContainerEntry::new(caller_container, return_gate),
        taint,
        resource_container,
        entry,
    })
}

/// Returns from a gate call: the thread invokes the return gate (which only
/// holders of the return category can do), regaining the caller's original
/// label and clearance, and the per-call objects are released.
pub fn return_from_service(env: &mut UnixEnv, session: GateSession) -> Result<()> {
    let GateSession {
        caller,
        caller_thread,
        saved_label,
        saved_clearance,
        return_category,
        return_gate,
        resource_container,
        ..
    } = session;
    let kernel = env.machine_mut().kernel_mut();

    // Invoke the return gate; the floor of the entry label is the union of
    // the current (service-side) ownership and the return gate's ownership,
    // which includes everything the caller originally owned plus r.
    let gate_label = kernel.sys_obj_get_label(caller_thread, return_gate)?;
    let current = kernel.thread_label(caller_thread)?;
    let requested = current.ownership_union(&gate_label);
    let requested_clearance = kernel
        .thread_clearance(caller_thread)?
        .lub(&saved_clearance);
    kernel.sys_gate_enter(
        caller_thread,
        return_gate,
        requested,
        requested_clearance,
        current,
    )?;

    // Back home: drop the per-call categories and objects.  Taint acquired
    // during the call in categories the caller does not own cannot be
    // dropped (that would be an information leak), so the restored label is
    // the saved label raised by any such residual taint.
    let after_return = kernel.thread_label(caller_thread)?;
    let mut restore_label = saved_label.clone();
    let mut restore_clearance = saved_clearance.clone();
    for (c, lvl) in after_return.entries() {
        if lvl.is_star() || after_return.owns(c) {
            continue;
        }
        if lvl.as_low() > saved_label.level(c).as_low() {
            restore_label = restore_label.with(c, lvl);
            if restore_clearance.level(c).as_low() < lvl.as_low() {
                restore_clearance = restore_clearance.with(c, lvl);
            }
        }
    }
    if restore_clearance.level(return_category) == Level::L2 {
        restore_clearance = restore_clearance.without(return_category);
    }
    kernel.sys_self_set_label(caller_thread, restore_label)?;
    kernel.sys_self_set_clearance(caller_thread, restore_clearance)?;
    // Cleanup is best-effort: a thread that acquired persistent taint during
    // the call may no longer be able to modify its own (untainted) process
    // container, in which case the per-call objects are reclaimed when the
    // process itself is deallocated.  This is the paper's §5.8 trade-off —
    // reclaiming tainted resources needs an explicit untainting gate.
    let _ = kernel.sys_obj_unref(caller_thread, return_gate);
    if let Some(rc) = resource_container {
        let _ = kernel.sys_obj_unref(caller_thread, rc);
    }
    let _ = caller;
    Ok(())
}

fn env_process_container(env: &UnixEnv, pid: Pid) -> Result<ObjectId> {
    Ok(env.process(pid)?.process_container)
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_kernel::syscall::SyscallError;

    fn setup() -> (UnixEnv, Pid, Pid, ServiceGate) {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let client = env.spawn(init, "/bin/client", None).unwrap();
        let daemon = env.spawn(init, "/usr/bin/timestampd", None).unwrap();
        let service = create_service_gate(&mut env, daemon, 0x4000, "timestamp service").unwrap();
        (env, init, client, service)
    }

    #[test]
    fn gate_call_grants_and_returns_privilege() {
        let (mut env, _init, client, service) = setup();
        let daemon_pr = env.process(service.provider).unwrap().read_cat;
        let client_pr = env.process(client).unwrap().read_cat;
        let client_thread = env.process(client).unwrap().thread;

        let before = env
            .machine()
            .kernel()
            .thread_label(client_thread)
            .unwrap();
        assert!(!before.owns(daemon_pr));

        let session = enter_service(&mut env, client, &service, false).unwrap();
        // Inside the service the client's thread owns the daemon's
        // categories (it can act as the daemon) while keeping its own.
        let during = env
            .machine()
            .kernel()
            .thread_label(client_thread)
            .unwrap();
        assert!(during.owns(daemon_pr));
        assert!(during.owns(client_pr));
        assert_eq!(session.entry.entry_point, 0x4000);

        return_from_service(&mut env, session).unwrap();
        let after = env
            .machine()
            .kernel()
            .thread_label(client_thread)
            .unwrap();
        assert_eq!(after, before, "the caller gets exactly its old label back");
    }

    #[test]
    fn tainted_gate_call_cannot_write_daemon_state() {
        let (mut env, _init, client, service) = setup();
        let client_thread = env.process(client).unwrap().thread;
        let daemon = env.process(service.provider).unwrap().clone();

        let session = enter_service(&mut env, client, &service, true).unwrap();
        let t = session.taint.unwrap();
        let label = env
            .machine()
            .kernel()
            .thread_label(client_thread)
            .unwrap();
        assert_eq!(label.level(t), Level::L3, "the call runs tainted in t");

        // Tainted in t, the thread may read the daemon's segments but not
        // modify them: that would leak the caller's data into daemon state.
        let heap_entry = ContainerEntry::new(daemon.internal_container, daemon.heap_segment);
        let kernel = env.machine_mut().kernel_mut();
        assert!(kernel.sys_segment_read(client_thread, heap_entry, 0, 8).is_ok());
        assert!(matches!(
            kernel.sys_segment_write(client_thread, heap_entry, 0, b"leak"),
            Err(SyscallError::CannotModify(_))
        ));

        // It can, however, allocate in the donated resource container.
        let rc = session.resource_container.unwrap();
        let scratch_label = Label::builder()
            .set(t, Level::L3)
            .set(session.entry.label.owned_categories().next().unwrap_or(t), Level::L3)
            .build();
        let _ = scratch_label;
        let tainted_label = Label::builder().set(t, Level::L3).build();
        assert!(kernel
            .sys_segment_create(client_thread, rc.object, tainted_label, 128, "scratch")
            .is_ok());

        return_from_service(&mut env, session).unwrap();
        // Back outside, the caller owns t again and is not tainted.
        let after = env
            .machine()
            .kernel()
            .thread_label(client_thread)
            .unwrap();
        assert_ne!(after.level(t), Level::L3);
    }

    #[test]
    fn return_gate_requires_the_return_category() {
        let (mut env, init, client, service) = setup();
        let session = enter_service(&mut env, client, &service, false).unwrap();
        let return_gate = session.return_gate;
        // Some other process (without r) cannot invoke the return gate.
        let outsider = env.spawn(init, "/bin/evil", None).unwrap();
        let outsider_thread = env.process(outsider).unwrap().thread;
        let kernel = env.machine_mut().kernel_mut();
        let tl = kernel.thread_label(outsider_thread).unwrap();
        let tc = kernel.thread_clearance(outsider_thread).unwrap();
        assert!(matches!(
            kernel.sys_gate_enter(outsider_thread, return_gate, tl.clone(), tc, tl),
            Err(SyscallError::GateClearance(_))
        ));
        return_from_service(&mut env, session).unwrap();
    }
}
