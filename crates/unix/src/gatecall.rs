//! The gate-call convention (§5.5, Figure 7).
//!
//! Gates have no implicit return mechanism, so the Unix library implements
//! RPC-style calls as follows: the caller allocates a *return category* `r`
//! and creates a *return gate* (clearance `{r 0, 2}`, so only a thread
//! owning `r` can invoke it) that restores all of the caller's privileges.
//! It then invokes the service gate, granting `r` so the thread can come
//! back.  To keep its arguments private from the service, the caller may
//! additionally allocate a taint category `t` and enter the service tainted
//! `t 3`, donating a resource container labelled `{t 3, r 0, 1}` for any
//! allocations the tainted call needs.

use crate::env::{UnixEnv, UnixError};
use crate::process::Pid;
use histar_kernel::kernel::GateEntryResult;
use histar_kernel::object::{ContainerEntry, ObjectId};
use histar_kernel::{Syscall, SyscallResult};
use histar_label::{Category, Label, Level};

type Result<T> = core::result::Result<T, UnixError>;

/// A service gate exported by a daemon process.
#[derive(Clone, Copy, Debug)]
pub struct ServiceGate {
    /// Container entry through which clients name the gate.
    pub gate: ContainerEntry,
    /// The daemon process that owns the service.
    pub provider: Pid,
}

/// Creates a service gate in a daemon's process container.  The gate label
/// carries the daemon's ownership (its `pr`/`pw` and any user categories),
/// which is what the invoking client thread temporarily gains.
pub fn create_service_gate(
    env: &mut UnixEnv,
    provider: Pid,
    entry_point: u64,
    descrip: &str,
) -> Result<ServiceGate> {
    let (thread, container) = {
        let p = env.process(provider)?;
        (p.thread, p.process_container)
    };
    let kernel = env.machine_mut().kernel_mut();
    let label = kernel.thread_label(thread)?;
    let gate = kernel.trap_gate_create(
        thread,
        container,
        label,
        Label::default_clearance(),
        None,
        entry_point,
        vec![],
        descrip,
    )?;
    Ok(ServiceGate {
        gate: ContainerEntry::new(container, gate),
        provider,
    })
}

/// State saved across a gate call so the caller can return to itself.
#[derive(Debug)]
pub struct GateSession {
    caller: Pid,
    caller_thread: ObjectId,
    saved_label: Label,
    saved_clearance: Label,
    return_category: Category,
    return_gate: ContainerEntry,
    /// The taint category protecting the caller's arguments, if any.
    pub taint: Option<Category>,
    /// Resource container donated for tainted allocations, if any.
    pub resource_container: Option<ContainerEntry>,
    /// What the kernel handed back when the service gate was entered.
    pub entry: GateEntryResult,
}

impl GateSession {
    /// The label the calling thread is running with inside the service.
    pub fn service_label(&self) -> &Label {
        &self.entry.label
    }
}

/// Invokes a service gate on behalf of `caller`, optionally tainting the
/// call so the service cannot leak the caller's arguments.
///
/// Returns a [`GateSession`] which must be passed to
/// [`return_from_service`] to restore the caller's privileges.
pub fn enter_service(
    env: &mut UnixEnv,
    caller: Pid,
    service: &ServiceGate,
    taint_call: bool,
) -> Result<GateSession> {
    enter_service_inner(env, caller, service, taint_call, &[])
}

/// Invokes a service gate entering *tainted* in pre-existing categories the
/// caller currently owns: the caller's label keeps ownership until the gate
/// entry, at which point the requested label drops each listed category to
/// the given numeric level — the same move a Figure 7 caller makes with its
/// own fresh taint category, generalized to categories allocated elsewhere.
///
/// This is the cross-node plumbing: an exporter worker owns the local
/// shadows of a remote request's taint categories (so the gate's clearance
/// check sees `⋆`, treated low, exactly as for a local caller) and runs the
/// service tainted in them, unable to untaint until the call returns.
pub fn enter_service_tainted(
    env: &mut UnixEnv,
    caller: Pid,
    service: &ServiceGate,
    taint_entries: &[(Category, Level)],
) -> Result<GateSession> {
    enter_service_inner(env, caller, service, false, taint_entries)
}

fn enter_service_inner(
    env: &mut UnixEnv,
    caller: Pid,
    service: &ServiceGate,
    taint_call: bool,
    taint_entries: &[(Category, Level)],
) -> Result<GateSession> {
    let (caller_thread, internal_container, caller_container) = {
        let p = env.process(caller)?;
        (p.thread, p.internal_container, p.process_container)
    };
    let kernel = env.machine_mut().kernel_mut();
    let saved_label = kernel.thread_label(caller_thread)?;
    let saved_clearance = kernel.thread_clearance(caller_thread)?;

    // Return category, and — for a private call — the taint category,
    // allocated up front so the return gate's clearance can admit the
    // tainted thread on its way back.
    let return_category = kernel.trap_create_category(caller_thread)?;
    let taint = if taint_call {
        Some(kernel.trap_create_category(caller_thread)?)
    } else {
        None
    };

    // Return gate (Figure 7): label carries everything the caller owns, and
    // the clearance requires the return category to invoke it.
    let label_with_r = kernel.thread_label(caller_thread)?;
    let mut return_gate_clearance_builder = Label::builder()
        .set(return_category, Level::L0)
        .default_level(Level::L2);
    if let Some(t) = taint {
        return_gate_clearance_builder = return_gate_clearance_builder.set(t, Level::L3);
    }
    for &(c, lvl) in taint_entries {
        return_gate_clearance_builder = return_gate_clearance_builder.set(c, lvl);
    }
    // A caller that is already tainted needs that taint admitted by the
    // return gate too, or the gate cannot even be created (`L_G ⊑ C_G`).
    for (c, lvl) in label_with_r.entries() {
        if !lvl.is_star() && c != return_category {
            return_gate_clearance_builder = return_gate_clearance_builder.set(c, lvl);
        }
    }
    // The per-call argument spill — the return gate, the donated resource
    // container, and the two reads of the service gate — has no internal
    // data dependencies, so it crosses the trap boundary as ONE submission
    // batch (one trap cost, every label check unchanged).
    let mut spill = vec![Syscall::GateCreate {
        container: caller_container,
        label: label_with_r.clone(),
        clearance: return_gate_clearance_builder.build(),
        address_space: None,
        entry_point: 0,
        closure_args: vec![],
        descrip: "return gate".to_string(),
    }];
    if let Some(t) = taint {
        let rc_label = Label::builder()
            .set(t, Level::L3)
            .set(return_category, Level::L0)
            .build();
        spill.push(Syscall::ContainerCreate {
            parent: internal_container,
            label: rc_label,
            descrip: "gate call resources".to_string(),
            avoid_types: 0,
            quota: 1 << 20,
        });
    }
    spill.push(Syscall::ObjGetLabel {
        entry: service.gate,
    });
    spill.push(Syscall::GateClearance { gate: service.gate });
    let mut results = kernel.submit_calls(caller_thread, spill).into_iter();
    let mut next = || results.next().expect("one completion per submitted call");

    let gate_result = next();
    let rc_result = taint.map(|_| next());
    let label_result = next();
    let clearance_result = next();
    // The batch does not stop on errors, so an entry may have created an
    // object even though an earlier one failed; release anything the
    // aborted call would orphan before propagating the first error.
    let created = |r: &core::result::Result<SyscallResult, histar_kernel::SyscallError>| match r {
        Ok(SyscallResult::ObjectId(id)) => Some(*id),
        _ => None,
    };
    if gate_result.is_err()
        || rc_result.as_ref().is_some_and(|r| r.is_err())
        || label_result.is_err()
        || clearance_result.is_err()
    {
        if let Some(gate) = created(&gate_result) {
            let _ =
                kernel.trap_obj_unref(caller_thread, ContainerEntry::new(caller_container, gate));
        }
        if let Some(rc) = rc_result.as_ref().and_then(created) {
            let _ =
                kernel.trap_obj_unref(caller_thread, ContainerEntry::new(internal_container, rc));
        }
        // First error in sequential order, matching the old fail-stop path.
        for r in [
            Some(gate_result),
            rc_result,
            Some(label_result),
            Some(clearance_result),
        ]
        .into_iter()
        .flatten()
        {
            r?;
        }
        unreachable!("at least one result was an error");
    }
    let ok = "errors handled above";
    let return_gate = gate_result.expect(ok).into_object_id();
    let resource_container =
        rc_result.map(|r| ContainerEntry::new(internal_container, r.expect(ok).into_object_id()));
    // Request label: keep everything we own (including r and t ownership at
    // this point), add the gate's ownership, and drop to taint level 3 in t.
    let gate_label = label_result.expect(ok).into_label();
    let gate_clearance = clearance_result.expect(ok).into_label();
    let current_label = kernel.thread_label(caller_thread)?;
    let mut requested = current_label.ownership_union(&gate_label);
    if let Some(t) = taint {
        requested = requested.with(t, Level::L3);
    }
    for &(c, lvl) in taint_entries {
        requested = requested.with(c, lvl);
    }
    let requested_clearance = kernel.thread_clearance(caller_thread)?.lub(&gate_clearance);
    let entry = kernel.trap_gate_enter(
        caller_thread,
        service.gate,
        requested,
        requested_clearance,
        saved_label.clone(),
    )?;

    Ok(GateSession {
        caller,
        caller_thread,
        saved_label,
        saved_clearance,
        return_category,
        return_gate: ContainerEntry::new(caller_container, return_gate),
        taint,
        resource_container,
        entry,
    })
}

/// Returns from a gate call: the thread invokes the return gate (which only
/// holders of the return category can do), regaining the caller's original
/// label and clearance, and the per-call objects are released.
pub fn return_from_service(env: &mut UnixEnv, session: GateSession) -> Result<()> {
    let GateSession {
        caller,
        caller_thread,
        saved_label,
        saved_clearance,
        return_category,
        return_gate,
        resource_container,
        ..
    } = session;
    let kernel = env.machine_mut().kernel_mut();

    // Invoke the return gate; the floor of the entry label is the union of
    // the current (service-side) ownership and the return gate's ownership,
    // which includes everything the caller originally owned plus r.
    let gate_label = kernel.trap_obj_get_label(caller_thread, return_gate)?;
    let current = kernel.thread_label(caller_thread)?;
    let requested = current.ownership_union(&gate_label);
    let requested_clearance = kernel
        .thread_clearance(caller_thread)?
        .lub(&saved_clearance);
    kernel.trap_gate_enter(
        caller_thread,
        return_gate,
        requested,
        requested_clearance,
        current,
    )?;

    // Back home: drop the per-call categories and objects.  Taint acquired
    // during the call in categories the caller does not own cannot be
    // dropped (that would be an information leak), so the restored label is
    // the saved label raised by any such residual taint.
    let after_return = kernel.thread_label(caller_thread)?;
    let mut restore_label = saved_label.clone();
    let mut restore_clearance = saved_clearance.clone();
    for (c, lvl) in after_return.entries() {
        if lvl.is_star() || after_return.owns(c) {
            continue;
        }
        if lvl.as_low() > saved_label.level(c).as_low() {
            restore_label = restore_label.with(c, lvl);
            if restore_clearance.level(c).as_low() < lvl.as_low() {
                restore_clearance = restore_clearance.with(c, lvl);
            }
        }
    }
    if restore_clearance.level(return_category) == Level::L2 {
        restore_clearance = restore_clearance.without(return_category);
    }
    // Label restoration and per-call cleanup ride one submission batch.
    // Cleanup is best-effort: a thread that acquired persistent taint during
    // the call may no longer be able to modify its own (untainted) process
    // container, in which case the per-call objects are reclaimed when the
    // process itself is deallocated.  This is the paper's §5.8 trade-off —
    // reclaiming tainted resources needs an explicit untainting gate.
    let mut cleanup = vec![
        Syscall::SelfSetLabel {
            label: restore_label,
        },
        Syscall::SelfSetClearance {
            clearance: restore_clearance,
        },
        Syscall::ObjUnref { entry: return_gate },
    ];
    if let Some(rc) = resource_container {
        cleanup.push(Syscall::ObjUnref { entry: rc });
    }
    let results = kernel.submit_calls(caller_thread, cleanup);
    // The label restorations must succeed; the unrefs are best-effort.
    for restore in &results[..2] {
        if let Err(e) = restore {
            return Err(e.clone().into());
        }
    }
    let _ = caller;
    Ok(())
}

/// Transfers ownership of `categories` from `from`'s thread to `to`'s thread
/// through a single-use grant gate — the same mechanism the authentication
/// service's grant gate uses (Figure 9), packaged for reuse.
///
/// The kernel checks everything: `from` must actually own the categories
/// (gate creation fails otherwise, since the gate label must satisfy
/// `L_T ⊑ L_G`), and `to` gains exactly the requested `⋆` entries because the
/// gate-entry floor `(L_T^J ⊔ L_G^J)^⋆` admits them.  Exporters use this on
/// both sides of a cross-node RPC: a client grants its exporter the
/// categories it exports, and the receiving exporter grants a worker the
/// delegated privileges a remote caller proved it holds.
pub fn grant_categories(
    env: &mut UnixEnv,
    from: Pid,
    to: Pid,
    categories: &[Category],
) -> Result<()> {
    if categories.is_empty() {
        return Ok(());
    }
    let from_container = env.process(from)?.process_container;
    let entry = create_grant_gate(env, from, from_container, categories, None)?;
    enter_grant_gate(env, from, entry, to, categories)
}

/// The creation half of [`grant_categories`], for grants where the two
/// sides run at different times: builds the single-use grant gate in
/// `container` and returns its entry, without anyone entering it yet.
/// netd uses this at connect time — the acceptor only shows up later.
///
/// A gate that *waits* to be entered is a stealable capability unless it
/// is guarded: passing `guard` pins that category to `0` in the gate's
/// clearance, so only threads owning `guard` pass the kernel's
/// `L_T ⊑ C_G` entry check — everyone else's default `1` is refused.
pub fn create_grant_gate(
    env: &mut UnixEnv,
    from: Pid,
    container: ObjectId,
    categories: &[Category],
    guard: Option<Category>,
) -> Result<ContainerEntry> {
    let from_thread = env.process(from)?.thread;
    let kernel = env.machine_mut().kernel_mut();
    let mut gate_label = kernel.thread_label(from_thread)?;
    let mut gate_clearance = Label::default_clearance();
    for &c in categories {
        gate_label = gate_label.with(c, Level::Star);
        gate_clearance = gate_clearance.with(c, Level::L3);
    }
    if let Some(g) = guard {
        gate_clearance = gate_clearance.with(g, Level::L0);
    }
    let gate = kernel.trap_gate_create(
        from_thread,
        container,
        gate_label,
        gate_clearance,
        None,
        0,
        vec![],
        "category grant gate",
    )?;
    Ok(ContainerEntry::new(container, gate))
}

/// The entry half of [`grant_categories`]: `to`'s thread enters a grant
/// gate made by [`create_grant_gate`], gaining `⋆` for `categories` while
/// keeping its current label otherwise, and `owner`'s thread unrefs the
/// single-use gate.
pub fn enter_grant_gate(
    env: &mut UnixEnv,
    owner: Pid,
    entry: ContainerEntry,
    to: Pid,
    categories: &[Category],
) -> Result<()> {
    let owner_thread = env.process(owner)?.thread;
    let to_thread = env.process(to)?.thread;
    let kernel = env.machine_mut().kernel_mut();
    let mut requested = kernel.thread_label(to_thread)?;
    let mut requested_clearance = kernel.thread_clearance(to_thread)?;
    for &c in categories {
        requested = requested.with(c, Level::Star);
        requested_clearance = requested_clearance.with(c, Level::L3);
    }
    let verify = kernel.thread_label(to_thread)?;
    kernel.trap_gate_enter(to_thread, entry, requested, requested_clearance, verify)?;
    // The grant gate is single-use.
    let _ = kernel.trap_obj_unref(owner_thread, entry);

    let proc = env.process_record_mut(to)?;
    for &c in categories {
        if !proc.extra_ownership.contains(&c) {
            proc.extra_ownership.push(c);
        }
    }
    Ok(())
}

/// Renounces ownership of `categories`: drops their `⋆` from `pid`'s
/// thread label (back to the default `1`) and their `3` from its
/// clearance (back to the default `2`).  Both transitions are ordinary
/// `self_set_label`/`self_set_clearance` calls the kernel validates.
///
/// Long-running daemons must shed per-connection categories once they
/// are handed off, or their labels grow without bound — and every label
/// check they ever make scales with that size.
pub fn drop_categories(env: &mut UnixEnv, pid: Pid, categories: &[Category]) -> Result<()> {
    if categories.is_empty() {
        return Ok(());
    }
    let thread = env.process(pid)?.thread;
    let kernel = env.machine_mut().kernel_mut();
    let mut label = kernel.thread_label(thread)?;
    let mut clearance = kernel.thread_clearance(thread)?;
    for &c in categories {
        label = label.without(c);
        clearance = clearance.without(c);
    }
    kernel.trap_self_set_label(thread, label)?;
    kernel.trap_self_set_clearance(thread, clearance)?;
    let proc = env.process_record_mut(pid)?;
    proc.extra_ownership.retain(|c| !categories.contains(c));
    Ok(())
}

/// Raises a process's taint so it can observe data labelled `target` —
/// `self_set_label(raise_for_observe)`, bounded by the thread's clearance
/// exactly as the kernel demands.  Cross-node replies arrive in segments
/// carrying translated taint; this is how a client accepts that taint.
pub fn raise_taint_for(env: &mut UnixEnv, pid: Pid, target: &Label) -> Result<()> {
    let thread = env.process(pid)?.thread;
    let kernel = env.machine_mut().kernel_mut();
    let current = kernel.thread_label(thread)?;
    let raised = current.raise_for_observe(target);
    if raised != current {
        kernel.trap_self_set_label(thread, raised)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_kernel::syscall::SyscallError;

    fn setup() -> (UnixEnv, Pid, Pid, ServiceGate) {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let client = env.spawn(init, "/bin/client", None).unwrap();
        let daemon = env.spawn(init, "/usr/bin/timestampd", None).unwrap();
        let service = create_service_gate(&mut env, daemon, 0x4000, "timestamp service").unwrap();
        (env, init, client, service)
    }

    #[test]
    fn gate_call_grants_and_returns_privilege() {
        let (mut env, _init, client, service) = setup();
        let daemon_pr = env.process(service.provider).unwrap().read_cat;
        let client_pr = env.process(client).unwrap().read_cat;
        let client_thread = env.process(client).unwrap().thread;

        let before = env.machine().kernel().thread_label(client_thread).unwrap();
        assert!(!before.owns(daemon_pr));

        let session = enter_service(&mut env, client, &service, false).unwrap();
        // Inside the service the client's thread owns the daemon's
        // categories (it can act as the daemon) while keeping its own.
        let during = env.machine().kernel().thread_label(client_thread).unwrap();
        assert!(during.owns(daemon_pr));
        assert!(during.owns(client_pr));
        assert_eq!(session.entry.entry_point, 0x4000);

        return_from_service(&mut env, session).unwrap();
        let after = env.machine().kernel().thread_label(client_thread).unwrap();
        assert_eq!(after, before, "the caller gets exactly its old label back");
    }

    #[test]
    fn tainted_gate_call_cannot_write_daemon_state() {
        let (mut env, _init, client, service) = setup();
        let client_thread = env.process(client).unwrap().thread;
        let daemon = env.process(service.provider).unwrap().clone();

        let session = enter_service(&mut env, client, &service, true).unwrap();
        let t = session.taint.unwrap();
        let label = env.machine().kernel().thread_label(client_thread).unwrap();
        assert_eq!(label.level(t), Level::L3, "the call runs tainted in t");

        // Tainted in t, the thread may read the daemon's segments but not
        // modify them: that would leak the caller's data into daemon state.
        let heap_entry = ContainerEntry::new(daemon.internal_container, daemon.heap_segment);
        let kernel = env.machine_mut().kernel_mut();
        assert!(kernel
            .trap_segment_read(client_thread, heap_entry, 0, 8)
            .is_ok());
        assert!(matches!(
            kernel.trap_segment_write(client_thread, heap_entry, 0, b"leak"),
            Err(SyscallError::CannotModify(_))
        ));

        // It can, however, allocate in the donated resource container.
        let rc = session.resource_container.unwrap();
        let scratch_label = Label::builder()
            .set(t, Level::L3)
            .set(
                session.entry.label.owned_categories().next().unwrap_or(t),
                Level::L3,
            )
            .build();
        let _ = scratch_label;
        let tainted_label = Label::builder().set(t, Level::L3).build();
        assert!(kernel
            .trap_segment_create(client_thread, rc.object, tainted_label, 128, "scratch")
            .is_ok());

        return_from_service(&mut env, session).unwrap();
        // Back outside, the caller owns t again and is not tainted.
        let after = env.machine().kernel().thread_label(client_thread).unwrap();
        assert_ne!(after.level(t), Level::L3);
    }

    #[test]
    fn grant_categories_transfers_ownership_via_gate() {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let alice = env.spawn(init, "/bin/alice", None).unwrap();
        let bob = env.spawn(init, "/bin/bob", None).unwrap();
        let alice_thread = env.process(alice).unwrap().thread;
        let bob_thread = env.process(bob).unwrap().thread;
        let c = env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(alice_thread)
            .unwrap();

        assert!(!env
            .machine()
            .kernel()
            .thread_label(bob_thread)
            .unwrap()
            .owns(c));
        grant_categories(&mut env, alice, bob, &[c]).unwrap();
        let label = env.machine().kernel().thread_label(bob_thread).unwrap();
        assert!(label.owns(c));
        assert!(env.process(bob).unwrap().extra_ownership.contains(&c));

        // A process that does not own the category cannot grant it: the
        // kernel refuses to create the gate.
        let mallory = env.spawn(init, "/bin/mallory", None).unwrap();
        let victim = env.spawn(init, "/bin/victim", None).unwrap();
        let other_thread = env.process(init).unwrap().thread;
        let d = env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(other_thread)
            .unwrap();
        assert!(grant_categories(&mut env, mallory, victim, &[d]).is_err());
    }

    #[test]
    fn raise_taint_for_permits_reading_tainted_segments() {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let reader = env.spawn(init, "/bin/reader", None).unwrap();
        let init_thread = env.process(init).unwrap().thread;
        let kroot = env.machine().kernel().root_container();
        let kernel = env.machine_mut().kernel_mut();
        let c = kernel.trap_create_category(init_thread).unwrap();
        let secret = Label::builder().set(c, Level::L2).build();
        let seg = kernel
            .trap_segment_create(init_thread, kroot, secret.clone(), 16, "tainted reply")
            .unwrap();
        kernel
            .trap_segment_write(init_thread, ContainerEntry::new(kroot, seg), 0, b"reply")
            .unwrap();

        let reader_thread = env.process(reader).unwrap().thread;
        let entry = ContainerEntry::new(kroot, seg);
        assert!(env
            .machine_mut()
            .kernel_mut()
            .trap_segment_read(reader_thread, entry, 0, 5)
            .is_err());
        raise_taint_for(&mut env, reader, &secret).unwrap();
        assert_eq!(
            env.machine_mut()
                .kernel_mut()
                .trap_segment_read(reader_thread, entry, 0, 5)
                .unwrap(),
            b"reply"
        );
        // The taint sticks: the reader is now tainted in c.
        let label = env.machine().kernel().thread_label(reader_thread).unwrap();
        assert_eq!(label.level(c), Level::L2);
    }

    #[test]
    fn failed_gate_call_releases_partially_created_spill_objects() {
        // The spill batch does not stop on errors, so the return gate and
        // the resource container may exist even though a later read of
        // the (here: dangling) service gate failed; the error path must
        // release them instead of leaking quota on every failed call.
        let (mut env, _init, client, service) = setup();
        let bogus = ServiceGate {
            gate: ContainerEntry::new(service.gate.container, ObjectId::from_raw(0x5add)),
            provider: service.provider,
        };
        let objects_before = env.machine().kernel().object_count();
        assert!(enter_service(&mut env, client, &bogus, true).is_err());
        assert_eq!(
            env.machine().kernel().object_count(),
            objects_before,
            "failed gate calls must not leak spill objects"
        );
    }

    #[test]
    fn return_gate_requires_the_return_category() {
        let (mut env, init, client, service) = setup();
        let session = enter_service(&mut env, client, &service, false).unwrap();
        let return_gate = session.return_gate;
        // Some other process (without r) cannot invoke the return gate.
        let outsider = env.spawn(init, "/bin/evil", None).unwrap();
        let outsider_thread = env.process(outsider).unwrap().thread;
        let kernel = env.machine_mut().kernel_mut();
        let tl = kernel.thread_label(outsider_thread).unwrap();
        let tc = kernel.thread_clearance(outsider_thread).unwrap();
        assert!(matches!(
            kernel.trap_gate_enter(outsider_thread, return_gate, tl.clone(), tc, tl),
            Err(SyscallError::GateClearance(_))
        ));
        return_from_service(&mut env, session).unwrap();
    }
}
