//! Users as pairs of categories (§5.4).
//!
//! A Unix user in HiStar is nothing more than a pair of categories: `ur`
//! grants read access to the user's private data and `uw` grants write
//! access (and stands in for the user's identity when signalling processes).
//! There is no superuser: "root" is just another user whose categories
//! happen to protect system files, and the administrator's only inherent
//! power is write permission on the root container.

use histar_label::{Category, Label, Level};

/// A Unix user: a name plus its read and write categories.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct User {
    /// The account name.
    pub name: String,
    /// Category protecting the secrecy of the user's data (`ur`).
    pub read_cat: Category,
    /// Category protecting the integrity of the user's data (`uw`).
    pub write_cat: Category,
}

impl User {
    /// The label a thread running with this user's full privilege carries:
    /// `{ur ⋆, uw ⋆, 1}`.
    pub fn privilege_label(&self) -> Label {
        Label::builder()
            .own(self.read_cat)
            .own(self.write_cat)
            .build()
    }

    /// The clearance such a thread typically carries: `{ur 3, uw 3, 2}`.
    pub fn privilege_clearance(&self) -> Label {
        Label::builder()
            .set(self.read_cat, Level::L3)
            .set(self.write_cat, Level::L3)
            .default_level(Level::L2)
            .build()
    }

    /// The label of the user's private files: `{ur 3, uw 0, 1}`.
    pub fn private_file_label(&self) -> Label {
        Label::builder()
            .set(self.read_cat, Level::L3)
            .set(self.write_cat, Level::L0)
            .build()
    }

    /// The label of files the user writes but anyone may read:
    /// `{uw 0, 1}`.
    pub fn protected_file_label(&self) -> Label {
        Label::builder().set(self.write_cat, Level::L0).build()
    }
}

/// The user registry kept by the Unix library (the directory service of
/// §6.2 maps names to authentication gates; this is the library-side view).
#[derive(Clone, Debug, Default)]
pub struct UserTable {
    users: Vec<User>,
}

impl UserTable {
    /// Creates an empty user table.
    pub fn new() -> UserTable {
        UserTable::default()
    }

    /// Adds a user (replacing any existing user of the same name).
    pub fn add(&mut self, user: User) {
        self.users.retain(|u| u.name != user.name);
        self.users.push(user);
    }

    /// Looks up a user by name.
    pub fn lookup(&self, name: &str) -> Option<&User> {
        self.users.iter().find(|u| u.name == name)
    }

    /// All registered users.
    pub fn iter(&self) -> impl Iterator<Item = &User> {
        self.users.iter()
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True if no users are registered.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(name: &str, r: u64, w: u64) -> User {
        User {
            name: name.to_string(),
            read_cat: Category::from_raw(r),
            write_cat: Category::from_raw(w),
        }
    }

    #[test]
    fn labels_match_paper_conventions() {
        let bob = user("bob", 1, 2);
        assert!(bob.privilege_label().owns(bob.read_cat));
        assert!(bob.privilege_label().owns(bob.write_cat));
        let files = bob.private_file_label();
        assert_eq!(files.level(bob.read_cat), Level::L3);
        assert_eq!(files.level(bob.write_cat), Level::L0);
        // The user's threads can read and write their own files.
        assert!(bob.privilege_label().can_modify(&files));
        // An unprivileged thread can do neither.
        let anon = Label::unrestricted();
        assert!(!anon.can_observe(&files));
        assert!(!anon.can_modify(&files));
        // Protected (world-readable) files: readable but not writable.
        let prot = bob.protected_file_label();
        assert!(anon.can_observe(&prot));
        assert!(!anon.can_modify(&prot));
    }

    #[test]
    fn clearance_admits_own_taint() {
        let bob = user("bob", 1, 2);
        // Bob's thread may taint itself up to ur3 to read files shared at
        // that level.
        let cl = bob.privilege_clearance();
        assert_eq!(cl.level(bob.read_cat), Level::L3);
        assert_eq!(cl.default_level(), Level::L2);
    }

    #[test]
    fn user_table_lookup_and_replace() {
        let mut t = UserTable::new();
        assert!(t.is_empty());
        t.add(user("alice", 3, 4));
        t.add(user("bob", 5, 6));
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup("alice").unwrap().read_cat, Category::from_raw(3));
        assert!(t.lookup("carol").is_none());
        // Re-adding replaces.
        t.add(user("alice", 7, 8));
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup("alice").unwrap().read_cat, Category::from_raw(7));
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn multiple_users_cannot_read_each_other() {
        let alice = user("alice", 1, 2);
        let bob = user("bob", 3, 4);
        assert!(!bob
            .privilege_label()
            .can_observe(&alice.private_file_label()));
        assert!(!alice
            .privilege_label()
            .can_observe(&bob.private_file_label()));
        // A single thread can hold both users' privilege at once — something
        // hard to express in Unix (§5.4).
        let both = alice
            .privilege_label()
            .ownership_union(&bob.privilege_label());
        assert!(both.can_observe(&alice.private_file_label()));
        assert!(both.can_observe(&bob.private_file_label()));
    }
}
