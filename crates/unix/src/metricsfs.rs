//! `/metrics`: a label-aware pseudo-filesystem over the kernel's metrics
//! registry.
//!
//! Three namespaces, three gates:
//!
//! * **Global counter files** (`/metrics/kernel`, `dispatch`, `labels`,
//!   `store`, `sched`) aggregate activity across every label in the system, so
//!   reading them is observing the whole machine.  They are gated the
//!   same way `/proc` gates a process: a label-checked syscall against a
//!   dedicated *metrics gate container* created at boot with a secrecy
//!   category only `init` owns.  A thread that cannot observe that
//!   container gets the kernel's `CannotObserve` back.
//! * **Per-task files** (`/metrics/tasks/<pid>`) carry one process's
//!   dispatched-syscall count, framed by that process's label: the gate
//!   is the process's *internal* container, exactly as in `/proc`.
//! * **Per-container files** (`/metrics/containers/<id>`) carry one
//!   container's entry count and quota headroom; the gate is the
//!   container itself — the label of the activity measured is the label
//!   that guards its measurements.
//!
//! Unlike `/proc`, denial on the per-activity namespaces is
//! **indistinguishable from absence**: a failed gate maps to the same
//! `NotFound` a genuinely missing entry produces, and `readdir` silently
//! omits unobservable entries.  A tainted reader learns neither the
//! metrics nor the *existence* of high-secrecy activity; an uncontained
//! reader sees the full set.  Contents are snapshotted at `open`; every
//! subsequent `read` re-runs the gate for its namespace.

use crate::env::UnixError;
use crate::fdtable::{FdKind, FdState, FLAG_RDONLY};
use crate::fs::{DirEntry, FileStat, OpenFlags};
use crate::process::Pid;
use crate::vfs::{Filesystem, FsNode};
use crate::vnode::{FdRef, VfsCtx, Vnode};
use histar_kernel::dispatch::Syscall;
use histar_kernel::object::{ObjectId, OBJECT_ID_MASK};
use histar_label::Label;
use std::collections::BTreeMap;

type Result<T> = core::result::Result<T, UnixError>;

/// The global counter files, in directory order, with the metric-name
/// prefixes each one serves.
const GLOBAL_FILES: [(&str, &[&str]); 5] = [
    ("kernel", &["kernel.", "trace.", "spans."]),
    ("dispatch", &["dispatch."]),
    ("labels", &["label_cache."]),
    ("store", &["store.", "wal.", "disk."]),
    ("sched", &["sched."]),
];

/// Node encoding: `payload << 4 | tag`.  Tag 0 is the special namespace
/// (payload indexes root, the global files and the two directories);
/// tag 1 is a per-task file (payload = pid); tag 2 is a per-container
/// file (payload = an interned index into [`MetricsFs::containers`],
/// because raw container IDs use the full 61-bit space and cannot carry
/// extra tag bits).
const TAG_SPECIAL: u64 = 0;
const TAG_TASK: u64 = 1;
const TAG_CONTAINER: u64 = 2;

const NODE_ROOT: u64 = 0;
const SPECIAL_TASKS_DIR: u64 = 6;
const SPECIAL_CONTAINERS_DIR: u64 = 7;

fn node_of(tag: u64, payload: u64) -> u64 {
    (payload << 4) | tag
}

/// The per-process state the task namespace serves, mirrored from the
/// Unix library's process table like `/proc`'s mirror.
#[derive(Clone, Copy, Debug)]
pub struct TaskInfo {
    /// The process's thread (whose dispatch counter is served).
    pub thread: ObjectId,
    /// The internal container whose label gates the entry.
    pub internal_container: ObjectId,
}

/// The `/metrics` filesystem.
#[derive(Debug)]
pub struct MetricsFs {
    /// The container whose label gates the global counter files.
    gate: ObjectId,
    /// pid → task info, mirrored by the environment.
    tasks: BTreeMap<Pid, TaskInfo>,
    /// Interned container IDs; a container's node payload is its index
    /// here, stable for the lifetime of the mount.
    containers: Vec<ObjectId>,
}

impl MetricsFs {
    /// Creates a metrics filesystem whose global files are gated by
    /// observing `gate` (a container labeled with a secrecy category the
    /// machine's administrator owns).
    pub fn new(gate: ObjectId) -> MetricsFs {
        MetricsFs {
            gate,
            tasks: BTreeMap::new(),
            containers: Vec::new(),
        }
    }

    /// Inserts or refreshes one process's mirrored state.
    pub fn update_task(&mut self, pid: Pid, info: TaskInfo) {
        self.tasks.insert(pid, info);
    }

    /// Removes a reaped process from the namespace.
    pub fn remove_task(&mut self, pid: Pid) {
        self.tasks.remove(&pid);
    }

    fn intern_container(&mut self, id: ObjectId) -> u64 {
        match self.containers.iter().position(|c| *c == id) {
            Some(i) => i as u64,
            None => {
                self.containers.push(id);
                (self.containers.len() - 1) as u64
            }
        }
    }

    /// The gate for a node, given its tag and payload: which container
    /// must be observable, and whether denial must read as absence.
    fn gate_of(&self, tag: u64, payload: u64) -> Result<(ObjectId, bool)> {
        match tag {
            TAG_SPECIAL => Ok((self.gate, false)),
            TAG_TASK => {
                let info = self
                    .tasks
                    .get(&payload)
                    .ok_or_else(|| UnixError::NotFound(format!("{payload}")))?;
                Ok((info.internal_container, true))
            }
            TAG_CONTAINER => {
                let id = self
                    .containers
                    .get(payload as usize)
                    .copied()
                    .ok_or(UnixError::Corrupt("metrics node names no container"))?;
                Ok((id, true))
            }
            _ => Err(UnixError::Corrupt("metrics node tag")),
        }
    }

    /// Runs the label gate for a node.  When `absence` is set, any kernel
    /// denial is flattened to the same `NotFound` a missing entry
    /// produces — the no-existence-channel property.
    fn check_gate(&self, ctx: &mut VfsCtx, tag: u64, payload: u64, name: &str) -> Result<()> {
        let (container, absence) = self.gate_of(tag, payload)?;
        let thread = ctx.thread;
        match ctx.kernel().trap_container_list(thread, container) {
            Ok(_) => Ok(()),
            Err(_) if absence => Err(UnixError::NotFound(name.to_string())),
            Err(e) => Err(e.into()),
        }
    }

    /// Renders one pseudo-file's contents (the open-time snapshot).  The
    /// gate must already have passed.
    fn render(&self, ctx: &mut VfsCtx, tag: u64, payload: u64) -> Result<Vec<u8>> {
        let text = match tag {
            TAG_SPECIAL => {
                let (_, prefixes) = GLOBAL_FILES
                    .get(payload as usize - 1)
                    .ok_or(UnixError::Corrupt("metrics node encodes no file"))?;
                let set = ctx.kernel().metrics();
                let mut out = String::new();
                for m in set.iter() {
                    let full = m.full_name();
                    if prefixes.iter().any(|p| full.starts_with(p)) {
                        out.push_str(&format!("{full}\t{}\n", m.value));
                    }
                }
                out
            }
            TAG_TASK => {
                let info = self
                    .tasks
                    .get(&payload)
                    .ok_or_else(|| UnixError::NotFound(format!("{payload}")))?;
                let syscalls = ctx.kernel().thread_syscalls(info.thread);
                format!("task.pid\t{payload}\ntask.syscalls\t{syscalls}\n")
            }
            TAG_CONTAINER => {
                let id = self
                    .containers
                    .get(payload as usize)
                    .copied()
                    .ok_or(UnixError::Corrupt("metrics node names no container"))?;
                let thread = ctx.thread;
                // These calls are label-checked too: they are the same
                // observe the gate already passed.
                let entries = ctx.kernel().trap_container_list(thread, id)?.len();
                let avail = ctx.kernel().trap_container_quota_avail(thread, id)?;
                format!(
                    "container.id\t{}\ncontainer.entries\t{entries}\ncontainer.quota_avail\t{avail}\n",
                    id.raw()
                )
            }
            _ => return Err(UnixError::Corrupt("metrics node tag")),
        };
        Ok(text.into_bytes())
    }
}

impl Filesystem for MetricsFs {
    fn fs_name(&self) -> &'static str {
        "metricsfs"
    }

    fn root_node(&self) -> u64 {
        NODE_ROOT
    }

    fn lookup(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<FsNode> {
        if dir == NODE_ROOT {
            if let Some(i) = GLOBAL_FILES.iter().position(|(f, _)| *f == name) {
                // The gate sits on open/stat/read, not on lookup: the
                // global file *names* are public, their contents are not.
                return Ok(FsNode {
                    node: node_of(TAG_SPECIAL, i as u64 + 1),
                    is_dir: false,
                });
            }
            return match name {
                "tasks" => Ok(FsNode {
                    node: node_of(TAG_SPECIAL, SPECIAL_TASKS_DIR),
                    is_dir: true,
                }),
                "containers" => Ok(FsNode {
                    node: node_of(TAG_SPECIAL, SPECIAL_CONTAINERS_DIR),
                    is_dir: true,
                }),
                _ => Err(UnixError::NotFound(name.to_string())),
            };
        }
        match (dir & 15, dir >> 4) {
            (TAG_SPECIAL, SPECIAL_TASKS_DIR) => {
                let pid: Pid = name
                    .parse()
                    .map_err(|_| UnixError::NotFound(name.to_string()))?;
                if !self.tasks.contains_key(&pid) {
                    return Err(UnixError::NotFound(name.to_string()));
                }
                // Denied and absent must be the same error before any
                // state is revealed.
                self.check_gate(ctx, TAG_TASK, pid, name)?;
                Ok(FsNode {
                    node: node_of(TAG_TASK, pid),
                    is_dir: false,
                })
            }
            (TAG_SPECIAL, SPECIAL_CONTAINERS_DIR) => {
                let raw: u64 = name
                    .parse()
                    .map_err(|_| UnixError::NotFound(name.to_string()))?;
                if raw > OBJECT_ID_MASK {
                    return Err(UnixError::NotFound(name.to_string()));
                }
                let id = ObjectId::from_raw(raw);
                if !ctx.kernel().container_ids().contains(&id) {
                    return Err(UnixError::NotFound(name.to_string()));
                }
                let payload = self.intern_container(id);
                self.check_gate(ctx, TAG_CONTAINER, payload, name)?;
                Ok(FsNode {
                    node: node_of(TAG_CONTAINER, payload),
                    is_dir: false,
                })
            }
            _ => Err(UnixError::NotFound(name.to_string())),
        }
    }

    fn readdir(&mut self, ctx: &mut VfsCtx, dir: u64) -> Result<Vec<DirEntry>> {
        if dir == NODE_ROOT {
            let mut out: Vec<DirEntry> = GLOBAL_FILES
                .iter()
                .enumerate()
                .map(|(i, (f, _))| DirEntry {
                    name: f.to_string(),
                    object: ObjectId::from_raw(node_of(TAG_SPECIAL, i as u64 + 1)),
                    is_dir: false,
                })
                .collect();
            for (name, payload) in [
                ("tasks", SPECIAL_TASKS_DIR),
                ("containers", SPECIAL_CONTAINERS_DIR),
            ] {
                out.push(DirEntry {
                    name: name.to_string(),
                    object: ObjectId::from_raw(node_of(TAG_SPECIAL, payload)),
                    is_dir: true,
                });
            }
            return Ok(out);
        }
        match (dir & 15, dir >> 4) {
            (TAG_SPECIAL, SPECIAL_TASKS_DIR) => {
                // Silently omit entries the caller may not observe: the
                // listing must not leak the existence of gated activity.
                let pids: Vec<Pid> = self.tasks.keys().copied().collect();
                let mut out = Vec::new();
                for pid in pids {
                    if self.check_gate(ctx, TAG_TASK, pid, "").is_ok() {
                        out.push(DirEntry {
                            name: pid.to_string(),
                            object: ObjectId::from_raw(node_of(TAG_TASK, pid)),
                            is_dir: false,
                        });
                    }
                }
                Ok(out)
            }
            (TAG_SPECIAL, SPECIAL_CONTAINERS_DIR) => {
                let ids = ctx.kernel().container_ids();
                let mut out = Vec::new();
                for id in ids {
                    let payload = self.intern_container(id);
                    if self.check_gate(ctx, TAG_CONTAINER, payload, "").is_ok() {
                        out.push(DirEntry {
                            name: id.raw().to_string(),
                            object: ObjectId::from_raw(node_of(TAG_CONTAINER, payload)),
                            is_dir: false,
                        });
                    }
                }
                Ok(out)
            }
            _ => Err(UnixError::NotADirectory(format!("metrics node {dir:#x}"))),
        }
    }

    fn stat(&mut self, ctx: &mut VfsCtx, _dir: u64, node: FsNode) -> Result<FileStat> {
        let (tag, payload) = (node.node & 15, node.node >> 4);
        let len = if node.is_dir {
            0
        } else {
            self.check_gate(ctx, tag, payload, &payload.to_string())?;
            self.render(ctx, tag, payload)?.len() as u64
        };
        Ok(FileStat {
            object: ObjectId::from_raw(node.node),
            is_dir: node.is_dir,
            len,
        })
    }

    fn open(
        &mut self,
        ctx: &mut VfsCtx,
        dir: u64,
        name: &str,
        _flags: OpenFlags,
        _label: Option<Label>,
    ) -> Result<(FdState, Box<dyn Vnode>)> {
        let node = self.lookup(ctx, dir, name)?;
        if node.is_dir {
            return Err(UnixError::IsADirectory(name.to_string()));
        }
        let (tag, payload) = (node.node & 15, node.node >> 4);
        self.check_gate(ctx, tag, payload, name)?;
        let content = self.render(ctx, tag, payload)?;
        let (gate_container, absence) = self.gate_of(tag, payload)?;
        let state = FdState {
            kind: FdKind::Metrics,
            target: ObjectId::from_raw(node.node),
            target_container: gate_container,
            position: 0,
            flags: FLAG_RDONLY,
            refs: 1,
        };
        Ok((
            state,
            Box::new(MetricsVnode {
                content,
                absence,
                name: name.to_string(),
            }),
        ))
    }

    fn vnode_from_state(&mut self, ctx: &mut VfsCtx, state: &FdState) -> Result<Box<dyn Vnode>> {
        let (tag, payload) = (state.target.raw() & 15, state.target.raw() >> 4);
        let name = payload.to_string();
        self.check_gate(ctx, tag, payload, &name)?;
        let content = self.render(ctx, tag, payload)?;
        let (_, absence) = self.gate_of(tag, payload)?;
        Ok(Box::new(MetricsVnode {
            content,
            absence,
            name,
        }))
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// An open `/metrics` pseudo-file: an open-time snapshot of the rendered
/// counters.  Every read re-runs the gate against the node's container
/// (batched with the seek update, like every hot path); per-activity
/// nodes flatten a denial into `NotFound` so revocation-by-relabeling is
/// as silent as never having existed.
#[derive(Debug)]
pub struct MetricsVnode {
    content: Vec<u8>,
    absence: bool,
    name: String,
}

impl Vnode for MetricsVnode {
    fn read(&mut self, ctx: &mut VfsCtx, fd: &FdRef, state: &FdState, len: u64) -> Result<Vec<u8>> {
        let start = (state.position as usize).min(self.content.len());
        let end = (start as u64)
            .saturating_add(len)
            .min(self.content.len() as u64) as usize;
        let thread = ctx.thread;
        let calls = vec![
            Syscall::ContainerList {
                container: state.target_container,
            },
            fd.position_update(end as u64),
        ];
        let mut results = ctx.kernel().submit_calls(thread, calls).into_iter();
        let gate = results.next().expect("label gate completes");
        let seek = results.next().expect("seek update completes");
        if let Err(e) = gate {
            crate::vnode::undo_seek(ctx, fd, state.position);
            return Err(if self.absence {
                UnixError::NotFound(self.name.clone())
            } else {
                e.into()
            });
        }
        seek?;
        Ok(self.content[start..end].to_vec())
    }

    fn write(
        &mut self,
        _ctx: &mut VfsCtx,
        _fd: &FdRef,
        _state: &FdState,
        _data: &[u8],
    ) -> Result<u64> {
        Err(UnixError::ReadOnly("metricsfs"))
    }

    fn stat(&mut self, _ctx: &mut VfsCtx, state: &FdState) -> Result<FileStat> {
        Ok(FileStat {
            object: state.target,
            is_dir: false,
            len: self.content.len() as u64,
        })
    }
}
