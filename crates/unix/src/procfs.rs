//! `/proc`: a label-filtered pseudo-filesystem exposing per-process
//! state (pid, labels, descriptor table).
//!
//! The root lists one directory per process, named by PID — PIDs are
//! public information (process containers are linked into the kernel
//! root with public labels), so listing `/proc` always succeeds.
//! Everything *inside* a PID directory is gated by the kernel: before a
//! PID directory or any file in it is looked up, stat'ed or read, procfs
//! issues a label-checked system call against that process's *internal*
//! container (`{pr 3, pw 0, 1}`, Figure 6) on the calling thread.  A
//! caller whose label cannot observe the process — any other process,
//! and in particular a tainted observer poking at an untainted victim —
//! gets `CannotObserve` back from the kernel, not from this library;
//! owning the process's `pr` category (the process itself, or anyone it
//! granted `pr` to through a gate) opens the entry.
//!
//! The file *contents* come from the Unix library's own bookkeeping (the
//! library already knows its processes; the kernel knows only objects),
//! refreshed by [`UnixEnv`](crate::env::UnixEnv) as processes are
//! created, exec'd, and reaped.  Contents are snapshotted at `open`;
//! every subsequent `read` re-runs the label check.

use crate::env::UnixError;
use crate::fdtable::{FdKind, FdState, FLAG_RDONLY};
use crate::fs::{DirEntry, FileStat, OpenFlags};
use crate::process::Pid;
use crate::vfs::{Filesystem, FsNode};
use crate::vnode::{FdRef, VfsCtx, Vnode};
use histar_kernel::dispatch::Syscall;
use histar_kernel::object::{ContainerEntry, ObjectId};
use histar_label::Label;
use std::collections::BTreeMap;

type Result<T> = core::result::Result<T, UnixError>;

/// The per-process state procfs serves, mirrored from the Unix library's
/// process table (kernel-side truth is only reachable through labeled
/// objects; this mirror is plain library data).
#[derive(Clone, Debug)]
pub struct ProcInfo {
    /// The process ID.
    pub pid: Pid,
    /// The parent process, if any.
    pub parent: Option<Pid>,
    /// The user the process runs as, if any.
    pub user: Option<String>,
    /// Path of the running executable.
    pub executable: String,
    /// Lifecycle state (`running`, `zombie`, `reaped`).
    pub state: &'static str,
    /// The process's thread.
    pub thread: ObjectId,
    /// The externally visible process container.
    pub process_container: ObjectId,
    /// The internal container — the object the `/proc` label gate checks
    /// observe against.
    pub internal_container: ObjectId,
    /// Number of open file descriptors.
    pub open_fds: u64,
}

/// Files inside a PID directory, in directory order.
const PID_FILES: [&str; 3] = ["status", "label", "fds"];

const NODE_ROOT: u64 = 0;
/// Node encoding: `pid << 3 | file`, where file 0 is the PID directory
/// itself and files 1.. index [`PID_FILES`].
fn node_of(pid: Pid, file: u64) -> u64 {
    (pid << 3) | file
}

/// The `/proc` filesystem.
#[derive(Debug, Default)]
pub struct ProcFs {
    procs: BTreeMap<Pid, ProcInfo>,
}

impl ProcFs {
    /// Creates an empty procfs.
    pub fn new() -> ProcFs {
        ProcFs::default()
    }

    /// Inserts or refreshes one process's mirrored state.
    pub fn update(&mut self, info: ProcInfo) {
        self.procs.insert(info.pid, info);
    }

    /// Applies a closure to one process's mirrored state, if present.
    pub fn update_with(&mut self, pid: Pid, f: impl FnOnce(&mut ProcInfo)) {
        if let Some(info) = self.procs.get_mut(&pid) {
            f(info);
        }
    }

    /// Removes a reaped process from the namespace.
    pub fn remove(&mut self, pid: Pid) {
        self.procs.remove(&pid);
    }

    fn info(&self, pid: Pid) -> Result<&ProcInfo> {
        self.procs
            .get(&pid)
            .ok_or_else(|| UnixError::NotFound(format!("{pid}")))
    }

    /// The label gate: a kernel call on the *caller's* thread that
    /// requires observing the process's internal container.  This is
    /// where `/proc` becomes label-filtered — the check is the kernel's,
    /// not this library's.
    fn check_observe(&self, ctx: &mut VfsCtx, pid: Pid) -> Result<()> {
        let internal = self.info(pid)?.internal_container;
        let thread = ctx.thread;
        ctx.kernel().trap_container_list(thread, internal)?;
        Ok(())
    }

    /// Renders one pseudo-file's contents (the open-time snapshot).
    fn render(&self, ctx: &mut VfsCtx, pid: Pid, file: u64) -> Result<Vec<u8>> {
        let info = self.info(pid)?;
        let text = match file {
            1 => {
                let parent = info
                    .parent
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".to_string());
                let user = info.user.as_deref().unwrap_or("-");
                format!(
                    "pid:\t{}\nparent:\t{}\nuser:\t{}\nexe:\t{}\nstate:\t{}\n",
                    info.pid, parent, user, info.executable, info.state
                )
            }
            2 => {
                let thread = ctx.thread;
                let label = ctx.kernel().trap_thread_get_label(
                    thread,
                    ContainerEntry::new(info.process_container, info.thread),
                )?;
                format!("{label}\n")
            }
            3 => format!("open fds:\t{}\n", info.open_fds),
            _ => return Err(UnixError::Corrupt("procfs node encodes no file")),
        };
        Ok(text.into_bytes())
    }
}

impl Filesystem for ProcFs {
    fn fs_name(&self) -> &'static str {
        "procfs"
    }

    fn root_node(&self) -> u64 {
        NODE_ROOT
    }

    fn lookup(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<FsNode> {
        if dir == NODE_ROOT {
            let pid: Pid = name
                .parse()
                .map_err(|_| UnixError::NotFound(name.to_string()))?;
            self.info(pid)?;
            // Entering a PID directory is where the label gate sits.
            self.check_observe(ctx, pid)?;
            return Ok(FsNode {
                node: node_of(pid, 0),
                is_dir: true,
            });
        }
        let pid = dir >> 3;
        self.check_observe(ctx, pid)?;
        let file = PID_FILES
            .iter()
            .position(|f| *f == name)
            .ok_or_else(|| UnixError::NotFound(name.to_string()))?;
        Ok(FsNode {
            node: node_of(pid, file as u64 + 1),
            is_dir: false,
        })
    }

    fn readdir(&mut self, ctx: &mut VfsCtx, dir: u64) -> Result<Vec<DirEntry>> {
        if dir == NODE_ROOT {
            return Ok(self
                .procs
                .keys()
                .map(|pid| DirEntry {
                    name: pid.to_string(),
                    object: ObjectId::from_raw(node_of(*pid, 0)),
                    is_dir: true,
                })
                .collect());
        }
        let pid = dir >> 3;
        self.check_observe(ctx, pid)?;
        Ok(PID_FILES
            .iter()
            .enumerate()
            .map(|(i, f)| DirEntry {
                name: f.to_string(),
                object: ObjectId::from_raw(node_of(pid, i as u64 + 1)),
                is_dir: false,
            })
            .collect())
    }

    fn stat(&mut self, ctx: &mut VfsCtx, _dir: u64, node: FsNode) -> Result<FileStat> {
        let pid = node.node >> 3;
        let file = node.node & 7;
        if node.node != NODE_ROOT {
            self.check_observe(ctx, pid)?;
        }
        let len = if node.is_dir || node.node == NODE_ROOT {
            0
        } else {
            self.render(ctx, pid, file)?.len() as u64
        };
        Ok(FileStat {
            object: ObjectId::from_raw(node.node),
            is_dir: node.is_dir,
            len,
        })
    }

    fn open(
        &mut self,
        ctx: &mut VfsCtx,
        dir: u64,
        name: &str,
        _flags: OpenFlags,
        _label: Option<Label>,
    ) -> Result<(FdState, Box<dyn Vnode>)> {
        let node = self.lookup(ctx, dir, name)?;
        if node.is_dir {
            return Err(UnixError::IsADirectory(name.to_string()));
        }
        let pid = node.node >> 3;
        let file = node.node & 7;
        let content = self.render(ctx, pid, file)?;
        let internal = self.info(pid)?.internal_container;
        let state = FdState {
            kind: FdKind::Proc,
            target: ObjectId::from_raw(node.node),
            target_container: internal,
            position: 0,
            flags: FLAG_RDONLY,
            refs: 1,
        };
        Ok((state, Box::new(ProcVnode { content })))
    }

    fn vnode_from_state(&mut self, ctx: &mut VfsCtx, state: &FdState) -> Result<Box<dyn Vnode>> {
        let pid = state.target.raw() >> 3;
        let file = state.target.raw() & 7;
        self.check_observe(ctx, pid)?;
        let content = self.render(ctx, pid, file)?;
        Ok(Box::new(ProcVnode { content }))
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// An open `/proc` pseudo-file: an open-time snapshot of the rendered
/// text.  Every read re-runs the kernel label check against the
/// process's internal container (named by the descriptor's
/// `target_container`) before serving bytes, batched with the
/// descriptor's seek update.
#[derive(Debug)]
pub struct ProcVnode {
    content: Vec<u8>,
}

impl Vnode for ProcVnode {
    fn read(&mut self, ctx: &mut VfsCtx, fd: &FdRef, state: &FdState, len: u64) -> Result<Vec<u8>> {
        // `len` is untrusted: clamp before any arithmetic can overflow.
        let start = (state.position as usize).min(self.content.len());
        let end = (start as u64)
            .saturating_add(len)
            .min(self.content.len() as u64) as usize;
        // The label gate and the seek update cross the boundary as one
        // batch; the gate must pass before bytes are served.
        let thread = ctx.thread;
        let calls = vec![
            Syscall::ContainerList {
                container: state.target_container,
            },
            fd.position_update(end as u64),
        ];
        let mut results = ctx.kernel().submit_calls(thread, calls).into_iter();
        let gate = results.next().expect("label gate completes");
        let seek = results.next().expect("seek update completes");
        if let Err(e) = gate {
            // Batches have no rollback: undo the optimistic seek update
            // so a denied read does not move the shared position.
            crate::vnode::undo_seek(ctx, fd, state.position);
            return Err(e.into());
        }
        seek?;
        Ok(self.content[start..end].to_vec())
    }

    fn write(
        &mut self,
        _ctx: &mut VfsCtx,
        _fd: &FdRef,
        _state: &FdState,
        _data: &[u8],
    ) -> Result<u64> {
        Err(UnixError::ReadOnly("procfs"))
    }

    fn stat(&mut self, _ctx: &mut VfsCtx, state: &FdState) -> Result<FileStat> {
        Ok(FileStat {
            object: state.target,
            is_dir: false,
            len: self.content.len() as u64,
        })
    }
}
