//! The VFS layer: a real mount table over pluggable [`Filesystem`]s.
//!
//! Path resolution happens in exactly one place — [`Vfs::normalize`] +
//! [`Vfs::resolve`] — so trailing slashes, repeated `/`, `.`/`..`
//! components (including `..` at the root and `..` walking back out of a
//! mount point) behave identically for every operation.  Normalization is
//! lexical, as in the paper's library: `..` is resolved against the path
//! string before any lookup runs, which is also what lets a path escape a
//! mount point — the mount table is consulted afresh for the normalized
//! result.
//!
//! A [`Filesystem`] names its objects with opaque `u64` node IDs (the
//! segment/container object ID for [`SegFs`](crate::segfs::SegFs),
//! synthetic IDs for `/proc` and `/dev`).  The VFS walks directories via
//! `lookup`, then hands the final component to the owning filesystem.
//! Label enforcement stays in the kernel: every lookup/readdir/open a
//! filesystem performs issues system calls on the calling thread, so a
//! caller that may not observe a directory (or a `/proc` entry) gets
//! `CannotObserve` from the kernel, not from this library.

use crate::env::UnixError;
use crate::fdtable::FdState;
use crate::fs::{join_path, DirEntry, FileStat, OpenFlags};
use crate::vnode::{VfsCtx, Vnode};
use histar_kernel::kernel::PAGE_SIZE;
use histar_kernel::object::ObjectId;
use histar_label::Label;

type Result<T> = core::result::Result<T, UnixError>;

/// Initial quota handed to each directory container; the library tops
/// directories up automatically from their ancestors as they fill.
pub const DIRECTORY_QUOTA: u64 = 4 * 1024 * 1024;

/// Index of a mounted filesystem inside a [`Vfs`].
pub type FsId = usize;

/// A node within one filesystem, as returned by [`Filesystem::lookup`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsNode {
    /// The filesystem-local node ID.
    pub node: u64,
    /// True if the node is a directory.
    pub is_dir: bool,
}

/// One mountable filesystem.  All methods run on behalf of `ctx.thread`;
/// implementations must only reach kernel state through system calls so
/// the kernel's label checks always apply to the actual caller.
pub trait Filesystem: core::fmt::Debug {
    /// A short name for diagnostics (`"segfs"`, `"procfs"`, `"devfs"`).
    fn fs_name(&self) -> &'static str;

    /// The node ID of the filesystem's root directory.
    fn root_node(&self) -> u64;

    /// Looks up `name` inside directory node `dir`.
    fn lookup(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<FsNode>;

    /// Lists directory node `dir`.
    fn readdir(&mut self, ctx: &mut VfsCtx, dir: u64) -> Result<Vec<DirEntry>>;

    /// `stat` of a node previously returned by [`Filesystem::lookup`]
    /// from directory `dir` (the directory is how segment-backed files
    /// are named for the kernel's checks).
    fn stat(&mut self, ctx: &mut VfsCtx, dir: u64, node: FsNode) -> Result<FileStat>;

    /// Creates a directory named `name` under `dir`.
    fn mkdir(
        &mut self,
        _ctx: &mut VfsCtx,
        _dir: u64,
        _name: &str,
        _label: Option<Label>,
    ) -> Result<u64> {
        Err(UnixError::ReadOnly(self.fs_name()))
    }

    /// Removes the entry `name` from `dir`.
    fn unlink(&mut self, _ctx: &mut VfsCtx, _dir: u64, _name: &str) -> Result<()> {
        Err(UnixError::ReadOnly(self.fs_name()))
    }

    /// Renames `from` (under `dir_from`) to `to` (under `dir_to`), both
    /// directories belonging to this filesystem.
    fn rename(
        &mut self,
        _ctx: &mut VfsCtx,
        _dir_from: u64,
        _from: &str,
        _dir_to: u64,
        _to: &str,
    ) -> Result<()> {
        Err(UnixError::ReadOnly(self.fs_name()))
    }

    /// Opens (or creates, according to `flags`) `name` under `dir`,
    /// returning the descriptor-state template and the vnode that will
    /// serve its I/O.
    fn open(
        &mut self,
        ctx: &mut VfsCtx,
        dir: u64,
        name: &str,
        flags: OpenFlags,
        label: Option<Label>,
    ) -> Result<(FdState, Box<dyn Vnode>)>;

    /// Rebuilds the vnode for a descriptor that was opened on this
    /// filesystem (after `fork`, or when the in-memory vnode cache was
    /// dropped); `state` is the decoded descriptor segment.
    fn vnode_from_state(&mut self, ctx: &mut VfsCtx, state: &FdState) -> Result<Box<dyn Vnode>>;

    /// Makes `name` under `dir` (and the directory naming it) durable.
    fn fsync(&mut self, _ctx: &mut VfsCtx, _dir: u64, _name: &str) -> Result<()> {
        Ok(())
    }

    /// The store keys `fsync` of `name` under `dir` would make durable,
    /// or `Ok(None)` if this filesystem has no store-backed sync step
    /// (the default).  Callers syncing several paths collect each path's
    /// keys and issue ONE `persist_sync`, so the whole group rides a
    /// single WAL frame (group commit) instead of one append per file.
    fn sync_keys(&mut self, _ctx: &mut VfsCtx, _dir: u64, _name: &str) -> Result<Option<Vec<u64>>> {
        Ok(None)
    }

    /// Downcast hook (the environment uses it to reach `procfs`'s process
    /// mirror and `segfs`'s quota helpers).
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any;
}

/// The result of resolving a path to its parent directory: which
/// filesystem owns it, the parent's node, and the final component.
#[derive(Clone, Debug)]
pub struct ResolvedParent {
    /// The owning filesystem.
    pub fs: FsId,
    /// The parent directory's node ID.
    pub dir: u64,
    /// The final path component.
    pub name: String,
    /// The normalized absolute components of the full path.
    pub comps: Vec<String>,
}

/// The mount layer: filesystems overlaid onto the path namespace.
#[derive(Debug, Default)]
pub struct Vfs {
    filesystems: Vec<Box<dyn Filesystem>>,
    /// `(mount components, filesystem)`; resolution takes the longest
    /// matching prefix.  The root mount is `([], fs)`.
    mounts: Vec<(Vec<String>, FsId)>,
}

impl Vfs {
    /// Creates a VFS with `root` mounted at `/`.
    pub fn new(root: Box<dyn Filesystem>) -> Vfs {
        let mut vfs = Vfs::default();
        let id = vfs.add_filesystem(root);
        vfs.mounts.push((Vec::new(), id));
        vfs
    }

    /// Registers a filesystem without mounting it, returning its ID.
    pub fn add_filesystem(&mut self, fs: Box<dyn Filesystem>) -> FsId {
        self.filesystems.push(fs);
        self.filesystems.len() - 1
    }

    /// Mounts a registered filesystem at an absolute path, replacing any
    /// previous mount at exactly that path.
    pub fn mount(&mut self, path: &str, fs: FsId) {
        let comps = Vfs::normalize("/", path);
        self.mounts.retain(|(p, _)| *p != comps);
        self.mounts.push((comps, fs));
    }

    /// Removes the mount at exactly `path`, returning the filesystem that
    /// was mounted there.  The root mount cannot be removed.
    pub fn unmount(&mut self, path: &str) -> Option<FsId> {
        let comps = Vfs::normalize("/", path);
        if comps.is_empty() {
            return None;
        }
        let idx = self.mounts.iter().position(|(p, _)| *p == comps)?;
        Some(self.mounts.remove(idx).1)
    }

    /// Number of mounts (including the root).
    pub fn mount_count(&self) -> usize {
        self.mounts.len()
    }

    /// Mutable access to a mounted filesystem.
    pub fn filesystem_mut(&mut self, fs: FsId) -> &mut dyn Filesystem {
        self.filesystems[fs].as_mut()
    }

    /// Finds the first registered filesystem downcastable to `F`.
    pub fn find_fs_mut<F: 'static>(&mut self) -> Option<&mut F> {
        self.filesystems
            .iter_mut()
            .find_map(|f| f.as_any_mut().downcast_mut::<F>())
    }

    /// The ID of an already-registered [`SegFs`](crate::segfs::SegFs)
    /// rooted at `root`, if any — remounting the same container reuses
    /// its filesystem instead of registering a duplicate.
    pub fn segfs_with_root(&mut self, root: histar_kernel::object::ObjectId) -> Option<FsId> {
        self.filesystems.iter_mut().position(|f| {
            f.as_any_mut()
                .downcast_mut::<crate::segfs::SegFs>()
                .is_some_and(|s| s.root_container() == root)
        })
    }

    // ----- path normalization (the one place) ---------------------------

    /// Normalizes `path` (absolute or relative to `cwd`) into absolute
    /// components: repeated and trailing `/` collapse, `.` disappears,
    /// `..` pops a component (and is a no-op at the root).  This is the
    /// single path parser every file operation goes through.
    pub fn normalize(cwd: &str, path: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let absolute = path.starts_with('/');
        if !absolute {
            for comp in cwd.split('/') {
                match comp {
                    "" | "." => {}
                    ".." => {
                        out.pop();
                    }
                    other => out.push(other.to_string()),
                }
            }
        }
        for comp in path.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    out.pop();
                }
                other => out.push(other.to_string()),
            }
        }
        out
    }

    /// The longest mount prefix of `comps`: the owning filesystem and how
    /// many leading components the mount consumes.
    fn mount_for(&self, comps: &[String]) -> (FsId, usize) {
        let mut best: (FsId, usize) = (0, 0);
        let mut found = false;
        for (prefix, fs) in &self.mounts {
            if prefix.len() <= comps.len()
                && comps[..prefix.len()] == prefix[..]
                && (!found || prefix.len() >= best.1)
            {
                best = (*fs, prefix.len());
                found = true;
            }
        }
        best
    }

    /// Resolves normalized components to a directory node, walking
    /// through the owning filesystem.
    fn resolve_dir_comps(&mut self, ctx: &mut VfsCtx, comps: &[String]) -> Result<(FsId, u64)> {
        let (fs, consumed) = self.mount_for(comps);
        let mut node = self.filesystems[fs].root_node();
        for (i, comp) in comps.iter().enumerate().skip(consumed) {
            let found = self.filesystems[fs]
                .lookup(ctx, node, comp)
                .map_err(|e| match e {
                    UnixError::NotFound(_) => UnixError::NotFound(join_path(&comps[..=i])),
                    other => other,
                })?;
            if !found.is_dir {
                return Err(UnixError::NotADirectory(comp.clone()));
            }
            node = found.node;
        }
        Ok((fs, node))
    }

    /// Resolves a path to its existing directory node (for `chdir`,
    /// `readdir`).
    pub fn resolve_dir(&mut self, ctx: &mut VfsCtx, cwd: &str, path: &str) -> Result<(FsId, u64)> {
        let comps = Vfs::normalize(cwd, path);
        self.resolve_dir_comps(ctx, &comps)
    }

    /// Resolves a path to its parent directory and final component.
    pub fn resolve_parent(
        &mut self,
        ctx: &mut VfsCtx,
        cwd: &str,
        path: &str,
    ) -> Result<ResolvedParent> {
        let comps = Vfs::normalize(cwd, path);
        if comps.is_empty() {
            return Err(UnixError::Unsupported("path resolves to the root itself"));
        }
        // A path that exactly names a mount point has no meaningful
        // parent: creating/removing/renaming the entry *under* the mount
        // would silently operate on a name the mount table shadows.
        // Callers that want the mounted root (stat, open-as-directory)
        // handle the exact-mount case before resolving the parent.
        if self
            .mounts
            .iter()
            .any(|(p, _)| !p.is_empty() && *p == comps)
        {
            return Err(UnixError::Unsupported("path names a mount point"));
        }
        let (dir_comps, name) = comps.split_at(comps.len() - 1);
        let (fs, dir) = self.resolve_dir_comps(ctx, dir_comps)?;
        Ok(ResolvedParent {
            fs,
            dir,
            name: name[0].clone(),
            comps,
        })
    }

    // ----- façade operations -------------------------------------------

    /// Opens (or creates) a file, returning the descriptor-state template
    /// and its vnode.
    pub fn open(
        &mut self,
        ctx: &mut VfsCtx,
        cwd: &str,
        path: &str,
        flags: OpenFlags,
        label: Option<Label>,
    ) -> Result<(FdState, Box<dyn Vnode>)> {
        // A path that exactly names a mount point opens the mounted
        // root, which is a directory.
        let comps = Vfs::normalize(cwd, path);
        let (_, consumed) = self.mount_for(&comps);
        if consumed == comps.len() {
            return Err(UnixError::IsADirectory(join_path(&comps)));
        }
        let r = self.resolve_parent(ctx, cwd, path)?;
        self.filesystems[r.fs]
            .open(ctx, r.dir, &r.name, flags, label)
            .map_err(|e| annotate_path(e, &r.comps))
    }

    /// Creates a directory, returning its filesystem-local node ID.
    pub fn mkdir(
        &mut self,
        ctx: &mut VfsCtx,
        cwd: &str,
        path: &str,
        label: Option<Label>,
    ) -> Result<u64> {
        let r = self.resolve_parent(ctx, cwd, path)?;
        self.filesystems[r.fs]
            .mkdir(ctx, r.dir, &r.name, label)
            .map_err(|e| annotate_path(e, &r.comps))
    }

    /// `stat` on a path.
    pub fn stat(&mut self, ctx: &mut VfsCtx, cwd: &str, path: &str) -> Result<FileStat> {
        let comps = Vfs::normalize(cwd, path);
        let (fs, consumed) = self.mount_for(&comps);
        if consumed == comps.len() {
            // The path names a mount point (or the root): stat the
            // mounted filesystem's root directly.
            let root = self.filesystems[fs].root_node();
            return self.filesystems[fs].stat(
                ctx,
                root,
                FsNode {
                    node: root,
                    is_dir: true,
                },
            );
        }
        let r = self.resolve_parent(ctx, cwd, path)?;
        let node = self.filesystems[r.fs]
            .lookup(ctx, r.dir, &r.name)
            .map_err(|e| annotate_path(e, &r.comps))?;
        self.filesystems[r.fs].stat(ctx, r.dir, node)
    }

    /// Lists a directory.
    pub fn readdir(&mut self, ctx: &mut VfsCtx, cwd: &str, path: &str) -> Result<Vec<DirEntry>> {
        let (fs, dir) = self.resolve_dir(ctx, cwd, path)?;
        self.filesystems[fs].readdir(ctx, dir)
    }

    /// Removes a file or (empty) directory entry.
    pub fn unlink(&mut self, ctx: &mut VfsCtx, cwd: &str, path: &str) -> Result<()> {
        let r = self.resolve_parent(ctx, cwd, path)?;
        self.filesystems[r.fs]
            .unlink(ctx, r.dir, &r.name)
            .map_err(|e| annotate_path(e, &r.comps))
    }

    /// Renames `from` to `to`.  Both paths must resolve into the *same*
    /// mounted filesystem: a rename would otherwise have to move bytes
    /// between unrelated object namespaces, so it fails with
    /// [`UnixError::CrossMount`] before either directory is touched.
    pub fn rename(&mut self, ctx: &mut VfsCtx, cwd: &str, from: &str, to: &str) -> Result<()> {
        let rf = self.resolve_parent(ctx, cwd, from)?;
        let rt = self.resolve_parent(ctx, cwd, to)?;
        if rf.fs != rt.fs {
            return Err(UnixError::CrossMount {
                from: join_path(&rf.comps),
                to: join_path(&rt.comps),
            });
        }
        self.filesystems[rf.fs]
            .rename(ctx, rf.dir, &rf.name, rt.dir, &rt.name)
            .map_err(|e| annotate_path(e, &rf.comps))
    }

    /// `fsync` on a path.
    pub fn fsync_path(&mut self, ctx: &mut VfsCtx, cwd: &str, path: &str) -> Result<()> {
        let r = self.resolve_parent(ctx, cwd, path)?;
        self.filesystems[r.fs].fsync(ctx, r.dir, &r.name)
    }

    /// The store keys an `fsync` of `path` would sync, or `None` when the
    /// owning filesystem has no store-backed sync (see
    /// [`Filesystem::sync_keys`]).
    pub fn sync_keys_path(
        &mut self,
        ctx: &mut VfsCtx,
        cwd: &str,
        path: &str,
    ) -> Result<Option<Vec<u64>>> {
        let r = self.resolve_parent(ctx, cwd, path)?;
        self.filesystems[r.fs].sync_keys(ctx, r.dir, &r.name)
    }

    /// Rebuilds the vnode for a decoded descriptor state.  File-backed
    /// descriptors are owned by the filesystem that can serve their
    /// object; descriptor kinds that live outside any filesystem (pipes,
    /// console, sockets) are built here.
    pub fn vnode_from_state(
        &mut self,
        ctx: &mut VfsCtx,
        state: &FdState,
    ) -> Result<Box<dyn Vnode>> {
        use crate::fdtable::FdKind;
        use crate::vnode::{ConsoleVnode, PipeVnode, SocketVnode};
        match state.kind {
            FdKind::PipeRead | FdKind::PipeWrite => Ok(Box::new(PipeVnode)),
            FdKind::Console => {
                let device = ctx.machine.console_device();
                let kroot = ctx.machine.kernel().root_container();
                Ok(Box::new(ConsoleVnode::new(device, kroot)))
            }
            FdKind::Socket => Ok(Box::new(SocketVnode)),
            FdKind::File => {
                // Any SegFs can rebuild a file vnode: the descriptor
                // state names the object directly.
                for f in &mut self.filesystems {
                    if f.as_any_mut()
                        .downcast_mut::<crate::segfs::SegFs>()
                        .is_some()
                    {
                        return f.vnode_from_state(ctx, state);
                    }
                }
                Err(UnixError::Corrupt("file descriptor with no segfs mounted"))
            }
            FdKind::Dev => {
                for f in &mut self.filesystems {
                    if f.as_any_mut()
                        .downcast_mut::<crate::devfs::DevFs>()
                        .is_some()
                    {
                        return f.vnode_from_state(ctx, state);
                    }
                }
                Err(UnixError::Corrupt("dev descriptor with no devfs mounted"))
            }
            FdKind::Proc => {
                for f in &mut self.filesystems {
                    if f.as_any_mut()
                        .downcast_mut::<crate::procfs::ProcFs>()
                        .is_some()
                    {
                        return f.vnode_from_state(ctx, state);
                    }
                }
                Err(UnixError::Corrupt("proc descriptor with no procfs mounted"))
            }
            FdKind::Metrics => {
                for f in &mut self.filesystems {
                    if f.as_any_mut()
                        .downcast_mut::<crate::metricsfs::MetricsFs>()
                        .is_some()
                    {
                        return f.vnode_from_state(ctx, state);
                    }
                }
                Err(UnixError::Corrupt(
                    "metrics descriptor with no metricsfs mounted",
                ))
            }
            FdKind::Persist => {
                for f in &mut self.filesystems {
                    if f.as_any_mut()
                        .downcast_mut::<crate::persistfs::PersistFs>()
                        .is_some()
                    {
                        return f.vnode_from_state(ctx, state);
                    }
                }
                Err(UnixError::Corrupt(
                    "persist descriptor with no persistfs mounted",
                ))
            }
        }
    }
}

/// Rewrites `NotFound`/`Exists`/`IsADirectory` errors raised by a
/// filesystem on its final component with the full path the caller used.
fn annotate_path(e: UnixError, comps: &[String]) -> UnixError {
    match e {
        UnixError::NotFound(_) => UnixError::NotFound(join_path(comps)),
        UnixError::Exists(_) => UnixError::Exists(join_path(comps)),
        UnixError::IsADirectory(_) => UnixError::IsADirectory(join_path(comps)),
        other => other,
    }
}

/// Automatic quota management (§3.3): tops a container up from its
/// ancestors so at least `need` bytes are available, moving quota down
/// the hierarchy from the root (whose quota is infinite).
pub fn ensure_quota(ctx: &mut VfsCtx, container: ObjectId, need: u64) -> Result<()> {
    let thread = ctx.thread;
    let avail = ctx.kernel().trap_container_quota_avail(thread, container)?;
    if avail >= need {
        return Ok(());
    }
    let grant = (need - avail).max(DIRECTORY_QUOTA);
    let parent = ctx.kernel().trap_container_get_parent(thread, container)?;
    ensure_quota(ctx, parent, grant)?;
    ctx.kernel()
        .trap_quota_move(thread, parent, container, grant as i64)?;
    Ok(())
}

/// Quota headroom demanded before creating a file or directory entry.
pub const CREATE_HEADROOM: u64 = 2 * PAGE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    fn n(cwd: &str, path: &str) -> String {
        join_path(&Vfs::normalize(cwd, path))
    }

    #[test]
    fn normalization_edge_cases() {
        // Repeated and trailing slashes.
        assert_eq!(n("/", "//a///b//"), "/a/b");
        assert_eq!(n("/", "/a/b/"), "/a/b");
        // `.` components.
        assert_eq!(n("/", "/a/./b/."), "/a/b");
        assert_eq!(n("/a/b", "./c/./d"), "/a/b/c/d");
        // `..` components, including at the root.
        assert_eq!(n("/", ".."), "/");
        assert_eq!(n("/", "/../../x"), "/x");
        assert_eq!(n("/a/b", "../c"), "/a/c");
        assert_eq!(n("/a/b", "../../../.."), "/");
        // Relative paths against a cwd that has redundant slashes.
        assert_eq!(n("/a//b/", "c"), "/a/b/c");
        // Absolute paths ignore the cwd entirely.
        assert_eq!(n("/deep/down", "/top"), "/top");
        // Empty path = the cwd itself.
        assert_eq!(n("/a/b", ""), "/a/b");
        // `..` escaping a mount point is lexical: normalize first, then
        // the mount table sees the escaped path.
        assert_eq!(n("/proc/5", ".."), "/proc");
        assert_eq!(n("/proc/5", "../.."), "/");
        assert_eq!(n("/proc", "../dev/null"), "/dev/null");
    }
}
