//! File descriptors as segments (§5.3).
//!
//! All of the state normally kept inside a Unix kernel for an open file —
//! the current seek position, the open flags, the identity of the underlying
//! object — lives in a *file descriptor segment*.  Sharing a descriptor
//! across processes (e.g. across `fork`) just means mapping the same
//! descriptor segment; the descriptor is deallocated when every process has
//! closed it, because containers double-charge and hard-link it.

use histar_kernel::object::ObjectId;
use histar_store::codec::{Decoder, Encoder};

/// A file descriptor number.
pub type Fd = u32;

/// What an open descriptor refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FdKind {
    /// A regular file backed by a segment.
    File,
    /// The read end of a pipe.
    PipeRead,
    /// The write end of a pipe.
    PipeWrite,
    /// A console/TTY device.
    Console,
    /// A network socket serviced by netd through a gate.
    Socket,
    /// A `/dev` pseudo-device (null, zero, urandom); `target` holds the
    /// device filesystem's node ID.
    Dev,
    /// A `/proc` pseudo-file; `target` holds the proc filesystem's node
    /// ID and `target_container` the process's internal container (the
    /// object the label check runs against on every access).
    Proc,
    /// A file on the store-backed persistent filesystem; `target` holds
    /// the inode number and `target_container` the directory inode it was
    /// opened through.  The backing records live in the single-level
    /// store's persist namespace, not in the kernel object heap.
    Persist,
    /// A `/metrics` pseudo-file; `target` holds the metrics filesystem's
    /// node ID and `target_container` the container whose label gates the
    /// entry (re-checked on every read).
    Metrics,
}

impl FdKind {
    fn tag(self) -> u8 {
        match self {
            FdKind::File => 0,
            FdKind::PipeRead => 1,
            FdKind::PipeWrite => 2,
            FdKind::Console => 3,
            FdKind::Socket => 4,
            FdKind::Dev => 5,
            FdKind::Proc => 6,
            FdKind::Persist => 7,
            FdKind::Metrics => 8,
        }
    }

    fn from_tag(tag: u8) -> Option<FdKind> {
        Some(match tag {
            0 => FdKind::File,
            1 => FdKind::PipeRead,
            2 => FdKind::PipeWrite,
            3 => FdKind::Console,
            4 => FdKind::Socket,
            5 => FdKind::Dev,
            6 => FdKind::Proc,
            7 => FdKind::Persist,
            8 => FdKind::Metrics,
            _ => return None,
        })
    }

    /// True for the write end of a pipe.
    pub fn is_pipe_write(self) -> bool {
        self == FdKind::PipeWrite
    }
}

/// The contents of one file-descriptor segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FdState {
    /// What the descriptor refers to.
    pub kind: FdKind,
    /// Object ID of the underlying object (file segment, pipe segment,
    /// device, or socket state segment).
    pub target: ObjectId,
    /// Container in which the target is linked (so the entry can be named).
    pub target_container: ObjectId,
    /// Current seek position (files only).
    pub position: u64,
    /// Open flags (append, nonblock, ...), as a bitmask.
    pub flags: u32,
    /// Reference count: how many processes hold this descriptor open.
    pub refs: u32,
}

/// Encoded size of [`FdState`] in its segment: the layout is fixed
/// (`u8` kind, `u64` target, `u64` container, `u64` position, `u32`
/// flags, `u32` refs) so hot paths can read it in one call and patch
/// single fields in place.
pub const FD_STATE_LEN: u64 = 1 + 8 + 8 + 8 + 4 + 4;
/// Byte offset of the seek position inside the encoded [`FdState`] — the
/// 8 bytes the vnode hot paths overwrite in the same submission batch as
/// their data operation.
pub const FD_POSITION_OFFSET: u64 = 1 + 8 + 8;

/// Flag bit: writes always append.
pub const FLAG_APPEND: u32 = 1 << 0;
/// Flag bit: reads/writes never block (pipes report would-block instead).
pub const FLAG_NONBLOCK: u32 = 1 << 1;
/// Flag bit: descriptor was opened read-only.
pub const FLAG_RDONLY: u32 = 1 << 2;
/// Flag bit: descriptor was opened write-only.
pub const FLAG_WRONLY: u32 = 1 << 3;
/// Flag bit (sockets): this descriptor is the *server* side of a
/// connection — it reads ring 0 (client→server) and writes ring 1.
/// Absent, the descriptor is the client side and the rings swap roles.
pub const FLAG_SOCK_SERVER: u32 = 1 << 4;
/// Flag bit (sockets): a listening socket; `target` is the accept-queue
/// segment netd enqueues new connections into, not a connection.
pub const FLAG_SOCK_LISTEN: u32 = 1 << 5;

impl FdState {
    /// Serializes the descriptor state into the bytes stored in its segment.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(self.kind.tag())
            .put_u64(self.target.raw())
            .put_u64(self.target_container.raw())
            .put_u64(self.position)
            .put_u32(self.flags)
            .put_u32(self.refs);
        e.finish()
    }

    /// Decodes descriptor state previously produced by [`FdState::encode`].
    pub fn decode(bytes: &[u8]) -> Option<FdState> {
        let mut d = Decoder::new(bytes);
        let kind = FdKind::from_tag(d.get_u8().ok()?)?;
        let target = ObjectId::from_raw(d.get_u64().ok()?);
        let target_container = ObjectId::from_raw(d.get_u64().ok()?);
        let position = d.get_u64().ok()?;
        let flags = d.get_u32().ok()?;
        let refs = d.get_u32().ok()?;
        Some(FdState {
            kind,
            target,
            target_container,
            position,
            flags,
            refs,
        })
    }
}

/// The per-process descriptor table: a mapping from descriptor numbers to
/// descriptor-segment object IDs.  In real HiStar each number corresponds to
/// a fixed virtual address at which the segment is mapped; here we keep the
/// table explicit but it is still *shared state in segments*, not kernel
/// state.
#[derive(Clone, Debug, Default)]
pub struct FdTable {
    entries: Vec<Option<ObjectId>>,
}

impl FdTable {
    /// Creates an empty table.
    pub fn new() -> FdTable {
        FdTable::default()
    }

    /// Allocates the lowest free descriptor number for a descriptor segment.
    pub fn allocate(&mut self, segment: ObjectId) -> Fd {
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(segment);
                return i as Fd;
            }
        }
        self.entries.push(Some(segment));
        (self.entries.len() - 1) as Fd
    }

    /// Installs a descriptor at a specific number (for `dup2`-style use),
    /// returning the previous occupant.
    pub fn install(&mut self, fd: Fd, segment: ObjectId) -> Option<ObjectId> {
        let idx = fd as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        self.entries[idx].replace(segment)
    }

    /// Looks up the descriptor segment for a number.
    pub fn get(&self, fd: Fd) -> Option<ObjectId> {
        self.entries.get(fd as usize).copied().flatten()
    }

    /// Removes a descriptor, returning its segment.
    pub fn remove(&mut self, fd: Fd) -> Option<ObjectId> {
        self.entries
            .get_mut(fd as usize)
            .and_then(|slot| slot.take())
    }

    /// All open descriptor numbers with their segments.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, ObjectId)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|seg| (i as Fd, seg)))
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.entries.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn fd_state_layout_is_fixed() {
        let s = FdState {
            kind: FdKind::File,
            target: oid(0x1111),
            target_container: oid(0x2222),
            position: 0xdead_beef,
            flags: FLAG_APPEND,
            refs: 2,
        };
        let bytes = s.encode();
        assert_eq!(bytes.len() as u64, FD_STATE_LEN);
        let pos = u64::from_le_bytes(
            bytes[FD_POSITION_OFFSET as usize..FD_POSITION_OFFSET as usize + 8]
                .try_into()
                .unwrap(),
        );
        assert_eq!(pos, 0xdead_beef, "position sits at FD_POSITION_OFFSET");
        // Patching just the position field round-trips through decode.
        let mut patched = bytes.clone();
        patched[FD_POSITION_OFFSET as usize..FD_POSITION_OFFSET as usize + 8]
            .copy_from_slice(&7u64.to_le_bytes());
        assert_eq!(FdState::decode(&patched).unwrap().position, 7);
    }

    #[test]
    fn fd_state_round_trip() {
        let s = FdState {
            kind: FdKind::PipeWrite,
            target: oid(55),
            target_container: oid(66),
            position: 1234,
            flags: FLAG_APPEND | FLAG_NONBLOCK,
            refs: 3,
        };
        assert_eq!(FdState::decode(&s.encode()), Some(s));
        assert_eq!(FdState::decode(&[1, 2, 3]), None);
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in [
            FdKind::File,
            FdKind::PipeRead,
            FdKind::PipeWrite,
            FdKind::Console,
            FdKind::Socket,
            FdKind::Dev,
            FdKind::Proc,
            FdKind::Persist,
        ] {
            let s = FdState {
                kind,
                target: oid(1),
                target_container: oid(2),
                position: 0,
                flags: 0,
                refs: 1,
            };
            assert_eq!(FdState::decode(&s.encode()).unwrap().kind, kind);
        }
    }

    #[test]
    fn table_allocates_lowest_free() {
        let mut t = FdTable::new();
        assert_eq!(t.allocate(oid(10)), 0);
        assert_eq!(t.allocate(oid(11)), 1);
        assert_eq!(t.allocate(oid(12)), 2);
        assert_eq!(t.remove(1), Some(oid(11)));
        assert_eq!(t.allocate(oid(13)), 1, "freed slot is reused first");
        assert_eq!(t.get(1), Some(oid(13)));
        assert_eq!(t.get(9), None);
        assert_eq!(t.open_count(), 3);
    }

    #[test]
    fn install_at_specific_number() {
        let mut t = FdTable::new();
        assert_eq!(t.install(5, oid(42)), None);
        assert_eq!(t.get(5), Some(oid(42)));
        assert_eq!(t.install(5, oid(43)), Some(oid(42)));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(5, oid(43))]);
    }
}
