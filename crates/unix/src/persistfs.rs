//! PersistFs: the store-backed persistent filesystem mounted at
//! `/persist`.
//!
//! HiStar's single-level store makes *kernel* state persistent by
//! checkpointing the object hierarchy; everything else survives only as a
//! side effect of whole-machine snapshots.  PersistFs gives files the
//! paper's durability story directly: its inodes, directory entries and
//! file extents are keyed records in the store's B+-tree (the
//! [`histar_store::records`] namespace), bypassing the in-kernel object
//! heap for cold data.  `fsync` resolves a file to its record keys and
//! issues one `persist_sync`; the store group-commits every sync in the
//! same syscall batch into a single multi-record WAL frame, acked only
//! after the shared append lands (§5's group sync).
//! Recovery replays the log back into a mountable tree, so a crash
//! between writes loses at most unsynced data — and never labels, because
//! **each record carries its label** and the kernel re-checks it on every
//! `lookup`/`read`/`write`, exactly as it checks a segment's label for
//! [`SegFs`](crate::segfs::SegFs).
//!
//! Record layout (all records live in the persist key namespace, whose
//! keys the snapshot engine neither decodes as kernel objects nor sweeps
//! as stale):
//!
//! * **meta** (`META_KEY`): magic, next inode number.  Label: the root
//!   directory's label.
//! * **inode** (`inode_key(ino)`): `is_dir`, byte length, next dirent
//!   slot.  Label: the file or directory's label — the one every access
//!   is checked against.
//! * **dirent** (`dirent_key(dir, slot)`): name, child inode, `is_dir`.
//!   Label: the *directory's* label, so listing a directory is exactly as
//!   restricted as observing it.
//! * **extent** (`extent_key(ino, index)`): one [`EXTENT_SIZE`]-byte
//!   chunk of file data.  Label: the file's label.
//!
//! The hot path keeps PR 3's shape: [`PersistVnode`] issues its extent
//! reads/writes and the descriptor seek-update as ONE submission batch —
//! persist records ride the same batched ABI as every other syscall, so a
//! steady-state `read(2)` on `/persist` still costs a single boundary
//! crossing.

use crate::env::UnixError;
use crate::fdtable::{FdKind, FdState, FLAG_APPEND, FLAG_RDONLY, FLAG_WRONLY};
use crate::fs::{DirEntry, FileStat, OpenFlags};
use crate::vfs::{Filesystem, FsNode};
use crate::vnode::{FdRef, VfsCtx, Vnode};
use histar_kernel::dispatch::Syscall;
use histar_kernel::object::ObjectId;
use histar_kernel::syscall::SyscallError;
use histar_label::Label;
use histar_store::codec::{Decoder, Encoder};
use histar_store::records::{dirent_range, extent_key, inode_key, META_KEY};

type Result<T> = core::result::Result<T, UnixError>;

/// Bytes per file extent record (matches the page size, so the benchmark
/// 4 KiB I/O is a single-record operation).
pub const EXTENT_SIZE: u64 = 4096;

/// The root directory's inode number.
pub const ROOT_INO: u32 = 1;

/// Magic identifying a formatted PersistFs superblock ("PRSTFS1\0").
const PERSIST_MAGIC: u64 = 0x5052_5354_4653_3100;

/// Scan limit for directory listings and extent walks.
const SCAN_MAX: u64 = 1 << 24;

// -------------------------------------------------- record codecs ------

/// A decoded inode record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Inode {
    is_dir: bool,
    /// Byte length (files; directories keep 0).
    len: u64,
    /// Next dirent slot to hand out (directories).
    next_slot: u64,
}

impl Inode {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(u8::from(self.is_dir))
            .put_u64(self.len)
            .put_u64(self.next_slot);
        e.finish()
    }

    fn decode(bytes: &[u8]) -> Option<Inode> {
        let mut d = Decoder::new(bytes);
        Some(Inode {
            is_dir: d.get_u8().ok()? != 0,
            len: d.get_u64().ok()?,
            next_slot: d.get_u64().ok()?,
        })
    }
}

/// A decoded directory-entry record.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Dirent {
    name: String,
    ino: u32,
    is_dir: bool,
}

impl Dirent {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str(&self.name)
            .put_u64(self.ino as u64)
            .put_u8(u8::from(self.is_dir));
        e.finish()
    }

    fn decode(bytes: &[u8]) -> Option<Dirent> {
        let mut d = Decoder::new(bytes);
        let name = d.get_str().ok()?;
        let ino = u32::try_from(d.get_u64().ok()?).ok()?;
        let is_dir = d.get_u8().ok()? != 0;
        Some(Dirent { name, ino, is_dir })
    }
}

fn encode_meta(next_ino: u32) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(PERSIST_MAGIC).put_u64(next_ino as u64);
    e.finish()
}

fn decode_meta(bytes: &[u8]) -> Option<u32> {
    let mut d = Decoder::new(bytes);
    if d.get_u64().ok()? != PERSIST_MAGIC {
        return None;
    }
    u32::try_from(d.get_u64().ok()?).ok()
}

// ------------------------------------------------------ the filesystem --

/// The store-backed persistent filesystem.  Node IDs are inode numbers.
#[derive(Debug)]
pub struct PersistFs {
    /// Vnodes opened through this filesystem share one label cache slot
    /// per open; nothing else is cached — all state is in the store.
    _private: (),
}

impl PersistFs {
    /// Reattaches an already-formatted filesystem from the store, or
    /// formats a fresh one (meta + root inode, both synced so the empty
    /// tree itself survives a crash once the store has a checkpoint).
    pub fn mount_or_format(ctx: &mut VfsCtx, root_label: Label) -> Result<PersistFs> {
        let thread = ctx.thread;
        match ctx
            .kernel()
            .trap_persist_read(thread, META_KEY, 0, u64::MAX)
        {
            Ok(bytes) => {
                decode_meta(&bytes).ok_or(UnixError::Corrupt("persistfs superblock"))?;
                Ok(PersistFs { _private: () })
            }
            Err(SyscallError::NoSuchRecord(_)) => {
                let kernel = ctx.kernel();
                kernel.trap_persist_put(
                    thread,
                    META_KEY,
                    Some(root_label.clone()),
                    0,
                    &encode_meta(ROOT_INO + 1),
                )?;
                let root = Inode {
                    is_dir: true,
                    len: 0,
                    next_slot: 0,
                };
                kernel.trap_persist_put(
                    thread,
                    inode_key(ROOT_INO),
                    Some(root_label),
                    0,
                    &root.encode(),
                )?;
                kernel.trap_persist_sync(thread, vec![META_KEY, inode_key(ROOT_INO)])?;
                Ok(PersistFs { _private: () })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Whether the store behind `ctx` holds a formatted PersistFs.
    pub fn is_formatted(ctx: &mut VfsCtx) -> bool {
        let thread = ctx.thread;
        matches!(
            ctx.kernel().trap_persist_read(thread, META_KEY, 0, u64::MAX),
            Ok(bytes) if decode_meta(&bytes).is_some()
        )
    }

    fn read_inode(ctx: &mut VfsCtx, ino: u32) -> Result<Inode> {
        let thread = ctx.thread;
        let bytes = ctx
            .kernel()
            .trap_persist_read(thread, inode_key(ino), 0, u64::MAX)?;
        Inode::decode(&bytes).ok_or(UnixError::Corrupt("persist inode record"))
    }

    fn write_inode(ctx: &mut VfsCtx, ino: u32, label: Option<Label>, inode: &Inode) -> Result<()> {
        let thread = ctx.thread;
        ctx.kernel()
            .trap_persist_put(thread, inode_key(ino), label, 0, &inode.encode())?;
        Ok(())
    }

    /// The label an inode record carries (needed to label new dirents and
    /// extents consistently with their owner).
    fn inode_label(ctx: &mut VfsCtx, ino: u32) -> Result<Label> {
        let thread = ctx.thread;
        Ok(ctx
            .kernel()
            .trap_persist_get_label(thread, inode_key(ino))?)
    }

    /// Reads directory `dir`'s inode, failing if it is not a directory.
    /// This is the observe check every directory operation starts with:
    /// a caller that may not observe the directory's label gets the
    /// kernel's refusal here, before any entry is revealed.
    fn read_dir_inode(ctx: &mut VfsCtx, dir: u32) -> Result<Inode> {
        let inode = Self::read_inode(ctx, dir)?;
        if !inode.is_dir {
            return Err(UnixError::NotADirectory(format!("inode {dir}")));
        }
        Ok(inode)
    }

    /// All dirents of `dir`, as `(slot key, dirent)` pairs.
    fn scan_dirents(ctx: &mut VfsCtx, dir: u32) -> Result<Vec<(u64, Dirent)>> {
        let (lo, hi) = dirent_range(dir);
        let thread = ctx.thread;
        let records = ctx.kernel().trap_persist_scan(thread, lo, hi, SCAN_MAX)?;
        records
            .into_iter()
            .map(|(key, payload)| {
                Dirent::decode(&payload)
                    .map(|d| (key, d))
                    .ok_or(UnixError::Corrupt("persist dirent record"))
            })
            .collect()
    }

    fn find_dirent(ctx: &mut VfsCtx, dir: u32, name: &str) -> Result<Option<(u64, Dirent)>> {
        Ok(Self::scan_dirents(ctx, dir)?
            .into_iter()
            .find(|(_, d)| d.name == name))
    }

    /// Allocates a fresh inode number from the superblock record.
    ///
    /// Allocation is a modify of the (root-labeled) meta record, so a
    /// *tainted* thread cannot create files even in a directory labeled
    /// for its taint — the same §5.8 pre-arrangement SegFs demands when
    /// a tainted writer needs quota moved down from untainted ancestors
    /// (`UnixEnv::reserve_quota`).  A pre-reserved ino-range mechanism is
    /// the ROADMAP's answer if a workload needs tainted creators.
    fn alloc_ino(ctx: &mut VfsCtx) -> Result<u32> {
        let thread = ctx.thread;
        let bytes = ctx
            .kernel()
            .trap_persist_read(thread, META_KEY, 0, u64::MAX)?;
        let next = decode_meta(&bytes).ok_or(UnixError::Corrupt("persistfs superblock"))?;
        ctx.kernel()
            .trap_persist_put(thread, META_KEY, None, 0, &encode_meta(next + 1))?;
        Ok(next)
    }

    /// Inserts `dirent` under `dir`, taking the next slot from the
    /// directory inode.  Returns the new dirent's record key.
    fn insert_dirent(ctx: &mut VfsCtx, dir: u32, dirent: &Dirent) -> Result<u64> {
        let mut dnode = Self::read_dir_inode(ctx, dir)?;
        let slot = dnode.next_slot;
        dnode.next_slot += 1;
        let dlabel = Self::inode_label(ctx, dir)?;
        let key = histar_store::records::dirent_key(dir, slot);
        let thread = ctx.thread;
        // Dirent creation and the slot-counter update cross together.
        let results = ctx.kernel().submit_calls(
            thread,
            vec![
                Syscall::PersistPut {
                    key,
                    label: Some(dlabel),
                    offset: 0,
                    data: dirent.encode(),
                },
                Syscall::PersistPut {
                    key: inode_key(dir),
                    label: None,
                    offset: 0,
                    data: dnode.encode(),
                },
            ],
        );
        for r in results {
            r?;
        }
        Ok(key)
    }

    /// The extent keys a file of length `len` can occupy (extents never
    /// outlive the inode length: truncate drops them, writes extend it).
    fn extent_keys(ino: u32, len: u64) -> Vec<u64> {
        (0..len.div_ceil(EXTENT_SIZE))
            .map(|i| extent_key(ino, i))
            .collect()
    }

    /// Removes a file or empty directory: its dirent, inode and extents.
    /// The removals are made durable immediately (a deletion that could
    /// silently resurrect after a crash would un-delete secrets).
    fn remove_node(ctx: &mut VfsCtx, dirent_key: u64, d: &Dirent) -> Result<()> {
        let thread = ctx.thread;
        if d.is_dir && !Self::scan_dirents(ctx, d.ino)?.is_empty() {
            return Err(UnixError::Unsupported(
                "unlink of a non-empty /persist directory",
            ));
        }
        let len = Self::read_inode(ctx, d.ino)?.len;
        let mut doomed = vec![dirent_key, inode_key(d.ino)];
        doomed.extend(Self::extent_keys(d.ino, len));
        let calls: Vec<Syscall> = doomed
            .iter()
            .map(|&key| Syscall::PersistDelete { key })
            .collect();
        for r in ctx.kernel().submit_calls(thread, calls) {
            // Holes never materialized an extent record; everything else
            // must delete cleanly.
            if let Err(e) = r {
                if !matches!(e, SyscallError::NoSuchRecord(_)) {
                    return Err(e.into());
                }
            }
        }
        // Durable tombstones: one WAL append per removed record.
        ctx.kernel().trap_persist_sync(thread, doomed)?;
        Ok(())
    }
}

impl Filesystem for PersistFs {
    fn fs_name(&self) -> &'static str {
        "persistfs"
    }

    fn root_node(&self) -> u64 {
        ROOT_INO as u64
    }

    fn lookup(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<FsNode> {
        Self::read_dir_inode(ctx, dir as u32)?;
        match Self::find_dirent(ctx, dir as u32, name)? {
            Some((_, d)) => Ok(FsNode {
                node: d.ino as u64,
                is_dir: d.is_dir,
            }),
            None => Err(UnixError::NotFound(name.to_string())),
        }
    }

    fn readdir(&mut self, ctx: &mut VfsCtx, dir: u64) -> Result<Vec<DirEntry>> {
        Self::read_dir_inode(ctx, dir as u32)?;
        Ok(Self::scan_dirents(ctx, dir as u32)?
            .into_iter()
            .map(|(_, d)| DirEntry {
                name: d.name,
                object: ObjectId::from_raw(d.ino as u64),
                is_dir: d.is_dir,
            })
            .collect())
    }

    fn stat(&mut self, ctx: &mut VfsCtx, _dir: u64, node: FsNode) -> Result<FileStat> {
        let inode = Self::read_inode(ctx, node.node as u32)?;
        Ok(FileStat {
            object: ObjectId::from_raw(node.node),
            is_dir: inode.is_dir,
            len: inode.len,
        })
    }

    fn mkdir(
        &mut self,
        ctx: &mut VfsCtx,
        dir: u64,
        name: &str,
        label: Option<Label>,
    ) -> Result<u64> {
        let dir = dir as u32;
        Self::read_dir_inode(ctx, dir)?;
        if Self::find_dirent(ctx, dir, name)?.is_some() {
            return Err(UnixError::Exists(name.to_string()));
        }
        let label = match label {
            Some(l) => l,
            None => Self::inode_label(ctx, dir)?,
        };
        let ino = Self::alloc_ino(ctx)?;
        Self::write_inode(
            ctx,
            ino,
            Some(label),
            &Inode {
                is_dir: true,
                len: 0,
                next_slot: 0,
            },
        )?;
        Self::insert_dirent(
            ctx,
            dir,
            &Dirent {
                name: name.to_string(),
                ino,
                is_dir: true,
            },
        )?;
        Ok(ino as u64)
    }

    fn unlink(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<()> {
        Self::read_dir_inode(ctx, dir as u32)?;
        let (key, d) = Self::find_dirent(ctx, dir as u32, name)?
            .ok_or_else(|| UnixError::NotFound(name.to_string()))?;
        Self::remove_node(ctx, key, &d)
    }

    fn rename(
        &mut self,
        ctx: &mut VfsCtx,
        dir_from: u64,
        from: &str,
        dir_to: u64,
        to: &str,
    ) -> Result<()> {
        Self::read_dir_inode(ctx, dir_from as u32)?;
        Self::read_dir_inode(ctx, dir_to as u32)?;
        let (old_key, d) = Self::find_dirent(ctx, dir_from as u32, from)?
            .ok_or_else(|| UnixError::NotFound(from.to_string()))?;
        // Renaming onto an existing entry replaces it (files and empty
        // directories only, like the segment filesystem's rename).
        if let Some((target_key, target)) = Self::find_dirent(ctx, dir_to as u32, to)? {
            if target.ino != d.ino {
                Self::remove_node(ctx, target_key, &target)?;
            }
        }
        let thread = ctx.thread;
        ctx.kernel().trap_persist_delete(thread, old_key)?;
        let new_key = Self::insert_dirent(
            ctx,
            dir_to as u32,
            &Dirent {
                name: to.to_string(),
                ino: d.ino,
                is_dir: d.is_dir,
            },
        )?;
        // The rename is made durable as a unit: the new entry (and the
        // moved inode) are logged BEFORE the old entry's tombstone, so a
        // crash torn inside this sync shows the file at both names — a
        // benign duplicate — never at neither.  Syncing only the
        // tombstone would let a crash orphan a fully-fsynced file.
        ctx.kernel().trap_persist_sync(
            thread,
            vec![
                inode_key(dir_to as u32),
                new_key,
                inode_key(d.ino),
                inode_key(dir_from as u32),
                old_key,
            ],
        )?;
        Ok(())
    }

    fn open(
        &mut self,
        ctx: &mut VfsCtx,
        dir: u64,
        name: &str,
        flags: OpenFlags,
        label: Option<Label>,
    ) -> Result<(FdState, Box<dyn Vnode>)> {
        let dir = dir as u32;
        Self::read_dir_inode(ctx, dir)?;
        let mut known_len: Option<u64> = None;
        let ino = match Self::find_dirent(ctx, dir, name)? {
            Some((_, d)) if d.is_dir => return Err(UnixError::IsADirectory(name.to_string())),
            Some((_, d)) => {
                if flags.truncate {
                    // Drop the extents and reset the length.
                    let mut inode = Self::read_inode(ctx, d.ino)?;
                    let thread = ctx.thread;
                    let calls: Vec<Syscall> = Self::extent_keys(d.ino, inode.len)
                        .into_iter()
                        .map(|key| Syscall::PersistDelete { key })
                        .collect();
                    for r in ctx.kernel().submit_calls(thread, calls) {
                        // A hole never materialized an extent record.
                        if let Err(e) = r {
                            if !matches!(e, SyscallError::NoSuchRecord(_)) {
                                return Err(e.into());
                            }
                        }
                    }
                    inode.len = 0;
                    Self::write_inode(ctx, d.ino, None, &inode)?;
                    known_len = Some(0);
                }
                d.ino
            }
            None => {
                if !flags.create {
                    return Err(UnixError::NotFound(name.to_string()));
                }
                let label = match label {
                    Some(l) => l,
                    None => Self::inode_label(ctx, dir)?,
                };
                let ino = Self::alloc_ino(ctx)?;
                Self::write_inode(
                    ctx,
                    ino,
                    Some(label),
                    &Inode {
                        is_dir: false,
                        len: 0,
                        next_slot: 0,
                    },
                )?;
                Self::insert_dirent(
                    ctx,
                    dir,
                    &Dirent {
                        name: name.to_string(),
                        ino,
                        is_dir: false,
                    },
                )?;
                known_len = Some(0);
                ino
            }
        };
        let mut fd_flags = 0u32;
        if flags.append {
            fd_flags |= FLAG_APPEND;
        }
        if flags.read && !flags.write {
            fd_flags |= FLAG_RDONLY;
        }
        if flags.write && !flags.read {
            fd_flags |= FLAG_WRONLY;
        }
        let state = FdState {
            kind: FdKind::Persist,
            target: ObjectId::from_raw(ino as u64),
            target_container: ObjectId::from_raw(dir as u64),
            position: 0,
            flags: fd_flags,
            refs: 1,
        };
        let mut vnode = PersistVnode::new(ino);
        vnode.cached_len = known_len;
        Ok((state, Box::new(vnode)))
    }

    fn vnode_from_state(&mut self, _ctx: &mut VfsCtx, state: &FdState) -> Result<Box<dyn Vnode>> {
        Ok(Box::new(PersistVnode::new(state.target.raw() as u32)))
    }

    fn fsync(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<()> {
        let keys = self
            .sync_keys(ctx, dir, name)?
            .expect("PersistFs always has sync keys");
        let thread = ctx.thread;
        ctx.kernel().trap_persist_sync(thread, keys)?;
        Ok(())
    }

    fn sync_keys(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<Option<Vec<u64>>> {
        let dir = dir as u32;
        Self::read_dir_inode(ctx, dir)?;
        let (dirent_key, d) = Self::find_dirent(ctx, dir, name)?
            .ok_or_else(|| UnixError::NotFound(name.to_string()))?;
        let len = if d.is_dir {
            0
        } else {
            Self::read_inode(ctx, d.ino)?.len
        };
        let mut keys = vec![META_KEY, inode_key(dir), dirent_key, inode_key(d.ino)];
        keys.extend(Self::extent_keys(d.ino, len));
        Ok(Some(keys))
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

// ------------------------------------------------------- the hot path --

/// A file vnode backed by extent records in the single-level store: the
/// steady-state `/persist` read/write path.
#[derive(Debug)]
pub struct PersistVnode {
    ino: u32,
    /// Cached file label (immutable), fetched once per vnode for labeling
    /// newly created extents.
    label: Option<Label>,
    /// Cached file length.  Revalidated at end-of-file and on a failed
    /// in-batch extent access, like `SegVnode`'s length cache.
    cached_len: Option<u64>,
}

impl PersistVnode {
    /// A vnode for inode `ino`.
    pub fn new(ino: u32) -> PersistVnode {
        PersistVnode {
            ino,
            label: None,
            cached_len: None,
        }
    }

    fn len(&mut self, ctx: &mut VfsCtx) -> Result<u64> {
        if let Some(len) = self.cached_len {
            return Ok(len);
        }
        self.fetch_len(ctx)
    }

    /// Fetches the inode fresh — a label-checked kernel call, so the
    /// first access through any descriptor re-verifies the caller may
    /// observe the file, including after a crash and recovery.
    fn fetch_len(&mut self, ctx: &mut VfsCtx) -> Result<u64> {
        let inode = PersistFs::read_inode(ctx, self.ino)?;
        self.cached_len = Some(inode.len);
        Ok(inode.len)
    }

    fn file_label(&mut self, ctx: &mut VfsCtx) -> Result<Label> {
        if let Some(l) = &self.label {
            return Ok(l.clone());
        }
        let l = PersistFs::inode_label(ctx, self.ino)?;
        self.label = Some(l.clone());
        Ok(l)
    }

    /// The extent-aligned `(key, offset-within-extent, chunk-length)`
    /// triples covering `[pos, pos + len)`.
    fn extent_chunks(&self, pos: u64, len: u64) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        let mut off = pos;
        let end = pos + len;
        while off < end {
            let index = off / EXTENT_SIZE;
            let within = off % EXTENT_SIZE;
            let chunk = (EXTENT_SIZE - within).min(end - off);
            out.push((extent_key(self.ino, index), within, chunk));
            off += chunk;
        }
        out
    }
}

impl Vnode for PersistVnode {
    fn read(&mut self, ctx: &mut VfsCtx, fd: &FdRef, state: &FdState, len: u64) -> Result<Vec<u8>> {
        if len == 0 {
            // Still label-checks through the inode fetch, like a
            // zero-length read(2) still validates the descriptor.
            self.len(ctx)?;
            return Ok(Vec::new());
        }
        let mut attempts = 0;
        loop {
            let file_len = self.len(ctx)?;
            let start = state.position.min(file_len);
            let n = len.min(file_len - start);
            if n == 0 {
                // At (cached) end of file: revalidate once so growth via
                // other descriptors is observed — itself a label-checked
                // call, so an unauthorized reader still fails here.
                let fresh = self.fetch_len(ctx)?;
                if fresh <= start {
                    return Ok(Vec::new());
                }
                continue;
            }
            // The extent reads and the seek-update cross the boundary
            // together: one batch, one trap cost.
            let chunks = self.extent_chunks(start, n);
            let mut calls: Vec<Syscall> = chunks
                .iter()
                .map(|&(key, offset, chunk)| Syscall::PersistRead {
                    key,
                    offset,
                    len: chunk,
                })
                .collect();
            calls.push(fd.position_update(start + n));
            let thread = ctx.thread;
            let mut results = ctx.kernel().submit_calls(thread, calls).into_iter();
            let mut out = Vec::with_capacity(n as usize);
            let mut failed: Option<SyscallError> = None;
            for &(_, _, chunk) in &chunks {
                match results.next().expect("one completion per chunk") {
                    Ok(r) => out.extend(r.into_bytes()),
                    // A hole (never-written extent of a sparse file)
                    // reads as zeros.
                    Err(SyscallError::NoSuchRecord(_)) => {
                        out.resize(out.len() + chunk as usize, 0);
                    }
                    Err(e) => {
                        failed.get_or_insert(e);
                    }
                }
            }
            let seek = results.next().expect("seek update completes");
            match failed {
                None => {
                    seek?;
                    return Ok(out);
                }
                Some(SyscallError::InvalidArgument(_)) if attempts == 0 => {
                    // The cached length was stale (the file shrank under
                    // us); refresh and retry once.
                    self.cached_len = None;
                    attempts += 1;
                }
                Some(e) => {
                    // A failed read must not move the shared position.
                    crate::vnode::undo_seek(ctx, fd, state.position);
                    return Err(e.into());
                }
            }
        }
    }

    fn write(&mut self, ctx: &mut VfsCtx, fd: &FdRef, state: &FdState, data: &[u8]) -> Result<u64> {
        let pos = if state.flags & FLAG_APPEND != 0 {
            self.fetch_len(ctx)?
        } else {
            state.position
        };
        let end = pos + data.len() as u64;
        let mut file_len = self.len(ctx)?;
        if end > file_len {
            // The cached length may be stale: another descriptor's vnode
            // can have grown the file since it was cached, and writing
            // the inode from a stale length would *shrink* the
            // authoritative file.  Revalidate before deciding to grow.
            file_len = self.fetch_len(ctx)?;
        }
        let label = self.file_label(ctx)?;
        // Extent puts, the inode length update (when the file grows) and
        // the descriptor seek-update cross the boundary as ONE batch.
        let chunks = self.extent_chunks(pos, data.len() as u64);
        let mut calls: Vec<Syscall> = Vec::with_capacity(chunks.len() + 2);
        let mut consumed = 0usize;
        for &(key, offset, chunk) in &chunks {
            calls.push(Syscall::PersistPut {
                key,
                label: Some(label.clone()),
                offset,
                data: data[consumed..consumed + chunk as usize].to_vec(),
            });
            consumed += chunk as usize;
        }
        let grows = end > file_len;
        if grows {
            calls.push(Syscall::PersistPut {
                key: inode_key(self.ino),
                label: None,
                offset: 0,
                data: Inode {
                    is_dir: false,
                    len: end,
                    next_slot: 0,
                }
                .encode(),
            });
        }
        calls.push(fd.position_update(end));
        let thread = ctx.thread;
        let results = ctx.kernel().submit_calls(thread, calls);
        for r in &results {
            if let Err(e) = r {
                // Batches have no rollback; a denied write must restore
                // the shared position before reporting.
                crate::vnode::undo_seek(ctx, fd, state.position);
                return Err(e.clone().into());
            }
        }
        if grows {
            self.cached_len = Some(end);
        }
        Ok(data.len() as u64)
    }

    fn stat(&mut self, ctx: &mut VfsCtx, state: &FdState) -> Result<FileStat> {
        let len = self.fetch_len(ctx)?;
        Ok(FileStat {
            object: state.target,
            is_dir: false,
            len,
        })
    }

    fn fsync_pages(&mut self, ctx: &mut VfsCtx, _state: &FdState, pages: &[u64]) -> Result<()> {
        // `fdatasync`: the touched extents plus the inode, each one WAL
        // append.  Pages and extents share the 4 KiB granularity.
        let mut keys = vec![inode_key(self.ino)];
        keys.extend(pages.iter().map(|&p| extent_key(self.ino, p)));
        keys.sort_unstable();
        keys.dedup();
        let thread = ctx.thread;
        ctx.kernel().trap_persist_sync(thread, keys)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_codecs_round_trip() {
        let i = Inode {
            is_dir: true,
            len: 77,
            next_slot: 3,
        };
        assert_eq!(Inode::decode(&i.encode()), Some(i));
        assert_eq!(Inode::decode(&[1, 2]), None);
        let d = Dirent {
            name: "notes.txt".into(),
            ino: 9,
            is_dir: false,
        };
        assert_eq!(Dirent::decode(&d.encode()), Some(d));
        assert_eq!(Dirent::decode(&[]), None);
        assert_eq!(decode_meta(&encode_meta(5)), Some(5));
        assert_eq!(decode_meta(&encode_meta(5)[..8]), None);
        assert_eq!(decode_meta(&[0u8; 16]), None);
    }

    #[test]
    fn extent_chunking_covers_ranges_exactly() {
        let v = PersistVnode::new(3);
        // Aligned single extent.
        let c = v.extent_chunks(0, EXTENT_SIZE);
        assert_eq!(c, vec![(extent_key(3, 0), 0, EXTENT_SIZE)]);
        // Straddling two extents.
        let c = v.extent_chunks(EXTENT_SIZE - 100, 300);
        assert_eq!(
            c,
            vec![
                (extent_key(3, 0), EXTENT_SIZE - 100, 100),
                (extent_key(3, 1), 0, 200),
            ]
        );
        // Interior offset.
        let c = v.extent_chunks(EXTENT_SIZE * 2 + 8, 16);
        assert_eq!(c, vec![(extent_key(3, 2), 8, 16)]);
        let total: u64 = v.extent_chunks(123, 99_999).iter().map(|c| c.2).sum();
        assert_eq!(total, 99_999);
    }
}
