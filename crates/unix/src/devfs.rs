//! `/dev`: the device pseudo-filesystem — console, null, zero, urandom.
//!
//! Like everything in the Unix library these are conventions, not kernel
//! objects: `console` forwards writes to the boot console device through
//! the kernel's (label-checked) device transmit path, `null`/`zero` are
//! pure library behaviour, and `urandom` streams bytes from a
//! deterministic [`SimRng`] so simulations stay reproducible.

use crate::env::UnixError;
use crate::fdtable::{FdKind, FdState, FLAG_RDONLY};
use crate::fs::{DirEntry, FileStat, OpenFlags};
use crate::vfs::{Filesystem, FsNode};
use crate::vnode::{ConsoleVnode, FdRef, VfsCtx, Vnode};
use histar_kernel::object::ObjectId;
use histar_label::Label;
use histar_sim::SimRng;

type Result<T> = core::result::Result<T, UnixError>;

const NODE_ROOT: u64 = 0;
const NODE_CONSOLE: u64 = 1;
const NODE_NULL: u64 = 2;
const NODE_ZERO: u64 = 3;
const NODE_URANDOM: u64 = 4;

/// Largest single device read: `/dev/zero` and `/dev/urandom` are
/// endless, so a read materializes at most this many bytes per call (a
/// short count, like read(2)); the caller's length is otherwise
/// untrusted and would size an allocation directly.
pub const DEV_READ_MAX: u64 = 1024 * 1024;

const NODES: [(&str, u64); 4] = [
    ("console", NODE_CONSOLE),
    ("null", NODE_NULL),
    ("zero", NODE_ZERO),
    ("urandom", NODE_URANDOM),
];

/// The `/dev` filesystem.
#[derive(Debug)]
pub struct DevFs {
    /// Seed for urandom streams; each open derives its own generator.
    seed: u64,
    /// Opens so far (perturbs each urandom stream).
    opens: u64,
}

impl DevFs {
    /// A device filesystem whose urandom streams derive from `seed`.
    pub fn new(seed: u64) -> DevFs {
        DevFs { seed, opens: 0 }
    }

    fn vnode_for(&mut self, ctx: &mut VfsCtx, node: u64) -> Result<Box<dyn Vnode>> {
        self.opens = self.opens.wrapping_add(1);
        Ok(match node {
            NODE_CONSOLE => {
                let device = ctx.machine.console_device();
                let kroot = ctx.machine.kernel().root_container();
                Box::new(ConsoleVnode::new(device, kroot))
            }
            NODE_NULL => Box::new(DevVnode::Null),
            NODE_ZERO => Box::new(DevVnode::Zero),
            NODE_URANDOM => Box::new(DevVnode::Urandom(SimRng::new(
                self.seed ^ self.opens.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))),
            _ => return Err(UnixError::Corrupt("devfs node out of range")),
        })
    }
}

impl Filesystem for DevFs {
    fn fs_name(&self) -> &'static str {
        "devfs"
    }

    fn root_node(&self) -> u64 {
        NODE_ROOT
    }

    fn lookup(&mut self, _ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<FsNode> {
        if dir != NODE_ROOT {
            return Err(UnixError::NotADirectory(name.to_string()));
        }
        NODES
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, node)| FsNode {
                node: *node,
                is_dir: false,
            })
            .ok_or_else(|| UnixError::NotFound(name.to_string()))
    }

    fn readdir(&mut self, _ctx: &mut VfsCtx, dir: u64) -> Result<Vec<DirEntry>> {
        if dir != NODE_ROOT {
            return Err(UnixError::NotADirectory("devfs".to_string()));
        }
        Ok(NODES
            .iter()
            .map(|(name, node)| DirEntry {
                name: name.to_string(),
                object: ObjectId::from_raw(*node),
                is_dir: false,
            })
            .collect())
    }

    fn stat(&mut self, _ctx: &mut VfsCtx, _dir: u64, node: FsNode) -> Result<FileStat> {
        Ok(FileStat {
            object: ObjectId::from_raw(node.node),
            is_dir: node.is_dir || node.node == NODE_ROOT,
            len: 0,
        })
    }

    fn open(
        &mut self,
        ctx: &mut VfsCtx,
        dir: u64,
        name: &str,
        _flags: OpenFlags,
        _label: Option<Label>,
    ) -> Result<(FdState, Box<dyn Vnode>)> {
        let node = self.lookup(ctx, dir, name)?;
        let kind = if node.node == NODE_CONSOLE {
            FdKind::Console
        } else {
            FdKind::Dev
        };
        let state = FdState {
            kind,
            target: ObjectId::from_raw(node.node),
            target_container: ObjectId::from_raw(0),
            position: 0,
            flags: if node.node == NODE_CONSOLE {
                0
            } else {
                FLAG_RDONLY
            },
            refs: 1,
        };
        Ok((state, self.vnode_for(ctx, node.node)?))
    }

    fn vnode_from_state(&mut self, ctx: &mut VfsCtx, state: &FdState) -> Result<Box<dyn Vnode>> {
        self.vnode_for(ctx, state.target.raw())
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// The non-console device vnodes.
#[derive(Debug)]
pub enum DevVnode {
    /// `/dev/null`: reads EOF, writes vanish.
    Null,
    /// `/dev/zero`: an endless stream of zero bytes.
    Zero,
    /// `/dev/urandom`: an endless deterministic random stream.
    Urandom(SimRng),
}

impl Vnode for DevVnode {
    fn read(&mut self, ctx: &mut VfsCtx, fd: &FdRef, state: &FdState, len: u64) -> Result<Vec<u8>> {
        let n = len.min(DEV_READ_MAX) as usize;
        let data = match self {
            DevVnode::Null => Vec::new(),
            DevVnode::Zero => vec![0u8; n],
            DevVnode::Urandom(rng) => rng.bytes(n),
        };
        if !data.is_empty() {
            let thread = ctx.thread;
            for r in ctx.kernel().submit_calls(
                thread,
                vec![fd.position_update(state.position + data.len() as u64)],
            ) {
                r?;
            }
        }
        Ok(data)
    }

    fn write(
        &mut self,
        _ctx: &mut VfsCtx,
        _fd: &FdRef,
        _state: &FdState,
        data: &[u8],
    ) -> Result<u64> {
        match self {
            // null swallows anything; zero and urandom are read-only.
            DevVnode::Null => Ok(data.len() as u64),
            _ => Err(UnixError::ReadOnly("devfs")),
        }
    }
}
