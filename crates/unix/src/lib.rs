//! The untrusted user-level Unix emulation library (§5).
//!
//! HiStar provides no Unix abstractions in the kernel.  Everything a Unix
//! program expects — processes, a file system, file descriptors, pipes,
//! signals, users — is built *in user space* out of the six kernel object
//! types, running with only the privileges (category ownerships) of the
//! calling user.  A bug here compromises only the threads that trigger it,
//! never the kernel's information-flow guarantees.
//!
//! The entry point is [`UnixEnv`], which owns a simulated
//! [`Machine`](histar_kernel::Machine) and exposes the Unix-like API:
//!
//! * [`process`] — processes as container pairs (Figure 6), `spawn`,
//!   `fork`, `exec`, `wait`, `exit`.
//! * [`vfs`] — the mount layer: path resolution across filesystem
//!   boundaries and the [`vfs::Filesystem`] trait.
//! * [`vnode`] — the [`vnode::Vnode`] trait every descriptor dispatches
//!   through, plus pipes, the console and the batched descriptor hot
//!   path.
//! * [`segfs`] — the paper's file system (§5.1): files as segments,
//!   directories as containers with a directory segment.
//! * [`persistfs`] — the store-backed persistent filesystem at
//!   `/persist`: inodes, dirents and extents as labeled records in the
//!   single-level store's B+-tree; `fsync` is a write-ahead-log append
//!   and recovery replays the log into a mountable tree.
//! * [`procfs`] — label-filtered per-process state under `/proc`.
//! * [`devfs`] — `/dev`: console, null, zero, urandom.
//! * [`fs`] — the on-segment directory format, path helpers, open flags.
//! * [`fdtable`] — file descriptors as segments shared across processes.
//! * [`users`] — per-user read/write categories (no superuser anywhere).
//! * [`gatecall`] — the service-gate / return-gate convention (Figure 7),
//!   including taint-forking for privacy-preserving services.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod devfs;
pub mod env;
pub mod fdtable;
pub mod fs;
pub mod gatecall;
pub mod metricsfs;
pub mod net_queue;
pub mod persistfs;
pub mod process;
pub mod procfs;
pub mod segfs;
pub mod users;
pub mod vfs;
pub mod vnode;

pub use env::{UnixEnv, UnixError};
pub use fdtable::{Fd, FdKind};
pub use fs::OpenFlags;
pub use process::{ExitStatus, Pid, Process};
pub use users::User;
pub use vfs::{Filesystem, Vfs};
pub use vnode::Vnode;

/// Convenience result alias for Unix-library operations.
pub type Result<T> = core::result::Result<T, UnixError>;
