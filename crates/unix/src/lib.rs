//! The untrusted user-level Unix emulation library (§5).
//!
//! HiStar provides no Unix abstractions in the kernel.  Everything a Unix
//! program expects — processes, a file system, file descriptors, pipes,
//! signals, users — is built *in user space* out of the six kernel object
//! types, running with only the privileges (category ownerships) of the
//! calling user.  A bug here compromises only the threads that trigger it,
//! never the kernel's information-flow guarantees.
//!
//! The entry point is [`UnixEnv`], which owns a simulated
//! [`Machine`](histar_kernel::Machine) and exposes the Unix-like API:
//!
//! * [`process`] — processes as container pairs (Figure 6), `spawn`,
//!   `fork`, `exec`, `wait`, `exit`.
//! * [`fs`] — files as segments, directories as containers with a
//!   directory segment, mount table, `fsync` via the single-level store.
//! * [`fdtable`] — file descriptors as segments shared across processes.
//! * [`users`] — per-user read/write categories (no superuser anywhere).
//! * [`gatecall`] — the service-gate / return-gate convention (Figure 7),
//!   including taint-forking for privacy-preserving services.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod fdtable;
pub mod fs;
pub mod gatecall;
pub mod process;
pub mod users;

pub use env::{UnixEnv, UnixError};
pub use fdtable::{Fd, FdKind};
pub use fs::OpenFlags;
pub use process::{ExitStatus, Pid, Process};
pub use users::User;

/// Convenience result alias for Unix-library operations.
pub type Result<T> = core::result::Result<T, UnixError>;
