//! The vnode layer: every open descriptor dispatches through the
//! [`Vnode`] trait, whatever it refers to.
//!
//! §5 of the paper insists the Unix file system is *untrusted library
//! code* over labeled kernel objects.  The vnode trait is where that
//! library stops special-casing: a regular file, a pipe end, a console, a
//! `/proc` pseudo-file and a `/dev` node all answer the same
//! `read`/`write`/`seek`/`stat` interface, and the kernel's label checks
//! run inside each implementation's system calls exactly as before.
//!
//! Descriptor state still lives in the *descriptor segment* (§5.3): a
//! vnode never caches the seek position, because `dup` and `fork` share
//! positions by sharing that segment.  What a vnode may cache is pure
//! naming: the typed capability [`Handle`] to its backing segment and to
//! the descriptor segment, so steady-state I/O names both objects without
//! re-resolving a [`ContainerEntry`], and the hot read/write paths submit
//! their data operation and the descriptor seek-update as ONE submission
//! batch (a single boundary crossing).

use crate::env::UnixError;
use crate::fdtable::{FdState, FD_POSITION_OFFSET, FD_STATE_LEN};
use crate::fs::FileStat;
use histar_kernel::abi::Handle;
use histar_kernel::dispatch::Syscall;
use histar_kernel::object::{ContainerEntry, ObjectId};
use histar_kernel::serialize::encode_object;
use histar_kernel::syscall::SyscallError;
use histar_kernel::{Kernel, Machine};

type Result<T> = core::result::Result<T, UnixError>;

/// Size of the ring buffer inside a pipe segment.
pub const PIPE_CAPACITY: u64 = 64 * 1024;
/// Header bytes of a pipe segment: read position, write position, writer
/// count.
pub const PIPE_HEADER: u64 = 24;

/// The mutable state a vnode operation runs against: the simulated
/// machine and the calling process's thread.  Every kernel call a vnode
/// makes goes through `trap_*`/`submit_calls` on this thread, so the
/// kernel's label checks always apply to the actual caller.
#[derive(Debug)]
pub struct VfsCtx<'a> {
    /// The machine the environment runs on.
    pub machine: &'a mut Machine,
    /// The calling process's thread.
    pub thread: ObjectId,
}

impl VfsCtx<'_> {
    /// The kernel, mutably — the path every syscall takes.
    pub fn kernel(&mut self) -> &mut Kernel {
        self.machine.kernel_mut()
    }
}

/// The resolved location of one descriptor segment, as seen by one
/// thread: the raw container entry it was found through and (when the
/// kernel granted one) a cached capability handle for it.
#[derive(Clone, Copy, Debug)]
pub struct FdRef {
    /// The descriptor segment's object ID.
    pub seg: ObjectId,
    /// The container entry the segment is reachable through.
    pub entry: ContainerEntry,
    /// Cached per-thread capability handle for `entry`.
    pub handle: Option<Handle>,
}

impl FdRef {
    /// The entry I/O should name the descriptor segment by: the cached
    /// handle when present, the raw entry otherwise.
    pub fn io_entry(&self) -> ContainerEntry {
        self.handle.map(Handle::entry).unwrap_or(self.entry)
    }

    /// The batched syscall that stores a new seek position into the
    /// descriptor segment (the second entry of the hot-path batches).
    pub fn position_update(&self, position: u64) -> Syscall {
        Syscall::SegmentWrite {
            entry: self.io_entry(),
            offset: FD_POSITION_OFFSET,
            data: position.to_le_bytes().to_vec(),
        }
    }
}

/// Restores a descriptor's seek position after a failed batched I/O.
/// Submission batches have no rollback — every entry executes — so a
/// hot path whose data operation failed must undo the optimistic
/// position update or a denied read/write would move the shared
/// position.  Best-effort: the fd segment is the caller's own state, so
/// this write only fails if the descriptor itself is gone.
pub fn undo_seek(ctx: &mut VfsCtx, fd: &FdRef, position: u64) {
    let thread = ctx.thread;
    let _ = ctx
        .kernel()
        .submit_calls(thread, vec![fd.position_update(position)]);
}

/// Reads and decodes the descriptor state from its segment (one trap).
pub fn read_fd_state(ctx: &mut VfsCtx, fd: &FdRef) -> Result<FdState> {
    let thread = ctx.thread;
    let bytes = match ctx
        .kernel()
        .trap_segment_read(thread, fd.io_entry(), 0, FD_STATE_LEN)
    {
        Err(SyscallError::BadHandle(_)) => {
            // The cached handle was revoked; fall back to the raw entry.
            ctx.kernel()
                .trap_segment_read(thread, fd.entry, 0, FD_STATE_LEN)?
        }
        other => other?,
    };
    FdState::decode(&bytes).ok_or(UnixError::Corrupt("fd segment"))
}

/// Read-modify-writes the descriptor state (used by the cold paths:
/// `close`/`dup`/`fork` reference counting).
pub fn update_fd_state(
    ctx: &mut VfsCtx,
    fd: &FdRef,
    update: impl FnOnce(&mut FdState),
) -> Result<FdState> {
    let mut state = read_fd_state(ctx, fd)?;
    update(&mut state);
    let thread = ctx.thread;
    ctx.kernel()
        .trap_segment_write(thread, fd.io_entry(), 0, &state.encode())?;
    Ok(state)
}

/// One open descriptor's behaviour: the object every `FdKind` used to be
/// hand-dispatched to.  Implementations update descriptor-segment state
/// (seek position, pipe header) themselves, batching those updates with
/// their data operation where the ABI allows.
pub trait Vnode: core::fmt::Debug {
    /// Reads up to `len` bytes at the descriptor's current position.
    fn read(&mut self, ctx: &mut VfsCtx, fd: &FdRef, state: &FdState, len: u64) -> Result<Vec<u8>>;

    /// Writes `data` at the descriptor's current position, returning the
    /// number of bytes written.
    fn write(&mut self, ctx: &mut VfsCtx, fd: &FdRef, state: &FdState, data: &[u8]) -> Result<u64>;

    /// Repositions the descriptor (absolute seek).  The default stores
    /// the position into the descriptor segment, which is all a seekable
    /// vnode needs; stream-like vnodes (pipes, console, sockets)
    /// override this to refuse.
    fn seek(&mut self, ctx: &mut VfsCtx, fd: &FdRef, position: u64) -> Result<()> {
        let thread = ctx.thread;
        for r in ctx
            .kernel()
            .submit_calls(thread, vec![fd.position_update(position)])
        {
            r?;
        }
        Ok(())
    }

    /// `fstat` through the descriptor.
    fn stat(&mut self, _ctx: &mut VfsCtx, state: &FdState) -> Result<FileStat> {
        Ok(FileStat {
            object: state.target,
            is_dir: false,
            len: 0,
        })
    }

    /// Makes specific pages of the backing object durable in place
    /// (`fdatasync`); only file-backed vnodes support it.
    fn fsync_pages(&mut self, _ctx: &mut VfsCtx, _state: &FdState, _pages: &[u64]) -> Result<()> {
        Err(UnixError::Unsupported("fsync on a non-file descriptor"))
    }

    /// Called when the last reference to the descriptor is closed (e.g. a
    /// pipe write end signalling end-of-file).
    fn on_last_close(&mut self, _ctx: &mut VfsCtx, _state: &FdState) -> Result<()> {
        Ok(())
    }

    /// Drops any capability handles the vnode cached for `ctx.thread`.
    fn release(&mut self, _ctx: &mut VfsCtx) {}
}

// ---------------------------------------------------------------- pipes --

/// Both ends of a pipe: a ring buffer in a shared segment whose header
/// holds `(read pos, write pos, writer count)`.  The header read costs one
/// trap; the data transfer and the header update then cross the boundary
/// together as one batch.
#[derive(Debug, Default)]
pub struct PipeVnode;

fn pipe_entry(state: &FdState) -> ContainerEntry {
    ContainerEntry::new(state.target_container, state.target)
}

pub(crate) fn decode_pipe_header(header: &[u8]) -> (u64, u64, u64) {
    let rpos = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
    let wpos = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let writers = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    (rpos, wpos, writers)
}

pub(crate) fn encode_pipe_header(rpos: u64, wpos: u64, writers: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(PIPE_HEADER as usize);
    out.extend_from_slice(&rpos.to_le_bytes());
    out.extend_from_slice(&wpos.to_le_bytes());
    out.extend_from_slice(&writers.to_le_bytes());
    out
}

/// One byte ring inside a segment: a `PIPE_HEADER`-byte header plus
/// `capacity` data bytes, each at an arbitrary offset.  A pipe segment
/// holds one ring; a socket connection segment holds two (one per
/// direction), with both headers packed at the front so an idle
/// connection materializes almost no segment bytes.
#[derive(Clone, Copy, Debug)]
pub struct Ring {
    /// The segment holding the ring.
    pub entry: ContainerEntry,
    /// Byte offset of the ring's `(rpos, wpos, writers)` header.
    pub header: u64,
    /// Byte offset of the ring's data area.
    pub data: u64,
    /// Data capacity in bytes.
    pub capacity: u64,
}

impl Ring {
    /// The offset poll probes to compute readiness without data movement.
    pub fn header_offset(&self) -> u64 {
        self.header
    }

    /// Decoded `(rpos, wpos, writers)` header (one trap).
    pub fn read_header(&self, ctx: &mut VfsCtx) -> Result<(u64, u64, u64)> {
        let thread = ctx.thread;
        let header =
            ctx.kernel()
                .trap_segment_read(thread, self.entry, self.header, PIPE_HEADER)?;
        Ok(decode_pipe_header(&header))
    }

    /// Consumes up to `len` bytes.  Empty ring: end-of-file when no
    /// writers remain, [`UnixError::WouldBlock`] otherwise.  The data
    /// read(s) and the header update cross the boundary as one batch.
    pub(crate) fn read(&self, ctx: &mut VfsCtx, len: u64) -> Result<Vec<u8>> {
        let (rpos, wpos, writers) = self.read_header(ctx)?;
        let available = wpos - rpos;
        if available == 0 {
            if writers == 0 {
                return Ok(Vec::new()); // end of file
            }
            return Err(UnixError::WouldBlock);
        }
        let n = len.min(available);
        let start = rpos % self.capacity;
        let first = n.min(self.capacity - start);
        let mut calls = vec![Syscall::SegmentRead {
            entry: self.entry,
            offset: self.data + start,
            len: first,
        }];
        if first < n {
            calls.push(Syscall::SegmentRead {
                entry: self.entry,
                offset: self.data,
                len: n - first,
            });
        }
        calls.push(Syscall::SegmentWrite {
            entry: self.entry,
            offset: self.header,
            data: encode_pipe_header(rpos + n, wpos, writers),
        });
        let thread = ctx.thread;
        let mut results = ctx.kernel().submit_calls(thread, calls).into_iter();
        let mut out = results.next().expect("first read completes")?.into_bytes();
        if first < n {
            out.extend(results.next().expect("wrap read completes")?.into_bytes());
        }
        results.next().expect("header update completes")?;
        Ok(out)
    }

    /// Appends up to `data.len()` bytes, returning how many fit.  A full
    /// ring returns [`UnixError::WouldBlock`].
    pub(crate) fn write(&self, ctx: &mut VfsCtx, data: &[u8]) -> Result<u64> {
        let (rpos, wpos, writers) = self.read_header(ctx)?;
        let free = self.capacity - (wpos - rpos);
        if free == 0 {
            return Err(UnixError::WouldBlock);
        }
        let n = (data.len() as u64).min(free);
        let start = wpos % self.capacity;
        let first = n.min(self.capacity - start);
        let mut calls = vec![Syscall::SegmentWrite {
            entry: self.entry,
            offset: self.data + start,
            data: data[..first as usize].to_vec(),
        }];
        if first < n {
            calls.push(Syscall::SegmentWrite {
                entry: self.entry,
                offset: self.data,
                data: data[first as usize..n as usize].to_vec(),
            });
        }
        calls.push(Syscall::SegmentWrite {
            entry: self.entry,
            offset: self.header,
            data: encode_pipe_header(rpos, wpos + n, writers),
        });
        let thread = ctx.thread;
        for r in ctx.kernel().submit_calls(thread, calls) {
            r?;
        }
        Ok(n)
    }

    /// Adjusts the writer count (last close of a write end → EOF for
    /// readers).
    fn adjust_writers(&self, ctx: &mut VfsCtx, delta: i64) -> Result<()> {
        let (rpos, wpos, writers) = self.read_header(ctx)?;
        let writers = if delta < 0 {
            writers.saturating_sub(delta.unsigned_abs())
        } else {
            writers + delta as u64
        };
        let thread = ctx.thread;
        ctx.kernel().trap_segment_write(
            thread,
            self.entry,
            self.header,
            &encode_pipe_header(rpos, wpos, writers),
        )?;
        Ok(())
    }
}

impl PipeVnode {
    fn ring(state: &FdState) -> Ring {
        Ring {
            entry: pipe_entry(state),
            header: 0,
            data: PIPE_HEADER,
            capacity: PIPE_CAPACITY,
        }
    }
}

impl Vnode for PipeVnode {
    fn read(
        &mut self,
        ctx: &mut VfsCtx,
        _fd: &FdRef,
        state: &FdState,
        len: u64,
    ) -> Result<Vec<u8>> {
        if state.kind.is_pipe_write() {
            return Err(UnixError::Unsupported("read from pipe write end"));
        }
        PipeVnode::ring(state).read(ctx, len)
    }

    fn write(
        &mut self,
        ctx: &mut VfsCtx,
        _fd: &FdRef,
        state: &FdState,
        data: &[u8],
    ) -> Result<u64> {
        if !state.kind.is_pipe_write() {
            return Err(UnixError::Unsupported("write to pipe read end"));
        }
        PipeVnode::ring(state).write(ctx, data)
    }

    fn seek(&mut self, _ctx: &mut VfsCtx, _fd: &FdRef, _position: u64) -> Result<()> {
        Err(UnixError::Unsupported("seek on a non-file descriptor"))
    }

    fn on_last_close(&mut self, ctx: &mut VfsCtx, state: &FdState) -> Result<()> {
        if state.kind.is_pipe_write() {
            PipeVnode::ring(state).adjust_writers(ctx, -1)?;
        }
        Ok(())
    }
}

/// Creates a pipe segment inside `container` and returns the descriptor
/// states for its read and write ends.
pub fn create_pipe(ctx: &mut VfsCtx, container: ObjectId) -> Result<(FdState, FdState)> {
    use crate::fdtable::{FdKind, FLAG_RDONLY, FLAG_WRONLY};
    let thread = ctx.thread;
    let kernel = ctx.kernel();
    let pipe_label = kernel
        .thread_label(thread)?
        .drop_ownership(histar_label::Level::L1);
    let pipe_seg = kernel.trap_segment_create(
        thread,
        container,
        pipe_label,
        PIPE_HEADER + PIPE_CAPACITY,
        "pipe",
    )?;
    // Header: read pos = 0, write pos = 0, writers = 1.
    kernel.trap_segment_write(
        thread,
        ContainerEntry::new(container, pipe_seg),
        0,
        &encode_pipe_header(0, 0, 1),
    )?;
    let base = FdState {
        kind: FdKind::PipeRead,
        target: pipe_seg,
        target_container: container,
        position: 0,
        flags: FLAG_RDONLY,
        refs: 1,
    };
    let read_end = base;
    let write_end = FdState {
        kind: FdKind::PipeWrite,
        flags: FLAG_WRONLY,
        ..base
    };
    Ok((read_end, write_end))
}

// -------------------------------------------------------------- console --

/// The console/TTY: writes are transmitted to the boot console device
/// (label-checked by the kernel's device transmit path); reads return
/// end-of-file.
#[derive(Debug)]
pub struct ConsoleVnode {
    device: Option<ObjectId>,
    kroot: ObjectId,
}

impl ConsoleVnode {
    /// A console vnode for the machine's boot console device.
    pub fn new(device: Option<ObjectId>, kroot: ObjectId) -> ConsoleVnode {
        ConsoleVnode { device, kroot }
    }
}

impl Vnode for ConsoleVnode {
    fn read(
        &mut self,
        _ctx: &mut VfsCtx,
        _fd: &FdRef,
        _state: &FdState,
        _len: u64,
    ) -> Result<Vec<u8>> {
        Ok(Vec::new())
    }

    fn write(
        &mut self,
        ctx: &mut VfsCtx,
        _fd: &FdRef,
        _state: &FdState,
        data: &[u8],
    ) -> Result<u64> {
        if let Some(console) = self.device {
            let thread = ctx.thread;
            let entry = ContainerEntry::new(self.kroot, console);
            ctx.kernel()
                .trap_net_transmit(thread, entry, data.to_vec())?;
        }
        Ok(data.len() as u64)
    }

    fn seek(&mut self, _ctx: &mut VfsCtx, _fd: &FdRef, _position: u64) -> Result<()> {
        Err(UnixError::Unsupported("seek on a non-file descriptor"))
    }
}

// -------------------------------------------------------------- sockets --

/// Data capacity of one direction of a socket connection.  Sized so the
/// whole duplex segment (two headers + two data areas) fits in a single
/// page: a connection created with `len = 0` gets a one-page quota, its
/// bytes materialize lazily as data flows, and 10⁴ concurrent idle
/// connections cost 10⁴ × ~48 bytes, not 10⁴ × pages.
pub const SOCK_RING_CAPACITY: u64 = 2000;
/// Offset of the first ring's data area: both headers pack at the front.
const SOCK_DATA_BASE: u64 = 2 * PIPE_HEADER;

/// A connected network socket: one shared *connection segment* holding
/// two [`Ring`]s — ring 0 carries client→server bytes, ring 1
/// server→client — so `read`/`write`/`close` are ordinary label-checked
/// segment operations on whichever ring faces away from the caller.
/// `netd` creates the segment (labelled with its network taint plus the
/// connection's own categories), so every byte moved here is subject to
/// exactly the information-flow rules of §5.7.
///
/// Which side of the connection a descriptor is (and whether it is a
/// listening socket, whose segment is the accept queue) is carried in the
/// descriptor flags, not in the vnode: positions live in the shared
/// segment, the vnode stays stateless.
#[derive(Debug, Default)]
pub struct SocketVnode;

/// Ring `i` (0 = client→server, 1 = server→client) of a connection
/// segment.
fn socket_ring(entry: ContainerEntry, i: u64) -> Ring {
    Ring {
        entry,
        header: i * PIPE_HEADER,
        data: SOCK_DATA_BASE + i * SOCK_RING_CAPACITY,
        capacity: SOCK_RING_CAPACITY,
    }
}

/// The ring a descriptor *receives* from.
pub fn socket_rx_ring(state: &FdState) -> Ring {
    use crate::fdtable::FLAG_SOCK_SERVER;
    let i = if state.flags & FLAG_SOCK_SERVER != 0 {
        0
    } else {
        1
    };
    socket_ring(pipe_entry(state), i)
}

/// The ring a descriptor *transmits* into.
pub fn socket_tx_ring(state: &FdState) -> Ring {
    use crate::fdtable::FLAG_SOCK_SERVER;
    let i = if state.flags & FLAG_SOCK_SERVER != 0 {
        1
    } else {
        0
    };
    socket_ring(pipe_entry(state), i)
}

impl Vnode for SocketVnode {
    fn read(
        &mut self,
        ctx: &mut VfsCtx,
        _fd: &FdRef,
        state: &FdState,
        len: u64,
    ) -> Result<Vec<u8>> {
        use crate::fdtable::FLAG_SOCK_LISTEN;
        if state.flags & FLAG_SOCK_LISTEN != 0 {
            return Err(UnixError::Unsupported("read on a listening socket"));
        }
        socket_rx_ring(state).read(ctx, len)
    }

    fn write(
        &mut self,
        ctx: &mut VfsCtx,
        _fd: &FdRef,
        state: &FdState,
        data: &[u8],
    ) -> Result<u64> {
        use crate::fdtable::FLAG_SOCK_LISTEN;
        if state.flags & FLAG_SOCK_LISTEN != 0 {
            return Err(UnixError::Unsupported("write on a listening socket"));
        }
        socket_tx_ring(state).write(ctx, data)
    }

    fn seek(&mut self, _ctx: &mut VfsCtx, _fd: &FdRef, _position: u64) -> Result<()> {
        Err(UnixError::Unsupported("seek on a non-file descriptor"))
    }

    fn on_last_close(&mut self, ctx: &mut VfsCtx, state: &FdState) -> Result<()> {
        use crate::fdtable::FLAG_SOCK_LISTEN;
        if state.flags & FLAG_SOCK_LISTEN == 0 {
            // Hang up our transmit direction: the peer's next read sees
            // end-of-file instead of blocking forever.
            socket_tx_ring(state).adjust_writers(ctx, -1)?;
        }
        Ok(())
    }
}

/// What `poll` must read to decide this descriptor's readiness, when
/// readiness is ring-derived: `(header offset within the target segment,
/// ring capacity, write side?)`.  `None` means the descriptor is always
/// ready (files, console, pseudo-files).  One `PIPE_HEADER`-byte read at
/// the returned offset — batchable across descriptors — fully decides
/// readiness; no data moves.
pub fn readiness_probe(state: &FdState) -> Option<(u64, u64, bool)> {
    use crate::fdtable::{FdKind, FLAG_SOCK_LISTEN};
    match state.kind {
        FdKind::PipeRead => Some((0, PIPE_CAPACITY, false)),
        FdKind::PipeWrite => Some((0, PIPE_CAPACITY, true)),
        FdKind::Socket if state.flags & FLAG_SOCK_LISTEN != 0 => {
            // The accept queue is ring 0 of its segment.
            Some((0, crate::net_queue::QUEUE_CAPACITY, false))
        }
        FdKind::Socket => {
            let rx = socket_rx_ring(state);
            Some((rx.header_offset(), rx.capacity, false))
        }
        _ => None,
    }
}

/// Decides readiness from a probed ring header: a read side is ready when
/// bytes are buffered or every writer hung up (EOF is readable); a write
/// side is ready when the ring has free space.
pub fn readiness_from_header(header: &[u8], capacity: u64, write_side: bool) -> bool {
    let (rpos, wpos, writers) = decode_pipe_header(header);
    if write_side {
        capacity - (wpos - rpos) > 0
    } else {
        wpos > rpos || writers == 0
    }
}

/// Initializes a fresh connection segment's two ring headers (one writer
/// each — the two peers).  The segment itself is created by the caller
/// (netd), which chooses its label and container; created with `len = 0`,
/// only these 48 header bytes materialize until data actually flows.
pub fn init_socket_segment(ctx: &mut VfsCtx, entry: ContainerEntry) -> Result<()> {
    let thread = ctx.thread;
    let mut headers = encode_pipe_header(0, 0, 1);
    headers.extend(encode_pipe_header(0, 0, 1));
    ctx.kernel()
        .trap_segment_write(thread, entry, 0, &headers)?;
    Ok(())
}

// ---------------------------------------------------- durability helper --

/// Serializes one kernel object into the single-level store and syncs it
/// (the `fsync` primitive shared by path-level and descriptor-level
/// sync).
pub fn sync_object_to_store(machine: &mut Machine, id: ObjectId, pages: Option<&[u64]>) {
    if let Some(obj) = machine.kernel().raw_object(id) {
        let bytes = encode_object(obj);
        let store = machine.store_mut();
        store.put(id.raw(), bytes);
        match pages {
            Some(pages) => {
                if store.sync_pages_in_place(id.raw(), pages).is_err() {
                    store.sync_object(id.raw());
                }
            }
            None => store.sync_object(id.raw()),
        }
    }
}
