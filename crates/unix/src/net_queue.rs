//! The accept queue: how `netd` hands freshly created connections to a
//! listening server.
//!
//! A listening socket's descriptor points at a *queue segment* — a single
//! byte ring (same header format as a pipe) of fixed-size records, each
//! naming one connection segment plus the two per-connection categories
//! minted for it (the receive-taint category and the write-protect
//! category, the paper's §6.1 `ssl_r`/`ssl_w` pattern).  `netd` enqueues
//! on connect; the server's `accept` dequeues, asks netd to grant it the
//! two categories, and installs a server-side socket descriptor.
//!
//! Because the queue is an ordinary labeled segment, the blocking story
//! is the pipe story: an empty queue is `WouldBlock`, a parked acceptor
//! registers a readiness watch on the queue segment, and netd's enqueue
//! write wakes it through the kernel's watcher list — `accept(2)` without
//! a polling loop.

use crate::env::UnixError;
use crate::vnode::{encode_pipe_header, Ring, VfsCtx, PIPE_HEADER};
use histar_kernel::object::{ContainerEntry, ObjectId};

type Result<T> = core::result::Result<T, UnixError>;

/// Encoded size of one queue record.
pub const QUEUE_ENTRY_LEN: u64 = 40;
/// Data capacity of the accept queue ring: a multiple of the record size
/// (so records never split across the wrap *logically*; the ring handles
/// byte wrap-around regardless), sized for a 10⁴-connection burst.
pub const QUEUE_CAPACITY: u64 = QUEUE_ENTRY_LEN * 16384;
/// Total queue segment length (header + data).
pub const QUEUE_SEGMENT_LEN: u64 = PIPE_HEADER + QUEUE_CAPACITY;

/// One pending connection, as handed from netd to an acceptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnHandoff {
    /// Container the connection segment is linked in.
    pub container: ObjectId,
    /// The connection segment (two rings, one per direction).
    pub segment: ObjectId,
    /// Raw name of the connection's receive-taint category (level 3 in
    /// the segment label: only holders may observe the connection).
    pub taint_cat: u64,
    /// Raw name of the connection's write-protect category (level 0 in
    /// the segment label: only owners may write the connection).
    pub write_cat: u64,
    /// The single-use grant gate netd pre-created for the acceptor (so
    /// netd itself can shed the two categories at connect time).  Its
    /// clearance pins the listener's guard category to `0`: only the
    /// legitimate acceptor can enter it.
    pub grant_gate: ObjectId,
}

impl ConnHandoff {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(QUEUE_ENTRY_LEN as usize);
        out.extend_from_slice(&self.container.raw().to_le_bytes());
        out.extend_from_slice(&self.segment.raw().to_le_bytes());
        out.extend_from_slice(&self.taint_cat.to_le_bytes());
        out.extend_from_slice(&self.write_cat.to_le_bytes());
        out.extend_from_slice(&self.grant_gate.raw().to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<ConnHandoff> {
        if bytes.len() != QUEUE_ENTRY_LEN as usize {
            return None;
        }
        let u = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("length checked"));
        Some(ConnHandoff {
            container: ObjectId::from_raw(u(0)),
            segment: ObjectId::from_raw(u(8)),
            taint_cat: u(16),
            write_cat: u(24),
            grant_gate: ObjectId::from_raw(u(32)),
        })
    }
}

/// Initializes a fresh queue segment's ring header.  The writer count is
/// pinned to 1 (netd never hangs up its own queue), so an empty queue is
/// always `WouldBlock` — never EOF.
pub fn init_queue_segment(ctx: &mut VfsCtx, queue: ContainerEntry) -> Result<()> {
    let header = encode_pipe_header(0, 0, 1);
    let thread = ctx.thread;
    ctx.kernel().trap_segment_write(thread, queue, 0, &header)?;
    Ok(())
}

/// The queue segment's ring.
pub fn queue_ring(entry: ContainerEntry) -> Ring {
    Ring {
        entry,
        header: 0,
        data: PIPE_HEADER,
        capacity: QUEUE_CAPACITY,
    }
}

/// Enqueues one pending connection (netd side).  All-or-nothing: a queue
/// without room for a whole record reports [`UnixError::WouldBlock`].
pub fn enqueue(ctx: &mut VfsCtx, queue: ContainerEntry, conn: &ConnHandoff) -> Result<()> {
    let ring = queue_ring(queue);
    let (rpos, wpos, _) = ring.read_header(ctx)?;
    if QUEUE_CAPACITY - (wpos - rpos) < QUEUE_ENTRY_LEN {
        return Err(UnixError::WouldBlock);
    }
    let n = ring.write(ctx, &conn.encode())?;
    debug_assert_eq!(n, QUEUE_ENTRY_LEN, "free space was checked above");
    Ok(())
}

/// Dequeues the oldest pending connection (acceptor side).  An empty
/// queue reports [`UnixError::WouldBlock`] — the caller registers a
/// watch on the queue segment and parks.
pub fn dequeue(ctx: &mut VfsCtx, queue: ContainerEntry) -> Result<ConnHandoff> {
    let bytes = queue_ring(queue).read(ctx, QUEUE_ENTRY_LEN)?;
    ConnHandoff::decode(&bytes).ok_or(UnixError::Corrupt("accept-queue record"))
}
