//! The segment filesystem (§5.1): files are segments, directories are
//! containers holding a *directory segment* mapping names to object IDs,
//! and permissions are nothing but the labels on those kernel objects.
//!
//! This is the paper's file system, lifted out of the old `UnixEnv`
//! monolith into a mountable [`Filesystem`].  Several instances can be
//! mounted at once (`UnixEnv::mount` overlays another container, e.g. a
//! daemon's exported namespace, as its own `SegFs`).
//!
//! [`SegVnode`] is the hot path: it caches the typed capability
//! [`Handle`] to its backing segment (installed through the kernel's
//! reachability check, revoked with the link) plus the segment's length,
//! so a steady-state `read`/`write` issues its data operation and the
//! descriptor seek-update as ONE two-entry submission batch — a single
//! boundary crossing instead of the seven the match-on-`FdKind` code
//! paid.

use crate::env::UnixError;
use crate::fdtable::{FdKind, FdState, FLAG_APPEND, FLAG_RDONLY, FLAG_WRONLY};
use crate::fs::{DirEntry, Directory, FileStat, OpenFlags};
use crate::vfs::{ensure_quota, Filesystem, FsNode, CREATE_HEADROOM, DIRECTORY_QUOTA};
use crate::vnode::{FdRef, VfsCtx, Vnode};
use histar_kernel::abi::Handle;
use histar_kernel::dispatch::Syscall;
use histar_kernel::kernel::PAGE_SIZE;
use histar_kernel::object::{ContainerEntry, ObjectId, METADATA_LEN};
use histar_kernel::syscall::SyscallError;
use histar_label::Label;

type Result<T> = core::result::Result<T, UnixError>;

/// The segment/directory-segment filesystem.  Node IDs are raw kernel
/// object IDs: containers for directories, segments for files.
#[derive(Debug)]
pub struct SegFs {
    root: ObjectId,
}

impl SegFs {
    /// A filesystem rooted at an existing directory container.
    pub fn new(root: ObjectId) -> SegFs {
        SegFs { root }
    }

    /// Creates a fresh root directory container under `parent` and
    /// returns the filesystem rooted there.
    pub fn format(
        ctx: &mut VfsCtx,
        parent: ObjectId,
        label: Label,
        descrip: &str,
    ) -> Result<SegFs> {
        let root = make_directory_in(ctx, parent, label, descrip)?;
        Ok(SegFs::new(root))
    }

    /// The root directory container.
    pub fn root_container(&self) -> ObjectId {
        self.root
    }

    fn read_dir(&mut self, ctx: &mut VfsCtx, dir: u64) -> Result<Directory> {
        read_directory(ctx, ObjectId::from_raw(dir))
    }
}

impl Filesystem for SegFs {
    fn fs_name(&self) -> &'static str {
        "segfs"
    }

    fn root_node(&self) -> u64 {
        self.root.raw()
    }

    fn lookup(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<FsNode> {
        let d = self.read_dir(ctx, dir)?;
        let entry = d
            .lookup(name)
            .ok_or_else(|| UnixError::NotFound(name.to_string()))?;
        Ok(FsNode {
            node: entry.object.raw(),
            is_dir: entry.is_dir,
        })
    }

    fn readdir(&mut self, ctx: &mut VfsCtx, dir: u64) -> Result<Vec<DirEntry>> {
        Ok(self.read_dir(ctx, dir)?.entries)
    }

    fn stat(&mut self, ctx: &mut VfsCtx, dir: u64, node: FsNode) -> Result<FileStat> {
        let object = ObjectId::from_raw(node.node);
        let len = if node.is_dir {
            0
        } else {
            let thread = ctx.thread;
            ctx.kernel()
                .trap_segment_len(thread, ContainerEntry::new(ObjectId::from_raw(dir), object))?
        };
        Ok(FileStat {
            object,
            is_dir: node.is_dir,
            len,
        })
    }

    fn mkdir(
        &mut self,
        ctx: &mut VfsCtx,
        dir: u64,
        name: &str,
        label: Option<Label>,
    ) -> Result<u64> {
        let dir = ObjectId::from_raw(dir);
        let mut d = read_directory(ctx, dir)?;
        if d.lookup(name).is_some() {
            return Err(UnixError::Exists(name.to_string()));
        }
        let label = label.unwrap_or_else(Label::unrestricted);
        let new_dir = make_directory_in(ctx, dir, label, name)?;
        d.insert(DirEntry {
            name: name.to_string(),
            object: new_dir,
            is_dir: true,
        });
        write_directory(ctx, dir, &d)?;
        Ok(new_dir.raw())
    }

    fn unlink(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<()> {
        let dir = ObjectId::from_raw(dir);
        let mut d = read_directory(ctx, dir)?;
        let entry = d
            .remove(name)
            .ok_or_else(|| UnixError::NotFound(name.to_string()))?;
        write_directory(ctx, dir, &d)?;
        let thread = ctx.thread;
        ctx.kernel()
            .trap_obj_unref(thread, ContainerEntry::new(dir, entry.object))?;
        Ok(())
    }

    fn rename(
        &mut self,
        ctx: &mut VfsCtx,
        dir_from: u64,
        from: &str,
        dir_to: u64,
        to: &str,
    ) -> Result<()> {
        if dir_from != dir_to {
            return Err(UnixError::Unsupported("cross-directory rename"));
        }
        let dir = ObjectId::from_raw(dir_from);
        let mut d = read_directory(ctx, dir)?;
        if !d.rename(from, to) {
            return Err(UnixError::NotFound(from.to_string()));
        }
        write_directory(ctx, dir, &d)
    }

    fn open(
        &mut self,
        ctx: &mut VfsCtx,
        dir: u64,
        name: &str,
        flags: OpenFlags,
        label: Option<Label>,
    ) -> Result<(FdState, Box<dyn Vnode>)> {
        let dir = ObjectId::from_raw(dir);
        let mut d = read_directory(ctx, dir)?;
        let mut known_len: Option<u64> = None;
        let file_seg = match d.lookup(name) {
            Some(entry) if entry.is_dir => {
                return Err(UnixError::IsADirectory(name.to_string()));
            }
            Some(entry) => {
                let seg = entry.object;
                if flags.truncate {
                    let thread = ctx.thread;
                    ctx.kernel()
                        .trap_segment_resize(thread, ContainerEntry::new(dir, seg), 0)?;
                    known_len = Some(0);
                }
                seg
            }
            None => {
                if !flags.create {
                    return Err(UnixError::NotFound(name.to_string()));
                }
                let label = label.unwrap_or_else(Label::unrestricted);
                ensure_quota(ctx, dir, CREATE_HEADROOM)?;
                let thread = ctx.thread;
                let seg = ctx
                    .kernel()
                    .trap_segment_create(thread, dir, label, 0, name)?;
                d.insert(DirEntry {
                    name: name.to_string(),
                    object: seg,
                    is_dir: false,
                });
                write_directory(ctx, dir, &d)?;
                known_len = Some(0);
                seg
            }
        };
        let mut fd_flags = 0u32;
        if flags.append {
            fd_flags |= FLAG_APPEND;
        }
        if flags.read && !flags.write {
            fd_flags |= FLAG_RDONLY;
        }
        if flags.write && !flags.read {
            fd_flags |= FLAG_WRONLY;
        }
        let state = FdState {
            kind: FdKind::File,
            target: file_seg,
            target_container: dir,
            position: 0,
            flags: fd_flags,
            refs: 1,
        };
        let mut vnode = SegVnode::new(ContainerEntry::new(dir, file_seg));
        vnode.cached_len = known_len;
        Ok((state, Box::new(vnode)))
    }

    fn vnode_from_state(&mut self, _ctx: &mut VfsCtx, state: &FdState) -> Result<Box<dyn Vnode>> {
        Ok(Box::new(SegVnode::new(ContainerEntry::new(
            state.target_container,
            state.target,
        ))))
    }

    fn fsync(&mut self, ctx: &mut VfsCtx, dir: u64, name: &str) -> Result<()> {
        let dir = ObjectId::from_raw(dir);
        let d = read_directory(ctx, dir)?;
        let dirseg = dirseg_of(ctx, dir)?;
        let mut ids = vec![dir, dirseg];
        if let Some(entry) = d.lookup(name) {
            ids.push(entry.object);
        }
        for id in ids {
            crate::vnode::sync_object_to_store(ctx.machine, id, None);
        }
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

// ------------------------------------------------- directory plumbing --

/// Creates a directory container plus its directory segment, recording
/// the directory segment's object ID in the container metadata.
pub fn make_directory_in(
    ctx: &mut VfsCtx,
    parent_container: ObjectId,
    label: Label,
    descrip: &str,
) -> Result<ObjectId> {
    ensure_quota(ctx, parent_container, DIRECTORY_QUOTA + 2 * PAGE_SIZE)?;
    let thread = ctx.thread;
    let kernel = ctx.kernel();
    let dir = kernel.trap_container_create(
        thread,
        parent_container,
        label.clone(),
        descrip,
        0,
        DIRECTORY_QUOTA,
    )?;
    let dirseg = kernel.trap_segment_create(thread, dir, label, PAGE_SIZE, ".dirents")?;
    let mut meta = [0u8; METADATA_LEN];
    meta[..8].copy_from_slice(&dirseg.raw().to_le_bytes());
    kernel.trap_obj_set_metadata(thread, ContainerEntry::self_entry(dir), meta)?;
    Ok(dir)
}

/// Finds the directory segment of a directory container.
pub fn dirseg_of(ctx: &mut VfsCtx, dir: ObjectId) -> Result<ObjectId> {
    let thread = ctx.thread;
    let meta = ctx
        .kernel()
        .trap_obj_get_metadata(thread, ContainerEntry::self_entry(dir))?;
    let raw = u64::from_le_bytes(meta[..8].try_into().expect("metadata is 64 bytes"));
    if raw == 0 {
        return Err(UnixError::Corrupt("directory has no directory segment"));
    }
    Ok(ObjectId::from_raw(raw))
}

/// Reads and decodes a directory container's directory segment.
pub fn read_directory(ctx: &mut VfsCtx, dir: ObjectId) -> Result<Directory> {
    let dirseg = dirseg_of(ctx, dir)?;
    let thread = ctx.thread;
    let kernel = ctx.kernel();
    let entry = ContainerEntry::new(dir, dirseg);
    let len = kernel.trap_segment_len(thread, entry)?;
    let bytes = kernel.trap_segment_read(thread, entry, 0, len)?;
    Directory::decode(&bytes).ok_or(UnixError::Corrupt("directory segment"))
}

/// Encodes and writes back a directory image, growing the directory
/// segment's quota from the directory's ancestors when it fills up.
pub fn write_directory(ctx: &mut VfsCtx, dir: ObjectId, d: &Directory) -> Result<()> {
    let dirseg = dirseg_of(ctx, dir)?;
    let entry = ContainerEntry::new(dir, dirseg);
    let bytes = d.encode();
    let thread = ctx.thread;
    if let Err(SyscallError::QuotaExceeded {
        requested,
        available,
        ..
    }) = ctx
        .kernel()
        .trap_segment_resize(thread, entry, bytes.len() as u64)
    {
        let grow = (requested - available).max(64 * PAGE_SIZE);
        ensure_quota(ctx, dir, grow)?;
        ctx.kernel()
            .trap_quota_move(thread, dir, dirseg, grow as i64)?;
        ctx.kernel()
            .trap_segment_resize(thread, entry, bytes.len() as u64)?;
    }
    ctx.kernel().trap_segment_write(thread, entry, 0, &bytes)?;
    Ok(())
}

// ------------------------------------------------------- the hot path --

/// A file vnode backed by one segment: the steady-state read/write path
/// of the whole Unix library.
#[derive(Debug)]
pub struct SegVnode {
    /// The raw container entry naming the backing segment.
    entry: ContainerEntry,
    /// Cached per-thread capability handle for `entry`.
    handle: Option<Handle>,
    /// Cached segment length.  Invalidated on handle loss and
    /// revalidated at end-of-file, so a reader that hits EOF observes
    /// growth by other descriptors; a concurrent *truncate* through a
    /// different descriptor surfaces as a failed in-batch read, which
    /// also refreshes the cache and retries.
    cached_len: Option<u64>,
}

impl SegVnode {
    /// A vnode for the segment named by `entry`.
    pub fn new(entry: ContainerEntry) -> SegVnode {
        SegVnode {
            entry,
            handle: None,
            cached_len: None,
        }
    }

    /// The entry I/O names the backing segment by: the cached capability
    /// handle when one is installed, the raw entry otherwise.
    fn io_entry(&self) -> ContainerEntry {
        self.handle.map(Handle::entry).unwrap_or(self.entry)
    }

    /// Installs (or reuses) the capability handle for the backing
    /// segment — after this, steady-state I/O never re-resolves the raw
    /// `ContainerEntry`.
    fn prime_handle(&mut self, ctx: &mut VfsCtx) {
        if self.handle.is_none() {
            let thread = ctx.thread;
            self.handle = ctx.kernel().handle_open_reuse(thread, self.entry).ok();
        }
    }

    /// The backing segment's length, from cache when warm (label-checked
    /// by the kernel when cold).
    fn len(&mut self, ctx: &mut VfsCtx) -> Result<u64> {
        if let Some(len) = self.cached_len {
            return Ok(len);
        }
        self.fetch_len(ctx)
    }

    fn fetch_len(&mut self, ctx: &mut VfsCtx) -> Result<u64> {
        let thread = ctx.thread;
        let len = match ctx.kernel().trap_segment_len(thread, self.io_entry()) {
            Err(SyscallError::BadHandle(_)) => {
                self.handle = None;
                ctx.kernel().trap_segment_len(thread, self.entry)?
            }
            other => other?,
        };
        self.cached_len = Some(len);
        Ok(len)
    }
}

impl Vnode for SegVnode {
    fn read(&mut self, ctx: &mut VfsCtx, fd: &FdRef, state: &FdState, len: u64) -> Result<Vec<u8>> {
        self.prime_handle(ctx);
        if len == 0 {
            // A zero-length read still label-checks (the length fetch),
            // like read(2) with a zero count still validates the fd.
            self.len(ctx)?;
            return Ok(Vec::new());
        }
        let mut attempts = 0;
        loop {
            let file_len = self.len(ctx)?;
            let start = state.position.min(file_len);
            let n = len.min(file_len - start);
            if n == 0 {
                // At (cached) end of file: revalidate once so growth by
                // other descriptors is observed, then report EOF.  The
                // revalidation is itself a label-checked kernel call, so
                // an unauthorized reader still fails here.
                let fresh = self.fetch_len(ctx)?;
                if fresh <= start {
                    return Ok(Vec::new());
                }
                continue;
            }
            // The data read and the descriptor seek-update cross the
            // boundary together: one batch, one trap cost.
            let thread = ctx.thread;
            let calls = vec![
                Syscall::SegmentRead {
                    entry: self.io_entry(),
                    offset: start,
                    len: n,
                },
                fd.position_update(start + n),
            ];
            let mut results = ctx.kernel().submit_calls(thread, calls).into_iter();
            let data = results.next().expect("read completes");
            let seek = results.next().expect("seek update completes");
            match data {
                Ok(r) => {
                    seek?;
                    return Ok(r.into_bytes());
                }
                Err(SyscallError::BadHandle(_)) if attempts == 0 => {
                    // Handle revoked under us: drop it and retry raw.
                    self.handle = None;
                    self.cached_len = None;
                    attempts += 1;
                }
                Err(SyscallError::InvalidArgument(_)) if attempts == 0 => {
                    // The cached length was stale (the file shrank).
                    self.cached_len = None;
                    attempts += 1;
                }
                Err(e) => {
                    // A failed read must not move the shared position.
                    crate::vnode::undo_seek(ctx, fd, state.position);
                    return Err(e.into());
                }
            }
        }
    }

    fn write(&mut self, ctx: &mut VfsCtx, fd: &FdRef, state: &FdState, data: &[u8]) -> Result<u64> {
        self.prime_handle(ctx);
        // Appends position at the real end of file — fetched fresh, since
        // appending after stale metadata would overwrite data.
        let pos = if state.flags & FLAG_APPEND != 0 {
            self.fetch_len(ctx)?
        } else {
            state.position
        };
        let end = pos + data.len() as u64;
        let mut attempts = 0;
        loop {
            let thread = ctx.thread;
            let calls = vec![
                Syscall::SegmentWrite {
                    entry: self.io_entry(),
                    offset: pos,
                    data: data.to_vec(),
                },
                fd.position_update(end),
            ];
            let mut results = ctx.kernel().submit_calls(thread, calls).into_iter();
            let wrote = results.next().expect("write completes");
            let seek = results.next().expect("seek update completes");
            match wrote {
                Ok(_) => {
                    seek?;
                    if let Some(len) = self.cached_len {
                        self.cached_len = Some(len.max(end));
                    }
                    return Ok(data.len() as u64);
                }
                Err(SyscallError::BadHandle(_)) if attempts == 0 => {
                    self.handle = None;
                    attempts += 1;
                }
                Err(SyscallError::QuotaExceeded {
                    requested,
                    available,
                    ..
                }) if attempts < 2 => {
                    // Growing the file past its segment quota is handled
                    // by the library: move more quota into the segment
                    // from the directory (topping the directory up from
                    // its ancestors).
                    let grow = (requested - available).max(PAGE_SIZE * 256);
                    let topped = ensure_quota(ctx, self.entry.container, grow).and_then(|()| {
                        ctx.kernel()
                            .trap_quota_move(
                                thread,
                                self.entry.container,
                                self.entry.object,
                                grow as i64,
                            )
                            .map_err(UnixError::from)
                    });
                    if let Err(e) = topped {
                        crate::vnode::undo_seek(ctx, fd, state.position);
                        return Err(e);
                    }
                    attempts += 1;
                }
                Err(e) => {
                    // A failed write must not move the shared position.
                    crate::vnode::undo_seek(ctx, fd, state.position);
                    return Err(e.into());
                }
            }
        }
    }

    fn stat(&mut self, ctx: &mut VfsCtx, state: &FdState) -> Result<FileStat> {
        self.prime_handle(ctx);
        let len = self.fetch_len(ctx)?;
        Ok(FileStat {
            object: state.target,
            is_dir: false,
            len,
        })
    }

    fn fsync_pages(&mut self, ctx: &mut VfsCtx, state: &FdState, pages: &[u64]) -> Result<()> {
        crate::vnode::sync_object_to_store(ctx.machine, state.target, Some(pages));
        Ok(())
    }

    fn release(&mut self, ctx: &mut VfsCtx) {
        if let Some(h) = self.handle.take() {
            let thread = ctx.thread;
            ctx.kernel().handle_close(thread, h);
        }
    }
}
