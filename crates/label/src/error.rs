//! Errors produced by label validation.

use core::fmt;

/// An error from a label operation or a label-based permission check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LabelError {
    /// The requested object label is below the thread's label in some
    /// category the thread does not own (`L_T ⊑ L` fails).
    AllocationBelowLabel,
    /// The requested object label exceeds the thread's clearance
    /// (`L ⊑ C_T` fails).
    AllocationAboveClearance,
    /// A label change attempted to lower taint without ownership
    /// (`L_T ⊑ L_new` fails).
    LabelNotMonotonic,
    /// A label exceeds the governing clearance (`L ⊑ C` fails).
    LabelExceedsClearance,
    /// A clearance was lowered below the thread's own label.
    ClearanceBelowLabel,
    /// A clearance was raised in a category the thread does not own.
    ClearanceExceedsBound,
    /// The label text could not be parsed.
    Parse(String),
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::AllocationBelowLabel => {
                write!(
                    f,
                    "object label is below the thread label in an unowned category"
                )
            }
            LabelError::AllocationAboveClearance => {
                write!(f, "object label exceeds the thread clearance")
            }
            LabelError::LabelNotMonotonic => {
                write!(f, "label change lowers taint without ownership")
            }
            LabelError::LabelExceedsClearance => write!(f, "label exceeds clearance"),
            LabelError::ClearanceBelowLabel => write!(f, "clearance lowered below thread label"),
            LabelError::ClearanceExceedsBound => {
                write!(f, "clearance raised in a category the thread does not own")
            }
            LabelError::Parse(msg) => write!(f, "label parse error: {msg}"),
        }
    }
}

impl std::error::Error for LabelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LabelError::Parse("oops".to_string());
        assert!(e.to_string().contains("oops"));
        assert!(LabelError::AllocationAboveClearance
            .to_string()
            .contains("clearance"));
    }
}
