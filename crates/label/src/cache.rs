//! Memoization of label comparisons between immutable labels.
//!
//! The HiStar kernel "caches the result of comparisons between immutable
//! labels" (§4).  Because object labels are fixed at creation, a comparison
//! between two immutable labels can be keyed by their identities and reused
//! on every subsequent access check.  This matters because label checks are
//! on the critical path of every system call and page fault.
//!
//! The cache is keyed by *label identity tokens* handed out by
//! [`LabelCache::intern`]; interning also deduplicates structurally equal
//! labels so that a system with thousands of objects sharing a handful of
//! distinct labels performs each comparison only once.

use crate::label::Label;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An opaque token identifying an interned, immutable label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LabelId(u64);

impl LabelId {
    /// Returns the raw token value (useful for diagnostics only).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Which comparison is being memoized.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum CmpKind {
    /// `a ⊑ b` with ownership low on both sides.
    Leq,
    /// `a ⊑ b^J` (ownership in `b` high) — the observation check.
    LeqHighRhs,
    /// `a^J ⊑ b^J`.
    LeqHighBoth,
}

/// Statistics for cache effectiveness, used by the ablation benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of comparisons answered from the cache.
    pub hits: u64,
    /// Number of comparisons computed and inserted.
    pub misses: u64,
    /// Number of distinct labels interned.
    pub interned: u64,
}

impl histar_obs::MetricSource for CacheStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("label_cache.hits", self.hits);
        set.counter("label_cache.misses", self.misses);
        set.gauge("label_cache.interned", self.interned);
    }
}

/// A comparison cache over interned immutable labels.
///
/// The cache is not itself thread-safe; the kernel wraps it in its own lock
/// (label checks already execute under the kernel lock in this
/// reproduction).
#[derive(Debug, Default)]
pub struct LabelCache {
    by_structure: HashMap<Label, LabelId>,
    by_id: HashMap<LabelId, Arc<Label>>,
    cmp: HashMap<(LabelId, LabelId, CmpKind), bool>,
    hits: u64,
    misses: u64,
}

static NEXT_LABEL_ID: AtomicU64 = AtomicU64::new(1);

impl LabelCache {
    /// Creates an empty cache.
    pub fn new() -> LabelCache {
        LabelCache::default()
    }

    /// Interns a label, returning a stable identity token.
    ///
    /// Structurally equal labels intern to the same token.
    pub fn intern(&mut self, label: &Label) -> LabelId {
        if let Some(&id) = self.by_structure.get(label) {
            return id;
        }
        let id = LabelId(NEXT_LABEL_ID.fetch_add(1, Ordering::Relaxed));
        self.by_structure.insert(label.clone(), id);
        self.by_id.insert(id, Arc::new(label.clone()));
        id
    }

    /// Returns the label for a previously interned token.
    pub fn get(&self, id: LabelId) -> Option<Arc<Label>> {
        self.by_id.get(&id).cloned()
    }

    fn lookup_or(
        &mut self,
        a: LabelId,
        b: LabelId,
        kind: CmpKind,
        compute: impl FnOnce(&Label, &Label) -> bool,
    ) -> bool {
        if let Some(&v) = self.cmp.get(&(a, b, kind)) {
            self.hits += 1;
            return v;
        }
        let la = self.by_id.get(&a).expect("label id not interned").clone();
        let lb = self.by_id.get(&b).expect("label id not interned").clone();
        let v = compute(&la, &lb);
        self.cmp.insert((a, b, kind), v);
        self.misses += 1;
        v
    }

    /// Memoized `a ⊑ b`.
    pub fn leq(&mut self, a: LabelId, b: LabelId) -> bool {
        self.lookup_or(a, b, CmpKind::Leq, |x, y| x.leq(y))
    }

    /// Memoized `a ⊑ b^J` (the "can `b` observe `a`" check).
    pub fn leq_high_rhs(&mut self, a: LabelId, b: LabelId) -> bool {
        self.lookup_or(a, b, CmpKind::LeqHighRhs, |x, y| x.leq_high_rhs(y))
    }

    /// Memoized `a^J ⊑ b^J`.
    pub fn leq_high_both(&mut self, a: LabelId, b: LabelId) -> bool {
        self.lookup_or(a, b, CmpKind::LeqHighBoth, |x, y| x.leq_high_both(y))
    }

    /// Current cache statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            interned: self.by_id.len() as u64,
        }
    }

    /// Drops all memoized comparisons (but keeps interned labels).
    ///
    /// Used by the ablation benchmark to measure uncached comparison cost.
    pub fn clear_comparisons(&mut self) {
        self.cmp.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, Level};

    fn c(n: u64) -> Category {
        Category::from_raw(n)
    }

    #[test]
    fn interning_deduplicates() {
        let mut cache = LabelCache::new();
        let a = Label::builder().set(c(1), Level::L3).build();
        let b = Label::builder().set(c(1), Level::L3).build();
        assert_eq!(cache.intern(&a), cache.intern(&b));
        assert_eq!(cache.stats().interned, 1);
    }

    #[test]
    fn memoized_results_match_direct_computation() {
        let mut cache = LabelCache::new();
        let thread = Label::unrestricted();
        let obj = Label::builder().set(c(1), Level::L3).build();
        let t = cache.intern(&thread);
        let o = cache.intern(&obj);
        assert_eq!(cache.leq_high_rhs(o, t), obj.leq_high_rhs(&thread));
        assert_eq!(cache.leq(t, o), thread.leq(&obj));
        assert_eq!(cache.leq_high_both(o, t), obj.leq_high_both(&thread));
    }

    #[test]
    fn hits_accumulate() {
        let mut cache = LabelCache::new();
        let a = cache.intern(&Label::unrestricted());
        let b = cache.intern(&Label::default_clearance());
        assert!(cache.leq(a, b));
        assert!(cache.leq(a, b));
        assert!(cache.leq(a, b));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        cache.clear_comparisons();
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn direction_matters() {
        let mut cache = LabelCache::new();
        let lo = cache.intern(&Label::unrestricted());
        let hi = cache.intern(&Label::default_clearance());
        assert!(cache.leq(lo, hi));
        assert!(!cache.leq(hi, lo));
    }
}
