//! Labels: total functions from categories to taint levels.
//!
//! A label maps every category to a level; all but a small number of
//! categories map to a *default* level (usually `1`).  We therefore store a
//! default level plus a sorted vector of `(category, level)` exceptions.
//! The paper's notation `{w0, r3, 1}` corresponds to
//! `Label::builder().set(w, L0).set(r, L3).default_level(L1).build()`.

use crate::category::Category;
use crate::error::LabelError;
use crate::level::{CheckLevel, Level};
use core::fmt;

/// A label: a total function from [`Category`] to [`Level`].
///
/// Labels are immutable once built (matching the kernel, where object labels
/// are fixed at creation; only thread labels change, and they change by
/// replacement).  All lattice operations return new labels.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Label {
    /// Default level for categories not listed in `entries`.
    default: Level,
    /// Non-default entries, sorted by category, with no entry equal to the
    /// default level (a normal form that makes `Eq`/`Hash` structural).
    entries: Vec<(Category, Level)>,
}

impl Label {
    /// Creates a label with the given default level and no exceptions.
    pub fn new(default: Level) -> Label {
        Label {
            default,
            entries: Vec::new(),
        }
    }

    /// The conventional unrestricted label `{1}`.
    pub fn unrestricted() -> Label {
        Label::new(Level::L1)
    }

    /// The conventional default thread clearance `{2}`.
    pub fn default_clearance() -> Label {
        Label::new(Level::L2)
    }

    /// Starts building a label.
    pub fn builder() -> LabelBuilder {
        LabelBuilder {
            default: Level::L1,
            entries: Vec::new(),
        }
    }

    /// Returns the default level.
    pub fn default_level(&self) -> Level {
        self.default
    }

    /// Returns the level of `category` under this label.
    pub fn level(&self, category: Category) -> Level {
        match self.entries.binary_search_by_key(&category, |e| e.0) {
            Ok(idx) => self.entries[idx].1,
            Err(_) => self.default,
        }
    }

    /// Returns the non-default `(category, level)` pairs in category order.
    pub fn entries(&self) -> impl Iterator<Item = (Category, Level)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of non-default entries (the "size" of the label, which drives
    /// the cost of label operations in the kernel).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the label has no non-default entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns a copy of this label with `category` set to `level`.
    pub fn with(&self, category: Category, level: Level) -> Label {
        let mut b = LabelBuilder {
            default: self.default,
            entries: self.entries.clone(),
        };
        b = b.set(category, level);
        b.build()
    }

    /// Returns a copy of this label with `category` restored to the default.
    pub fn without(&self, category: Category) -> Label {
        let mut entries = self.entries.clone();
        if let Ok(idx) = entries.binary_search_by_key(&category, |e| e.0) {
            entries.remove(idx);
        }
        Label {
            default: self.default,
            entries,
        }
    }

    /// The categories this label owns (maps to `⋆`).
    pub fn owned_categories(&self) -> impl Iterator<Item = Category> + '_ {
        self.entries
            .iter()
            .filter(|(_, l)| l.is_star())
            .map(|(c, _)| *c)
    }

    /// Returns true if this label owns (`⋆`) the given category.
    pub fn owns(&self, category: Category) -> bool {
        self.level(category).is_star()
    }

    /// Returns true if the label contains `⋆` anywhere.
    ///
    /// Only thread and gate labels may contain `⋆`; the kernel uses this to
    /// validate labels supplied for segments, containers, address spaces and
    /// devices.
    pub fn contains_star(&self) -> bool {
        self.default.is_star() || self.entries.iter().any(|(_, l)| l.is_star())
    }

    // ----- Lattice operations (paper §2.2) -----------------------------

    /// Iterates over every category mentioned by either label, merged.
    fn merged_categories<'a>(&'a self, other: &'a Label) -> impl Iterator<Item = Category> + 'a {
        MergedCategories {
            a: &self.entries,
            b: &other.entries,
            ia: 0,
            ib: 0,
        }
    }

    /// The `⊑` ("can flow to") relation: `self ⊑ other` iff for every
    /// category `c`, `self(c) ≤ other(c)` under the order
    /// `⋆ < 0 < 1 < 2 < 3 < J`, with `⋆` in *both* labels treated low.
    pub fn leq(&self, other: &Label) -> bool {
        self.leq_mapped(other, |l| l.as_low(), |l| l.as_low())
    }

    /// `self^J ⊑ other`, i.e. `⋆` in `self` treated as `J` (high).
    ///
    /// This form never holds unless `other` also has high entries, so the
    /// useful direction is [`Label::leq_high_rhs`]; it is provided for
    /// completeness and for expressing the paper's formulas literally.
    pub fn leq_high_lhs(&self, other: &Label) -> bool {
        self.leq_mapped(other, |l| l.as_high(), |l| l.as_low())
    }

    /// `self ⊑ other^J`, i.e. `⋆` in `other` treated as `J` (high).
    ///
    /// This is the form used by the kernel's observation check
    /// (`L_O ⊑ L_T^J`) and by most clearance rules.
    pub fn leq_high_rhs(&self, other: &Label) -> bool {
        self.leq_mapped(other, |l| l.as_low(), |l| l.as_high())
    }

    /// `self^J ⊑ other^J` — both sides with ownership treated high.
    ///
    /// Used, for example, to decide whether one thread may read another
    /// thread's (mutable) label: `L_{T'}^J ⊑ L_T^J`.
    pub fn leq_high_both(&self, other: &Label) -> bool {
        self.leq_mapped(other, |l| l.as_high(), |l| l.as_high())
    }

    fn leq_mapped(
        &self,
        other: &Label,
        map_l: impl Fn(Level) -> CheckLevel,
        map_r: impl Fn(Level) -> CheckLevel,
    ) -> bool {
        // Default-vs-default must also satisfy the order because the set of
        // categories is effectively unbounded.
        if map_l(self.default) > map_r(other.default) {
            return false;
        }
        for c in self.merged_categories(other) {
            if map_l(self.level(c)) > map_r(other.level(c)) {
                return false;
            }
        }
        true
    }

    /// Least upper bound `self ⊔ other`: pointwise maximum level, with `⋆`
    /// treated low in both operands.
    pub fn lub(&self, other: &Label) -> Label {
        self.combine(other, |a, b| if a.as_low() >= b.as_low() { a } else { b })
    }

    /// Greatest lower bound `self ⊓ other`: pointwise minimum level, with
    /// `⋆` treated low in both operands.
    pub fn glb(&self, other: &Label) -> Label {
        self.combine(other, |a, b| if a.as_low() <= b.as_low() { a } else { b })
    }

    fn combine(&self, other: &Label, pick: impl Fn(Level, Level) -> Level) -> Label {
        let default = pick(self.default, other.default);
        let mut b = LabelBuilder {
            default,
            entries: Vec::new(),
        };
        let cats: Vec<Category> = self.merged_categories(other).collect();
        for c in cats {
            b = b.set(c, pick(self.level(c), other.level(c)));
        }
        b.build()
    }

    /// The lowest label a thread labelled `self` must raise itself to in
    /// order to observe an object labelled `observed`:
    /// `(self^J ⊔ observed)^⋆` (paper §2.2).
    ///
    /// Ownership (`⋆`) in `self` is preserved in the result.
    pub fn raise_for_observe(&self, observed: &Label) -> Label {
        // Compute pointwise max where self's ⋆ counts as J (high), then map
        // J back down to ⋆.
        let default = {
            let a = self.default.as_high();
            let b = observed.default.as_low();
            core::cmp::max(a, b).lower_ownership().to_level()
        };
        let mut builder = LabelBuilder {
            default,
            entries: Vec::new(),
        };
        let cats: Vec<Category> = self.merged_categories(observed).collect();
        for c in cats {
            let a = self.level(c).as_high();
            let b = observed.level(c).as_low();
            let lvl = core::cmp::max(a, b).lower_ownership().to_level();
            builder = builder.set(c, lvl);
        }
        builder.build()
    }

    /// The ownership-preserving union `(self^J ⊔ other^J)^⋆`: pointwise
    /// maximum with ownership treated high in both operands, then mapped
    /// back to `⋆`.
    ///
    /// This is the *lowest* label a thread labelled `self` may request when
    /// entering a gate labelled `other` (§3.5): the thread keeps its own
    /// taint, gains the gate's taint, and the union of their ownership.
    pub fn ownership_union(&self, other: &Label) -> Label {
        let pick = |a: Level, b: Level| {
            core::cmp::max(a.as_high(), b.as_high())
                .lower_ownership()
                .to_level()
        };
        let default = pick(self.default, other.default);
        let mut builder = LabelBuilder {
            default,
            entries: Vec::new(),
        };
        let cats: Vec<Category> = self.merged_categories(other).collect();
        for c in cats {
            builder = builder.set(c, pick(self.level(c), other.level(c)));
        }
        builder.build()
    }

    // ----- Kernel access checks (paper §2.2) ----------------------------

    /// "No read up": a thread labelled `self` can observe an object labelled
    /// `object` iff `object ⊑ self^J`.
    pub fn can_observe(&self, object: &Label) -> bool {
        object.leq_high_rhs(self)
    }

    /// "No write down": a thread labelled `self` can modify an object
    /// labelled `object` (which in HiStar implies observing it) iff
    /// `self ⊑ object ⊑ self^J`.
    pub fn can_modify(&self, object: &Label) -> bool {
        self.leq(object) && object.leq_high_rhs(self)
    }

    /// Whether a thread labelled `self` with clearance `clearance` may
    /// allocate an object with label `object`: `self ⊑ object ⊑ clearance`.
    pub fn can_allocate(&self, clearance: &Label, object: &Label) -> Result<(), LabelError> {
        if !self.leq(object) {
            return Err(LabelError::AllocationBelowLabel);
        }
        if !object.leq(clearance) {
            return Err(LabelError::AllocationAboveClearance);
        }
        Ok(())
    }

    /// Validates a `self_set_label` transition from `self` (current thread
    /// label) to `new`, bounded by `clearance`: `self ⊑ new ⊑ clearance`.
    pub fn check_set_label(&self, clearance: &Label, new: &Label) -> Result<(), LabelError> {
        if !self.leq(new) {
            return Err(LabelError::LabelNotMonotonic);
        }
        if !new.leq(clearance) {
            return Err(LabelError::LabelExceedsClearance);
        }
        Ok(())
    }

    /// Validates a `self_set_clearance` transition: the new clearance `new`
    /// must satisfy `self ⊑ new ⊑ (clearance ⊔ self^J)`.
    ///
    /// A thread may lower its clearance in any category (not below its
    /// label) and may raise its clearance in categories it owns.
    pub fn check_set_clearance(&self, clearance: &Label, new: &Label) -> Result<(), LabelError> {
        if !self.leq(new) {
            return Err(LabelError::ClearanceBelowLabel);
        }
        // upper bound: clearance ⊔ self^J, i.e. new ⊑ bound where self's ⋆
        // counts as J.  Equivalently: for each category, new(c) must be ≤
        // max(clearance(c), self(c)-as-high).
        let ok = {
            let bound_ok = |c: Category| {
                let n = new.level(c).as_low();
                let cl = clearance.level(c).as_low();
                let own = self.level(c).as_high();
                n <= core::cmp::max(cl, own)
            };
            let default_ok = {
                let n = new.default.as_low();
                let cl = clearance.default.as_low();
                let own = self.default.as_high();
                n <= core::cmp::max(cl, own)
            };
            default_ok
                && new
                    .merged_categories(clearance)
                    .chain(new.merged_categories(self))
                    .all(bound_ok)
        };
        if ok {
            Ok(())
        } else {
            Err(LabelError::ClearanceExceedsBound)
        }
    }

    /// Validates spawning a thread with label `child_label` and clearance
    /// `child_clearance` from a parent with `self` / `clearance`:
    /// `self ⊑ child_label ⊑ child_clearance ⊑ clearance`.
    pub fn check_spawn(
        &self,
        clearance: &Label,
        child_label: &Label,
        child_clearance: &Label,
    ) -> Result<(), LabelError> {
        if !self.leq(child_label) {
            return Err(LabelError::LabelNotMonotonic);
        }
        if !child_label.leq(child_clearance) {
            return Err(LabelError::ClearanceBelowLabel);
        }
        if !child_clearance.leq(clearance) {
            return Err(LabelError::LabelExceedsClearance);
        }
        Ok(())
    }

    /// Maps `⋆` entries (and a `⋆` default) to the given level, leaving
    /// numeric levels unchanged.  `label.drop_ownership(Level::L1)` is what
    /// a gate grants to a caller that only *verifies* categories.
    pub fn drop_ownership(&self, replacement: Level) -> Label {
        let default = if self.default.is_star() {
            replacement
        } else {
            self.default
        };
        let mut b = LabelBuilder {
            default,
            entries: Vec::new(),
        };
        for (c, l) in self.entries() {
            b = b.set(c, if l.is_star() { replacement } else { l });
        }
        b.build()
    }

    /// Parses the paper's brace notation, e.g. `"{br *, v3, 1}"` given a
    /// resolver from names to categories.
    ///
    /// The final bare level is the default level.  Levels are `*`, `0`,
    /// `1`, `2`, `3`.  Whitespace is insignificant.
    pub fn parse<F>(text: &str, mut resolve: F) -> Result<Label, LabelError>
    where
        F: FnMut(&str) -> Option<Category>,
    {
        let t = text.trim();
        let inner = t
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| LabelError::Parse(format!("label must be braced: {text:?}")))?;
        let mut builder = Label::builder();
        let mut default: Option<Level> = None;
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            // A bare level is the default.
            if let Some(level) = parse_level(part) {
                default = Some(level);
                continue;
            }
            // Otherwise it is "<name> <level>" or "<name><level>".
            let split_at = part
                .char_indices()
                .rev()
                .find(|(_, ch)| !ch.is_whitespace())
                .map(|(i, _)| i)
                .ok_or_else(|| LabelError::Parse(format!("bad label entry: {part:?}")))?;
            let (name_part, level_part) = part.split_at(split_at);
            let level = parse_level(level_part.trim())
                .ok_or_else(|| LabelError::Parse(format!("bad level in entry: {part:?}")))?;
            let name = name_part.trim();
            if name.is_empty() {
                return Err(LabelError::Parse(format!("missing category in: {part:?}")));
            }
            let cat = resolve(name)
                .ok_or_else(|| LabelError::Parse(format!("unknown category name: {name:?}")))?;
            builder = builder.set(cat, level);
        }
        let default = default
            .ok_or_else(|| LabelError::Parse(format!("label {text:?} has no default level")))?;
        Ok(builder.default_level(default).build())
    }

    /// Formats the label in the paper's notation using a naming function for
    /// categories (falling back to hex if it returns `None`).
    pub fn display_with<'a, F>(&'a self, name: F) -> LabelDisplay<'a, F>
    where
        F: Fn(Category) -> Option<String>,
    {
        LabelDisplay { label: self, name }
    }
}

fn parse_level(s: &str) -> Option<Level> {
    match s {
        "*" | "⋆" => Some(Level::Star),
        "0" => Some(Level::L0),
        "1" => Some(Level::L1),
        "2" => Some(Level::L2),
        "3" => Some(Level::L3),
        _ => None,
    }
}

struct MergedCategories<'a> {
    a: &'a [(Category, Level)],
    b: &'a [(Category, Level)],
    ia: usize,
    ib: usize,
}

impl Iterator for MergedCategories<'_> {
    type Item = Category;

    fn next(&mut self) -> Option<Category> {
        let ca = self.a.get(self.ia).map(|e| e.0);
        let cb = self.b.get(self.ib).map(|e| e.0);
        match (ca, cb) {
            (None, None) => None,
            (Some(c), None) => {
                self.ia += 1;
                Some(c)
            }
            (None, Some(c)) => {
                self.ib += 1;
                Some(c)
            }
            (Some(x), Some(y)) => {
                if x < y {
                    self.ia += 1;
                    Some(x)
                } else if y < x {
                    self.ib += 1;
                    Some(y)
                } else {
                    self.ia += 1;
                    self.ib += 1;
                    Some(x)
                }
            }
        }
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (c, l) in &self.entries {
            write!(f, "{c} {l}, ")?;
        }
        write!(f, "{}}}", self.default)
    }
}

/// Helper returned by [`Label::display_with`] for pretty-printing labels
/// with human-readable category names.
pub struct LabelDisplay<'a, F> {
    label: &'a Label,
    name: F,
}

impl<F> fmt::Display for LabelDisplay<'_, F>
where
    F: Fn(Category) -> Option<String>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (c, l) in self.label.entries() {
            match (self.name)(c) {
                Some(n) => write!(f, "{n} {l}, ")?,
                None => write!(f, "{c} {l}, ")?,
            }
        }
        write!(f, "{}}}", self.label.default_level())
    }
}

/// Builder for [`Label`]s.
#[derive(Clone, Debug)]
pub struct LabelBuilder {
    default: Level,
    entries: Vec<(Category, Level)>,
}

impl LabelBuilder {
    /// Sets the default level (initially `1`).
    pub fn default_level(mut self, level: Level) -> LabelBuilder {
        self.default = level;
        self
    }

    /// Sets the level of a category (overwriting any previous setting).
    pub fn set(mut self, category: Category, level: Level) -> LabelBuilder {
        match self.entries.binary_search_by_key(&category, |e| e.0) {
            Ok(idx) => self.entries[idx].1 = level,
            Err(idx) => self.entries.insert(idx, (category, level)),
        }
        self
    }

    /// Grants ownership (`⋆`) of a category.
    pub fn own(self, category: Category) -> LabelBuilder {
        self.set(category, Level::Star)
    }

    /// Finishes building, normalizing away entries equal to the default.
    pub fn build(self) -> Label {
        let default = self.default;
        let entries: Vec<(Category, Level)> = self
            .entries
            .into_iter()
            .filter(|(_, l)| *l != default)
            .collect();
        Label { default, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> Category {
        Category::from_raw(n)
    }

    fn lbl(entries: &[(u64, Level)], default: Level) -> Label {
        let mut b = Label::builder().default_level(default);
        for &(cat, lvl) in entries {
            b = b.set(c(cat), lvl);
        }
        b.build()
    }

    #[test]
    fn level_lookup_uses_default() {
        let l = lbl(&[(1, Level::L0), (2, Level::L3)], Level::L1);
        assert_eq!(l.level(c(1)), Level::L0);
        assert_eq!(l.level(c(2)), Level::L3);
        assert_eq!(l.level(c(99)), Level::L1);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn normalization_drops_default_entries() {
        let l = lbl(&[(1, Level::L1), (2, Level::L3)], Level::L1);
        assert_eq!(l.len(), 1);
        assert_eq!(l, lbl(&[(2, Level::L3)], Level::L1));
    }

    #[test]
    fn paper_example_label_function() {
        // L = {w0, r3, 1}
        let w = c(10);
        let r = c(20);
        let l = lbl(&[(10, Level::L0), (20, Level::L3)], Level::L1);
        assert_eq!(l.level(w), Level::L0);
        assert_eq!(l.level(r), Level::L3);
        assert_eq!(l.level(c(30)), Level::L1);
    }

    #[test]
    fn paper_read_restriction() {
        // Thread {1} cannot read object {c3, 1}.
        let thread = Label::unrestricted();
        let object = lbl(&[(1, Level::L3)], Level::L1);
        assert!(!thread.can_observe(&object));
        // An object at {c2, 1} is also above the thread, so it cannot be
        // observed without the thread first tainting itself.
        let object2 = lbl(&[(1, Level::L2)], Level::L1);
        assert!(!thread.can_observe(&object2));
    }

    #[test]
    fn paper_write_restriction() {
        // Thread {1} cannot write object {c0, 1}.
        let thread = Label::unrestricted();
        let object = lbl(&[(1, Level::L0)], Level::L1);
        assert!(!thread.can_modify(&object));
        // But it can observe it: {c0,1} ⊑ {1}^J holds since 0 ≤ 1.
        assert!(thread.can_observe(&object));
    }

    #[test]
    fn ownership_bypasses_restrictions() {
        let br = c(1);
        let bw = c(2);
        // Bob's data: {br3, bw0, 1}
        let data = lbl(&[(1, Level::L3), (2, Level::L0)], Level::L1);
        // Bob's shell owns br and bw.
        let shell = lbl(&[(1, Level::Star), (2, Level::Star)], Level::L1);
        assert!(shell.can_observe(&data));
        assert!(shell.can_modify(&data));
        assert!(shell.owns(br));
        assert!(shell.owns(bw));
        // The update daemon, {1}, can do neither.
        let daemon = Label::unrestricted();
        assert!(!daemon.can_observe(&data));
        assert!(!daemon.can_modify(&data));
    }

    #[test]
    fn leq_is_reflexive_and_antisymmetric_on_samples() {
        let a = lbl(&[(1, Level::L3)], Level::L1);
        let b = lbl(&[(1, Level::L3), (2, Level::L2)], Level::L1);
        assert!(a.leq(&a));
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn leq_considers_defaults() {
        let low = Label::new(Level::L0);
        let high = Label::new(Level::L3);
        assert!(low.leq(&high));
        assert!(!high.leq(&low));
        // A label with default 2 is not ⊑ a label with default 1 even if no
        // entries are present.
        assert!(!Label::new(Level::L2).leq(&Label::unrestricted()));
    }

    #[test]
    fn lub_is_pointwise_max() {
        let a = lbl(&[(1, Level::L3), (2, Level::L0)], Level::L1);
        let b = lbl(&[(1, Level::L0), (3, Level::L2)], Level::L1);
        let j = a.lub(&b);
        assert_eq!(j.level(c(1)), Level::L3);
        assert_eq!(j.level(c(2)), Level::L1); // max(0, default 1) = 1
        assert_eq!(j.level(c(3)), Level::L2);
        assert_eq!(j.default_level(), Level::L1);
        // The lub is an upper bound of both operands.
        assert!(a.leq(&j));
        assert!(b.leq(&j));
    }

    #[test]
    fn glb_is_pointwise_min() {
        let a = lbl(&[(1, Level::L3)], Level::L1);
        let b = lbl(&[(1, Level::L0)], Level::L1);
        let m = a.glb(&b);
        assert_eq!(m.level(c(1)), Level::L0);
        assert!(m.leq(&a));
        assert!(m.leq(&b));
    }

    #[test]
    fn raise_for_observe_matches_formula() {
        // Thread {1} observing {c3, 1} must become {c3, 1}.
        let t = Label::unrestricted();
        let o = lbl(&[(1, Level::L3)], Level::L1);
        let raised = t.raise_for_observe(&o);
        assert_eq!(raised, o);
        assert!(raised.can_observe(&o));
        assert!(t.leq(&raised));
    }

    #[test]
    fn raise_for_observe_preserves_ownership() {
        // A thread owning c observing an object tainted c3 stays at ⋆.
        let t = lbl(&[(1, Level::Star)], Level::L1);
        let o = lbl(&[(1, Level::L3)], Level::L1);
        let raised = t.raise_for_observe(&o);
        assert_eq!(raised.level(c(1)), Level::Star);
        // And observing something tainted in another category adds taint.
        let o2 = lbl(&[(2, Level::L3)], Level::L1);
        let raised2 = t.raise_for_observe(&o2);
        assert_eq!(raised2.level(c(1)), Level::Star);
        assert_eq!(raised2.level(c(2)), Level::L3);
    }

    #[test]
    fn can_allocate_enforces_range() {
        let t = Label::unrestricted();
        let cl = Label::default_clearance();
        assert!(t.can_allocate(&cl, &Label::unrestricted()).is_ok());
        assert!(t
            .can_allocate(&cl, &lbl(&[(1, Level::L2)], Level::L1))
            .is_ok());
        // Above clearance: level 3 > clearance 2.
        assert_eq!(
            t.can_allocate(&cl, &lbl(&[(1, Level::L3)], Level::L1)),
            Err(LabelError::AllocationAboveClearance)
        );
        // Below own label: level 0 < 1 requires ownership.
        assert_eq!(
            t.can_allocate(&cl, &lbl(&[(1, Level::L0)], Level::L1)),
            Err(LabelError::AllocationBelowLabel)
        );
        // ...but an owner can allocate below the default.
        let owner = lbl(&[(1, Level::Star)], Level::L1);
        assert!(owner
            .can_allocate(&cl, &lbl(&[(1, Level::L0)], Level::L1))
            .is_ok());
    }

    #[test]
    fn clearance_update_rules() {
        let t = Label::unrestricted();
        let cl = Label::default_clearance();
        // Can lower clearance to {1} (not below label).
        assert!(t.check_set_clearance(&cl, &Label::unrestricted()).is_ok());
        // Cannot lower below label.
        assert!(t.check_set_clearance(&cl, &Label::new(Level::L0)).is_err());
        // Cannot raise clearance in a category it does not own.
        assert!(t
            .check_set_clearance(&cl, &lbl(&[(1, Level::L3)], Level::L2))
            .is_err());
        // Can raise clearance in an owned category (create_category sets
        // clearance to 3 in the new category).
        let owner = lbl(&[(1, Level::Star)], Level::L1);
        assert!(owner
            .check_set_clearance(&cl, &lbl(&[(1, Level::L3)], Level::L2))
            .is_ok());
    }

    #[test]
    fn set_label_rules() {
        let t = Label::unrestricted();
        let cl = Label::default_clearance();
        // Raising taint within clearance is allowed.
        assert!(t
            .check_set_label(&cl, &lbl(&[(1, Level::L2)], Level::L1))
            .is_ok());
        // Raising above clearance is not.
        assert!(t
            .check_set_label(&cl, &lbl(&[(1, Level::L3)], Level::L1))
            .is_err());
        // Lowering (untainting) without ownership is not.
        assert!(t
            .check_set_label(&cl, &lbl(&[(1, Level::L0)], Level::L1))
            .is_err());
        // An owner may drop its own ⋆ (e.g. to become tainted): ⋆ ⊑ 3.
        let owner = lbl(&[(1, Level::Star)], Level::L1);
        assert!(owner
            .check_set_label(&Label::new(Level::L3), &lbl(&[(1, Level::L3)], Level::L1))
            .is_ok());
    }

    #[test]
    fn spawn_rules() {
        let t = lbl(&[(1, Level::Star)], Level::L1);
        let cl = lbl(&[(1, Level::L3)], Level::L2);
        // Child inherits label/clearance within range.
        assert!(t.check_spawn(&cl, &t, &cl).is_ok());
        // Child clearance above parent clearance is rejected.
        assert!(t
            .check_spawn(&cl, &t, &lbl(&[(2, Level::L3)], Level::L2))
            .is_err());
        // Child label below parent label is rejected.
        let below = lbl(&[(2, Level::L0)], Level::L1);
        assert!(Label::unrestricted()
            .check_spawn(
                &Label::default_clearance(),
                &below,
                &Label::default_clearance()
            )
            .is_err());
    }

    #[test]
    fn ownership_union_for_gate_entry() {
        // Thread {pr⋆, pw⋆, 1} entering a gate {dr⋆, dw⋆, 1}: the floor is
        // {pr⋆, pw⋆, dr⋆, dw⋆, 1} — ownership from both sides survives.
        let t = lbl(&[(1, Level::Star), (2, Level::Star)], Level::L1);
        let g = lbl(&[(3, Level::Star), (4, Level::Star)], Level::L1);
        let floor = t.ownership_union(&g);
        for cat in 1..=4 {
            assert_eq!(floor.level(c(cat)), Level::Star);
        }
        // Taint from either side also survives (max of numeric levels).
        let tainted_gate = lbl(&[(5, Level::L3)], Level::L1);
        let floor2 = t.ownership_union(&tainted_gate);
        assert_eq!(floor2.level(c(5)), Level::L3);
        assert_eq!(floor2.level(c(1)), Level::Star);
    }

    #[test]
    fn drop_ownership_replaces_star() {
        let l = lbl(&[(1, Level::Star), (2, Level::L3)], Level::L1);
        let d = l.drop_ownership(Level::L1);
        assert_eq!(d.level(c(1)), Level::L1);
        assert_eq!(d.level(c(2)), Level::L3);
        assert!(!d.contains_star());
    }

    #[test]
    fn parse_and_display_round_trip() {
        let resolve = |name: &str| match name {
            "br" => Some(c(1)),
            "bw" => Some(c(2)),
            "v" => Some(c(3)),
            _ => None,
        };
        let l = Label::parse("{br *, bw 0, v3, 1}", resolve).unwrap();
        assert_eq!(l.level(c(1)), Level::Star);
        assert_eq!(l.level(c(2)), Level::L0);
        assert_eq!(l.level(c(3)), Level::L3);
        assert_eq!(l.default_level(), Level::L1);

        let named = l
            .display_with(|cat| match cat.raw() {
                1 => Some("br".to_string()),
                2 => Some("bw".to_string()),
                3 => Some("v".to_string()),
                _ => None,
            })
            .to_string();
        assert_eq!(named, "{br *, bw 0, v 3, 1}");

        assert!(Label::parse("{nodefault}", resolve).is_err());
        assert!(Label::parse("br 3, 1", resolve).is_err());
        assert!(Label::parse("{zz 3, 1}", resolve).is_err());
    }

    #[test]
    fn with_and_without() {
        let l = Label::unrestricted().with(c(5), Level::L3);
        assert_eq!(l.level(c(5)), Level::L3);
        let l2 = l.without(c(5));
        assert_eq!(l2, Label::unrestricted());
    }

    #[test]
    fn owned_categories_iterator() {
        let l = lbl(
            &[(1, Level::Star), (2, Level::L3), (3, Level::Star)],
            Level::L1,
        );
        let owned: Vec<u64> = l.owned_categories().map(|c| c.raw()).collect();
        assert_eq!(owned, vec![1, 3]);
    }

    #[test]
    fn clamav_figure4_scenario() {
        // Categories: br (Bob read), bw (Bob write), v (scanner isolation).
        let br = 1;
        let bw = 2;
        let v = 3;
        let user_data = lbl(&[(bw, Level::L0), (br, Level::L3)], Level::L1);
        let wrap = lbl(&[(br, Level::Star), (v, Level::Star)], Level::L1);
        let scanner = lbl(&[(br, Level::L3), (v, Level::L3)], Level::L1);
        let private_tmp = lbl(&[(br, Level::Star), (v, Level::L3)], Level::L1);
        let update_daemon = Label::unrestricted();
        let network = Label::unrestricted();

        // wrap can read user data and relay results to the TTY.
        assert!(wrap.can_observe(&user_data));
        // The tainted scanner can read user data (it is tainted br3)...
        assert!(scanner.can_observe(&user_data));
        // ...and can observe its private /tmp...
        assert!(scanner.can_observe(&private_tmp));
        // ...but cannot convey information to the network or update daemon:
        // scanner ⊑ network fails because v3 > v1.
        assert!(!scanner.leq(&network));
        assert!(!scanner.leq(&update_daemon));
        // The update daemon cannot read user data.
        assert!(!update_daemon.can_observe(&user_data));
        // wrap, owning v, may receive (observe) the scanner's output.
        let scanner_output = lbl(&[(v, Level::L3)], Level::L1);
        assert!(wrap.can_observe(&scanner_output));
        // The network cannot.
        assert!(!network.can_observe(&scanner_output));
    }
}
