//! Taint categories and category allocation.
//!
//! Categories are named by 61-bit opaque identifiers.  The kernel generates
//! them by encrypting a counter with a block cipher so that a thread cannot
//! learn how many categories other threads have allocated by observing the
//! identifiers it receives (§2 of the paper).  The specific width of 61 bits
//! was chosen so that a category name and a 3-bit taint level fit in a single
//! 64-bit word.

use core::fmt;

/// Number of bits in a category identifier.
pub const CATEGORY_BITS: u32 = 61;

/// Mask selecting the low 61 bits of a `u64`.
pub const CATEGORY_MASK: u64 = (1u64 << CATEGORY_BITS) - 1;

/// A 61-bit opaque category identifier.
///
/// Categories are the unit of information-flow policy: each category in a
/// label independently restricts either reading or writing of the labelled
/// object.  Whoever allocates a category owns it (level `⋆`) and has the
/// exclusive ability to untaint data in it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Category(u64);

impl Category {
    /// Constructs a category from a raw 61-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not fit in 61 bits.  Use
    /// [`Category::try_from_raw`] for a fallible variant.
    pub fn from_raw(raw: u64) -> Category {
        assert!(raw <= CATEGORY_MASK, "category identifier exceeds 61 bits");
        Category(raw)
    }

    /// Constructs a category from a raw value, returning `None` if it does
    /// not fit in 61 bits.
    pub fn try_from_raw(raw: u64) -> Option<Category> {
        if raw <= CATEGORY_MASK {
            Some(Category(raw))
        } else {
            None
        }
    }

    /// Returns the raw 61-bit identifier.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Packs this category together with a 3-bit level encoding into a
    /// single 64-bit word, as the kernel's label representation does.
    pub fn pack_with_level(self, level_bits: u8) -> u64 {
        debug_assert!(level_bits < 8);
        (self.0 << 3) | u64::from(level_bits & 0x7)
    }

    /// Unpacks a word produced by [`Category::pack_with_level`], returning
    /// the category and the 3-bit level encoding.
    pub fn unpack_with_level(word: u64) -> (Category, u8) {
        (Category(word >> 3), (word & 0x7) as u8)
    }
}

impl fmt::Debug for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Category({:#x})", self.0)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{:x}", self.0)
    }
}

/// A 61-bit balanced Feistel network used as the category-name block cipher.
///
/// The paper only requires that the mapping from the allocation counter to
/// the visible identifier be a *pseudorandom permutation* of the 61-bit
/// space, so that identifiers do not reveal allocation counts.  We use an
/// 8-round Feistel network with a mixing function derived from
/// SplitMix64-style finalizers.  This is not intended to be
/// cryptographically strong against offline attack; it is a faithful,
/// dependency-free stand-in for the kernel's counter encryption.
#[derive(Clone, Debug)]
pub struct FeistelCipher {
    round_keys: [u64; FeistelCipher::ROUNDS],
}

impl FeistelCipher {
    /// Number of Feistel rounds.
    pub const ROUNDS: usize = 8;

    /// Left half: 31 bits; right half: 30 bits (61 total).
    const LEFT_BITS: u32 = 31;
    const RIGHT_BITS: u32 = 30;
    const LEFT_MASK: u64 = (1 << Self::LEFT_BITS) - 1;
    const RIGHT_MASK: u64 = (1 << Self::RIGHT_BITS) - 1;

    /// Creates a cipher keyed by `seed`.
    pub fn new(seed: u64) -> FeistelCipher {
        let mut round_keys = [0u64; Self::ROUNDS];
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        for key in &mut round_keys {
            state = Self::splitmix(state);
            *key = state;
        }
        FeistelCipher { round_keys }
    }

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn round(&self, half: u64, key: u64) -> u64 {
        Self::splitmix(half ^ key)
    }

    /// Encrypts a 61-bit value into another 61-bit value (a permutation).
    ///
    /// The construction is an *alternating* Feistel network: even rounds
    /// XOR a keyed mix of the right half into the left half, odd rounds the
    /// reverse.  Each round is invertible, so the whole network is a
    /// permutation of the 61-bit space.
    ///
    /// # Panics
    ///
    /// Panics if `plaintext` does not fit in 61 bits.
    pub fn encrypt(&self, plaintext: u64) -> u64 {
        assert!(plaintext <= CATEGORY_MASK, "plaintext exceeds 61 bits");
        let mut left = (plaintext >> Self::RIGHT_BITS) & Self::LEFT_MASK;
        let mut right = plaintext & Self::RIGHT_MASK;
        for (i, &key) in self.round_keys.iter().enumerate() {
            if i % 2 == 0 {
                left ^= self.round(right, key) & Self::LEFT_MASK;
            } else {
                right ^= self.round(left, key) & Self::RIGHT_MASK;
            }
        }
        (left << Self::RIGHT_BITS) | right
    }

    /// Decrypts a value produced by [`FeistelCipher::encrypt`].
    pub fn decrypt(&self, ciphertext: u64) -> u64 {
        assert!(ciphertext <= CATEGORY_MASK, "ciphertext exceeds 61 bits");
        let mut left = (ciphertext >> Self::RIGHT_BITS) & Self::LEFT_MASK;
        let mut right = ciphertext & Self::RIGHT_MASK;
        for (i, &key) in self.round_keys.iter().enumerate().rev() {
            if i % 2 == 0 {
                left ^= self.round(right, key) & Self::LEFT_MASK;
            } else {
                right ^= self.round(left, key) & Self::RIGHT_MASK;
            }
        }
        (left << Self::RIGHT_BITS) | right
    }
}

/// Allocates fresh categories by encrypting a monotonic counter.
///
/// The counter space is 61 bits; even allocating a billion categories per
/// second it would take over 60 years to exhaust, so the allocator simply
/// panics on wraparound rather than attempting reuse.
#[derive(Debug)]
pub struct CategoryAllocator {
    cipher: FeistelCipher,
    counter: u64,
}

impl CategoryAllocator {
    /// Creates an allocator keyed by `seed`.
    ///
    /// Two allocators with the same seed produce the same sequence, which is
    /// useful for deterministic simulation and for restoring the single-level
    /// store; production kernels would seed from a hardware entropy source.
    pub fn new(seed: u64) -> CategoryAllocator {
        CategoryAllocator {
            cipher: FeistelCipher::new(seed),
            counter: 0,
        }
    }

    /// Creates an allocator that resumes from a previously saved counter.
    pub fn resume(seed: u64, counter: u64) -> CategoryAllocator {
        CategoryAllocator {
            cipher: FeistelCipher::new(seed),
            counter,
        }
    }

    /// Allocates a previously unused category.
    ///
    /// # Panics
    ///
    /// Panics if the 61-bit identifier space is exhausted.
    pub fn alloc(&mut self) -> Category {
        assert!(self.counter <= CATEGORY_MASK, "category space exhausted");
        let id = self.cipher.encrypt(self.counter);
        self.counter += 1;
        Category(id & CATEGORY_MASK)
    }

    /// Number of categories allocated so far.
    ///
    /// Only the kernel may observe this; exposing it to user threads would
    /// itself be a covert channel, which is exactly why identifiers are
    /// encrypted.
    pub fn allocated(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn category_fits_61_bits() {
        assert!(Category::try_from_raw(CATEGORY_MASK).is_some());
        assert!(Category::try_from_raw(CATEGORY_MASK + 1).is_none());
    }

    #[test]
    #[should_panic(expected = "61 bits")]
    fn from_raw_panics_on_overflow() {
        let _ = Category::from_raw(1 << 61);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let c = Category::from_raw(0x1234_5678_9abc);
        for bits in 0..5u8 {
            let word = c.pack_with_level(bits);
            let (c2, b2) = Category::unpack_with_level(word);
            assert_eq!(c2, c);
            assert_eq!(b2, bits);
        }
    }

    #[test]
    fn feistel_is_a_permutation_on_small_sample() {
        let cipher = FeistelCipher::new(42);
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            let e = cipher.encrypt(i);
            assert!(e <= CATEGORY_MASK, "ciphertext must stay in 61 bits");
            assert!(seen.insert(e), "collision at counter {i}");
        }
    }

    #[test]
    fn feistel_encrypt_decrypt_round_trip() {
        let cipher = FeistelCipher::new(0xdead_beef);
        for i in (0..100_000u64).step_by(977) {
            assert_eq!(cipher.decrypt(cipher.encrypt(i)), i);
        }
        assert_eq!(cipher.decrypt(cipher.encrypt(CATEGORY_MASK)), CATEGORY_MASK);
    }

    #[test]
    fn feistel_is_deterministic_per_seed() {
        let a = FeistelCipher::new(7);
        let b = FeistelCipher::new(7);
        let c = FeistelCipher::new(8);
        assert_eq!(a.encrypt(1234), b.encrypt(1234));
        assert_ne!(
            a.encrypt(1234),
            c.encrypt(1234),
            "different seeds should (overwhelmingly) differ"
        );
    }

    #[test]
    fn encrypted_ids_hide_allocation_order() {
        // Consecutive counters should not produce consecutive identifiers.
        let cipher = FeistelCipher::new(99);
        let mut consecutive = 0;
        for i in 0..1000u64 {
            if cipher.encrypt(i + 1).wrapping_sub(cipher.encrypt(i)) == 1 {
                consecutive += 1;
            }
        }
        assert!(
            consecutive < 5,
            "identifiers look sequential: {consecutive}"
        );
    }

    #[test]
    fn allocator_yields_distinct_categories() {
        let mut alloc = CategoryAllocator::new(1);
        let mut seen = HashSet::new();
        for _ in 0..5000 {
            assert!(seen.insert(alloc.alloc()));
        }
        assert_eq!(alloc.allocated(), 5000);
    }

    #[test]
    fn allocator_resume_continues_sequence() {
        let mut a = CategoryAllocator::new(3);
        for _ in 0..10 {
            a.alloc();
        }
        let next_from_a = a.alloc();
        let mut b = CategoryAllocator::resume(3, 10);
        assert_eq!(b.alloc(), next_from_a);
    }

    #[test]
    fn display_and_debug() {
        let c = Category::from_raw(0xff);
        assert_eq!(c.to_string(), "cff");
        assert!(format!("{c:?}").contains("0xff"));
    }
}
