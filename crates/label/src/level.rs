//! Taint levels.
//!
//! An object's label assigns it one of five levels in each category
//! (Figure 3 of the paper):
//!
//! | level | meaning in an object's label                         |
//! |-------|------------------------------------------------------|
//! | `⋆`   | has untainting privileges in this category (ownership) |
//! | `0`   | cannot be written/modified by default                |
//! | `1`   | default level — no restriction in this category      |
//! | `2`   | cannot be untainted/exported by default              |
//! | `3`   | cannot be read/observed by default                   |
//!
//! During label checks a sixth level, `J` ("HiStar"), represents ownership
//! treated as *high* (greater than any numeric level), whereas `⋆`
//! represents ownership treated as *low*.  The total order used by checks is
//! `⋆ < 0 < 1 < 2 < 3 < J`.  `J` never appears in the label of an actual
//! object; it exists only in [`CheckLevel`].

use core::fmt;

/// A taint level that may appear in an object's label.
///
/// Only thread and gate labels may contain [`Level::Star`]; the kernel
/// enforces that restriction (this crate does not know object types).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Level {
    /// `⋆` — ownership / untainting privilege in the category.
    Star,
    /// Level `0` — others cannot write/modify the object by default.
    L0,
    /// Level `1` — the system-wide default; no restriction.
    L1,
    /// Level `2` — cannot be untainted/exported by default.
    L2,
    /// Level `3` — cannot be read/observed by default.
    L3,
}

impl Level {
    /// All levels that may appear in a label, in check order.
    pub const ALL: [Level; 5] = [Level::Star, Level::L0, Level::L1, Level::L2, Level::L3];

    /// The system-wide default taint level for freshly created objects (`1`).
    pub const DEFAULT: Level = Level::L1;

    /// The default clearance level for threads (`2`).
    pub const DEFAULT_CLEARANCE: Level = Level::L2;

    /// Returns the numeric level `0..=3`, or `None` for `⋆`.
    pub fn numeric(self) -> Option<u8> {
        match self {
            Level::Star => None,
            Level::L0 => Some(0),
            Level::L1 => Some(1),
            Level::L2 => Some(2),
            Level::L3 => Some(3),
        }
    }

    /// Builds a level from a numeric value `0..=3`.
    pub fn from_numeric(n: u8) -> Option<Level> {
        match n {
            0 => Some(Level::L0),
            1 => Some(Level::L1),
            2 => Some(Level::L2),
            3 => Some(Level::L3),
            _ => None,
        }
    }

    /// Returns true if this level is `⋆` (ownership).
    pub fn is_star(self) -> bool {
        matches!(self, Level::Star)
    }

    /// Interprets this label level for a check, treating `⋆` as *low* (`⋆`).
    ///
    /// This is the identity embedding of [`Level`] into [`CheckLevel`]; it is
    /// what the plain label `L` denotes in the paper's formulas.
    pub fn as_low(self) -> CheckLevel {
        match self {
            Level::Star => CheckLevel::Star,
            Level::L0 => CheckLevel::L0,
            Level::L1 => CheckLevel::L1,
            Level::L2 => CheckLevel::L2,
            Level::L3 => CheckLevel::L3,
        }
    }

    /// Interprets this label level for a check, treating `⋆` as *high* (`J`).
    ///
    /// This implements the paper's superscript-`J` operator on a single
    /// level: `⋆` becomes `J`, numeric levels are unchanged.
    pub fn as_high(self) -> CheckLevel {
        match self {
            Level::Star => CheckLevel::HiStar,
            other => other.as_low(),
        }
    }

    /// Encodes the level in 3 bits, as the kernel packs it next to a 61-bit
    /// category name in one 64-bit word (§2 of the paper).
    pub fn encode(self) -> u8 {
        match self {
            Level::Star => 4,
            Level::L0 => 0,
            Level::L1 => 1,
            Level::L2 => 2,
            Level::L3 => 3,
        }
    }

    /// Decodes a 3-bit encoding produced by [`Level::encode`].
    pub fn decode(bits: u8) -> Option<Level> {
        match bits {
            4 => Some(Level::Star),
            0 => Some(Level::L0),
            1 => Some(Level::L1),
            2 => Some(Level::L2),
            3 => Some(Level::L3),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Star => write!(f, "*"),
            Level::L0 => write!(f, "0"),
            Level::L1 => write!(f, "1"),
            Level::L2 => write!(f, "2"),
            Level::L3 => write!(f, "3"),
        }
    }
}

/// A level as it participates in a label comparison.
///
/// The ordering is `⋆ < 0 < 1 < 2 < 3 < J`.  `J` ("HiStar") is ownership
/// treated as high; it never appears in stored labels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CheckLevel {
    /// `⋆` — ownership treated as lower than any numeric level.
    Star,
    /// Numeric level `0`.
    L0,
    /// Numeric level `1`.
    L1,
    /// Numeric level `2`.
    L2,
    /// Numeric level `3`.
    L3,
    /// `J` — ownership treated as higher than any numeric level.
    HiStar,
}

impl CheckLevel {
    /// The paper's superscript-`⋆` operator on a single level: `J → ⋆`,
    /// everything else unchanged.
    pub fn lower_ownership(self) -> CheckLevel {
        match self {
            CheckLevel::HiStar => CheckLevel::Star,
            other => other,
        }
    }

    /// The paper's superscript-`J` operator on a single level: `⋆ → J`,
    /// everything else unchanged.
    pub fn raise_ownership(self) -> CheckLevel {
        match self {
            CheckLevel::Star => CheckLevel::HiStar,
            other => other,
        }
    }

    /// Converts back to a storable [`Level`].
    ///
    /// `J` maps to `⋆` (this is only meaningful after
    /// [`CheckLevel::lower_ownership`], which is how the paper's
    /// superscript-`⋆` operator produces storable labels).
    pub fn to_level(self) -> Level {
        match self {
            CheckLevel::Star | CheckLevel::HiStar => Level::Star,
            CheckLevel::L0 => Level::L0,
            CheckLevel::L1 => Level::L1,
            CheckLevel::L2 => Level::L2,
            CheckLevel::L3 => Level::L3,
        }
    }
}

impl From<Level> for CheckLevel {
    fn from(l: Level) -> Self {
        l.as_low()
    }
}

impl fmt::Display for CheckLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckLevel::Star => write!(f, "*"),
            CheckLevel::L0 => write!(f, "0"),
            CheckLevel::L1 => write!(f, "1"),
            CheckLevel::L2 => write!(f, "2"),
            CheckLevel::L3 => write!(f, "3"),
            CheckLevel::HiStar => write!(f, "J"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_level_total_order_matches_paper() {
        // ⋆ < 0 < 1 < 2 < 3 < J
        let order = [
            CheckLevel::Star,
            CheckLevel::L0,
            CheckLevel::L1,
            CheckLevel::L2,
            CheckLevel::L3,
            CheckLevel::HiStar,
        ];
        for i in 0..order.len() {
            for j in 0..order.len() {
                assert_eq!(order[i] < order[j], i < j, "order of {i} vs {j}");
            }
        }
    }

    #[test]
    fn star_is_low_by_default_and_high_under_j() {
        assert_eq!(Level::Star.as_low(), CheckLevel::Star);
        assert_eq!(Level::Star.as_high(), CheckLevel::HiStar);
        assert_eq!(Level::L2.as_high(), CheckLevel::L2);
    }

    #[test]
    fn ownership_shift_operators_are_inverses_on_ownership() {
        assert_eq!(CheckLevel::Star.raise_ownership(), CheckLevel::HiStar);
        assert_eq!(CheckLevel::HiStar.lower_ownership(), CheckLevel::Star);
        assert_eq!(CheckLevel::L3.raise_ownership(), CheckLevel::L3);
        assert_eq!(CheckLevel::L0.lower_ownership(), CheckLevel::L0);
    }

    #[test]
    fn numeric_round_trip() {
        for n in 0..=3u8 {
            assert_eq!(Level::from_numeric(n).unwrap().numeric(), Some(n));
        }
        assert_eq!(Level::from_numeric(4), None);
        assert_eq!(Level::Star.numeric(), None);
    }

    #[test]
    fn encode_round_trip() {
        for l in Level::ALL {
            assert_eq!(Level::decode(l.encode()), Some(l));
        }
        assert_eq!(Level::decode(7), None);
    }

    #[test]
    fn default_levels_match_paper() {
        assert_eq!(Level::DEFAULT, Level::L1);
        assert_eq!(Level::DEFAULT_CLEARANCE, Level::L2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Level::Star.to_string(), "*");
        assert_eq!(Level::L3.to_string(), "3");
        assert_eq!(CheckLevel::HiStar.to_string(), "J");
    }

    #[test]
    fn figure3_read_write_semantics() {
        // Level 3: cannot be read/observed by default (default observer at 1).
        assert!(CheckLevel::L1 < CheckLevel::L3);
        // Level 0: cannot be written by default (writer at 1 is above it).
        assert!(CheckLevel::L0 < CheckLevel::L1);
    }
}
