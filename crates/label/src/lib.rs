//! Asbestos-style information-flow labels, as used by the HiStar kernel.
//!
//! This crate implements Section 2 of *Making Information Flow Explicit in
//! HiStar* (OSDI 2006): taint categories, taint levels, labels (functions
//! from categories to levels), the `⊑` ("can flow to") partial order, the
//! `⊔` least-upper-bound operator, and the derived checks the kernel uses on
//! every object access ("no read up", "no write down"), plus the clearance
//! rules that bound how far a thread may taint itself.
//!
//! # Overview
//!
//! * [`Category`] — a 61-bit opaque category identifier.  Categories are
//!   allocated by a [`CategoryAllocator`], which encrypts a counter with a
//!   small block cipher so that one thread cannot learn how many categories
//!   another thread allocated.
//! * [`Level`] — the taint levels that may appear in an object's label:
//!   `⋆`, `0`, `1`, `2`, `3`.  [`CheckLevel`] additionally models the
//!   `J` ("HiStar") level used only during label checks.
//! * [`Label`] — a total function from categories to levels, represented as
//!   a default level plus a sorted list of exceptions.
//! * [`LabelCache`] — memoizes comparisons between immutable labels, the
//!   §4 kernel optimization.
//!
//! # Examples
//!
//! ```
//! use histar_label::{Label, Level, Category};
//!
//! let br = Category::from_raw(1);
//! let v = Category::from_raw(2);
//!
//! // Bob's private files: {br 3, 1}
//! let file = Label::builder().set(br, Level::L3).default_level(Level::L1).build();
//! // An untainted thread: {1}
//! let thread = Label::new(Level::L1);
//! // The thread cannot observe the file (no read up).
//! assert!(!thread.can_observe(&file));
//! // wrap, owning br: {br ⋆, v 3, 1}
//! let wrap = Label::builder()
//!     .set(br, Level::Star)
//!     .set(v, Level::L3)
//!     .default_level(Level::L1)
//!     .build();
//! assert!(wrap.can_observe(&file));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod category;
pub mod error;
pub mod label;
pub mod level;

pub use cache::LabelCache;
pub use category::{Category, CategoryAllocator};
pub use error::LabelError;
pub use label::{Label, LabelBuilder};
pub use level::{CheckLevel, Level};

/// Convenience result alias for label operations.
pub type Result<T> = core::result::Result<T, LabelError>;
