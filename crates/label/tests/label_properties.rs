//! Property-based tests for the label lattice.
//!
//! These check the algebraic laws the kernel's security argument relies on:
//! `⊑` is a partial order, `⊔` is the least upper bound, the observation /
//! modification checks are monotone, and `raise_for_observe` returns the
//! least label that permits observation.
//!
//! The generator is a tiny self-contained xorshift64* harness rather than an
//! external property-testing crate, so the suite runs in an offline build.
//! Each property is exercised on a few thousand pseudo-random labels drawn
//! from a small category universe (collisions are likely, which is where the
//! interesting lattice behaviour lives).

use histar_label::{Category, Label, Level};

const CASES: usize = 2000;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }

    fn category(&mut self) -> Category {
        // A small universe of categories keeps shared categories likely.
        Category::from_raw(self.below(8))
    }

    fn level(&mut self) -> Level {
        match self.below(5) {
            0 => Level::Star,
            1 => Level::L0,
            2 => Level::L1,
            3 => Level::L2,
            _ => Level::L3,
        }
    }

    fn numeric_level(&mut self) -> Level {
        match self.below(4) {
            0 => Level::L0,
            1 => Level::L1,
            2 => Level::L2,
            _ => Level::L3,
        }
    }

    fn label(&mut self) -> Label {
        let mut b = Label::builder().default_level(self.numeric_level());
        for _ in 0..self.below(6) {
            let c = self.category();
            let l = self.level();
            b = b.set(c, l);
        }
        b.build()
    }

    /// Labels without ownership, where `⊑` restricted to them is a lattice.
    fn taint_label(&mut self) -> Label {
        let mut b = Label::builder().default_level(self.numeric_level());
        for _ in 0..self.below(6) {
            let c = self.category();
            let l = self.numeric_level();
            b = b.set(c, l);
        }
        b.build()
    }
}

#[test]
fn leq_is_reflexive() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let l = rng.label();
        assert!(l.leq(&l), "{l} ⋢ itself");
    }
}

#[test]
fn leq_is_transitive() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let (a, b, c) = (rng.label(), rng.label(), rng.label());
        if a.leq(&b) && b.leq(&c) {
            assert!(a.leq(&c), "{a} ⊑ {b} ⊑ {c} but {a} ⋢ {c}");
        }
    }
}

#[test]
fn leq_is_antisymmetric() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let (a, b) = (rng.label(), rng.label());
        if a.leq(&b) && b.leq(&a) {
            assert_eq!(a, b);
        }
    }
}

#[test]
fn lub_is_an_upper_bound() {
    let mut rng = Rng::new(4);
    for _ in 0..CASES {
        let (a, b) = (rng.taint_label(), rng.taint_label());
        let j = a.lub(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
    }
}

#[test]
fn lub_is_least() {
    let mut rng = Rng::new(5);
    for _ in 0..CASES {
        let (a, b, c) = (rng.taint_label(), rng.taint_label(), rng.taint_label());
        // Any common upper bound is above the lub.
        if a.leq(&c) && b.leq(&c) {
            assert!(a.lub(&b).leq(&c));
        }
    }
}

#[test]
fn glb_is_a_lower_bound() {
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        let (a, b) = (rng.taint_label(), rng.taint_label());
        let m = a.glb(&b);
        assert!(m.leq(&a));
        assert!(m.leq(&b));
    }
}

#[test]
fn glb_is_greatest() {
    let mut rng = Rng::new(7);
    for _ in 0..CASES {
        let (a, b, c) = (rng.taint_label(), rng.taint_label(), rng.taint_label());
        if c.leq(&a) && c.leq(&b) {
            assert!(c.leq(&a.glb(&b)));
        }
    }
}

#[test]
fn lub_commutative_and_idempotent() {
    let mut rng = Rng::new(8);
    for _ in 0..CASES {
        let (a, b) = (rng.taint_label(), rng.taint_label());
        assert_eq!(a.lub(&b), b.lub(&a));
        assert_eq!(a.lub(&a), a);
    }
}

#[test]
fn ownership_always_permits_observation() {
    let mut rng = Rng::new(9);
    for _ in 0..CASES {
        // A thread owning every category mentioned by the object (and whose
        // default matches) can always observe it.
        let obj = rng.taint_label();
        let mut b = Label::builder().default_level(Level::L3);
        for (c, _) in obj.entries() {
            b = b.set(c, Level::Star);
        }
        let owner = b.build();
        assert!(owner.can_observe(&obj));
    }
}

#[test]
fn modification_implies_observation() {
    let mut rng = Rng::new(10);
    for _ in 0..CASES {
        let (thread, obj) = (rng.label(), rng.taint_label());
        if thread.can_modify(&obj) {
            assert!(thread.can_observe(&obj));
        }
    }
}

#[test]
fn raise_for_observe_is_sound() {
    let mut rng = Rng::new(11);
    for _ in 0..CASES {
        let (thread, obj) = (rng.label(), rng.taint_label());
        let raised = thread.raise_for_observe(&obj);
        // The raised label permits the observation...
        assert!(raised.can_observe(&obj));
        // ...and is a label the thread could legally move to if its
        // clearance allowed it (monotonic in unowned categories).
        assert!(thread.leq(&raised));
    }
}

#[test]
fn raise_for_observe_is_least() {
    let mut rng = Rng::new(12);
    for _ in 0..CASES {
        let (thread, obj, other) = (rng.label(), rng.taint_label(), rng.label());
        // Any label above the thread that can observe the object is above
        // the computed raise target.
        if thread.leq(&other) && other.can_observe(&obj) {
            assert!(thread.raise_for_observe(&obj).leq(&other));
        }
    }
}

#[test]
fn observation_is_monotone_in_thread_label() {
    let mut rng = Rng::new(13);
    for _ in 0..CASES {
        let (a, b, obj) = (rng.taint_label(), rng.taint_label(), rng.taint_label());
        // If a ⊑ b then anything a can observe, b can observe.
        if a.leq(&b) && a.can_observe(&obj) {
            assert!(b.can_observe(&obj));
        }
    }
}

#[test]
fn flow_composition_is_safe() {
    let mut rng = Rng::new(14);
    for _ in 0..CASES {
        let (a, b, c) = (rng.taint_label(), rng.taint_label(), rng.taint_label());
        // If information can flow a -> b and b -> c (pure taint labels,
        // no ownership anywhere), then it can flow a -> c.  This is the
        // end-to-end guarantee of §3.
        if a.leq(&b) && b.leq(&c) {
            assert!(a.leq(&c));
        }
    }
}

#[test]
fn drop_ownership_removes_all_stars() {
    let mut rng = Rng::new(15);
    for _ in 0..CASES {
        let l = rng.label();
        assert!(!l.drop_ownership(Level::L1).contains_star());
    }
}

#[test]
fn display_parse_round_trip() {
    let mut rng = Rng::new(16);
    for _ in 0..CASES {
        // Numeric-only labels round-trip through the text notation when the
        // resolver maps the printed names back to categories.
        let l = rng.taint_label();
        let text = l.to_string();
        let parsed = Label::parse(&text, |name| {
            name.strip_prefix('c')
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .map(Category::from_raw)
        })
        .unwrap();
        assert_eq!(parsed, l);
    }
}

#[test]
fn pack_unpack_round_trip() {
    let mut rng = Rng::new(17);
    for _ in 0..CASES {
        let raw = rng.below(1 << 61);
        let lvl = rng.level();
        let c = Category::from_raw(raw);
        let word = c.pack_with_level(lvl.encode());
        let (c2, bits) = Category::unpack_with_level(word);
        assert_eq!(c2, c);
        assert_eq!(Level::decode(bits), Some(lvl));
    }
}
