//! Property-based tests for the label lattice.
//!
//! These check the algebraic laws the kernel's security argument relies on:
//! `⊑` is a partial order, `⊔` is the least upper bound, the observation /
//! modification checks are monotone, and `raise_for_observe` returns the
//! least label that permits observation.

use histar_label::{Category, Label, Level};
use proptest::prelude::*;

/// A small universe of categories keeps collisions (shared categories)
/// likely, which is where the interesting lattice behaviour lives.
fn arb_category() -> impl Strategy<Value = Category> {
    (0u64..8).prop_map(Category::from_raw)
}

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Star),
        Just(Level::L0),
        Just(Level::L1),
        Just(Level::L2),
        Just(Level::L3),
    ]
}

fn arb_numeric_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::L0),
        Just(Level::L1),
        Just(Level::L2),
        Just(Level::L3),
    ]
}

prop_compose! {
    fn arb_label()(default in arb_numeric_level(),
                   entries in prop::collection::vec((arb_category(), arb_level()), 0..6))
                   -> Label {
        let mut b = Label::builder().default_level(default);
        for (c, l) in entries {
            b = b.set(c, l);
        }
        b.build()
    }
}

prop_compose! {
    /// Labels without ownership, where ⊑ restricted to them forms a lattice.
    fn arb_taint_label()(default in arb_numeric_level(),
                         entries in prop::collection::vec((arb_category(), arb_numeric_level()), 0..6))
                         -> Label {
        let mut b = Label::builder().default_level(default);
        for (c, l) in entries {
            b = b.set(c, l);
        }
        b.build()
    }
}

proptest! {
    #[test]
    fn leq_is_reflexive(l in arb_label()) {
        prop_assert!(l.leq(&l));
    }

    #[test]
    fn leq_is_transitive(a in arb_label(), b in arb_label(), c in arb_label()) {
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn leq_is_antisymmetric(a in arb_label(), b in arb_label()) {
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn lub_is_an_upper_bound(a in arb_taint_label(), b in arb_taint_label()) {
        let j = a.lub(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
    }

    #[test]
    fn lub_is_least(a in arb_taint_label(), b in arb_taint_label(), c in arb_taint_label()) {
        // Any common upper bound is above the lub.
        if a.leq(&c) && b.leq(&c) {
            prop_assert!(a.lub(&b).leq(&c));
        }
    }

    #[test]
    fn glb_is_a_lower_bound(a in arb_taint_label(), b in arb_taint_label()) {
        let m = a.glb(&b);
        prop_assert!(m.leq(&a));
        prop_assert!(m.leq(&b));
    }

    #[test]
    fn glb_is_greatest(a in arb_taint_label(), b in arb_taint_label(), c in arb_taint_label()) {
        if c.leq(&a) && c.leq(&b) {
            prop_assert!(c.leq(&a.glb(&b)));
        }
    }

    #[test]
    fn lub_commutative_and_idempotent(a in arb_taint_label(), b in arb_taint_label()) {
        prop_assert_eq!(a.lub(&b), b.lub(&a));
        prop_assert_eq!(a.lub(&a), a.clone());
    }

    #[test]
    fn ownership_always_permits_observation(obj in arb_taint_label()) {
        // A thread owning every category mentioned by the object (and whose
        // default matches) can always observe it.
        let mut b = Label::builder().default_level(Level::L3);
        for (c, _) in obj.entries() {
            b = b.set(c, Level::Star);
        }
        let owner = b.build();
        prop_assert!(owner.can_observe(&obj));
    }

    #[test]
    fn modification_implies_observation(thread in arb_label(), obj in arb_taint_label()) {
        if thread.can_modify(&obj) {
            prop_assert!(thread.can_observe(&obj));
        }
    }

    #[test]
    fn raise_for_observe_is_sound(thread in arb_label(), obj in arb_taint_label()) {
        let raised = thread.raise_for_observe(&obj);
        // The raised label permits the observation...
        prop_assert!(raised.can_observe(&obj));
        // ...and is a label the thread could legally move to if its
        // clearance allowed it (monotonic in unowned categories).
        prop_assert!(thread.leq(&raised));
    }

    #[test]
    fn raise_for_observe_is_least(thread in arb_label(), obj in arb_taint_label(),
                                  other in arb_label()) {
        // Any label above the thread that can observe the object is above
        // the computed raise target.
        if thread.leq(&other) && other.can_observe(&obj) {
            prop_assert!(thread.raise_for_observe(&obj).leq(&other));
        }
    }

    #[test]
    fn observation_is_monotone_in_thread_label(a in arb_taint_label(),
                                               b in arb_taint_label(),
                                               obj in arb_taint_label()) {
        // If a ⊑ b then anything a can observe, b can observe.
        if a.leq(&b) && a.can_observe(&obj) {
            prop_assert!(b.can_observe(&obj));
        }
    }

    #[test]
    fn flow_composition_is_safe(a in arb_taint_label(), b in arb_taint_label(),
                                c in arb_taint_label()) {
        // If information can flow a -> b and b -> c (pure taint labels,
        // no ownership anywhere), then it can flow a -> c.  This is the
        // end-to-end guarantee of §3.
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn drop_ownership_removes_all_stars(l in arb_label()) {
        prop_assert!(!l.drop_ownership(Level::L1).contains_star());
    }

    #[test]
    fn display_parse_round_trip(l in arb_taint_label()) {
        // Numeric-only labels round-trip through the text notation when the
        // resolver maps the printed names back to categories.
        let text = l.to_string();
        let parsed = Label::parse(&text, |name| {
            name.strip_prefix('c')
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .map(Category::from_raw)
        }).unwrap();
        prop_assert_eq!(parsed, l);
    }

    #[test]
    fn pack_unpack_round_trip(raw in 0u64..(1 << 61), lvl in arb_level()) {
        let c = Category::from_raw(raw);
        let word = c.pack_with_level(lvl.encode());
        let (c2, bits) = Category::unpack_with_level(word);
        prop_assert_eq!(c2, c);
        prop_assert_eq!(Level::decode(bits), Some(lvl));
    }
}
