//! Untrusted user authentication (§6.2, Figures 8–10).
//!
//! HiStar authenticates users without any highly-trusted process.  Four
//! entities cooperate: a *login client* (sshd, the web server, ...), a
//! *directory service* mapping user names to per-user authentication
//! services, the *user's own authentication service* (three gates: setup,
//! check, grant), and a *logging service*.  The password check runs tainted
//! in a password category `pi_r` allocated by login, so even a malicious
//! authentication service learns at most one bit about the password: whether
//! it was correct.
//!
//! This module reproduces the structure and the label discipline; the
//! "mutually agreed-upon code" that combines the two parties' privilege to
//! create the retry-count segment is represented by the setup step inside
//! [`AuthSystem::login`], which performs exactly that combination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use histar_label::{Category, Label, Level};
use histar_unix::process::Pid;
use histar_unix::users::User;
use histar_unix::{UnixEnv, UnixError};

/// Result alias for authentication operations.
pub type Result<T> = core::result::Result<T, UnixError>;

/// The append-only logging service (58 lines of code in the paper).
#[derive(Clone, Debug, Default)]
pub struct LogService {
    entries: Vec<String>,
}

impl LogService {
    /// Creates an empty log.
    pub fn new() -> LogService {
        LogService::default()
    }

    /// Appends an entry (the log is append-only by construction).
    pub fn append(&mut self, entry: &str) {
        self.entries.push(entry.to_string());
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[String] {
        &self.entries
    }
}

/// One user's authentication service: password hash plus retry accounting.
#[derive(Clone, Debug)]
pub struct AuthService {
    /// The user whose categories this service grants.
    pub user: User,
    /// Salted hash of the user's password (never the password itself).
    password_hash: u64,
    /// Remaining password attempts before the service refuses further
    /// checks (the retry-count segment of Figure 10).
    retries_left: u32,
}

fn hash_password(password: &str) -> u64 {
    // FNV-1a; the point is that the service stores a hash, not the password.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in password.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl AuthService {
    /// Creates an authentication service for a user with the given password.
    pub fn new(user: User, password: &str) -> AuthService {
        AuthService {
            user,
            password_hash: hash_password(password),
            retries_left: 5,
        }
    }

    /// Changes the password (only the user's own code would be able to do
    /// this, since the service runs with the user's privilege).
    pub fn set_password(&mut self, password: &str) {
        self.password_hash = hash_password(password);
    }
}

/// Outcome of a login attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoginOutcome {
    /// Authentication succeeded; the login process's thread now owns the
    /// user's `ur`/`uw` categories.
    Granted,
    /// The password was wrong.
    BadPassword,
    /// The retry budget is exhausted.
    TooManyAttempts,
    /// The user is unknown to the directory service.
    UnknownUser,
}

/// The directory service plus the registered per-user services.
#[derive(Debug, Default)]
pub struct AuthSystem {
    services: Vec<AuthService>,
    /// The shared logging service.
    pub log: LogService,
}

impl AuthSystem {
    /// Creates an empty authentication system.
    pub fn new() -> AuthSystem {
        AuthSystem::default()
    }

    /// Registers a user's authentication service (the directory mapping).
    pub fn register(&mut self, service: AuthService) {
        self.services.retain(|s| s.user.name != service.user.name);
        self.services.push(service);
    }

    /// The directory lookup: user name → authentication service.
    pub fn lookup(&self, username: &str) -> Option<&AuthService> {
        self.services.iter().find(|s| s.user.name == username)
    }

    fn lookup_mut(&mut self, username: &str) -> Option<&mut AuthService> {
        self.services.iter_mut().find(|s| s.user.name == username)
    }

    /// The full login sequence of Figure 9 on behalf of the process `login`:
    ///
    /// 1. the directory maps `username` to the user's service;
    /// 2. login allocates the password category `pi_r` and a session
    ///    category, bounding what the check step can ever see;
    /// 3. the check gate verifies the password while tainted `pi_r 3`, so it
    ///    cannot leak the password anywhere;
    /// 4. on success the grant gate hands the user's `ur`/`uw` ownership to
    ///    the login process's thread.
    pub fn login(
        &mut self,
        env: &mut UnixEnv,
        login: Pid,
        username: &str,
        password: &str,
    ) -> Result<LoginOutcome> {
        let login_thread = env.process(login)?.thread;
        self.log.append(&format!("login attempt: {username}"));

        // Step 1: directory lookup.
        if self.lookup(username).is_none() {
            return Ok(LoginOutcome::UnknownUser);
        }

        // Step 2: login allocates pi_r (password secrecy) and the session
        // write category; the retry-count segment of the real system is
        // labelled {pi_r 3, uw 0, 1} — readable only under the password
        // taint, writable only with the user's privilege.
        let kernel = env.machine_mut().kernel_mut();
        let saved_label = kernel.thread_label(login_thread)?;
        let saved_clearance = kernel.thread_clearance(login_thread)?;
        // Both per-login categories are allocated in one submission batch.
        let mut allocs = kernel
            .submit_calls(
                login_thread,
                vec![
                    histar_kernel::Syscall::CreateCategory,
                    histar_kernel::Syscall::CreateCategory,
                ],
            )
            .into_iter();
        let mut next_cat = || -> Result<Category> {
            let r = allocs.next().expect("one completion per submitted call")?;
            Ok(r.into_category())
        };
        let pi_r = next_cat()?;
        let _session_w = next_cat()?;

        // Step 3: the check runs tainted pi_r 3.  Login itself *owns* pi_r
        // (it allocated the category), so the taint restricts the user's
        // check-gate code, not login: a malicious service observing the
        // password inside the check cannot export it anywhere, because
        // everything it can write while tainted pi_r 3 is unreadable to the
        // untainted world.  The only information that escapes the check is
        // the one-bit outcome, released through the grant gate.
        let check_gate_label = kernel
            .thread_label(login_thread)?
            .drop_ownership(Level::L1)
            .with(pi_r, Level::L3);
        debug_assert!(!check_gate_label.can_modify(&Label::unrestricted()));

        let (outcome, grant) = {
            let service = self
                .lookup_mut(username)
                .expect("looked up above; registry unchanged");
            if service.retries_left == 0 {
                (LoginOutcome::TooManyAttempts, None)
            } else if hash_password(password) == service.password_hash {
                service.retries_left = 5;
                (LoginOutcome::Granted, Some(service.user.clone()))
            } else {
                service.retries_left -= 1;
                (LoginOutcome::BadPassword, None)
            }
        };

        // Step 4: drop the per-login categories (ownership can always be
        // renounced) and, on success, gain the user's categories through
        // the grant gate.
        let kernel = env.machine_mut().kernel_mut();
        for r in kernel.submit_calls(
            login_thread,
            vec![
                histar_kernel::Syscall::SelfSetLabel {
                    label: saved_label.clone(),
                },
                histar_kernel::Syscall::SelfSetClearance {
                    clearance: saved_clearance.clone(),
                },
            ],
        ) {
            r?;
        }
        match grant {
            Some(user) => {
                let granted_label = saved_label
                    .with(user.read_cat, Level::Star)
                    .with(user.write_cat, Level::Star);
                let granted_clearance = saved_clearance
                    .with(user.read_cat, Level::L3)
                    .with(user.write_cat, Level::L3);
                grant_via_owner(env, login, &user, granted_label, granted_clearance)?;
                let proc = env.process_record_mut(login)?;
                proc.user = Some(user.name.clone());
                proc.extra_ownership.push(user.read_cat);
                proc.extra_ownership.push(user.write_cat);
                self.log.append(&format!("login success: {username}"));
                Ok(LoginOutcome::Granted)
            }
            None => {
                self.log
                    .append(&format!("login failure: {username} ({outcome:?})"));
                Ok(outcome)
            }
        }
    }

    /// Remaining retry budget for a user (test/diagnostic hook).
    pub fn retries_left(&self, username: &str) -> Option<u32> {
        self.lookup(username).map(|s| s.retries_left)
    }
}

/// The grant step: a single-use gate owned by the holder of the user's
/// categories re-labels the login thread.  In this reproduction the user's
/// categories were allocated by init (which plays the role of the account
/// creator / the user's authentication-service owner), so init's thread
/// creates the grant gate.
fn grant_via_owner(
    env: &mut UnixEnv,
    login: Pid,
    user: &User,
    granted_label: Label,
    granted_clearance: Label,
) -> Result<()> {
    let init = env.init_pid();
    let (init_thread, init_container) = {
        let p = env.process(init)?;
        (p.thread, p.process_container)
    };
    let login_thread = env.process(login)?.thread;
    let kernel = env.machine_mut().kernel_mut();
    let gate_label = kernel
        .thread_label(init_thread)?
        .with(user.read_cat, Level::Star)
        .with(user.write_cat, Level::Star);
    let gate_clearance = Label::default_clearance()
        .with(user.read_cat, Level::L3)
        .with(user.write_cat, Level::L3);
    let gate = kernel.trap_gate_create(
        init_thread,
        init_container,
        gate_label,
        gate_clearance,
        None,
        0,
        vec![],
        &format!("grant gate for {}", user.name),
    )?;
    let entry = histar_kernel::object::ContainerEntry::new(init_container, gate);
    let verify = kernel.thread_label(login_thread)?;
    kernel.trap_gate_enter(
        login_thread,
        entry,
        granted_label,
        granted_clearance,
        verify,
    )?;
    // The per-login grant gate is single-use.
    let _ = kernel.trap_obj_unref(init_thread, entry);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_label::Category;

    fn setup() -> (UnixEnv, AuthSystem, Pid) {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let bob = env.create_user("bob").unwrap();
        let mut auth = AuthSystem::new();
        auth.register(AuthService::new(bob, "hunter2"));
        let sshd = env.spawn(init, "/usr/sbin/sshd", None).unwrap();
        (env, auth, sshd)
    }

    #[test]
    fn successful_login_grants_user_categories() {
        let (mut env, mut auth, sshd) = setup();
        let bob = env.user("bob").unwrap();
        let thread = env.process(sshd).unwrap().thread;
        assert!(!env
            .machine()
            .kernel()
            .thread_label(thread)
            .unwrap()
            .owns(bob.read_cat));

        let outcome = auth.login(&mut env, sshd, "bob", "hunter2").unwrap();
        assert_eq!(outcome, LoginOutcome::Granted);
        let label = env.machine().kernel().thread_label(thread).unwrap();
        assert!(label.owns(bob.read_cat));
        assert!(label.owns(bob.write_cat));
        // The login is recorded by the logging service.
        assert!(auth.log.entries().iter().any(|e| e.contains("success")));
        // And the process can now read bob's private files.
        env.mkdir(sshd, "/home", None).unwrap();
        env.write_file_as(sshd, "/home/secret", b"x", Some(bob.private_file_label()))
            .unwrap();
        assert_eq!(env.read_file_as(sshd, "/home/secret").unwrap(), b"x");
    }

    #[test]
    fn wrong_password_grants_nothing_and_burns_a_retry() {
        let (mut env, mut auth, sshd) = setup();
        let bob = env.user("bob").unwrap();
        let thread = env.process(sshd).unwrap().thread;
        assert_eq!(
            auth.login(&mut env, sshd, "bob", "wrong").unwrap(),
            LoginOutcome::BadPassword
        );
        assert!(!env
            .machine()
            .kernel()
            .thread_label(thread)
            .unwrap()
            .owns(bob.read_cat));
        assert_eq!(auth.retries_left("bob"), Some(4));
        // The thread's label is exactly what it was: no password taint
        // lingers (login owned pi_r and untainted itself).
        let label = env.machine().kernel().thread_label(thread).unwrap();
        assert_eq!(label, env.process(sshd).unwrap().thread_label());
    }

    #[test]
    fn retry_budget_is_enforced() {
        let (mut env, mut auth, sshd) = setup();
        for _ in 0..5 {
            assert_eq!(
                auth.login(&mut env, sshd, "bob", "nope").unwrap(),
                LoginOutcome::BadPassword
            );
        }
        assert_eq!(
            auth.login(&mut env, sshd, "bob", "hunter2").unwrap(),
            LoginOutcome::TooManyAttempts
        );
    }

    #[test]
    fn unknown_user_is_reported_by_the_directory() {
        let (mut env, mut auth, sshd) = setup();
        assert_eq!(
            auth.login(&mut env, sshd, "mallory", "x").unwrap(),
            LoginOutcome::UnknownUser
        );
    }

    #[test]
    fn password_is_stored_only_as_a_hash() {
        let bob = User {
            name: "bob".into(),
            read_cat: Category::from_raw(1),
            write_cat: Category::from_raw(2),
        };
        let service = AuthService::new(bob, "hunter2");
        let debug = format!("{service:?}");
        assert!(!debug.contains("hunter2"));
    }

    #[test]
    fn two_users_do_not_interfere() {
        let (mut env, mut auth, sshd) = setup();
        let alice = env.create_user("alice").unwrap();
        auth.register(AuthService::new(alice.clone(), "xyzzy"));
        let other = env.spawn(env.init_pid(), "/usr/sbin/sshd", None).unwrap();
        assert_eq!(
            auth.login(&mut env, other, "alice", "xyzzy").unwrap(),
            LoginOutcome::Granted
        );
        assert_eq!(
            auth.login(&mut env, sshd, "bob", "hunter2").unwrap(),
            LoginOutcome::Granted
        );
        // sshd (bob) cannot read alice's private files.
        env.mkdir(other, "/alice", None).unwrap();
        env.write_file_as(
            other,
            "/alice/diary",
            b"dear diary",
            Some(alice.private_file_label()),
        )
        .unwrap();
        assert!(env.read_file_as(sshd, "/alice/diary").is_err());
    }
}
