//! Free disk-space management.
//!
//! The store tracks free space as *extents* (contiguous byte ranges) using
//! two B+-trees: one indexed by extent size, used to find an
//! appropriately-sized extent quickly, and one indexed by extent location,
//! used to coalesce adjacent extents when space is freed (§4).  Disk space
//! allocation is delayed until an object is written to disk, which makes it
//! easier to allocate contiguous extents; the allocator itself only hands
//! out ranges.

use crate::bptree::BPlusTree;

/// A contiguous range of free (or allocated) disk space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// Byte offset of the start of the extent.
    pub offset: u64,
    /// Length of the extent in bytes.
    pub len: u64,
}

impl Extent {
    /// Creates an extent.
    pub fn new(offset: u64, len: u64) -> Extent {
        Extent { offset, len }
    }

    /// One-past-the-end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Free-space allocator backed by two B+-trees.
///
/// *By-size* tree: key is `size << 20 | (fingerprint of offset)` so that
/// extents of equal size get distinct keys; value is the offset.
/// *By-location* tree: key is the offset, value is the length.
#[derive(Debug)]
pub struct ExtentAllocator {
    by_location: BPlusTree,
    by_size: BPlusTree,
    total_free: u64,
    capacity: u64,
}

/// Number of low bits reserved to disambiguate same-size extents in the
/// by-size index.
const SIZE_KEY_SHIFT: u32 = 24;

fn size_key(len: u64, offset: u64) -> u64 {
    // Same-size extents are ordered by a hash of their offset so that the
    // by-size tree never has duplicate keys.  The offset fingerprint is
    // recoverable only through the by-location tree, which is fine — the
    // value field carries the real offset.
    (len << SIZE_KEY_SHIFT) | (offset.wrapping_mul(0x9E3779B97F4A7C15) >> (64 - SIZE_KEY_SHIFT))
}

impl ExtentAllocator {
    /// Creates an allocator managing `capacity` bytes starting at
    /// `data_start` (space before `data_start` is reserved for superblocks
    /// and the log).
    pub fn new(data_start: u64, capacity: u64) -> ExtentAllocator {
        let mut alloc = ExtentAllocator {
            by_location: BPlusTree::new(),
            by_size: BPlusTree::new(),
            total_free: 0,
            capacity,
        };
        if capacity > data_start {
            alloc.insert_free(Extent::new(data_start, capacity - data_start));
        }
        alloc
    }

    /// Total free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.total_free
    }

    /// Total managed capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of distinct free extents (a fragmentation metric).
    pub fn fragments(&self) -> usize {
        self.by_location.len()
    }

    fn insert_free(&mut self, e: Extent) {
        if e.len == 0 {
            return;
        }
        self.by_location.insert(e.offset, e.len);
        self.by_size.insert(size_key(e.len, e.offset), e.offset);
        self.total_free += e.len;
    }

    fn remove_free(&mut self, e: Extent) {
        self.by_location.remove(e.offset);
        self.by_size.remove(size_key(e.len, e.offset));
        self.total_free -= e.len;
    }

    /// Allocates an extent of at least `len` bytes (best-fit on the by-size
    /// tree).  Returns `None` if no single free extent is large enough.
    pub fn alloc(&mut self, len: u64) -> Option<Extent> {
        if len == 0 {
            return Some(Extent::new(0, 0));
        }
        // Smallest size-key ≥ (len << SHIFT) is the best-fit extent.
        let (key, offset) = self.by_size.lower_bound(len << SIZE_KEY_SHIFT)?;
        let actual_len = key >> SIZE_KEY_SHIFT;
        debug_assert!(actual_len >= len);
        let whole = Extent::new(offset, actual_len);
        self.remove_free(whole);
        if actual_len > len {
            self.insert_free(Extent::new(offset + len, actual_len - len));
        }
        Some(Extent::new(offset, len))
    }

    /// Frees an extent, coalescing with free neighbours.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the extent overlaps existing free space,
    /// which would indicate a double free.
    pub fn free(&mut self, extent: Extent) {
        if extent.len == 0 {
            return;
        }
        let mut merged = extent;

        // Coalesce with the following extent, if adjacent.
        if let Some((next_off, next_len)) = self.by_location.lower_bound(extent.offset) {
            debug_assert!(
                next_off >= merged.end() || next_off + next_len <= merged.offset,
                "double free or overlap at offset {next_off}"
            );
            if next_off == merged.end() {
                self.remove_free(Extent::new(next_off, next_len));
                merged.len += next_len;
            }
        }

        // Coalesce with the preceding extent, if adjacent.  The by-location
        // tree has no "predecessor" query, so scan the range just before the
        // freed offset; extents are bounded by the capacity so this range is
        // cheap to compute via lower_bound from 0 only when small.  We use a
        // bounded backwards probe: find the largest key < offset by scanning
        // the range [0, offset) lazily from the closest candidates.
        if let Some((prev_off, prev_len)) = self.predecessor(extent.offset) {
            if prev_off + prev_len == merged.offset {
                self.remove_free(Extent::new(prev_off, prev_len));
                merged = Extent::new(prev_off, prev_len + merged.len);
            } else {
                debug_assert!(
                    prev_off + prev_len <= merged.offset,
                    "double free or overlap before offset {}",
                    merged.offset
                );
            }
        }

        self.insert_free(merged);
    }

    /// Largest free extent starting strictly before `offset`.
    fn predecessor(&self, offset: u64) -> Option<(u64, u64)> {
        // The by-location tree is keyed by offset; take the greatest entry
        // below `offset`.  BPlusTree has no reverse iterator, so use range
        // collection over [0, offset) and take the last element.  Free lists
        // are small relative to object counts, and this path only runs on
        // deallocation, so the linear cost is acceptable for the simulator.
        self.by_location.range(0, offset).into_iter().next_back()
    }

    /// One past the highest allocated byte: if the topmost free extent
    /// runs to the end of the disk, nothing above its start is in use.
    /// The superblock records this so recovery can preload the whole live
    /// data region in a single read.
    pub fn high_water(&self) -> u64 {
        match self.free_list().last() {
            Some(last) if last.end() == self.capacity => last.offset,
            _ => self.capacity,
        }
    }

    /// All free extents in ascending offset order (used by checkpointing).
    pub fn free_list(&self) -> Vec<Extent> {
        self.by_location
            .iter()
            .into_iter()
            .map(|(off, len)| Extent::new(off, len))
            .collect()
    }

    /// Rebuilds an allocator from a saved free list.
    pub fn from_free_list(capacity: u64, free: &[Extent]) -> ExtentAllocator {
        let mut alloc = ExtentAllocator {
            by_location: BPlusTree::new(),
            by_size: BPlusTree::new(),
            total_free: 0,
            capacity,
        };
        for &e in free {
            alloc.insert_free(e);
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let mut a = ExtentAllocator::new(0, 1_000_000);
        assert_eq!(a.free_bytes(), 1_000_000);
        let e1 = a.alloc(1000).unwrap();
        let e2 = a.alloc(2000).unwrap();
        assert_eq!(a.free_bytes(), 997_000);
        assert_ne!(e1.offset, e2.offset);
        a.free(e1);
        a.free(e2);
        assert_eq!(a.free_bytes(), 1_000_000);
        // Everything coalesces back into one extent.
        assert_eq!(a.fragments(), 1);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = ExtentAllocator::new(4096, 10_000_000);
        let mut extents = Vec::new();
        for i in 0..500u64 {
            let len = 100 + (i % 37) * 64;
            extents.push(a.alloc(len).unwrap());
        }
        let mut sorted = extents.clone();
        sorted.sort_by_key(|e| e.offset);
        for w in sorted.windows(2) {
            assert!(w[0].end() <= w[1].offset, "extents overlap: {w:?}");
        }
        // None may fall below the data start.
        assert!(sorted[0].offset >= 4096);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_extent() {
        let mut a = ExtentAllocator::new(0, 100_000);
        // Carve the space into free fragments of size 1000, 5000 and the rest.
        let big = a.alloc(100_000).unwrap();
        a.free(Extent::new(big.offset, 1000));
        a.free(Extent::new(big.offset + 2000, 5000));
        a.free(Extent::new(big.offset + 10_000, 90_000));
        // A 900-byte request should come from the 1000-byte fragment.
        let got = a.alloc(900).unwrap();
        assert_eq!(got.offset, big.offset);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = ExtentAllocator::new(0, 10_000);
        assert!(a.alloc(10_001).is_none());
        let e = a.alloc(10_000).unwrap();
        assert!(a.alloc(1).is_none());
        a.free(e);
        assert!(a.alloc(1).is_some());
    }

    #[test]
    fn coalescing_with_both_neighbours() {
        let mut a = ExtentAllocator::new(0, 30_000);
        let e = a.alloc(30_000).unwrap();
        // Free three adjacent pieces out of order; they must merge into one.
        a.free(Extent::new(e.offset, 10_000));
        a.free(Extent::new(e.offset + 20_000, 10_000));
        assert_eq!(a.fragments(), 2);
        a.free(Extent::new(e.offset + 10_000, 10_000));
        assert_eq!(a.fragments(), 1);
        assert_eq!(a.free_bytes(), 30_000);
        let again = a.alloc(30_000).unwrap();
        assert_eq!(again.len, 30_000);
    }

    #[test]
    fn free_list_round_trip() {
        let mut a = ExtentAllocator::new(0, 50_000);
        let e1 = a.alloc(1234).unwrap();
        let _e2 = a.alloc(4321).unwrap();
        a.free(e1);
        let list = a.free_list();
        let b = ExtentAllocator::from_free_list(50_000, &list);
        assert_eq!(b.free_bytes(), a.free_bytes());
        assert_eq!(b.free_list(), list);
    }

    #[test]
    fn zero_length_requests_are_trivial() {
        let mut a = ExtentAllocator::new(0, 1000);
        assert_eq!(a.alloc(0), Some(Extent::new(0, 0)));
        a.free(Extent::new(500, 0));
        assert_eq!(a.free_bytes(), 1000);
    }

    #[test]
    fn high_water_tracks_topmost_allocation() {
        let mut a = ExtentAllocator::new(4096, 1_000_000);
        assert_eq!(a.high_water(), 4096, "empty disk: nothing allocated");
        let e1 = a.alloc(10_000).unwrap();
        assert_eq!(a.high_water(), e1.end());
        let e2 = a.alloc(10_000).unwrap();
        assert_eq!(a.high_water(), e2.end());
        // Freeing a middle extent does not lower the mark.
        a.free(e1);
        assert_eq!(a.high_water(), e2.end());
        // Freeing the topmost extent coalesces with the tail and lowers it.
        a.free(e2);
        assert_eq!(a.high_water(), 4096);
        // A fully allocated disk has no tail extent at all.
        let all = a.alloc(1_000_000 - 4096).unwrap();
        assert_eq!(a.high_water(), a.capacity());
        a.free(all);
    }

    #[test]
    fn sequential_allocations_are_contiguous_when_space_allows() {
        // Delayed allocation relies on the allocator handing out adjacent
        // ranges for back-to-back writes.
        let mut a = ExtentAllocator::new(0, 1_000_000);
        let e1 = a.alloc(4096).unwrap();
        let e2 = a.alloc(4096).unwrap();
        assert_eq!(e1.end(), e2.offset);
    }
}
