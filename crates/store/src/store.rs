//! The single-level store: snapshots, recovery, and synchronous updates.
//!
//! On bootup the entire system state is restored from the most recent
//! on-disk snapshot (§3).  All kernel objects are written to disk at each
//! snapshot and can be evicted from memory once stably stored.  Synchronous
//! operations (the Unix library's `fsync`) either append to the write-ahead
//! log or checkpoint the entire system state, and the paper's "group sync"
//! mode checkpoints once at the end of a batch of operations (§7.1).

use crate::bptree::BPlusTree;
use crate::codec::{frame, unframe, Decoder, Encoder};
use crate::extent::{Extent, ExtentAllocator};
use crate::wal::{LogRecord, WriteAheadLog};
use histar_obs::{Recorder, Span};
use histar_sim::disk::BLOCK_SIZE;
use histar_sim::{DiskConfig, SimClock, SimDisk};
use std::collections::{BTreeMap, BTreeSet};

/// How synchronous updates are made durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Updates stay in memory until an explicit checkpoint (or the periodic
    /// snapshot).  This is the "async" row of the LFS benchmarks.
    Async,
    /// Every synchronous operation appends to the write-ahead log, which is
    /// applied in batches.  This is HiStar's per-file `fsync` behaviour.
    PerOperation,
    /// Nothing is written until [`SingleLevelStore::checkpoint`] is called
    /// once for the whole batch — the paper's "group sync" mode, which is
    /// only possible because of the single-level store.
    GroupSync,
}

/// How recovery rebuilds state from the checkpoint and the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// Read the log in large chunks, bulk-load the B+-trees bottom-up,
    /// preload the live data region in one read, and fold the replayed
    /// records per object.  The default.
    Batched,
    /// Read the whole log region in one I/O and rebuild the trees with one
    /// point insert per entry — the legacy strategy, kept so the
    /// equivalence harness can prove both paths recover identical state.
    RecordByRecord,
}

/// Configuration of the store.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Configuration of the underlying simulated disk.
    pub disk: DiskConfig,
    /// Bytes reserved at the start of the disk for the superblock.
    pub superblock_len: u64,
    /// Bytes reserved for the write-ahead log region.  Kept small: the log
    /// only needs to cover the window between checkpoints, and recovery
    /// cost is bounded by how much log can accumulate, so a short region
    /// keeps `recover` fast (pre-apply + checkpoint-on-full keep it from
    /// overflowing under sustained sync load).
    pub log_region_len: u64,
    /// Apply (fold into a checkpoint) the log after this many pending
    /// records, modelling the paper's observation of one application per
    /// ~1,000 synchronous operations.
    pub apply_batch: usize,
    /// Synchronous-update policy.
    pub sync_policy: SyncPolicy,
    /// Recovery replay strategy.
    pub replay_mode: ReplayMode,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            disk: DiskConfig::default(),
            superblock_len: 4096,
            log_region_len: 128 * 1024,
            apply_batch: 1000,
            sync_policy: SyncPolicy::Async,
            replay_mode: ReplayMode::Batched,
        }
    }
}

/// Statistics describing store activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Objects written to their home location.
    pub objects_written: u64,
    /// Objects read from disk (cache misses).
    pub objects_read: u64,
    /// Full checkpoints taken.
    pub checkpoints: u64,
    /// Log applications triggered by batching.
    pub log_applications: u64,
    /// In-place page flushes (large-file sync writes).
    pub inplace_flushes: u64,
    /// Objects loaded into the cache by recovery's single preload read of
    /// the live data region (instead of one random read each on demand).
    pub objects_preloaded: u64,
}

impl histar_obs::MetricSource for StoreStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("store.objects_written", self.objects_written);
        set.counter("store.objects_read", self.objects_read);
        set.counter("store.checkpoints", self.checkpoints);
        set.counter("store.log_applications", self.log_applications);
        set.counter("store.inplace_flushes", self.inplace_flushes);
        set.counter("store.objects_preloaded", self.objects_preloaded);
    }
}

/// Errors from store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The object is not present in memory or on disk.
    NoSuchObject(u64),
    /// The disk is out of space for the requested allocation.
    OutOfSpace,
    /// The on-disk state is corrupt and cannot be recovered.
    Corrupt(&'static str),
    /// The operation cannot be applied to this object in its current state
    /// (e.g. an in-place flush of an object whose size has changed).
    InvalidOperation(&'static str),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::NoSuchObject(id) => write!(f, "no such object: {id}"),
            StoreError::OutOfSpace => write!(f, "out of disk space"),
            StoreError::Corrupt(what) => write!(f, "corrupt on-disk state: {what}"),
            StoreError::InvalidOperation(what) => write!(f, "invalid store operation: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Header bytes preceding an object's body in its home-location record:
/// 8 bytes of object ID plus the 8-byte body length prefix.
const RECORD_HEADER: u64 = 16;

/// The single-level store.
///
/// The store holds the authoritative serialized form of every kernel object.
/// Objects live in an in-memory cache (the machine's RAM) and are written to
/// disk by checkpoints, by the write-ahead log, or by in-place page flushes.
#[derive(Debug)]
pub struct SingleLevelStore {
    config: StoreConfig,
    disk: SimDisk,
    wal: WriteAheadLog,
    alloc: ExtentAllocator,
    /// Object ID → home-location offset on disk.
    object_loc: BPlusTree,
    /// Object ID → allocated extent length at the home location.
    object_extent_len: BPlusTree,
    /// Object ID → body length as last written to the home location.
    object_body_len: BPlusTree,
    /// In-memory object cache.
    cache: BTreeMap<u64, Vec<u8>>,
    /// Objects modified since they were last written to disk.
    dirty: BTreeSet<u64>,
    /// Objects deleted since the last checkpoint.
    deleted: BTreeSet<u64>,
    /// Extent holding the metadata blob of the most recent checkpoint; it is
    /// released only once the *next* checkpoint's superblock is durable, so
    /// a crash between checkpoints always finds intact metadata.
    prev_meta: Option<Extent>,
    /// Monotonic checkpoint sequence number.
    sequence: u64,
    /// Group-commit staging: while `Some`, synchronous log appends are
    /// buffered here and flushed as ONE multi-record frame when the group
    /// closes (see [`SingleLevelStore::begin_sync_group`]).
    staged: Option<Vec<LogRecord>>,
    /// How many of the WAL's pending records have already been written to
    /// their home locations by incremental pre-apply (pipelined
    /// checkpointing); reset when the log truncates.
    preapplied: usize,
    stats: StoreStats,
    /// Flight recorder for WAL/checkpoint/recovery spans (disabled by
    /// default; the kernel hands its own recorder down on attach).
    recorder: Recorder,
}

/// Magic number identifying a formatted superblock ("HISTAR!!").
const SUPERBLOCK_MAGIC: u64 = 0x4849_5354_4152_2121;

impl SingleLevelStore {
    /// Creates a fresh store (equivalent to formatting the disk).
    pub fn format(config: StoreConfig, clock: SimClock) -> SingleLevelStore {
        let disk = SimDisk::new(config.disk, clock);
        let data_start = config.superblock_len + config.log_region_len;
        SingleLevelStore {
            wal: WriteAheadLog::new(config.superblock_len, config.log_region_len),
            alloc: ExtentAllocator::new(data_start, config.disk.capacity),
            object_loc: BPlusTree::new(),
            object_extent_len: BPlusTree::new(),
            object_body_len: BPlusTree::new(),
            cache: BTreeMap::new(),
            dirty: BTreeSet::new(),
            deleted: BTreeSet::new(),
            prev_meta: None,
            sequence: 0,
            staged: None,
            preapplied: 0,
            stats: StoreStats::default(),
            recorder: Recorder::disabled(),
            config,
            disk,
        }
    }

    /// Installs the flight recorder WAL appends, log applications,
    /// checkpoints and recovery replays emit spans into.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Simulated time as seen by the store's disk clock, in nanoseconds.
    fn tick(&self) -> u64 {
        self.disk.clock().now().as_nanos()
    }

    /// Records a store-side span from `start` to now (no-op when the
    /// recorder is disabled; never advances simulated time).
    fn span(&self, cat: &'static str, name: &'static str, start: u64) {
        self.recorder.record(Span {
            cat,
            name,
            start,
            end: self.tick(),
            tid: 0,
            seq: self.sequence,
        });
    }

    /// The current synchronous-update policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.config.sync_policy
    }

    /// Changes the synchronous-update policy (used by the benchmarks to run
    /// the same workload under different durability modes).
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.config.sync_policy = policy;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// A reference to the underlying simulated disk (for its statistics).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// The underlying disk's operation counters.
    pub fn disk_stats(&self) -> histar_sim::disk::DiskStats {
        self.disk.stats()
    }

    /// The write-ahead log's counters.
    pub fn wal_stats(&self) -> crate::wal::WalStats {
        self.wal.stats()
    }

    /// Bytes of write-ahead-log space used since the last application —
    /// the crash-recovery harness truncates the on-disk log at every
    /// record boundary up to this point.
    pub fn wal_used(&self) -> u64 {
        self.wal.used()
    }

    /// The latest checkpoint sequence number.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Number of objects currently resident in the in-memory cache.
    pub fn cached_objects(&self) -> usize {
        self.cache.len()
    }

    /// Drops clean objects from the in-memory cache (memory pressure); they
    /// can be re-read from their home locations on demand.
    pub fn evict_clean(&mut self) {
        let dirty = &self.dirty;
        self.cache.retain(|id, _| dirty.contains(id));
    }

    /// Stores (creates or overwrites) an object's serialized bytes.
    pub fn put(&mut self, id: u64, data: Vec<u8>) {
        self.cache.insert(id, data);
        self.dirty.insert(id);
        self.deleted.remove(&id);
        if self.config.sync_policy == SyncPolicy::PerOperation {
            self.sync_object(id);
        }
    }

    /// Reads an object's serialized bytes, from cache or disk.
    pub fn get(&mut self, id: u64) -> Result<Vec<u8>, StoreError> {
        if let Some(data) = self.cache.get(&id) {
            return Ok(data.clone());
        }
        if self.deleted.contains(&id) {
            return Err(StoreError::NoSuchObject(id));
        }
        let offset = self
            .object_loc
            .get(id)
            .ok_or(StoreError::NoSuchObject(id))?;
        let body_len = self
            .object_body_len
            .get(id)
            .ok_or(StoreError::Corrupt("object map missing body length"))?;
        let raw = self.disk.read(offset, RECORD_HEADER + body_len);
        let mut d = Decoder::new(&raw);
        let stored_id = d.get_u64().map_err(|_| StoreError::Corrupt("object id"))?;
        if stored_id != id {
            return Err(StoreError::Corrupt("object id mismatch"));
        }
        let data = d
            .get_bytes()
            .map_err(|_| StoreError::Corrupt("object body"))?;
        self.stats.objects_read += 1;
        self.cache.insert(id, data.clone());
        Ok(data)
    }

    /// Returns true if an object exists (in memory or on disk).
    pub fn contains(&self, id: u64) -> bool {
        if self.deleted.contains(&id) {
            return false;
        }
        self.cache.contains_key(&id) || self.object_loc.contains(id)
    }

    /// Deletes an object.
    pub fn delete(&mut self, id: u64) {
        self.cache.remove(&id);
        self.dirty.remove(&id);
        self.deleted.insert(id);
        self.drop_home(id);
        if self.config.sync_policy == SyncPolicy::PerOperation {
            self.append_log(LogRecord::DeleteObject(id));
        }
    }

    fn drop_home(&mut self, id: u64) {
        if let (Some(off), Some(len)) = (self.object_loc.get(id), self.object_extent_len.get(id)) {
            self.alloc.free(Extent::new(off, len));
            self.object_loc.remove(id);
            self.object_extent_len.remove(id);
            self.object_body_len.remove(id);
        }
    }

    /// Synchronously logs the current contents of one object (the HiStar
    /// per-file `fsync` path): an append to the sequential write-ahead log,
    /// with the log applied in batches.
    pub fn sync_object(&mut self, id: u64) {
        if let Some(data) = self.cache.get(&id).cloned() {
            self.append_log(LogRecord::PutObject(id, data));
        }
    }

    /// Synchronously logs the *deletion* of an object: the durable
    /// counterpart of [`SingleLevelStore::delete`] under the async policy,
    /// used when an unlink must survive a crash without waiting for the
    /// next checkpoint.
    pub fn sync_delete(&mut self, id: u64) {
        self.append_log(LogRecord::DeleteObject(id));
    }

    /// All keys currently present in `[lo, hi)` — the union of the
    /// on-disk object map and the in-memory cache, minus deletions.  This
    /// is the range-scan entry point the persistent filesystem's readdir
    /// and extent walks use; the key layout in [`crate::records`] makes
    /// one directory (or one file) a contiguous key range.
    pub fn keys_in_range(&self, lo: u64, hi: u64) -> Vec<u64> {
        if lo >= hi {
            return Vec::new();
        }
        let mut keys: BTreeSet<u64> = self
            .object_loc
            .range(lo, hi)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        keys.extend(self.cache.range(lo..hi).map(|(k, _)| *k));
        for id in self.deleted.range(lo..hi) {
            keys.remove(id);
        }
        keys.into_iter().collect()
    }

    /// Structural consistency check used by the crash-recovery gate: the
    /// three object-map B+-trees satisfy their tree invariants and agree
    /// on exactly which objects have home locations, and no two home
    /// extents overlap.  Returns the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.object_loc
            .check_invariants()
            .map_err(|e| format!("object_loc: {e}"))?;
        self.object_extent_len
            .check_invariants()
            .map_err(|e| format!("object_extent_len: {e}"))?;
        self.object_body_len
            .check_invariants()
            .map_err(|e| format!("object_body_len: {e}"))?;
        let locs = self.object_loc.iter();
        let extent_lens = self.object_extent_len.iter();
        let body_lens = self.object_body_len.iter();
        if locs.len() != extent_lens.len() || locs.len() != body_lens.len() {
            return Err(format!(
                "object maps disagree: {} locations, {} extent lengths, {} body lengths",
                locs.len(),
                extent_lens.len(),
                body_lens.len()
            ));
        }
        let mut extents: Vec<(u64, u64)> = Vec::with_capacity(locs.len());
        for (((id, off), (id2, elen)), (id3, blen)) in
            locs.iter().zip(extent_lens.iter()).zip(body_lens.iter())
        {
            if id != id2 || id != id3 {
                return Err(format!(
                    "object maps key mismatch: {id:#x}/{id2:#x}/{id3:#x}"
                ));
            }
            if blen + RECORD_HEADER > *elen {
                return Err(format!(
                    "object {id:#x}: body length {blen} does not fit extent {elen}"
                ));
            }
            extents.push((*off, *elen));
        }
        extents.sort_unstable();
        for w in extents.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                return Err(format!(
                    "home extents overlap: [{:#x}+{:#x}) and [{:#x}+{:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
        Ok(())
    }

    /// Opens a group-commit window: until [`SingleLevelStore::end_sync_group`],
    /// synchronous log appends are staged in memory instead of each paying
    /// for its own disk write and flush.  Idempotent; the kernel brackets
    /// every syscall batch with this pair, so all syncs submitted in one
    /// batch share one WAL frame (§5's group sync).
    pub fn begin_sync_group(&mut self) {
        if self.staged.is_none() {
            self.staged = Some(Vec::new());
        }
    }

    /// Closes the group-commit window, flushing every staged record as ONE
    /// multi-record frame.  Nothing staged in the window is durable — or
    /// acknowledged to callers — until this returns.
    pub fn end_sync_group(&mut self) {
        if let Some(staged) = self.staged.take() {
            if !staged.is_empty() {
                self.flush_records(staged);
            }
        }
    }

    fn append_log(&mut self, record: LogRecord) {
        if let Some(staged) = self.staged.as_mut() {
            staged.push(record);
            return;
        }
        self.flush_records(vec![record]);
    }

    /// Writes a batch of records as one WAL frame: one disk write plus one
    /// flush, regardless of how many records the frame carries — the cost
    /// model charges per flushed frame, not per logical record.
    fn flush_records(&mut self, records: Vec<LogRecord>) {
        let framed_len = 16 + records.iter().map(LogRecord::encoded_len).sum::<u64>();
        // A frame that could never fit the region, even empty (a huge
        // record or a huge group): the records are already reflected in
        // the cache, so fold them into a full checkpoint instead — a
        // strictly stronger durability point than the log append.
        if framed_len + 64 > self.config.log_region_len {
            self.checkpoint();
            return;
        }
        if self.wal.needs_application(framed_len)
            || self.wal.pending_records() >= self.config.apply_batch
        {
            self.apply_log();
        }
        let start = self.tick();
        self.wal.append_frame(&mut self.disk, records);
        self.disk.flush();
        self.span("wal", "append", start);
        self.maybe_preapply();
    }

    /// Folds every pending log record into a full checkpoint, truncating
    /// the log.  (Historically this wrote pending objects home and reset
    /// the log head while the B+-trees lived only in memory — a crash
    /// after truncation then lost the maps that located the freshly homed
    /// records.  A checkpoint makes the fold itself durable.)
    pub fn apply_log(&mut self) {
        if self.wal.pending_records() == 0 {
            return;
        }
        let start = self.tick();
        self.stats.log_applications += 1;
        self.checkpoint();
        self.span("wal", "apply", start);
    }

    /// Incremental ("pipelined") checkpointing: once the log region is
    /// three-quarters full, each append also writes a few of the oldest
    /// pending records to their home locations.  The eventual checkpoint
    /// then has little left to do, so the stop-the-world pause stays short
    /// even under sustained sync load.  Crash-safe because pre-applied
    /// records remain in the log: replay masks their home copies until the
    /// next checkpoint commits the maps.  Only records that fit their
    /// object's existing extent are written — allocating here could reuse
    /// space freed by a not-yet-durable delete and clobber state an
    /// earlier checkpoint still owns.
    fn maybe_preapply(&mut self) {
        const PREAPPLY_CHUNK: usize = 4;
        const PREAPPLY_SCAN: usize = 64;
        if self.wal.used() * 4 <= self.wal.region_len() * 3 {
            return;
        }
        let start = self.tick();
        let mut written = 0;
        let mut examined = 0;
        while written < PREAPPLY_CHUNK
            && examined < PREAPPLY_SCAN
            && self.preapplied < self.wal.pending_records()
        {
            let idx = self.preapplied;
            self.preapplied += 1;
            examined += 1;
            let LogRecord::PutObject(id, data) = self.wal.pending()[idx].clone() else {
                continue;
            };
            // Skip records superseded later in the log: fsync-heavy
            // workloads re-sync the same objects, and only the newest
            // version is worth homing.
            let superseded = self.wal.pending()[idx + 1..].iter().any(|r| {
                matches!(r, LogRecord::PutObject(i, _) if *i == id)
                    || matches!(r, LogRecord::DeleteObject(i) if *i == id)
            });
            if superseded {
                continue;
            }
            let fits = match (self.object_loc.get(id), self.object_extent_len.get(id)) {
                (Some(_), Some(elen)) => elen >= RECORD_HEADER + data.len() as u64,
                _ => false,
            };
            if !fits {
                continue;
            }
            self.write_home(id, &data);
            // The home copy is current, so the eventual checkpoint can
            // skip this object — unless the cache has moved on since.
            if self.cache.get(&id).is_some_and(|cached| *cached == data) {
                self.dirty.remove(&id);
            }
            written += 1;
        }
        if written > 0 {
            self.span("wal", "preapply", start);
        }
    }

    /// Writes one object record to a (possibly new) home location.
    ///
    /// Record layout: `object id (8) || body length (8) || body`.
    fn write_home(&mut self, id: u64, data: &[u8]) {
        let mut e = Encoder::new();
        e.put_u64(id).put_bytes(data);
        let record = e.finish();
        let need = record.len() as u64;

        // Reuse the existing extent if the new record still fits; otherwise
        // allocate a fresh one (delayed allocation).
        let reuse = match (self.object_loc.get(id), self.object_extent_len.get(id)) {
            (Some(off), Some(len)) if len >= need => Some(Extent::new(off, len)),
            (Some(off), Some(len)) => {
                self.alloc.free(Extent::new(off, len));
                self.object_loc.remove(id);
                self.object_extent_len.remove(id);
                self.object_body_len.remove(id);
                None
            }
            _ => None,
        };
        let extent = reuse.unwrap_or_else(|| {
            self.alloc
                .alloc(need.max(BLOCK_SIZE))
                .expect("simulated disk out of space")
        });
        self.disk.write(extent.offset, &record);
        self.object_loc.insert(id, extent.offset);
        self.object_extent_len.insert(id, extent.len);
        self.object_body_len.insert(id, data.len() as u64);
        self.stats.objects_written += 1;
    }

    /// Flushes specific pages of an already-persistent object in place,
    /// without checkpointing the entire system state (the LFS large-file
    /// random-write path, §7.1).
    ///
    /// The object's size must not have changed since it was last written to
    /// its home location; otherwise the caller must fall back to
    /// [`SingleLevelStore::sync_object`] or a checkpoint.
    pub fn sync_pages_in_place(&mut self, id: u64, pages: &[u64]) -> Result<usize, StoreError> {
        let data = self
            .cache
            .get(&id)
            .cloned()
            .ok_or(StoreError::NoSuchObject(id))?;
        let off = self
            .object_loc
            .get(id)
            .ok_or(StoreError::NoSuchObject(id))?;
        let body_len = self
            .object_body_len
            .get(id)
            .ok_or(StoreError::NoSuchObject(id))?;
        if body_len != data.len() as u64 {
            return Err(StoreError::InvalidOperation(
                "object size changed since last home write",
            ));
        }
        let mut written = 0;
        for &page in pages {
            let start = (page * BLOCK_SIZE) as usize;
            if start >= data.len() {
                continue;
            }
            let end = core::cmp::min(start + BLOCK_SIZE as usize, data.len());
            self.disk
                .write(off + RECORD_HEADER + start as u64, &data[start..end]);
            written += 1;
        }
        self.disk.flush();
        self.stats.inplace_flushes += 1;
        // The home copy now reflects the cached pages the caller flushed.
        self.dirty.remove(&id);
        Ok(written)
    }

    /// Takes a full checkpoint: every dirty object is written to its home
    /// location, the object map and free list are serialized, and the
    /// superblock is updated.  After a checkpoint the system can recover to
    /// exactly this state.
    pub fn checkpoint(&mut self) {
        let start = self.tick();
        // 0. The metadata blob from the previous checkpoint can be recycled
        //    now; the superblock will be rewritten before this call returns.
        if let Some(prev) = self.prev_meta.take() {
            self.alloc.free(prev);
        }

        // 1. Write dirty objects and drop records of deleted objects.
        let dirty: Vec<u64> = self.dirty.iter().copied().collect();
        for id in dirty {
            if let Some(data) = self.cache.get(&id).cloned() {
                self.write_home(id, &data);
            }
        }
        self.dirty.clear();
        self.deleted.clear();

        // 2. Serialize metadata (object maps + free list) into a fresh
        //    extent.  The serialized free list must already EXCLUDE the
        //    extent the blob itself occupies — otherwise a recovered
        //    allocator believes the metadata region is free and the next
        //    checkpoint's `free(prev_meta)` double-frees it.  The blob's
        //    size depends on the free list, so serialize twice: once to
        //    measure, then (after allocating, which changes the free list
        //    by at most one entry) with the final free list.
        let loc_bytes = self.object_loc.serialize();
        let extent_len_bytes = self.object_extent_len.serialize();
        let body_len_bytes = self.object_body_len.serialize();
        let build_blob = |alloc: &ExtentAllocator| {
            let free_list = alloc.free_list();
            let mut free_enc = Encoder::new();
            free_enc.put_u64(free_list.len() as u64);
            for e in &free_list {
                free_enc.put_u64(e.offset).put_u64(e.len);
            }
            let mut e = Encoder::new();
            e.put_bytes(&loc_bytes)
                .put_bytes(&extent_len_bytes)
                .put_bytes(&body_len_bytes)
                .put_bytes(&free_enc.finish());
            frame(&e.finish())
        };
        let probe_len = build_blob(&self.alloc).len() as u64;
        let meta_extent = self
            .alloc
            .alloc((probe_len + 64).max(BLOCK_SIZE))
            .expect("disk out of space for checkpoint metadata");
        let meta_blob = build_blob(&self.alloc);
        assert!(
            meta_blob.len() as u64 <= meta_extent.len,
            "checkpoint metadata outgrew its extent"
        );
        self.disk.write(meta_extent.offset, &meta_blob);

        // 3. Superblock points at the metadata blob.  It also records the
        //    allocator's high-water mark (computed after the metadata
        //    allocation, so it covers the blob): everything live sits
        //    below it, letting recovery preload the whole data region in
        //    one sequential read.
        self.sequence += 1;
        let mut sb = Encoder::new();
        sb.put_u64(SUPERBLOCK_MAGIC)
            .put_u64(self.sequence)
            .put_u64(meta_extent.offset)
            .put_u64(meta_blob.len() as u64)
            .put_u64(meta_extent.len)
            .put_u64(self.alloc.high_water());
        self.disk.write(0, &frame(&sb.finish()));
        self.disk.flush();

        // 4. The log contents are now folded into the checkpoint.
        let _ = self.wal.take_pending();
        self.preapplied = 0;
        self.wal.append(
            &mut self.disk,
            LogRecord::CheckpointMarker {
                sequence: self.sequence,
            },
        );
        self.prev_meta = Some(meta_extent);
        self.stats.checkpoints += 1;
        self.span("wal", "checkpoint", start);
    }

    /// Restores a store from the most recent on-disk snapshot plus any log
    /// records appended after it.  This is what "bootup" means in HiStar —
    /// there are no boot scripts, the entire system state simply reappears.
    pub fn recover(config: StoreConfig, disk: SimDisk) -> Result<SingleLevelStore, StoreError> {
        SingleLevelStore::recover_traced(config, disk, Recorder::disabled())
    }

    /// [`SingleLevelStore::recover`] with per-phase flight recording: each
    /// recovery phase (superblock read, data-region preload, B+-tree
    /// rebuild, WAL replay) emits a `recover` span into `recorder`, and
    /// the recorder stays installed on the recovered store.
    pub fn recover_traced(
        config: StoreConfig,
        mut disk: SimDisk,
        recorder: Recorder,
    ) -> Result<SingleLevelStore, StoreError> {
        // Cap on the preload read: a data region bigger than this is
        // cheaper to fault in on demand than to stream in full.
        const PRELOAD_MAX: u64 = 1024 * 1024;
        let phase = |recorder: &Recorder, name: &'static str, start: u64, end: u64| {
            recorder.record(Span {
                cat: "recover",
                name,
                start,
                end,
                tid: 0,
                seq: 0,
            });
        };
        let t0 = disk.clock().now().as_nanos();
        let raw_sb = disk.read(0, config.superblock_len.min(4096));
        let (sb_payload, _) =
            unframe(&raw_sb).map_err(|_| StoreError::Corrupt("superblock frame"))?;
        let mut d = Decoder::new(&sb_payload);
        let magic = d.get_u64().map_err(|_| StoreError::Corrupt("superblock"))?;
        if magic != SUPERBLOCK_MAGIC {
            return Err(StoreError::Corrupt("superblock magic"));
        }
        let sequence = d.get_u64().map_err(|_| StoreError::Corrupt("superblock"))?;
        let meta_off = d.get_u64().map_err(|_| StoreError::Corrupt("superblock"))?;
        let meta_len = d.get_u64().map_err(|_| StoreError::Corrupt("superblock"))?;
        let meta_alloc_len = d.get_u64().map_err(|_| StoreError::Corrupt("superblock"))?;
        // High-water mark (absent in superblocks written before it existed:
        // 0 disables the preload).
        let high_water = d.get_u64().unwrap_or(0);
        let t1 = disk.clock().now().as_nanos();
        phase(&recorder, "superblock", t0, t1);

        // Preload: one sequential read covering every live extent, instead
        // of one random read per object later.  The checkpoint metadata is
        // usually inside the span, so it costs no extra I/O either.
        let data_start = config.superblock_len + config.log_region_len;
        let preload: Option<(u64, Vec<u8>)> = if config.replay_mode == ReplayMode::Batched
            && high_water > data_start
            && high_water <= config.disk.capacity
            && high_water - data_start <= PRELOAD_MAX
        {
            Some((data_start, disk.read(data_start, high_water - data_start)))
        } else {
            None
        };
        let t2 = disk.clock().now().as_nanos();
        if preload.is_some() {
            phase(&recorder, "preload", t1, t2);
        }

        let raw_meta: Vec<u8> = match &preload {
            Some((base, buf))
                if meta_off >= *base && meta_off + meta_len <= base + buf.len() as u64 =>
            {
                buf[(meta_off - base) as usize..(meta_off - base + meta_len) as usize].to_vec()
            }
            _ => disk.read(meta_off, meta_len),
        };
        let (meta_payload, _) =
            unframe(&raw_meta).map_err(|_| StoreError::Corrupt("checkpoint metadata"))?;
        let mut d = Decoder::new(&meta_payload);
        let loc_bytes = d
            .get_bytes()
            .map_err(|_| StoreError::Corrupt("object map"))?;
        let extent_len_bytes = d
            .get_bytes()
            .map_err(|_| StoreError::Corrupt("object extent lengths"))?;
        let body_len_bytes = d
            .get_bytes()
            .map_err(|_| StoreError::Corrupt("object body lengths"))?;
        let free_bytes = d
            .get_bytes()
            .map_err(|_| StoreError::Corrupt("free list"))?;

        let (object_loc, object_extent_len, object_body_len) = match config.replay_mode {
            ReplayMode::Batched => (
                BPlusTree::deserialize(&loc_bytes),
                BPlusTree::deserialize(&extent_len_bytes),
                BPlusTree::deserialize(&body_len_bytes),
            ),
            ReplayMode::RecordByRecord => (
                BPlusTree::deserialize_point_inserts(&loc_bytes),
                BPlusTree::deserialize_point_inserts(&extent_len_bytes),
                BPlusTree::deserialize_point_inserts(&body_len_bytes),
            ),
        };
        let mut d = Decoder::new(&free_bytes);
        let n = d.get_u64().map_err(|_| StoreError::Corrupt("free list"))? as usize;
        let mut free = Vec::with_capacity(n);
        for _ in 0..n {
            let off = d.get_u64().map_err(|_| StoreError::Corrupt("free list"))?;
            let len = d.get_u64().map_err(|_| StoreError::Corrupt("free list"))?;
            free.push(Extent::new(off, len));
        }
        let alloc = ExtentAllocator::from_free_list(config.disk.capacity, &free);
        let t3 = disk.clock().now().as_nanos();
        phase(&recorder, "btree_rebuild", t2, t3);

        let wal = WriteAheadLog::new(config.superblock_len, config.log_region_len);
        let mut store = SingleLevelStore {
            config,
            wal,
            alloc,
            object_loc,
            object_extent_len,
            object_body_len,
            cache: BTreeMap::new(),
            dirty: BTreeSet::new(),
            deleted: BTreeSet::new(),
            prev_meta: Some(Extent::new(meta_off, meta_alloc_len)),
            sequence,
            staged: None,
            preapplied: 0,
            stats: StoreStats::default(),
            recorder,
            disk,
        };

        // Populate the cache from the preload buffer (pure memory work —
        // zero simulated time).  Entries are inserted CLEAN; the log
        // replay below overwrites any of them that moved on since the
        // checkpoint, so a pre-applied home record never shadows a newer
        // logged version.
        if let Some((base, buf)) = preload {
            for (id, off) in store.object_loc.iter() {
                let Some(body_len) = store.object_body_len.get(id) else {
                    continue;
                };
                if off < base {
                    continue;
                }
                let lo = (off - base) as usize;
                let Some(hi) = lo.checked_add((RECORD_HEADER + body_len) as usize) else {
                    continue;
                };
                if hi > buf.len() {
                    continue;
                }
                let mut d = Decoder::new(&buf[lo..hi]);
                let Ok(stored_id) = d.get_u64() else { continue };
                if stored_id != id {
                    continue;
                }
                let Ok(body) = d.get_bytes() else { continue };
                store.cache.insert(id, body);
                store.stats.objects_preloaded += 1;
            }
        }

        // Replay any log records appended after the checkpoint marker for
        // this sequence number (records before it are already reflected in
        // the checkpoint).  The log is then RESUMED, not truncated: the
        // surviving frames stay where they are and new appends continue
        // after them, so a mount performs no log writes and a second crash
        // replays the same prefix again.
        let (records, consumed) = match config.replay_mode {
            ReplayMode::Batched => store.wal.recover(&mut store.disk),
            ReplayMode::RecordByRecord => {
                let region = store.wal.region_len();
                store.wal.recover_chunked(&mut store.disk, region)
            }
        };
        let mut after_marker = Vec::new();
        for rec in records {
            match rec {
                LogRecord::CheckpointMarker { sequence: s } if s == sequence => {
                    after_marker.clear();
                }
                other => after_marker.push(other),
            }
        }
        match config.replay_mode {
            ReplayMode::Batched => {
                // Fold to one operation per object.  A DeleteObject's home
                // drop must still happen even when a later put supersedes
                // it — the per-record path frees the extent eagerly, and
                // the allocator state must come out identical.
                let mut fold: BTreeMap<u64, (Option<&Vec<u8>>, bool)> = BTreeMap::new();
                for rec in &after_marker {
                    match rec {
                        LogRecord::PutObject(id, data) => {
                            fold.entry(*id).or_insert((None, false)).0 = Some(data);
                        }
                        LogRecord::DeleteObject(id) => {
                            let slot = fold.entry(*id).or_insert((None, false));
                            slot.0 = None;
                            slot.1 = true;
                        }
                        LogRecord::CheckpointMarker { .. } => {}
                    }
                }
                let folded: Vec<(u64, Option<Vec<u8>>, bool)> = fold
                    .into_iter()
                    .map(|(id, (latest, saw_delete))| (id, latest.cloned(), saw_delete))
                    .collect();
                for (id, latest, saw_delete) in folded {
                    if saw_delete {
                        store.drop_home(id);
                    }
                    match latest {
                        Some(data) => {
                            store.deleted.remove(&id);
                            store.cache.insert(id, data);
                            store.dirty.insert(id);
                        }
                        None => {
                            store.cache.remove(&id);
                            store.deleted.insert(id);
                        }
                    }
                }
            }
            ReplayMode::RecordByRecord => {
                for rec in &after_marker {
                    match rec {
                        LogRecord::PutObject(id, data) => {
                            store.deleted.remove(id);
                            store.cache.insert(*id, data.clone());
                            store.dirty.insert(*id);
                        }
                        LogRecord::DeleteObject(id) => {
                            store.cache.remove(id);
                            store.deleted.insert(*id);
                            store.drop_home(*id);
                        }
                        LogRecord::CheckpointMarker { .. } => {}
                    }
                }
            }
        }
        store.wal.resume(consumed, after_marker);
        store.span("recover", "wal_replay", t3);
        Ok(store)
    }

    /// Consumes the store, returning its disk (for crash/recovery testing).
    pub fn into_disk(self) -> SimDisk {
        self.disk
    }

    /// All object IDs currently known to the store (cached or on disk).
    pub fn object_ids(&self) -> Vec<u64> {
        let mut ids: BTreeSet<u64> = self.cache.keys().copied().collect();
        for (id, _) in self.object_loc.iter() {
            ids.insert(id);
        }
        for id in &self.deleted {
            ids.remove(id);
        }
        ids.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(policy: SyncPolicy) -> SingleLevelStore {
        let config = StoreConfig {
            sync_policy: policy,
            ..StoreConfig::default()
        };
        SingleLevelStore::format(config, SimClock::new())
    }

    #[test]
    fn put_get_delete() {
        let mut s = store(SyncPolicy::Async);
        s.put(1, vec![1, 2, 3]);
        s.put(2, vec![4; 10_000]);
        assert_eq!(s.get(1).unwrap(), vec![1, 2, 3]);
        assert_eq!(s.get(2).unwrap().len(), 10_000);
        assert!(s.contains(1));
        s.delete(1);
        assert!(!s.contains(1));
        assert_eq!(s.get(1), Err(StoreError::NoSuchObject(1)));
    }

    #[test]
    fn checkpoint_and_recover_round_trip() {
        let config = StoreConfig::default();
        let mut s = SingleLevelStore::format(config, SimClock::new());
        for i in 0..200u64 {
            s.put(i, vec![i as u8; (i as usize % 700) + 1]);
        }
        s.delete(3);
        s.checkpoint();
        let disk = s.into_disk();
        let mut r = SingleLevelStore::recover(config, disk).unwrap();
        assert_eq!(r.sequence(), 1);
        for i in 0..200u64 {
            if i == 3 {
                assert!(!r.contains(i));
            } else {
                assert_eq!(r.get(i).unwrap(), vec![i as u8; (i as usize % 700) + 1]);
            }
        }
    }

    #[test]
    fn unsynced_updates_are_lost_on_crash() {
        let config = StoreConfig::default();
        let mut s = SingleLevelStore::format(config, SimClock::new());
        s.put(1, vec![1]);
        s.checkpoint();
        s.put(2, vec![2]); // never synced
        let disk = s.into_disk();
        let mut r = SingleLevelStore::recover(config, disk).unwrap();
        assert!(r.contains(1));
        assert!(!r.contains(2), "unsynced object must not survive the crash");
        assert_eq!(r.get(1).unwrap(), vec![1]);
    }

    #[test]
    fn per_operation_sync_survives_crash_via_log() {
        let config = StoreConfig {
            sync_policy: SyncPolicy::PerOperation,
            ..StoreConfig::default()
        };
        let mut s = SingleLevelStore::format(config, SimClock::new());
        s.checkpoint();
        for i in 0..50u64 {
            s.put(i, vec![i as u8; 100]);
        }
        // No checkpoint after the puts; the log alone must carry them.
        let disk = s.into_disk();
        let mut r = SingleLevelStore::recover(config, disk).unwrap();
        for i in 0..50u64 {
            assert_eq!(r.get(i).unwrap(), vec![i as u8; 100], "object {i}");
        }
    }

    #[test]
    fn synced_updates_survive_two_crashes() {
        // Regression: recovery resets the log head, so records replayed
        // from the log must be folded into a checkpoint before new
        // appends reuse the region — otherwise a second crash loses
        // updates that were durably synced before the first.
        let config = StoreConfig::default();
        let mut s = SingleLevelStore::format(config, SimClock::new());
        s.checkpoint();
        s.put(1, vec![0xa1; 64]);
        s.sync_object(1);
        let mut r1 = SingleLevelStore::recover(config, s.into_disk()).unwrap();
        assert_eq!(r1.get(1).unwrap(), vec![0xa1; 64]);
        // New synced work after the first recovery reuses the log region.
        r1.put(2, vec![0xb2; 64]);
        r1.sync_object(2);
        let mut r2 = SingleLevelStore::recover(config, r1.into_disk()).unwrap();
        assert_eq!(r2.get(1).unwrap(), vec![0xa1; 64], "first-life sync");
        assert_eq!(r2.get(2).unwrap(), vec![0xb2; 64], "second-life sync");
        r2.check_invariants().unwrap();
    }

    #[test]
    fn sync_delete_makes_removal_durable() {
        let config = StoreConfig::default();
        let mut s = SingleLevelStore::format(config, SimClock::new());
        s.put(9, vec![1, 2, 3]);
        s.checkpoint();
        s.delete(9);
        s.sync_delete(9);
        let mut r = SingleLevelStore::recover(config, s.into_disk()).unwrap();
        assert!(!r.contains(9), "durably deleted object must not return");
        assert_eq!(r.get(9), Err(StoreError::NoSuchObject(9)));
    }

    #[test]
    fn keys_in_range_unions_cache_and_disk_minus_deletions() {
        let mut s = store(SyncPolicy::Async);
        s.put(10, vec![1]);
        s.put(20, vec![2]);
        s.checkpoint();
        s.put(15, vec![3]); // cache only
        s.delete(20); // deleted after checkpoint
        assert_eq!(s.keys_in_range(0, 100), vec![10, 15]);
        assert_eq!(s.keys_in_range(11, 16), vec![15]);
        assert_eq!(s.keys_in_range(16, 100), Vec::<u64>::new());
        // Inverted and empty ranges are harmless.
        assert_eq!(s.keys_in_range(50, 10), Vec::<u64>::new());
        assert_eq!(s.keys_in_range(10, 10), Vec::<u64>::new());
    }

    #[test]
    fn log_application_batches() {
        let config = StoreConfig {
            sync_policy: SyncPolicy::PerOperation,
            apply_batch: 10,
            ..StoreConfig::default()
        };
        let mut s = SingleLevelStore::format(config, SimClock::new());
        for i in 0..35u64 {
            s.put(i, vec![0u8; 64]);
        }
        assert!(
            s.stats().log_applications >= 3,
            "expected ~3 applications, got {}",
            s.stats().log_applications
        );
    }

    #[test]
    fn group_sync_writes_nothing_until_checkpoint() {
        let mut s = store(SyncPolicy::GroupSync);
        for i in 0..100u64 {
            s.put(i, vec![7u8; 1024]);
        }
        assert_eq!(s.disk().stats().writes, 0, "group sync defers all writes");
        s.checkpoint();
        assert!(s.disk().stats().writes > 0);
        assert_eq!(s.stats().checkpoints, 1);
    }

    #[test]
    fn eviction_and_reread() {
        let mut s = store(SyncPolicy::Async);
        s.put(42, vec![9u8; 5000]);
        s.checkpoint();
        s.evict_clean();
        assert_eq!(s.cached_objects(), 0);
        assert_eq!(s.get(42).unwrap(), vec![9u8; 5000]);
        assert_eq!(s.stats().objects_read, 1);
    }

    #[test]
    fn in_place_page_sync() {
        let mut s = store(SyncPolicy::Async);
        let big = vec![1u8; 1024 * 1024];
        s.put(7, big.clone());
        s.checkpoint();

        // Modify two pages and flush them in place.
        let mut modified = big;
        modified[0] = 0xaa;
        modified[5000] = 0xbb;
        s.put(7, modified.clone());
        let writes_before = s.disk().stats().writes;
        assert_eq!(s.sync_pages_in_place(7, &[0, 1]).unwrap(), 2);
        assert!(s.disk().stats().writes > writes_before);
        assert_eq!(s.stats().inplace_flushes, 1);

        // After eviction the flushed pages are visible from disk.
        s.evict_clean();
        let read_back = s.get(7).unwrap();
        assert_eq!(read_back[0], 0xaa);
        assert_eq!(read_back[5000], 0xbb);

        // An object with no home location is rejected.
        s.put(8, vec![0u8; 10]);
        assert!(s.sync_pages_in_place(8, &[0]).is_err());

        // A resized object is rejected.
        s.put(7, vec![2u8; 100]);
        assert!(matches!(
            s.sync_pages_in_place(7, &[0]),
            Err(StoreError::InvalidOperation(_))
        ));
    }

    #[test]
    fn recover_rejects_unformatted_disk() {
        let disk = SimDisk::new(DiskConfig::default(), SimClock::new());
        assert!(matches!(
            SingleLevelStore::recover(StoreConfig::default(), disk),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn object_ids_lists_everything() {
        let mut s = store(SyncPolicy::Async);
        s.put(5, vec![1]);
        s.put(9, vec![2]);
        s.checkpoint();
        s.put(11, vec![3]);
        s.delete(9);
        assert_eq!(s.object_ids(), vec![5, 11]);
    }

    #[test]
    fn multiple_checkpoints_advance_sequence() {
        let mut s = store(SyncPolicy::Async);
        s.put(1, vec![1]);
        s.checkpoint();
        s.put(2, vec![2]);
        s.checkpoint();
        assert_eq!(s.sequence(), 2);
        let disk = s.into_disk();
        let mut r = SingleLevelStore::recover(StoreConfig::default(), disk).unwrap();
        assert_eq!(r.sequence(), 2);
        assert!(r.get(1).is_ok());
        assert!(r.get(2).is_ok());
    }

    #[test]
    fn growing_object_moves_to_new_extent() {
        let mut s = store(SyncPolicy::Async);
        s.put(1, vec![1u8; 100]);
        s.checkpoint();
        let small_extent = s.object_extent_len.get(1).unwrap();
        assert!(small_extent < 100_016);
        s.put(1, vec![2u8; 100_000]);
        s.checkpoint();
        let big_loc = s.object_loc.get(1).unwrap();
        assert!(
            s.object_extent_len.get(1).unwrap() >= 100_016,
            "grown object needs a larger extent"
        );
        s.evict_clean();
        assert_eq!(s.get(1).unwrap(), vec![2u8; 100_000]);
        // Shrinking keeps it in place (the extent is large enough).
        s.put(1, vec![3u8; 50]);
        s.checkpoint();
        assert_eq!(s.object_loc.get(1).unwrap(), big_loc);
        s.evict_clean();
        assert_eq!(s.get(1).unwrap(), vec![3u8; 50]);
    }

    #[test]
    fn delete_then_recreate_after_recovery() {
        let config = StoreConfig {
            sync_policy: SyncPolicy::PerOperation,
            ..StoreConfig::default()
        };
        let mut s = SingleLevelStore::format(config, SimClock::new());
        s.put(1, vec![1]);
        s.checkpoint();
        s.delete(1);
        s.put(1, vec![2]);
        let disk = s.into_disk();
        let mut r = SingleLevelStore::recover(config, disk).unwrap();
        assert_eq!(r.get(1).unwrap(), vec![2]);
    }
}
