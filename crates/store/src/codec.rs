//! Minimal binary encoding helpers for on-disk records.
//!
//! All on-disk structures in the store (log records, the object map, the
//! checkpoint superblock) are encoded with this little-endian, length-
//! prefixed format.  It is deliberately tiny: fixed-width integers, byte
//! strings, and checksummed frames.

/// Writer for the on-disk encoding.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Finishes encoding, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Errors produced while decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the expected field.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input.
    BadLength,
    /// A checksum did not match.
    BadChecksum,
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadLength => write!(f, "length prefix exceeds input"),
            DecodeError::BadChecksum => write!(f, "checksum mismatch"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Reader for the on-disk encoding.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.get_u64()? as usize;
        if len > self.remaining() {
            return Err(DecodeError::BadLength);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| DecodeError::BadUtf8)
    }
}

/// A simple 64-bit FNV-1a checksum used to detect torn or corrupt records.
pub fn checksum(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Wraps a payload in a checksummed frame: `len || payload || checksum`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_bytes(payload);
    e.put_u64(checksum(payload));
    e.finish()
}

/// Unwraps a frame produced by [`frame`], verifying its checksum.  Returns
/// the payload and the number of bytes consumed.
pub fn unframe(data: &[u8]) -> Result<(Vec<u8>, usize), DecodeError> {
    let mut d = Decoder::new(data);
    let payload = d.get_bytes()?;
    let sum = d.get_u64()?;
    if checksum(&payload) != sum {
        return Err(DecodeError::BadChecksum);
    }
    Ok((payload, d.pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(7)
            .put_u32(0xdead_beef)
            .put_u64(u64::MAX)
            .put_str("hello");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_str().unwrap(), "hello");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn decode_errors() {
        let mut d = Decoder::new(&[1, 2]);
        assert_eq!(d.get_u32(), Err(DecodeError::UnexpectedEnd));
        // A length prefix longer than the buffer is rejected.
        let mut e = Encoder::new();
        e.put_u64(1_000_000);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_bytes(), Err(DecodeError::BadLength));
    }

    #[test]
    fn frame_round_trip_and_corruption_detection() {
        let payload = b"the quick brown fox".to_vec();
        let framed = frame(&payload);
        let (out, consumed) = unframe(&framed).unwrap();
        assert_eq!(out, payload);
        assert_eq!(consumed, framed.len());

        let mut corrupted = framed.clone();
        let idx = corrupted.len() / 2;
        corrupted[idx] ^= 0xff;
        assert!(matches!(
            unframe(&corrupted),
            Err(DecodeError::BadChecksum)
                | Err(DecodeError::BadLength)
                | Err(DecodeError::UnexpectedEnd)
        ));
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn bad_utf8_is_reported() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str(), Err(DecodeError::BadUtf8));
    }
}
