//! Write-ahead logging.
//!
//! "Write-ahead logging ensures atomicity and crash-consistency" (§4), and
//! §7.1 explains how it makes synchronous operations affordable: a
//! synchronous update appends a record to a sequential on-disk log, and the
//! log is *applied* to the object map in batches (about once every 1,000
//! synchronous operations in the LFS benchmark).  The log therefore turns
//! random synchronous writes into sequential appends.
//!
//! The log lives in a reserved region at the start of the simulated disk.
//! The unit of disk I/O is a *frame*: one checksummed blob holding one or
//! more records.  Group commit (§5's "group sync") coalesces concurrent
//! synchronous updates into a single multi-record frame, so N syncs cost
//! one disk write and one flush; a frame is all-or-nothing on recovery,
//! which is exactly the ack boundary — no record in a frame is
//! acknowledged until the whole frame is durable.  Recovery replays every
//! valid frame up to the first corrupt/torn one, reading the region in
//! large chunks rather than record-by-record.

use crate::codec::{frame, unframe, Decoder, Encoder};
use histar_obs::{Histogram, BATCH_SIZE_EDGES};
use histar_sim::disk::SimDisk;

/// Chunk size for reading the log region at recovery: big enough that a
/// short log costs one or two reads, small enough that recovery of a
/// short log never pays for the whole region.
pub const RECOVER_CHUNK: u64 = 64 * 1024;

/// One logical update captured in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// An object was written or updated: `(object id, serialized bytes)`.
    PutObject(u64, Vec<u8>),
    /// An object was deleted.
    DeleteObject(u64),
    /// A full checkpoint completed; records before this point are obsolete.
    CheckpointMarker {
        /// Sequence number of the checkpoint.
        sequence: u64,
    },
}

impl LogRecord {
    /// Appends this record's self-delimiting encoding to `e`, so several
    /// records can share one frame.
    fn encode_into(&self, e: &mut Encoder) {
        match self {
            LogRecord::PutObject(id, data) => {
                e.put_u8(1).put_u64(*id).put_bytes(data);
            }
            LogRecord::DeleteObject(id) => {
                e.put_u8(2).put_u64(*id);
            }
            LogRecord::CheckpointMarker { sequence } => {
                e.put_u8(3).put_u64(*sequence);
            }
        }
    }

    /// Decodes one record from the front of `d`, consuming exactly its
    /// bytes.  Returns `None` on an unknown tag or truncated encoding.
    fn decode_from(d: &mut Decoder<'_>) -> Option<LogRecord> {
        match d.get_u8().ok()? {
            1 => Some(LogRecord::PutObject(d.get_u64().ok()?, d.get_bytes().ok()?)),
            2 => Some(LogRecord::DeleteObject(d.get_u64().ok()?)),
            3 => Some(LogRecord::CheckpointMarker {
                sequence: d.get_u64().ok()?,
            }),
            _ => None,
        }
    }

    /// Bytes this record occupies inside a frame payload.
    pub fn encoded_len(&self) -> u64 {
        match self {
            // tag + id + length-prefixed body
            LogRecord::PutObject(_, data) => 1 + 8 + 8 + data.len() as u64,
            LogRecord::DeleteObject(_) => 1 + 8,
            LogRecord::CheckpointMarker { .. } => 1 + 8,
        }
    }
}

/// Statistics about log activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalStats {
    /// Logical records appended since creation.
    pub appends: u64,
    /// Physical frames written since creation (each costs one disk write
    /// and one flush — the unit the cost model charges).
    pub frames: u64,
    /// Bytes appended since creation.
    pub bytes_appended: u64,
    /// Number of times the log has been applied (truncated).
    pub applications: u64,
    /// Frames that carried more than one record (group commits).
    pub group_commits: u64,
    /// Records that shared a frame with at least one other record.
    pub records_coalesced: u64,
    /// Records-per-frame distribution.
    pub flush_batch: Histogram<8>,
}

impl Default for WalStats {
    fn default() -> WalStats {
        WalStats {
            appends: 0,
            frames: 0,
            bytes_appended: 0,
            applications: 0,
            group_commits: 0,
            records_coalesced: 0,
            flush_batch: Histogram::new(&BATCH_SIZE_EDGES),
        }
    }
}

impl histar_obs::MetricSource for WalStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("wal.appends", self.appends);
        set.counter("wal.frames", self.frames);
        set.counter("wal.bytes_appended", self.bytes_appended);
        set.counter("wal.applications", self.applications);
        set.counter("wal.group_commits", self.group_commits);
        set.counter("wal.records_coalesced", self.records_coalesced);
        set.histogram("wal.flush_batch", &self.flush_batch);
    }
}

/// A write-ahead log stored in a reserved region of the disk.
#[derive(Debug)]
pub struct WriteAheadLog {
    /// Byte offset of the log region on disk.
    region_start: u64,
    /// Size of the log region in bytes.
    region_len: u64,
    /// Next append position, relative to `region_start`.
    head: u64,
    /// Records appended since the last application (in-memory mirror used
    /// for applying without re-reading the disk).
    pending: Vec<LogRecord>,
    stats: WalStats,
}

impl WriteAheadLog {
    /// Creates an empty log occupying `[region_start, region_start + region_len)`.
    pub fn new(region_start: u64, region_len: u64) -> WriteAheadLog {
        WriteAheadLog {
            region_start,
            region_len,
            head: 0,
            pending: Vec::new(),
            stats: WalStats::default(),
        }
    }

    /// Size of the log region.
    pub fn region_len(&self) -> u64 {
        self.region_len
    }

    /// Bytes of log space currently used.
    pub fn used(&self) -> u64 {
        self.head
    }

    /// Number of records appended but not yet applied.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// The records appended but not yet applied, oldest first.
    pub fn pending(&self) -> &[LogRecord] {
        &self.pending
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Returns true if appending `approx_bytes` more would overflow the
    /// region (the caller should apply the log first).
    pub fn needs_application(&self, approx_bytes: u64) -> bool {
        self.head + approx_bytes + 64 > self.region_len
    }

    /// Appends a single record; see [`WriteAheadLog::append_frame`].
    pub fn append(&mut self, disk: &mut SimDisk, record: LogRecord) -> u64 {
        self.append_frame(disk, vec![record])
    }

    /// Appends a batch of records as ONE checksummed frame, synchronously
    /// writing it to disk.  The frame is all-or-nothing at recovery, so a
    /// group of coalesced syncs is either entirely durable or entirely
    /// lost — the caller must ack the group only after this returns.
    ///
    /// Returns the number of bytes written.
    ///
    /// # Panics
    ///
    /// Panics if the frame does not fit in the log region; callers must
    /// check [`WriteAheadLog::needs_application`] first.
    pub fn append_frame(&mut self, disk: &mut SimDisk, records: Vec<LogRecord>) -> u64 {
        assert!(!records.is_empty(), "an empty frame is the log terminator");
        let mut e = Encoder::new();
        for record in &records {
            record.encode_into(&mut e);
        }
        let framed = frame(&e.finish());
        let len = framed.len() as u64;
        assert!(
            self.head + len <= self.region_len,
            "log region overflow; apply the log before appending"
        );
        disk.write(self.region_start + self.head, &framed);
        self.head += len;
        // Terminate the log with an empty frame so that recovery never
        // replays stale records left over from before the last truncation.
        let terminator = frame(&[]);
        if self.head + terminator.len() as u64 <= self.region_len {
            disk.write(self.region_start + self.head, &terminator);
        }
        let n = records.len() as u64;
        self.pending.extend(records);
        self.stats.appends += n;
        self.stats.frames += 1;
        self.stats.bytes_appended += len;
        self.stats.flush_batch.record(n);
        if n > 1 {
            self.stats.group_commits += 1;
            self.stats.records_coalesced += n;
        }
        len
    }

    /// Takes every record appended since the last application and resets the
    /// log head.  The caller is responsible for durably applying the records
    /// (writing objects to their home locations) before the next crash point
    /// — in the simulator this ordering is enforced by the store.
    pub fn take_pending(&mut self) -> Vec<LogRecord> {
        self.head = 0;
        self.stats.applications += 1;
        std::mem::take(&mut self.pending)
    }

    /// Adopts the state a crash left behind: `used` bytes of valid log on
    /// disk and the records they decode to.  Recovery continues appending
    /// after the surviving frames instead of rewriting the region, so a
    /// mount performs no log writes at all.
    pub fn resume(&mut self, used: u64, pending: Vec<LogRecord>) {
        self.head = used;
        self.pending = pending;
    }

    /// Replays the log region from disk in [`RECOVER_CHUNK`]-sized reads,
    /// returning every record of every valid frame up to the first torn or
    /// corrupt frame, plus the byte offset where the valid prefix ends
    /// (pass it to [`WriteAheadLog::resume`]).  A torn multi-record frame
    /// contributes none of its records: the frame is the ack boundary.
    pub fn recover(&self, disk: &mut SimDisk) -> (Vec<LogRecord>, u64) {
        self.recover_chunked(disk, RECOVER_CHUNK)
    }

    /// [`WriteAheadLog::recover`] with an explicit chunk size; passing
    /// [`WriteAheadLog::region_len`] reads the whole region in one I/O
    /// (the legacy replay strategy).
    pub fn recover_chunked(&self, disk: &mut SimDisk, chunk: u64) -> (Vec<LogRecord>, u64) {
        let region = self.region_len as usize;
        let chunk = (chunk.max(4096) as usize).min(region.max(1));
        let mut buf: Vec<u8> = Vec::new();
        // Reads chunk-aligned, contiguous (hence seek-free after the
        // first) extents until `buf` covers `upto` bytes of the region.
        let fetch_to = |buf: &mut Vec<u8>, disk: &mut SimDisk, upto: usize| {
            while buf.len() < upto.min(region) {
                let len = chunk.min(region - buf.len());
                let chunk_bytes = disk.read(self.region_start + buf.len() as u64, len as u64);
                buf.extend_from_slice(&chunk_bytes);
            }
        };
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 16 <= region {
            // Peek the length prefix before unframing: a frame may span
            // many chunks, and `unframe` on a truncated buffer cannot
            // distinguish "need more bytes" from "torn".
            fetch_to(&mut buf, disk, pos + 8);
            let plen = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()) as usize;
            if plen > region || pos + 16 + plen > region {
                break;
            }
            fetch_to(&mut buf, disk, pos + 16 + plen);
            match unframe(&buf[pos..]) {
                Ok((payload, consumed)) => {
                    if payload.is_empty() {
                        break;
                    }
                    let mut d = Decoder::new(&payload);
                    let mut records = Vec::new();
                    let mut intact = true;
                    while d.remaining() > 0 {
                        match LogRecord::decode_from(&mut d) {
                            Some(rec) => records.push(rec),
                            None => {
                                intact = false;
                                break;
                            }
                        }
                    }
                    if !intact {
                        break;
                    }
                    out.extend(records);
                    pos += consumed;
                }
                Err(_) => break,
            }
        }
        (out, pos as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_sim::{DiskConfig, SimClock};

    fn disk() -> SimDisk {
        SimDisk::new(DiskConfig::default(), SimClock::new())
    }

    #[test]
    fn append_and_recover() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(4096, 1 << 20);
        wal.append(&mut d, LogRecord::PutObject(7, vec![1, 2, 3]));
        wal.append(&mut d, LogRecord::DeleteObject(9));
        wal.append(&mut d, LogRecord::CheckpointMarker { sequence: 4 });
        let (recovered, consumed) = wal.recover(&mut d);
        assert_eq!(
            recovered,
            vec![
                LogRecord::PutObject(7, vec![1, 2, 3]),
                LogRecord::DeleteObject(9),
                LogRecord::CheckpointMarker { sequence: 4 },
            ]
        );
        assert_eq!(consumed, wal.used());
        assert_eq!(wal.stats().appends, 3);
        assert_eq!(wal.stats().frames, 3);
        assert_eq!(wal.stats().group_commits, 0);
    }

    #[test]
    fn grouped_records_share_one_frame() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 1 << 20);
        let frames_before = d.stats().writes;
        wal.append_frame(
            &mut d,
            vec![
                LogRecord::PutObject(1, vec![0xaa; 64]),
                LogRecord::PutObject(2, vec![0xbb; 64]),
                LogRecord::DeleteObject(3),
            ],
        );
        // One frame write plus the terminator.
        assert_eq!(d.stats().writes - frames_before, 2);
        let (recovered, consumed) = wal.recover(&mut d);
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[2], LogRecord::DeleteObject(3));
        assert_eq!(consumed, wal.used());
        let stats = wal.stats();
        assert_eq!(stats.appends, 3);
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.group_commits, 1);
        assert_eq!(stats.records_coalesced, 3);
        assert_eq!(stats.flush_batch.total(), 1);
        assert_eq!(stats.flush_batch[stats.flush_batch.bucket_of(3)], 1);
    }

    #[test]
    fn recovery_stops_at_corruption() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 1 << 20);
        wal.append(&mut d, LogRecord::PutObject(1, vec![9; 100]));
        let first_len = wal.used();
        wal.append(&mut d, LogRecord::PutObject(2, vec![8; 100]));
        // Corrupt the second record on disk.
        d.write(first_len + 20, &[0xff, 0xee, 0xdd]);
        let (recovered, consumed) = wal.recover(&mut d);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0], LogRecord::PutObject(1, vec![9; 100]));
        assert_eq!(consumed, first_len);
    }

    #[test]
    fn torn_group_frame_loses_all_its_records() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 1 << 20);
        wal.append(&mut d, LogRecord::PutObject(1, vec![7; 32]));
        let first_len = wal.used();
        wal.append_frame(
            &mut d,
            vec![
                LogRecord::PutObject(2, vec![6; 32]),
                LogRecord::PutObject(3, vec![5; 32]),
            ],
        );
        // Tear the tail of the grouped frame: the whole group must vanish,
        // because neither record was acked before the shared frame landed.
        d.write(wal.used() - 4, &[0u8; 4]);
        let (recovered, consumed) = wal.recover(&mut d);
        assert_eq!(recovered, vec![LogRecord::PutObject(1, vec![7; 32])]);
        assert_eq!(consumed, first_len);
    }

    #[test]
    fn chunked_and_whole_region_recovery_agree() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 1 << 20);
        for i in 0..200u64 {
            wal.append(&mut d, LogRecord::PutObject(i, vec![i as u8; 700]));
        }
        let chunked = wal.recover_chunked(&mut d, 8192);
        let whole = wal.recover_chunked(&mut d, wal.region_len());
        assert_eq!(chunked, whole);
        assert_eq!(chunked.0.len(), 200);
    }

    #[test]
    fn take_pending_resets_head() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 4096);
        for i in 0..10u64 {
            wal.append(&mut d, LogRecord::DeleteObject(i));
        }
        assert_eq!(wal.pending_records(), 10);
        let pending = wal.take_pending();
        assert_eq!(pending.len(), 10);
        assert_eq!(wal.used(), 0);
        assert_eq!(wal.pending_records(), 0);
        assert_eq!(wal.stats().applications, 1);
    }

    #[test]
    fn resume_continues_after_surviving_frames() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 1 << 20);
        wal.append(&mut d, LogRecord::PutObject(1, vec![1; 50]));
        wal.append(&mut d, LogRecord::PutObject(2, vec![2; 50]));
        let (records, consumed) = wal.recover(&mut d);
        let mut resumed = WriteAheadLog::new(0, 1 << 20);
        resumed.resume(consumed, records);
        assert_eq!(resumed.used(), consumed);
        assert_eq!(resumed.pending_records(), 2);
        resumed.append(&mut d, LogRecord::PutObject(3, vec![3; 50]));
        let (after, _) = resumed.recover(&mut d);
        assert_eq!(after.len(), 3, "append lands after the surviving prefix");
    }

    #[test]
    fn needs_application_when_region_fills() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 2048);
        let payload = vec![0u8; 400];
        let mut appended = 0;
        while !wal.needs_application(450) {
            wal.append(&mut d, LogRecord::PutObject(appended, payload.clone()));
            appended += 1;
        }
        assert!(appended >= 3, "several records should fit");
        assert!(wal.needs_application(450));
    }

    #[test]
    #[should_panic(expected = "log region overflow")]
    fn overflowing_append_panics() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 128);
        wal.append(&mut d, LogRecord::PutObject(1, vec![0u8; 500]));
    }

    #[test]
    fn empty_region_recovers_nothing() {
        let mut d = disk();
        let wal = WriteAheadLog::new(0, 4096);
        let (records, consumed) = wal.recover(&mut d);
        assert!(records.is_empty());
        assert_eq!(consumed, 0);
    }
}
