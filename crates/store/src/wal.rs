//! Write-ahead logging.
//!
//! "Write-ahead logging ensures atomicity and crash-consistency" (§4), and
//! §7.1 explains how it makes synchronous operations affordable: a
//! synchronous update appends a record to a sequential on-disk log, and the
//! log is *applied* to the object map in batches (about once every 1,000
//! synchronous operations in the LFS benchmark).  The log therefore turns
//! random synchronous writes into sequential appends.
//!
//! The log lives in a reserved region at the start of the simulated disk.
//! Each record is a checksummed frame; recovery replays every valid frame
//! up to the first corrupt/torn record.

use crate::codec::{frame, unframe, Decoder, Encoder};
use histar_sim::disk::SimDisk;

/// One logical update captured in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// An object was written or updated: `(object id, serialized bytes)`.
    PutObject(u64, Vec<u8>),
    /// An object was deleted.
    DeleteObject(u64),
    /// A full checkpoint completed; records before this point are obsolete.
    CheckpointMarker {
        /// Sequence number of the checkpoint.
        sequence: u64,
    },
}

impl LogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            LogRecord::PutObject(id, data) => {
                e.put_u8(1).put_u64(*id).put_bytes(data);
            }
            LogRecord::DeleteObject(id) => {
                e.put_u8(2).put_u64(*id);
            }
            LogRecord::CheckpointMarker { sequence } => {
                e.put_u8(3).put_u64(*sequence);
            }
        }
        e.finish()
    }

    fn decode(data: &[u8]) -> Option<LogRecord> {
        let mut d = Decoder::new(data);
        match d.get_u8().ok()? {
            1 => Some(LogRecord::PutObject(d.get_u64().ok()?, d.get_bytes().ok()?)),
            2 => Some(LogRecord::DeleteObject(d.get_u64().ok()?)),
            3 => Some(LogRecord::CheckpointMarker {
                sequence: d.get_u64().ok()?,
            }),
            _ => None,
        }
    }
}

/// Statistics about log activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since creation.
    pub appends: u64,
    /// Bytes appended since creation.
    pub bytes_appended: u64,
    /// Number of times the log has been applied (truncated).
    pub applications: u64,
}

impl histar_obs::MetricSource for WalStats {
    fn export(&self, set: &mut histar_obs::MetricSet) {
        set.counter("wal.appends", self.appends);
        set.counter("wal.bytes_appended", self.bytes_appended);
        set.counter("wal.applications", self.applications);
    }
}

/// A write-ahead log stored in a reserved region of the disk.
#[derive(Debug)]
pub struct WriteAheadLog {
    /// Byte offset of the log region on disk.
    region_start: u64,
    /// Size of the log region in bytes.
    region_len: u64,
    /// Next append position, relative to `region_start`.
    head: u64,
    /// Records appended since the last application (in-memory mirror used
    /// for applying without re-reading the disk).
    pending: Vec<LogRecord>,
    stats: WalStats,
}

impl WriteAheadLog {
    /// Creates an empty log occupying `[region_start, region_start + region_len)`.
    pub fn new(region_start: u64, region_len: u64) -> WriteAheadLog {
        WriteAheadLog {
            region_start,
            region_len,
            head: 0,
            pending: Vec::new(),
            stats: WalStats::default(),
        }
    }

    /// Size of the log region.
    pub fn region_len(&self) -> u64 {
        self.region_len
    }

    /// Bytes of log space currently used.
    pub fn used(&self) -> u64 {
        self.head
    }

    /// Number of records appended but not yet applied.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Returns true if appending `approx_bytes` more would overflow the
    /// region (the caller should apply the log first).
    pub fn needs_application(&self, approx_bytes: u64) -> bool {
        self.head + approx_bytes + 64 > self.region_len
    }

    /// Appends a record to the log, synchronously writing it to disk.
    ///
    /// Returns the number of bytes written.
    ///
    /// # Panics
    ///
    /// Panics if the record does not fit in the log region; callers must
    /// check [`WriteAheadLog::needs_application`] first.
    pub fn append(&mut self, disk: &mut SimDisk, record: LogRecord) -> u64 {
        let framed = frame(&record.encode());
        let len = framed.len() as u64;
        assert!(
            self.head + len <= self.region_len,
            "log region overflow; apply the log before appending"
        );
        disk.write(self.region_start + self.head, &framed);
        self.head += len;
        // Terminate the log with a zero frame so that recovery never
        // replays stale records left over from before the last truncation.
        if self.head + 8 <= self.region_len {
            disk.write(self.region_start + self.head, &[0u8; 8]);
        }
        self.pending.push(record);
        self.stats.appends += 1;
        self.stats.bytes_appended += len;
        len
    }

    /// Takes every record appended since the last application and resets the
    /// log head.  The caller is responsible for durably applying the records
    /// (writing objects to their home locations) before the next crash point
    /// — in the simulator this ordering is enforced by the store.
    pub fn take_pending(&mut self) -> Vec<LogRecord> {
        self.head = 0;
        self.stats.applications += 1;
        std::mem::take(&mut self.pending)
    }

    /// Replays the log region from disk, returning every valid record up to
    /// the first torn or corrupt frame.  Used at recovery time.
    pub fn recover(&self, disk: &mut SimDisk) -> Vec<LogRecord> {
        let raw = disk.read(self.region_start, self.region_len);
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 16 <= raw.len() {
            match unframe(&raw[pos..]) {
                Ok((payload, consumed)) => {
                    if payload.is_empty() {
                        break;
                    }
                    match LogRecord::decode(&payload) {
                        Some(rec) => out.push(rec),
                        None => break,
                    }
                    pos += consumed;
                }
                Err(_) => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_sim::{DiskConfig, SimClock};

    fn disk() -> SimDisk {
        SimDisk::new(DiskConfig::default(), SimClock::new())
    }

    #[test]
    fn append_and_recover() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(4096, 1 << 20);
        wal.append(&mut d, LogRecord::PutObject(7, vec![1, 2, 3]));
        wal.append(&mut d, LogRecord::DeleteObject(9));
        wal.append(&mut d, LogRecord::CheckpointMarker { sequence: 4 });
        let recovered = wal.recover(&mut d);
        assert_eq!(
            recovered,
            vec![
                LogRecord::PutObject(7, vec![1, 2, 3]),
                LogRecord::DeleteObject(9),
                LogRecord::CheckpointMarker { sequence: 4 },
            ]
        );
        assert_eq!(wal.stats().appends, 3);
    }

    #[test]
    fn recovery_stops_at_corruption() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 1 << 20);
        wal.append(&mut d, LogRecord::PutObject(1, vec![9; 100]));
        let first_len = wal.used();
        wal.append(&mut d, LogRecord::PutObject(2, vec![8; 100]));
        // Corrupt the second record on disk.
        d.write(first_len + 20, &[0xff, 0xee, 0xdd]);
        let recovered = wal.recover(&mut d);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0], LogRecord::PutObject(1, vec![9; 100]));
    }

    #[test]
    fn take_pending_resets_head() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 4096);
        for i in 0..10u64 {
            wal.append(&mut d, LogRecord::DeleteObject(i));
        }
        assert_eq!(wal.pending_records(), 10);
        let pending = wal.take_pending();
        assert_eq!(pending.len(), 10);
        assert_eq!(wal.used(), 0);
        assert_eq!(wal.pending_records(), 0);
        assert_eq!(wal.stats().applications, 1);
    }

    #[test]
    fn needs_application_when_region_fills() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 2048);
        let payload = vec![0u8; 400];
        let mut appended = 0;
        while !wal.needs_application(450) {
            wal.append(&mut d, LogRecord::PutObject(appended, payload.clone()));
            appended += 1;
        }
        assert!(appended >= 3, "several records should fit");
        assert!(wal.needs_application(450));
    }

    #[test]
    #[should_panic(expected = "log region overflow")]
    fn overflowing_append_panics() {
        let mut d = disk();
        let mut wal = WriteAheadLog::new(0, 128);
        wal.append(&mut d, LogRecord::PutObject(1, vec![0u8; 500]));
    }

    #[test]
    fn empty_region_recovers_nothing() {
        let mut d = disk();
        let wal = WriteAheadLog::new(0, 4096);
        assert!(wal.recover(&mut d).is_empty());
    }
}
