//! The typed record namespace: store keys reserved for data that lives
//! *directly* in the single-level store, outside the kernel object heap.
//!
//! Kernel objects occupy the low 61 bits of the key space (their object
//! IDs) and the machine metadata blob sits at `1 << 62`.  Every key with
//! bit 63 set belongs to the **persist record namespace**: keyed records
//! owned by user-level subsystems (today, the `/persist` filesystem) that
//! the snapshot engine must neither decode as kernel objects nor sweep as
//! stale.  Within the namespace, bits 56..61 select a record *kind* and
//! the low 56 bits identify the record, laid out so that one directory's
//! entries (and one file's extents) are contiguous in key order — a
//! B+-tree range scan enumerates them without touching anything else.
//!
//! ```text
//! 63   62..61  60..56   55..24        23..0
//! [1]  [0 0]   [kind]   [owner id]    [slot / extent index]
//! ```
//!
//! Inode keys put the inode number in the *owner* position with a zero
//! slot, so `owner_range` covers an inode and nothing else when needed.

/// Bit marking a key as belonging to the persist record namespace.
pub const PERSIST_KEY_BASE: u64 = 1 << 63;

/// Number of low bits identifying a record within its kind.
const PAYLOAD_BITS: u32 = 56;

/// Bits of the payload identifying the owning object (directory inode for
/// dirents, file inode for extents).
const OWNER_BITS: u32 = 32;

/// Bits of the payload identifying the slot within the owner.
const SLOT_BITS: u32 = PAYLOAD_BITS - OWNER_BITS;

/// Maximum slot / extent index representable in a record key.
pub const MAX_SLOT: u64 = (1 << SLOT_BITS) - 1;

/// The kinds of typed records in the persist namespace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// Filesystem superblock: allocation counters and the root inode.
    Meta = 0,
    /// One inode: type, length and (in the kernel framing) its label.
    Inode = 1,
    /// One directory entry, keyed under its directory's inode.
    Dirent = 2,
    /// One fixed-size extent of file data, keyed under its file's inode.
    Extent = 3,
}

/// True if `key` lies in the persist record namespace (and therefore must
/// not be decoded as a kernel object or swept at snapshot time).
pub fn is_persist_key(key: u64) -> bool {
    key & PERSIST_KEY_BASE != 0
}

/// Composes a raw record key from a kind and a 56-bit payload.
pub fn record_key(kind: RecordKind, payload: u64) -> u64 {
    debug_assert!(payload < (1 << PAYLOAD_BITS), "payload exceeds 56 bits");
    PERSIST_KEY_BASE | ((kind as u64) << PAYLOAD_BITS) | payload
}

/// The half-open key range `[lo, hi)` covering every record of `kind`.
pub fn kind_range(kind: RecordKind) -> (u64, u64) {
    let lo = record_key(kind, 0);
    (lo, lo + (1 << PAYLOAD_BITS))
}

/// The filesystem superblock record.
pub const META_KEY: u64 = PERSIST_KEY_BASE; // record_key(Meta, 0)

/// The key of inode `ino`.
pub fn inode_key(ino: u32) -> u64 {
    record_key(RecordKind::Inode, (ino as u64) << SLOT_BITS)
}

/// The key of directory entry `slot` under directory inode `dir`.
pub fn dirent_key(dir: u32, slot: u64) -> u64 {
    debug_assert!(slot <= MAX_SLOT, "dirent slot exceeds 24 bits");
    record_key(RecordKind::Dirent, ((dir as u64) << SLOT_BITS) | slot)
}

/// The half-open key range covering every directory entry of `dir`.
pub fn dirent_range(dir: u32) -> (u64, u64) {
    let lo = dirent_key(dir, 0);
    (lo, lo + (1 << SLOT_BITS))
}

/// The key of extent `index` of file inode `ino`.
pub fn extent_key(ino: u32, index: u64) -> u64 {
    debug_assert!(index <= MAX_SLOT, "extent index exceeds 24 bits");
    record_key(RecordKind::Extent, ((ino as u64) << SLOT_BITS) | index)
}

/// The half-open key range covering every extent of file inode `ino`.
pub fn extent_range(ino: u32) -> (u64, u64) {
    let lo = extent_key(ino, 0);
    (lo, lo + (1 << SLOT_BITS))
}

/// The slot (dirent) or index (extent) encoded in a record key.
pub fn key_slot(key: u64) -> u64 {
    key & MAX_SLOT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_is_disjoint_from_object_ids_and_machine_meta() {
        assert!(!is_persist_key((1u64 << 61) - 1)); // max object ID
        assert!(!is_persist_key(1 << 62)); // machine metadata key
        assert!(is_persist_key(META_KEY));
        assert!(is_persist_key(inode_key(u32::MAX)));
        assert!(is_persist_key(extent_key(u32::MAX, MAX_SLOT)));
    }

    #[test]
    fn ranges_cover_exactly_their_owner() {
        let (lo, hi) = dirent_range(7);
        assert!(dirent_key(7, 0) >= lo && dirent_key(7, 0) < hi);
        assert!(dirent_key(7, MAX_SLOT) < hi);
        assert!(dirent_key(8, 0) >= hi);
        assert!(dirent_key(6, MAX_SLOT) < lo);

        let (lo, hi) = extent_range(3);
        assert!(extent_key(3, 0) >= lo && extent_key(3, MAX_SLOT) < hi);
        assert!(extent_key(4, 0) >= hi);
        // Dirents and extents of the same numeric owner never collide.
        let (dlo, dhi) = dirent_range(3);
        assert!(lo >= dhi || hi <= dlo);
    }

    #[test]
    fn kinds_partition_the_namespace() {
        let kinds = [
            RecordKind::Meta,
            RecordKind::Inode,
            RecordKind::Dirent,
            RecordKind::Extent,
        ];
        for w in kinds.windows(2) {
            let (_, hi_a) = kind_range(w[0]);
            let (lo_b, _) = kind_range(w[1]);
            assert_eq!(hi_a, lo_b, "kind ranges must tile the namespace");
        }
    }

    #[test]
    fn key_slot_round_trips() {
        assert_eq!(key_slot(dirent_key(9, 123)), 123);
        assert_eq!(key_slot(extent_key(2, MAX_SLOT)), MAX_SLOT);
    }
}
