//! A B+-tree with fixed-size keys and values.
//!
//! The paper notes that the on-disk structures use B+-trees whose keys and
//! values are fixed-size — object IDs and disk offsets — "which
//! significantly simplifies their implementation".  We follow the same
//! simplification: keys and values are `u64`.
//!
//! The tree supports insertion, point lookup, deletion, and ordered range
//! iteration.  Deletion removes entries in place without rebalancing
//! (underfull leaves are permitted and merged away when their parent next
//! splits or when the tree is rebuilt at checkpoint time); this keeps the
//! code small while preserving correctness of lookups and ordering, and it
//! mirrors the "delayed" maintenance the real implementation performs at
//! snapshot time.

/// Maximum number of keys in a node before it splits.
const ORDER: usize = 64;

/// A B+-tree mapping `u64` keys to `u64` values.
#[derive(Clone, Debug)]
pub struct BPlusTree {
    root: Node,
    len: usize,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        values: Vec<u64>,
    },
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i + 1]`.
        keys: Vec<u64>,
        children: Vec<Node>,
    },
}

impl Default for BPlusTree {
    fn default() -> Self {
        BPlusTree::new()
    }
}

impl BPlusTree {
    /// Creates an empty tree.
    pub fn new() -> BPlusTree {
        BPlusTree {
            root: Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of entries in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the value for `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return keys.binary_search(&key).ok().map(|i| values[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(&key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
            }
        }
    }

    /// Returns true if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts a key/value pair, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let (old, split) = Self::insert_rec(&mut self.root, key, value);
        if let Some((sep, right)) = split {
            let left = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    keys: Vec::new(),
                    values: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![left, right],
            };
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(node: &mut Node, key: u64, value: u64) -> (Option<u64>, Option<(u64, Node)>) {
        match node {
            Node::Leaf { keys, values } => {
                let old = match keys.binary_search(&key) {
                    Ok(i) => {
                        let prev = values[i];
                        values[i] = value;
                        return (Some(prev), None);
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                        None
                    }
                };
                if keys.len() > ORDER {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_values = values.split_off(mid);
                    let sep = right_keys[0];
                    (
                        old,
                        Some((
                            sep,
                            Node::Leaf {
                                keys: right_keys,
                                values: right_values,
                            },
                        )),
                    )
                } else {
                    (old, None)
                }
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let (old, split) = Self::insert_rec(&mut children[idx], key, value);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > ORDER {
                        let mid = keys.len() / 2;
                        let sep_up = keys[mid];
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // remove the separator promoted upward
                        let right_children = children.split_off(mid + 1);
                        return (
                            old,
                            Some((
                                sep_up,
                                Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                },
                            )),
                        );
                    }
                }
                (old, None)
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(node: &mut Node, key: u64) -> Option<u64> {
        match node {
            Node::Leaf { keys, values } => match keys.binary_search(&key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(values.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                Self::remove_rec(&mut children[idx], key)
            }
        }
    }

    /// Returns the smallest entry whose key is `>= key`, if any.
    pub fn lower_bound(&self, key: u64) -> Option<(u64, u64)> {
        Self::lower_bound_rec(&self.root, key)
    }

    fn lower_bound_rec(node: &Node, key: u64) -> Option<(u64, u64)> {
        match node {
            Node::Leaf { keys, values } => {
                let idx = keys.partition_point(|&k| k < key);
                if idx < keys.len() {
                    Some((keys[idx], values[idx]))
                } else {
                    None
                }
            }
            Node::Internal { keys, children } => {
                let start = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                // Deletions may leave the chosen subtree without a
                // qualifying key even though its right siblings have one,
                // so scan rightward until a match is found.
                for child in &children[start..] {
                    if let Some(found) = Self::lower_bound_rec(child, key) {
                        return Some(found);
                    }
                }
                None
            }
        }
    }

    /// Iterates over all `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        Self::collect(&self.root, &mut out);
        out
    }

    /// Iterates over all pairs with key in `[lo, hi)`, descending only
    /// into subtrees that can intersect the range (the readdir scan of the
    /// persistent filesystem rides on this, so it must not touch the whole
    /// tree).
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        Self::collect_range(&self.root, lo, hi, &mut out);
        out
    }

    fn collect_range(node: &Node, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        if lo >= hi {
            return;
        }
        match node {
            Node::Leaf { keys, values } => {
                let start = keys.partition_point(|&k| k < lo);
                let end = keys.partition_point(|&k| k < hi);
                out.extend(
                    keys[start..end]
                        .iter()
                        .copied()
                        .zip(values[start..end].iter().copied()),
                );
            }
            Node::Internal { keys, children } => {
                // Child i covers keys in [keys[i-1], keys[i]); the first
                // child whose upper bound exceeds `lo` is the first that
                // can intersect, and children whose lower bound reaches
                // `hi` are pruned.
                let first = keys.partition_point(|&k| k <= lo);
                for (i, child) in children.iter().enumerate().skip(first) {
                    if i > 0 && keys[i - 1] >= hi {
                        break;
                    }
                    Self::collect_range(child, lo, hi, out);
                }
            }
        }
    }

    fn collect(node: &Node, out: &mut Vec<(u64, u64)>) {
        match node {
            Node::Leaf { keys, values } => {
                out.extend(keys.iter().copied().zip(values.iter().copied()));
            }
            Node::Internal { children, .. } => {
                for c in children {
                    Self::collect(c, out);
                }
            }
        }
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }

    /// Structural invariant check, used by crash-recovery tests: every
    /// node's keys are strictly increasing, internal separators bound
    /// their subtrees, internal nodes have `keys.len() + 1` children, and
    /// the leaf sequence is globally sorted.  Returns a description of the
    /// first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk(node: &Node, lo: Option<u64>, hi: Option<u64>) -> Result<usize, String> {
            match node {
                Node::Leaf { keys, values } => {
                    if keys.len() != values.len() {
                        return Err(format!(
                            "leaf key/value length mismatch: {} vs {}",
                            keys.len(),
                            values.len()
                        ));
                    }
                    for w in keys.windows(2) {
                        if w[0] >= w[1] {
                            return Err(format!("leaf keys not strictly increasing: {w:?}"));
                        }
                    }
                    for &k in keys {
                        if lo.is_some_and(|lo| k < lo) || hi.is_some_and(|hi| k >= hi) {
                            return Err(format!("leaf key {k} outside separator bounds"));
                        }
                    }
                    Ok(keys.len())
                }
                Node::Internal { keys, children } => {
                    if children.len() != keys.len() + 1 {
                        return Err(format!(
                            "internal node has {} keys but {} children",
                            keys.len(),
                            children.len()
                        ));
                    }
                    for w in keys.windows(2) {
                        if w[0] >= w[1] {
                            return Err(format!("separators not strictly increasing: {w:?}"));
                        }
                    }
                    let mut total = 0;
                    for (i, child) in children.iter().enumerate() {
                        let child_lo = if i == 0 { lo } else { Some(keys[i - 1]) };
                        let child_hi = if i == keys.len() { hi } else { Some(keys[i]) };
                        total += walk(child, child_lo, child_hi)?;
                    }
                    Ok(total)
                }
            }
        }
        let counted = walk(&self.root, None, None)?;
        if counted != self.len {
            return Err(format!(
                "length counter {} disagrees with {} entries reachable",
                self.len, counted
            ));
        }
        Ok(())
    }

    /// Serializes the tree contents as a flat sorted list of key/value
    /// pairs (16 bytes per entry), suitable for writing at checkpoint time.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len * 16);
        for (k, v) in self.iter() {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Rebuilds a tree from the output of [`BPlusTree::serialize`].
    ///
    /// Checkpoint blobs are already sorted (serialization walks the tree
    /// in key order), so the rebuild is a bottom-up [`BPlusTree::bulk_load`]
    /// rather than N point inserts; unsorted input falls back to inserts.
    pub fn deserialize(data: &[u8]) -> BPlusTree {
        let pairs = Self::decode_pairs(data);
        if pairs.windows(2).all(|w| w[0].0 < w[1].0) {
            Self::bulk_load(&pairs)
        } else {
            let mut tree = BPlusTree::new();
            for (k, v) in pairs {
                tree.insert(k, v);
            }
            tree
        }
    }

    /// Rebuilds a tree with one point insert per entry — the legacy replay
    /// strategy, kept for the batched-vs-record-by-record recovery
    /// equivalence harness.
    pub fn deserialize_point_inserts(data: &[u8]) -> BPlusTree {
        let mut tree = BPlusTree::new();
        for (k, v) in Self::decode_pairs(data) {
            tree.insert(k, v);
        }
        tree
    }

    fn decode_pairs(data: &[u8]) -> Vec<(u64, u64)> {
        data.chunks_exact(16)
            .map(|chunk| {
                let k = u64::from_le_bytes(chunk[0..8].try_into().expect("chunk is 16 bytes"));
                let v = u64::from_le_bytes(chunk[8..16].try_into().expect("chunk is 16 bytes"));
                (k, v)
            })
            .collect()
    }

    /// Builds a tree bottom-up from sorted, duplicate-free pairs: leaves
    /// are filled in order, then each internal level chunks the one below,
    /// with separators taken as the minimum key of the right sibling (the
    /// same bound [`BPlusTree::get`]'s descent assumes).  O(n) instead of
    /// O(n log n) point inserts, and no rebalancing churn.
    pub fn bulk_load(pairs: &[(u64, u64)]) -> BPlusTree {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load input must be sorted and duplicate-free"
        );
        if pairs.is_empty() {
            return BPlusTree::new();
        }
        // (min key of subtree, subtree) for the level under construction.
        let mut level: Vec<(u64, Node)> = pairs
            .chunks(ORDER)
            .map(|c| {
                (
                    c[0].0,
                    Node::Leaf {
                        keys: c.iter().map(|&(k, _)| k).collect(),
                        values: c.iter().map(|&(_, v)| v).collect(),
                    },
                )
            })
            .collect();
        while level.len() > 1 {
            let mut next: Vec<(u64, Node)> = Vec::with_capacity(level.len().div_ceil(ORDER));
            let mut iter = level.into_iter();
            loop {
                let group: Vec<(u64, Node)> = iter.by_ref().take(ORDER).collect();
                if group.is_empty() {
                    break;
                }
                let min = group[0].0;
                let keys: Vec<u64> = group[1..].iter().map(|&(k, _)| k).collect();
                let children: Vec<Node> = group.into_iter().map(|(_, n)| n).collect();
                next.push((min, Node::Internal { keys, children }));
            }
            level = next;
        }
        let (_, root) = level.pop().expect("non-empty input builds a root");
        BPlusTree {
            root,
            len: pairs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.iter(), vec![]);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.insert(5, 55), Some(50));
        assert_eq!(t.get(5), Some(55));
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.get(4), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let mut t = BPlusTree::new();
        // Insert in a scrambled order.
        for i in 0..10_000u64 {
            let k = (i * 7919) % 10_007;
            t.insert(k, k * 2);
        }
        assert!(t.height() > 1, "tree should have split");
        let items = t.iter();
        assert_eq!(items.len(), t.len());
        for w in items.windows(2) {
            assert!(w[0].0 < w[1].0, "keys must be strictly increasing");
        }
        for i in 0..10_000u64 {
            let k = (i * 7919) % 10_007;
            assert_eq!(t.get(k), Some(k * 2));
        }
    }

    #[test]
    fn remove_works() {
        let mut t = BPlusTree::new();
        for i in 0..1000u64 {
            t.insert(i, i + 1);
        }
        for i in (0..1000u64).step_by(2) {
            assert_eq!(t.remove(i), Some(i + 1));
        }
        assert_eq!(t.remove(0), None);
        assert_eq!(t.len(), 500);
        for i in 0..1000u64 {
            if i % 2 == 0 {
                assert_eq!(t.get(i), None);
            } else {
                assert_eq!(t.get(i), Some(i + 1));
            }
        }
    }

    #[test]
    fn range_and_lower_bound() {
        let mut t = BPlusTree::new();
        for i in (0..100u64).map(|i| i * 10) {
            t.insert(i, i);
        }
        assert_eq!(
            t.range(95, 135),
            vec![(100, 100), (110, 110), (120, 120), (130, 130)]
        );
        assert_eq!(t.lower_bound(95), Some((100, 100)));
        assert_eq!(t.lower_bound(100), Some((100, 100)));
        assert_eq!(t.lower_bound(991), None);
        assert_eq!(t.lower_bound(0), Some((0, 0)));
    }

    #[test]
    fn serialize_round_trip() {
        let mut t = BPlusTree::new();
        for i in 0..5000u64 {
            t.insert(i * 3, i);
        }
        let bytes = t.serialize();
        assert_eq!(bytes.len(), 5000 * 16);
        let t2 = BPlusTree::deserialize(&bytes);
        assert_eq!(t2.len(), t.len());
        assert_eq!(t2.iter(), t.iter());
    }

    #[test]
    fn bulk_load_matches_point_inserts() {
        for n in [0usize, 1, 63, 64, 65, 4096, 10_000] {
            let pairs: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * 3, i + 7)).collect();
            let bulk = BPlusTree::bulk_load(&pairs);
            bulk.check_invariants()
                .unwrap_or_else(|e| panic!("bulk_load({n}) invariants: {e}"));
            let mut inserted = BPlusTree::new();
            for &(k, v) in &pairs {
                inserted.insert(k, v);
            }
            assert_eq!(bulk.len(), inserted.len());
            assert_eq!(bulk.iter(), inserted.iter());
            assert_eq!(bulk.serialize(), inserted.serialize());
            if n > 0 {
                assert_eq!(bulk.get(pairs[n / 2].0), Some(pairs[n / 2].1));
                assert_eq!(bulk.lower_bound(pairs[n - 1].0 + 1), None);
            }
        }
    }

    #[test]
    fn deserialize_strategies_agree() {
        let mut t = BPlusTree::new();
        for i in 0..3000u64 {
            t.insert(i * 11, i);
        }
        let bytes = t.serialize();
        let bulk = BPlusTree::deserialize(&bytes);
        let point = BPlusTree::deserialize_point_inserts(&bytes);
        bulk.check_invariants().unwrap();
        point.check_invariants().unwrap();
        assert_eq!(bulk.iter(), point.iter());
        assert_eq!(bulk.serialize(), point.serialize());
    }

    #[test]
    fn matches_std_btreemap_on_mixed_workload() {
        let mut t = BPlusTree::new();
        let mut reference = BTreeMap::new();
        let mut x: u64 = 12345;
        for step in 0..50_000u64 {
            // Cheap LCG for a deterministic mixed workload.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x % 3000;
            match step % 3 {
                0 | 1 => {
                    assert_eq!(t.insert(key, step), reference.insert(key, step));
                }
                _ => {
                    assert_eq!(t.remove(key), reference.remove(&key));
                }
            }
        }
        assert_eq!(t.len(), reference.len());
        let items: Vec<(u64, u64)> = reference.into_iter().collect();
        assert_eq!(t.iter(), items);
    }
}
