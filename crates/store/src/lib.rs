//! The HiStar single-level store.
//!
//! HiStar has no separate file system: on bootup the entire system state is
//! restored from the most recent on-disk snapshot, and the file system is
//! implemented with the same kernel abstractions as virtual memory (§3).
//! This crate implements the storage layer described in §4:
//!
//! * [`bptree::BPlusTree`] — B+-trees with fixed-size keys and values
//!   (object IDs and disk offsets), used for the object map and for the two
//!   free-extent indexes.
//! * [`extent::ExtentAllocator`] — free disk space tracked by two B+-trees,
//!   one indexed by extent size (for allocation) and one by location (for
//!   coalescing); allocation is delayed until an object is written so that
//!   contiguous extents are easy to find.
//! * [`wal::WriteAheadLog`] — write-ahead logging for atomicity and crash
//!   consistency; synchronous operations append to a sequential log that is
//!   applied in batches.
//! * [`store::SingleLevelStore`] — the snapshot/recovery engine tying the
//!   pieces together over a [`histar_sim::SimDisk`].
//! * [`codec`] — the small binary encoding used for on-disk records.
//! * [`records`] — the typed record namespace: reserved keys for data
//!   (such as the `/persist` filesystem's inodes, directory entries and
//!   extents) that lives directly in the store, outside the kernel object
//!   heap, laid out so range scans enumerate one directory or one file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bptree;
pub mod codec;
pub mod extent;
pub mod records;
pub mod store;
pub mod wal;

pub use bptree::BPlusTree;
pub use extent::{Extent, ExtentAllocator};
pub use records::{is_persist_key, RecordKind, PERSIST_KEY_BASE};
pub use store::{ReplayMode, SingleLevelStore, StoreConfig, StoreError, StoreStats, SyncPolicy};
pub use wal::{LogRecord, WalStats, WriteAheadLog};
