//! The on-panic/on-crash dump hook.
//!
//! A crash harness (the `torn_wal` sweep, the crash-recovery CI job) arms
//! a recorder before running its assertions; if anything panics, the
//! process-wide panic hook prints the last N spans of every armed recorder
//! to stderr before the normal panic message — the flight recording is the
//! first thing a failing CI log shows.
//!
//! Recorders are single-threaded (`Rc` inside), so the armed set lives in
//! a thread-local: the hook prints the recorders armed by the thread that
//! panicked, which is exactly the thread whose history matters.

use crate::span::Recorder;
use std::cell::RefCell;
use std::sync::Once;

thread_local! {
    static ARMED: RefCell<Vec<(String, Recorder, usize)>> = const { RefCell::new(Vec::new()) };
}

static INSTALL: Once = Once::new();

/// Arms `recorder` for crash dumping under `tag`: on panic (or on an
/// explicit [`crash_dump`]), its last `last_n` spans are printed.  Arming
/// the same tag again replaces the previous recorder.  The process panic
/// hook is installed on first use.
pub fn arm_crash_dump(tag: &str, recorder: &Recorder, last_n: usize) {
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let dump = crash_dump();
            if !dump.is_empty() {
                eprintln!("--- flight recorder (last spans before panic) ---");
                eprint!("{dump}");
                eprintln!("-------------------------------------------------");
            }
            previous(info);
        }));
    });
    ARMED.with(|armed| {
        let mut armed = armed.borrow_mut();
        armed.retain(|(t, _, _)| t != tag);
        armed.push((tag.to_string(), recorder.clone(), last_n));
    });
}

/// Disarms the recorder registered under `tag` (no-op if absent).
pub fn disarm_crash_dump(tag: &str) {
    ARMED.with(|armed| armed.borrow_mut().retain(|(t, _, _)| t != tag));
}

/// Renders the dump the panic hook would print: every armed recorder's
/// last spans, tagged.  Empty when nothing is armed (or nothing recorded).
pub fn crash_dump() -> String {
    ARMED.with(|armed| {
        let mut out = String::new();
        for (tag, recorder, last_n) in armed.borrow().iter() {
            let dump = recorder.dump_last(*last_n);
            if dump.is_empty() {
                continue;
            }
            out.push_str(&format!("{tag}: last {last_n} spans\n"));
            out.push_str(&dump);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    #[test]
    fn arm_and_disarm_control_the_dump() {
        let r = Recorder::with_capacity(8);
        r.record(Span {
            cat: "recover",
            name: "replay",
            start: 0,
            end: 42,
            tid: 0,
            seq: 0,
        });
        arm_crash_dump("test-harness", &r, 4);
        let dump = crash_dump();
        assert!(dump.contains("test-harness: last 4 spans"));
        assert!(dump.contains("recover/replay"));
        disarm_crash_dump("test-harness");
        assert_eq!(crash_dump(), "");
    }

    #[test]
    fn rearming_a_tag_replaces_the_recorder() {
        let a = Recorder::with_capacity(4);
        a.record(Span {
            cat: "c",
            name: "old",
            start: 0,
            end: 1,
            tid: 0,
            seq: 0,
        });
        let b = Recorder::with_capacity(4);
        b.record(Span {
            cat: "c",
            name: "new",
            start: 0,
            end: 1,
            tid: 0,
            seq: 0,
        });
        arm_crash_dump("replace-me", &a, 4);
        arm_crash_dump("replace-me", &b, 4);
        let dump = crash_dump();
        assert!(dump.contains("c/new"));
        assert!(!dump.contains("c/old"));
        disarm_crash_dump("replace-me");
    }

    #[test]
    fn empty_recorders_are_skipped() {
        let r = Recorder::with_capacity(4);
        arm_crash_dump("silent", &r, 4);
        assert_eq!(crash_dump(), "");
        disarm_crash_dump("silent");
    }
}
