//! The metrics registry: typed counters, gauges and histogram buckets
//! keyed by static dotted names.
//!
//! The registry is pull-based: subsystems keep owning their plain `*Stats`
//! structs (cheap `Copy` snapshots, no shared mutation), and implement
//! [`MetricSource`] to export those counters under stable names.  A
//! [`MetricSet`] is one such snapshot — the kernel's `metrics()` collects
//! every attached source into a single set, which is what the `/metrics`
//! filesystem renders and what tests assert against.
//!
//! Names are `&'static str` by construction: a metric name is part of the
//! code, not data, so the registry can never be used to smuggle dynamic
//! (possibly labeled) bytes into a "global" counter file.  The only
//! dynamic component is a histogram's bucket label, which is derived from
//! static edges.

use crate::hist::Histogram;

/// What a metric's value means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count of events.
    Counter,
    /// A point-in-time level (may go down).
    Gauge,
    /// One bucket of a [`Histogram`]; the bucket label names the range.
    HistogramBucket,
}

/// One exported metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metric {
    /// Stable dotted name, e.g. `"kernel.dispatch.batches"`.
    pub name: &'static str,
    /// Bucket label for [`MetricKind::HistogramBucket`] entries.
    pub bucket: Option<String>,
    /// The metric's kind.
    pub kind: MetricKind,
    /// The value at snapshot time.
    pub value: u64,
}

impl Metric {
    /// The full rendered name: `name` plus `.bucket.<label>` for histogram
    /// buckets, or `.<index>` for indexed gauges.
    pub fn full_name(&self) -> String {
        match &self.bucket {
            Some(b) if self.kind == MetricKind::HistogramBucket => {
                format!("{}.bucket.{}", self.name, b)
            }
            Some(b) => format!("{}.{}", self.name, b),
            None => self.name.to_string(),
        }
    }
}

/// A snapshot of exported metrics, in export order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSet {
    metrics: Vec<Metric>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Adds a counter.
    pub fn counter(&mut self, name: &'static str, value: u64) {
        self.metrics.push(Metric {
            name,
            bucket: None,
            kind: MetricKind::Counter,
            value,
        });
    }

    /// Adds a gauge.
    pub fn gauge(&mut self, name: &'static str, value: u64) {
        self.metrics.push(Metric {
            name,
            bucket: None,
            kind: MetricKind::Gauge,
            value,
        });
    }

    /// Adds one gauge of a statically-named family distinguished by a
    /// numeric index (`sched.shard_runnable.3`).  Like histogram bucket
    /// labels, the dynamic component is derived from a number, never from
    /// data bytes, so the static-name guarantee holds.
    pub fn gauge_indexed(&mut self, name: &'static str, index: usize, value: u64) {
        self.metrics.push(Metric {
            name,
            bucket: Some(index.to_string()),
            kind: MetricKind::Gauge,
            value,
        });
    }

    /// Appends a copy of every metric in `other` (the kernel merging an
    /// externally-published snapshot into its own).
    pub fn extend(&mut self, other: &MetricSet) {
        self.metrics.extend(other.metrics.iter().cloned());
    }

    /// Adds every non-empty bucket of a histogram.
    pub fn histogram<const N: usize>(&mut self, name: &'static str, hist: &Histogram<N>) {
        for (label, count) in hist.nonzero() {
            self.metrics.push(Metric {
                name,
                bucket: Some(label),
                kind: MetricKind::HistogramBucket,
                value: count,
            });
        }
    }

    /// Collects everything a source exports.
    pub fn collect(&mut self, source: &dyn MetricSource) {
        source.export(self);
    }

    /// Looks a metric up by its full rendered name.
    pub fn get(&self, full_name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|m| m.full_name() == full_name)
            .map(|m| m.value)
    }

    /// The exported metrics, in export order.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }

    /// Number of exported entries.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been exported.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the set as `<full name>\t<value>` lines — the format the
    /// `/metrics` pseudo-files serve.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str(&m.full_name());
            out.push('\t');
            out.push_str(&m.value.to_string());
            out.push('\n');
        }
        out
    }
}

/// Implemented by every `*Stats` struct that registers its counters: the
/// struct pushes each counter into the set under its stable name.
pub trait MetricSource {
    /// Exports this source's current values into `set`.
    fn export(&self, set: &mut MetricSet);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::BATCH_SIZE_EDGES;

    struct Fake;
    impl MetricSource for Fake {
        fn export(&self, set: &mut MetricSet) {
            set.counter("fake.events", 3);
            set.gauge("fake.level", 9);
        }
    }

    #[test]
    fn collects_and_renders_sources() {
        let mut set = MetricSet::new();
        set.collect(&Fake);
        let mut h = Histogram::new(&BATCH_SIZE_EDGES);
        h.record(1);
        h.record(3);
        set.histogram("fake.sizes", &h);
        assert_eq!(set.get("fake.events"), Some(3));
        assert_eq!(set.get("fake.level"), Some(9));
        assert_eq!(set.get("fake.sizes.bucket.3-4"), Some(1));
        assert_eq!(set.get("fake.sizes.bucket.65+"), None);
        let text = set.render_text();
        assert!(text.contains("fake.events\t3\n"));
        assert!(text.contains("fake.sizes.bucket.1\t1\n"));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn empty_set_renders_empty() {
        let set = MetricSet::new();
        assert!(set.is_empty());
        assert_eq!(set.render_text(), "");
        assert_eq!(set.get("anything"), None);
    }
}
