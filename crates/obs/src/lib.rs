//! Kernel-wide observability that is itself information-flow safe.
//!
//! Three pieces, deliberately free of dependencies so every other crate can
//! use them:
//!
//! * [`Histogram`] — one shared fixed-bucket histogram type replacing the
//!   hand-rolled bucket arrays that used to live in the dispatch stats and
//!   the file-system benchmark.  Bucket edges and label rendering live
//!   here, in one place.
//! * [`MetricSet`] / [`MetricSource`] — the metrics registry.  Every
//!   subsystem's `*Stats` struct implements [`MetricSource`] and exports
//!   its counters under stable dotted names; one call on the kernel
//!   snapshots the whole machine into a [`MetricSet`].
//! * [`Recorder`] / [`Span`] — the flight recorder: a bounded ring buffer
//!   of causally-tagged spans (tick start/end, thread, sequence number)
//!   emitted from the dispatch choke point, scheduler quanta, WAL and
//!   recovery phases, and exporter RPCs.  Dumps as chrome-trace JSON for
//!   offline profiling, and the [`hook`] module prints the last N spans
//!   when a crash harness panics.
//!
//! Nothing in this crate advances the simulated clock: recording a metric
//! or a span is free in simulated time, which is exactly the invariant the
//! `obs_bench` CI gate enforces (tracing-enabled syscalls/sec within 3% of
//! tracing-disabled).
//!
//! Labels are enforced one layer up: the registry and recorder hold plain
//! numbers, and the `/metrics` filesystem in the Unix library decides, per
//! reader and per entry, whether those numbers may be observed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod hook;
pub mod metrics;
pub mod span;

pub use hist::{Histogram, BATCH_SIZE_EDGES};
pub use metrics::{Metric, MetricKind, MetricSet, MetricSource};
pub use span::{Recorder, Span};
