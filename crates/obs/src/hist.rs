//! The shared fixed-bucket histogram.
//!
//! Bucket edges are `'static` arrays of inclusive upper bounds (the last
//! edge is conventionally `u64::MAX`, making the final bucket open-ended).
//! The edges travel with the histogram, so two snapshots can only be
//! combined when they describe the same buckets, and bucket labels like
//! `"3-4"` or `"65+"` render identically wherever the histogram is
//! reported.

use core::ops::Index;

/// Inclusive upper bounds of the submission-batch-size buckets shared by
/// the dispatch stats and the I/O benchmarks (the last bucket is
/// open-ended).
pub const BATCH_SIZE_EDGES: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, u64::MAX];

/// A fixed-bucket histogram of `u64` samples.
///
/// `N` is the bucket count; `edges[i]` is the inclusive upper bound of
/// bucket `i`.  The struct is `Copy`, so stats structs embedding it keep
/// their snapshot-by-value semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Histogram<const N: usize> {
    edges: &'static [u64; N],
    counts: [u64; N],
}

impl<const N: usize> Histogram<N> {
    /// An empty histogram over the given bucket edges.  Edges must be
    /// strictly increasing; values above the last edge land in the last
    /// bucket.
    pub const fn new(edges: &'static [u64; N]) -> Histogram<N> {
        Histogram {
            edges,
            counts: [0; N],
        }
    }

    /// The bucket edges this histogram was built over.
    pub fn edges(&self) -> &'static [u64; N] {
        self.edges
    }

    /// The per-bucket sample counts.
    pub fn counts(&self) -> &[u64; N] {
        &self.counts
    }

    /// The bucket a sample of `value` falls into.
    pub fn bucket_of(&self, value: u64) -> usize {
        self.edges
            .iter()
            .position(|&hi| value <= hi)
            .unwrap_or(N - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[self.bucket_of(value)] += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Human-readable label for bucket `i` (e.g. `"1"`, `"3-4"`, `"65+"`).
    pub fn bucket_label(&self, i: usize) -> String {
        let hi = self.edges[i];
        let lo = if i == 0 { 1 } else { self.edges[i - 1] + 1 };
        if hi == u64::MAX {
            format!("{lo}+")
        } else if lo == hi {
            format!("{hi}")
        } else {
            format!("{lo}-{hi}")
        }
    }

    /// `(bucket label, count)` for every non-empty bucket, in bucket order
    /// — the one rendering every reporter (bench JSON, `/metrics` files)
    /// shares.
    pub fn nonzero(&self) -> Vec<(String, u64)> {
        (0..N)
            .filter(|&i| self.counts[i] > 0)
            .map(|i| (self.bucket_label(i), self.counts[i]))
            .collect()
    }

    /// Applies `op` bucket-wise over two histograms with identical edges.
    ///
    /// # Panics
    ///
    /// Panics if the edges differ — combining histograms over different
    /// buckets is always a bug.
    pub fn zip_with(&self, other: &Histogram<N>, op: impl Fn(u64, u64) -> u64) -> Histogram<N> {
        assert_eq!(self.edges, other.edges, "histogram bucket edges differ");
        let mut out = Histogram::new(self.edges);
        for i in 0..N {
            out.counts[i] = op(self.counts[i], other.counts[i]);
        }
        out
    }

    /// Bucket-wise difference (`self - earlier`), for measuring a region.
    pub fn since(&self, earlier: &Histogram<N>) -> Histogram<N> {
        self.zip_with(earlier, |a, b| a - b)
    }

    /// Bucket-wise sum, for combining nodes or runs.
    pub fn merge(&self, other: &Histogram<N>) -> Histogram<N> {
        self.zip_with(other, |a, b| a + b)
    }
}

impl<const N: usize> Index<usize> for Histogram<N> {
    type Output = u64;
    fn index(&self, i: usize) -> &u64 {
        &self.counts[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_labels_match_the_legacy_dispatch_histogram() {
        let mut h = Histogram::new(&BATCH_SIZE_EDGES);
        for size in [1, 1, 2, 3, 4, 9, 70, u64::MAX] {
            h.record(size);
        }
        assert_eq!(h.total(), 8);
        assert_eq!(h[0], 2, "two 1-entry batches");
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 2, "3 and 4 share the 3-4 bucket");
        assert_eq!(h[4], 1, "9 lands in the 9-16 bucket");
        assert_eq!(h.bucket_label(0), "1");
        assert_eq!(h.bucket_label(2), "3-4");
        assert_eq!(h.bucket_label(7), "65+");
        assert_eq!(h[7], 2, "70 and u64::MAX are both open-ended");
    }

    #[test]
    fn bucket_of_is_inclusive_on_edges() {
        let h = Histogram::new(&BATCH_SIZE_EDGES);
        assert_eq!(h.bucket_of(1), 0);
        assert_eq!(h.bucket_of(2), 1);
        assert_eq!(h.bucket_of(4), 2);
        assert_eq!(h.bucket_of(5), 3);
        assert_eq!(h.bucket_of(64), 6);
        assert_eq!(h.bucket_of(65), 7);
    }

    #[test]
    fn since_and_merge_are_bucketwise() {
        let mut a = Histogram::new(&BATCH_SIZE_EDGES);
        let mut b = Histogram::new(&BATCH_SIZE_EDGES);
        a.record(1);
        a.record(3);
        a.record(3);
        b.record(3);
        let d = a.since(&b);
        assert_eq!(d[0], 1);
        assert_eq!(d[2], 1);
        let m = a.merge(&b);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn nonzero_skips_empty_buckets() {
        let mut h = Histogram::new(&BATCH_SIZE_EDGES);
        h.record(1);
        h.record(100);
        assert_eq!(
            h.nonzero(),
            vec![("1".to_string(), 1), ("65+".to_string(), 1)]
        );
    }
}
