//! The flight recorder: a bounded ring buffer of causally-tagged spans.
//!
//! A [`Span`] names one region of simulated time — a dispatched syscall, a
//! submission batch, a scheduler quantum, a WAL append, a recovery phase,
//! an exporter RPC leg — tagged with the thread it ran on and a sequence
//! number tying it back to the audit trace or batch counter.  The
//! [`Recorder`] is a cheaply cloneable handle (the kernel, the store and
//! the exporter all hold one) over a shared ring; a disabled recorder's
//! `record` is a no-op, which is what keeps tracing's overhead inside the
//! CI gate's 3% budget.
//!
//! Spans dump as chrome-trace JSON (`chrome://tracing`, Perfetto) for
//! offline profiling, and aggregate into per-phase totals — the profile
//! the recovery work in `torn_wal` reports.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One recorded region of simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Subsystem category (`"dispatch"`, `"sched"`, `"wal"`, `"recover"`,
    /// `"rpc"`).
    pub cat: &'static str,
    /// What ran (a syscall name, `"quantum"`, `"checkpoint"`, ...).
    pub name: &'static str,
    /// Start tick, in simulated nanoseconds since boot.
    pub start: u64,
    /// End tick, in simulated nanoseconds since boot (`>= start`).
    pub end: u64,
    /// The thread the work ran on (raw object ID; 0 when the work is not
    /// attributable to one thread, e.g. recovery).
    pub tid: u64,
    /// Causal tag: the audit-trace sequence number for syscalls, the batch
    /// id for batches, the quantum count for the scheduler, 0 otherwise.
    pub seq: u64,
}

impl Span {
    /// The span's duration in simulated nanoseconds.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// The ring buffer behind a [`Recorder`].
#[derive(Debug)]
struct FlightRing {
    capacity: usize,
    dropped: u64,
    total: u64,
    ring: VecDeque<Span>,
}

impl FlightRing {
    fn push(&mut self, span: Span) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(span);
        self.total += 1;
    }
}

/// A handle onto a shared flight-recorder ring.
///
/// Cloning is cheap (reference-counted), so the kernel can hand handles to
/// the store, the scheduler and the exporter without ownership questions.
/// A default-constructed handle is *disabled*: `record` does nothing and
/// costs almost nothing, so instrumentation points can call it
/// unconditionally.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Rc<RefCell<FlightRing>>>,
}

impl Recorder {
    /// A disabled recorder (every `record` is a no-op).
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// An enabled recorder whose ring holds at most `capacity` spans;
    /// older spans are evicted (and counted) when it fills.
    pub fn with_capacity(capacity: usize) -> Recorder {
        Recorder {
            inner: Some(Rc::new(RefCell::new(FlightRing {
                capacity: capacity.max(1),
                dropped: 0,
                total: 0,
                ring: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            }))),
        }
    }

    /// True when spans are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one span (no-op when disabled).
    pub fn record(&self, span: Span) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().push(span);
        }
    }

    /// The buffered spans, oldest first (empty when disabled).
    pub fn snapshot(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => inner.borrow().ring.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped)
    }

    /// Total spans ever recorded.
    pub fn total_recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().total)
    }

    /// The last `n` spans, oldest first — what the crash hook prints.
    pub fn last(&self, n: usize) -> Vec<Span> {
        let all = self.snapshot();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }

    /// Renders the buffered spans as a chrome-trace JSON document
    /// (`ts`/`dur` in microseconds, the format `chrome://tracing` and
    /// Perfetto load directly).
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, s) in spans.iter().enumerate() {
            let sep = if i + 1 == spans.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": {}, \
                 \"args\": {{\"seq\": {}}}}}{sep}\n",
                escape(s.name),
                escape(s.cat),
                s.start as f64 / 1_000.0,
                s.duration() as f64 / 1_000.0,
                s.tid,
                s.seq,
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Human-readable dump of the last `n` spans, oldest first.
    pub fn dump_last(&self, n: usize) -> String {
        let mut out = String::new();
        for s in self.last(n) {
            out.push_str(&format!(
                "  [{:>12}ns +{:>9}ns] {}/{} tid={} seq={}\n",
                s.start,
                s.duration(),
                s.cat,
                s.name,
                s.tid,
                s.seq
            ));
        }
        out
    }

    /// Aggregates buffered spans of one category into per-phase totals:
    /// `(name, total simulated ns, span count)`, largest total first.
    pub fn phase_totals(&self, cat: &str) -> Vec<(&'static str, u64, u64)> {
        let mut totals: Vec<(&'static str, u64, u64)> = Vec::new();
        for s in self.snapshot() {
            if s.cat != cat {
                continue;
            }
            match totals.iter_mut().find(|(name, _, _)| *name == s.name) {
                Some((_, total, count)) => {
                    *total += s.duration();
                    *count += 1;
                }
                None => totals.push((s.name, s.duration(), 1)),
            }
        }
        totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        totals
    }
}

/// Minimal JSON string escaping for span/category names (which are static
/// identifiers by construction, but a stray quote must not corrupt the
/// document).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, start: u64, end: u64) -> Span {
        Span {
            cat: "test",
            name,
            start,
            end,
            tid: 7,
            seq: 1,
        }
    }

    #[test]
    fn disabled_recorder_is_a_cheap_noop() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.record(span("x", 0, 1));
        assert!(r.snapshot().is_empty());
        assert_eq!(r.total_recorded(), 0);
        assert_eq!(r.chrome_trace_json(), "{\"traceEvents\": [\n]}\n");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let r = Recorder::with_capacity(2);
        r.record(span("a", 0, 1));
        r.record(span("b", 1, 2));
        r.record(span("c", 2, 3));
        let got = r.snapshot();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name, "b");
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.total_recorded(), 3);
    }

    #[test]
    fn clones_share_the_ring() {
        let r = Recorder::with_capacity(8);
        let handle = r.clone();
        handle.record(span("via-clone", 0, 5));
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.snapshot()[0].name, "via-clone");
    }

    #[test]
    fn chrome_trace_json_is_wellformed() {
        let r = Recorder::with_capacity(8);
        r.record(span("alpha", 1_000, 3_500));
        r.record(span("beta", 3_500, 3_500));
        let doc = r.chrome_trace_json();
        assert!(doc.starts_with("{\"traceEvents\": ["));
        assert!(doc.contains("\"name\": \"alpha\""));
        assert!(doc.contains("\"ts\": 1.000"));
        assert!(doc.contains("\"dur\": 2.500"));
        assert!(doc.contains("\"tid\": 7"));
        assert!(doc.trim_end().ends_with("]}"));
        // Exactly one separator between the two events.
        assert_eq!(doc.matches("},\n").count(), 1);
    }

    #[test]
    fn phase_totals_aggregate_and_sort() {
        let r = Recorder::with_capacity(16);
        r.record(span("replay", 0, 10));
        r.record(span("replay", 10, 30));
        r.record(span("checkpoint", 30, 90));
        r.record(Span {
            cat: "other",
            name: "ignored",
            start: 0,
            end: 1_000,
            tid: 0,
            seq: 0,
        });
        let totals = r.phase_totals("test");
        assert_eq!(totals, vec![("checkpoint", 60, 1), ("replay", 30, 2)]);
    }

    #[test]
    fn last_returns_the_tail() {
        let r = Recorder::with_capacity(16);
        for i in 0..5 {
            r.record(span("s", i, i + 1));
        }
        assert_eq!(r.last(2).len(), 2);
        assert_eq!(r.last(2)[0].start, 3);
        assert!(r.dump_last(2).lines().count() == 2);
    }
}
