//! The §6.1 label-isolated dynamic web server, under load, on real
//! blocking I/O.
//!
//! The paper's web server splits into components so that almost none of
//! them need to be trusted with cross-user privilege:
//!
//! * **netd** delivers every connection tainted `{i 2}` and mints two
//!   fresh categories per connection (the paper's `ssl_r`/`ssl_w`): the
//!   connection segment is labelled `{i 2, c_r 3, c_w 0, 1}`, so only
//!   owners of `c_r` may observe the request bytes and only owners of
//!   `c_w` may write the response.
//! * the **launcher** is the small trusted component: it owns the network
//!   taint category `i` (the declassification privilege) and, after a
//!   user's first authenticated request, the user's own `ur`/`uw`
//!   categories — acquired through the auth service's gates, exactly like
//!   any login.  It accepts connections, reads the request line,
//!   authenticates, and hands the connection to that user's worker.
//! * each **worker** runs with one user's privilege only — it owns that
//!   user's `ur`/`uw`, is tainted `{i 2}` from birth, and serves files
//!   from `/persist/home/<user>` back through the connection it was
//!   granted.  A compromised worker cannot emit another user's secrets:
//!   it holds neither the other user's `ur` (cannot read the files
//!   untainted) nor the other connection's `c_w` (cannot write the
//!   socket), and any taint it picks up from another user's data makes
//!   every connection write fail the kernel's label check.
//!
//! Everything runs as programs under the deterministic scheduler on
//! *real blocking I/O*: a client parked on an empty connection, a worker
//! parked on an empty job pipe and the launcher parked on an empty accept
//! queue all sit in the scheduler's wait set consuming zero quanta until
//! a kernel readiness completion wakes them — `read(2)`/`accept(2)`
//! semantics, with `poll` over the launcher's pending connections issued
//! as one batched syscall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};

use histar_auth::{AuthService, AuthSystem, LoginOutcome};
use histar_kernel::object::{ContainerEntry, ObjectId};
use histar_kernel::sched::{
    Program, RunLimit, SchedConfig, SchedContext, SchedStats, Scheduler, Step, StopReason,
};
use histar_kernel::{DispatchStats, Kernel, SyscallStats};
use histar_label::{Category, Label, Level};
use histar_net::{Listener, Netd};
use histar_obs::Span;
use histar_sim::SimDuration;
use histar_unix::fdtable::{FdKind, FdState, FLAG_RDONLY, FLAG_SOCK_SERVER, FLAG_WRONLY};
use histar_unix::process::Pid;
use histar_unix::vnode::{PIPE_CAPACITY, PIPE_HEADER};
use histar_unix::{gatecall, Fd, UnixEnv, UnixError};

/// Result alias for web-server operations.
pub type Result<T> = core::result::Result<T, UnixError>;

/// Connections accepted per launcher quantum before yielding the CPU.
const ACCEPT_BATCH: usize = 256;
/// Ready connections dispatched per launcher quantum before yielding.
const SERVE_BATCH: usize = 256;

/// One per-user worker process, as the launcher tracks it.
#[derive(Clone, Copy, Debug)]
pub struct WorkerHandle {
    /// The worker process (owns exactly one user's `ur`/`uw`).
    pub pid: Pid,
    /// The launcher's write end of the worker's job pipe.
    pub job_wfd: Fd,
}

/// The shared world the scheduled server, workers and clients mutate.
pub struct HttpdWorld {
    /// The Unix environment (one machine).
    pub env: UnixEnv,
    /// The network daemon the connections ride.
    pub netd: Netd,
    /// The authentication system the launcher logs users in through.
    pub auth: AuthSystem,
    /// The trusted launcher process.
    pub launcher: Pid,
    /// The launcher's listening socket.
    pub listener: Listener,
    /// Per-user workers, spawned lazily on first authenticated request.
    pub workers: HashMap<String, WorkerHandle>,
    /// Passwords of users the launcher has authenticated (first request
    /// per user goes through the auth gates; later requests are checked
    /// against the cached credential).
    creds: HashMap<String, String>,
    /// Programs spawned by running programs, admitted to the scheduler
    /// between run slices (a program cannot reach the scheduler itself).
    spawned: Vec<(ObjectId, Program<HttpdWorld>)>,
    /// Set by the driver once all expected requests resolved; the woken
    /// launcher then hangs up the job pipes and retires.
    pub shutdown: bool,
    /// Requests the run expects to resolve (one per client).
    pub expected: u64,
    /// Responses fully written by workers (200 and 404 alike).
    pub served: u64,
    /// Requests the launcher refused at authentication (403).
    pub denied: u64,
    /// Client-observed non-`200` outcomes.
    pub refused: u64,
    /// Clients currently connected and awaiting their response.
    pub active: usize,
    /// High-water mark of concurrently connected clients.
    pub high_water: usize,
    /// Per-request latency in simulated nanoseconds (successful requests).
    pub latencies: Vec<u64>,
    /// Errors hit by scheduled programs (empty on a healthy run).
    pub failures: Vec<(Pid, String)>,
}

impl SchedContext for HttpdWorld {
    fn sched_kernel(&mut self) -> &mut Kernel {
        self.env.kernel_mut()
    }
}

impl HttpdWorld {
    fn fail(&mut self, pid: Pid, err: UnixError) {
        self.failures.push((pid, err.to_string()));
    }
}

/// Parameters of the web-server scenario.
#[derive(Clone, Copy, Debug)]
pub struct HttpdParams {
    /// Number of concurrent clients (one request each).
    pub clients: usize,
    /// Number of distinct user accounts they request files of.
    pub users: usize,
    /// Every `wrong_every`-th client presents a wrong password (0 = none),
    /// exercising the 403 path under load.  Keep the per-user wrong count
    /// under the auth service's retry budget of 5.
    pub wrong_every: usize,
    /// Scheduler seed (fixes the interleaving).
    pub seed: u64,
    /// Keep a syscall audit trace of this capacity (0 = tracing off).
    pub trace_capacity: usize,
    /// Keep a flight-recorder span ring of this capacity (0 = off).
    pub recorder_capacity: usize,
}

impl Default for HttpdParams {
    fn default() -> HttpdParams {
        HttpdParams {
            clients: 200,
            users: 8,
            wrong_every: 0,
            seed: 0x60_1d,
            trace_capacity: 0,
            recorder_capacity: 0,
        }
    }
}

/// What the scenario measured.
#[derive(Clone, Copy, Debug)]
pub struct HttpdReport {
    /// Why the final scheduler slice stopped.
    pub stop: StopReason,
    /// Aggregate scheduler counters over the whole run.
    pub sched: SchedStats,
    /// Responses fully written by workers.
    pub served: u64,
    /// Requests refused at authentication.
    pub denied: u64,
    /// Client-observed non-`200` outcomes.
    pub refused: u64,
    /// High-water mark of concurrently connected clients.
    pub high_water: usize,
    /// Resolved requests per simulated second.
    pub requests_per_sec: f64,
    /// Median latency of successful requests.
    pub p50_latency: SimDuration,
    /// 99th-percentile latency of successful requests.
    pub p99_latency: SimDuration,
    /// Simulated time the run consumed.
    pub elapsed: SimDuration,
    /// Kernel activity delta during the run.
    pub kernel: SyscallStats,
    /// Per-syscall dispatch counters delta during the run.
    pub dispatch: DispatchStats,
}

// ----- the launcher: the trusted component ---------------------------------

/// One accepted connection the launcher has not yet read a request from.
#[derive(Clone, Copy)]
struct PendingConn {
    fd: Fd,
    taint_cat: Category,
    write_cat: Category,
}

fn launcher_program(launcher: Pid, listen_fd: Fd) -> Program<HttpdWorld> {
    let mut pending: Vec<PendingConn> = Vec::new();
    Box::new(move |world: &mut HttpdWorld, _tid| {
        if world.shutdown {
            let wfds: Vec<Fd> = world.workers.values().map(|w| w.job_wfd).collect();
            for wfd in wfds {
                // Hanging up a job pipe writes its ring header, which wakes
                // the worker parked on it into reading EOF.
                if let Err(e) = world.env.close(launcher, wfd) {
                    world.fail(launcher, e);
                }
            }
            return Step::Done;
        }

        // Drain the accept queue, bounded per quantum.  The final
        // `Ok(None)` registers a readiness watch on the queue segment, so
        // a later connect wakes the parked launcher.
        let mut queue_drained = false;
        for _ in 0..ACCEPT_BATCH {
            match world.netd.accept(&mut world.env, launcher, listen_fd) {
                Ok(Some(acc)) => {
                    pending.push(PendingConn {
                        fd: acc.fd,
                        taint_cat: acc.taint_cat,
                        write_cat: acc.write_cat,
                    });
                }
                Ok(None) => {
                    queue_drained = true;
                    break;
                }
                Err(e) => {
                    world.fail(launcher, e);
                    queue_drained = true;
                    break;
                }
            }
        }

        if pending.is_empty() {
            return if queue_drained {
                Step::Block
            } else {
                Step::Yield
            };
        }

        // One batched syscall decides readiness of every pending
        // connection; if none is ready the same batch parks us with a
        // watch per connection.
        let fds: Vec<Fd> = pending.iter().map(|p| p.fd).collect();
        let ready = match world.env.poll_block(launcher, &fds) {
            Ok(Some(ready)) => ready,
            Ok(None) => {
                return if queue_drained {
                    Step::Block
                } else {
                    Step::Yield
                };
            }
            Err(e) => {
                world.fail(launcher, e);
                return Step::Done;
            }
        };

        // Dispatch the ready connections, bounded per quantum.  Descending
        // index order keeps `swap_remove` from disturbing unprocessed
        // entries.
        let ready_idx: Vec<usize> = (0..pending.len())
            .rev()
            .filter(|&i| ready[i])
            .take(SERVE_BATCH)
            .collect();
        for i in ready_idx {
            let conn = pending[i];
            match handle_request(world, launcher, conn) {
                Ok(true) => {
                    pending.swap_remove(i);
                }
                Ok(false) => {} // spurious readiness: stays pending
                Err(e) => {
                    world.fail(launcher, e);
                    pending.swap_remove(i);
                }
            }
        }
        Step::Yield
    })
}

/// Reads one pending connection's request line and either dispatches it to
/// the user's worker or refuses it, then *sheds* the connection's two
/// categories from the launcher's own label — by response time they are
/// the worker's business, and a launcher that kept `⋆` for every
/// connection it ever handled would grow its label without bound.
/// Returns `Ok(false)` when the connection turned out not to have a full
/// request yet.
fn handle_request(world: &mut HttpdWorld, launcher: Pid, conn: PendingConn) -> Result<bool> {
    let data = match world.env.read_blocking(launcher, conn.fd, 512)? {
        Some(data) => data,
        None => return Ok(false), // spurious readiness; watch re-registered
    };
    if data.is_empty() {
        // Client hung up before sending a request.
        world.env.close(launcher, conn.fd)?;
        return Ok(true);
    }
    let line = String::from_utf8_lossy(&data);
    let line = line.trim_end_matches('\n');
    let mut parts = line.splitn(3, ' ');
    let (user, password, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(u), Some(p), Some(path)) if !u.is_empty() => (u.to_string(), p, path.to_string()),
        _ => {
            refuse(world, launcher, conn.fd, b"400 bad request\n")?;
            gatecall::drop_categories(&mut world.env, launcher, &[conn.taint_cat, conn.write_cat])?;
            return Ok(true);
        }
    };

    // Authentication: the first request for a user walks the auth
    // service's gates (the launcher's thread gains the user's ur/uw
    // ownership exactly like a login); later requests are checked against
    // the credential that succeeded.
    let authenticated = match world.creds.get(&user) {
        Some(known) => known == password,
        None => {
            let HttpdWorld { env, auth, .. } = world;
            match auth.login(env, launcher, &user, password)? {
                LoginOutcome::Granted => {
                    world.creds.insert(user.clone(), password.to_string());
                    true
                }
                _ => false,
            }
        }
    };
    if !authenticated {
        refuse(world, launcher, conn.fd, b"403 forbidden\n")?;
        gatecall::drop_categories(&mut world.env, launcher, &[conn.taint_cat, conn.write_cat])?;
        return Ok(true);
    }

    let worker = ensure_worker(world, launcher, &user)?;
    // Hand the connection to the worker: grant it the connection's two
    // categories, give it its own descriptor for the connection segment
    // (a fresh descriptor in the worker's own tainted container — the
    // worker could not update descriptor state living in the launcher's
    // untainted one), and queue the job.
    gatecall::grant_categories(
        &mut world.env,
        launcher,
        worker.pid,
        &[conn.taint_cat, conn.write_cat],
    )?;
    let state = world.env.fd_snapshot(launcher, conn.fd)?;
    let wfd = world.env.install_descriptor(
        worker.pid,
        FdState {
            kind: FdKind::Socket,
            target: state.target,
            target_container: state.target_container,
            position: 0,
            flags: FLAG_SOCK_SERVER,
            refs: 1,
        },
    )?;
    let job = format!(
        "{wfd} {} {} {path}\n",
        conn.taint_cat.raw(),
        conn.write_cat.raw()
    );
    world.env.write(launcher, worker.job_wfd, job.as_bytes())?;
    // Handed off: the worker owns the pair now, the launcher renounces it.
    gatecall::drop_categories(&mut world.env, launcher, &[conn.taint_cat, conn.write_cat])?;
    Ok(true)
}

/// Writes a refusal on a connection and closes the launcher's descriptor,
/// hanging up the response direction so the client sees the status and
/// then EOF.
fn refuse(world: &mut HttpdWorld, launcher: Pid, fd: Fd, status: &[u8]) -> Result<()> {
    world.env.write(launcher, fd, status)?;
    world.env.close(launcher, fd)?;
    world.denied += 1;
    Ok(())
}

/// Returns the user's worker, spawning it on first use: a process owning
/// exactly this user's `ur`/`uw`, tainted `{i 2}` from birth (so its own
/// containers carry the taint and it can maintain descriptor state), fed
/// through a job pipe labelled `{i 2, uw 0, 1}` — writable only with the
/// user's privilege, so no other user can forge jobs for this worker.
fn ensure_worker(world: &mut HttpdWorld, launcher: Pid, user: &str) -> Result<WorkerHandle> {
    if let Some(w) = world.workers.get(user) {
        return Ok(*w);
    }
    let account = world.env.user(user)?;
    let worker = world.env.spawn_with_label(
        launcher,
        &format!("/usr/lib/httpd/worker-{user}"),
        vec![account.read_cat, account.write_cat],
        vec![(world.netd.taint, Level::L2)],
    )?;

    let launcher_thread = world.env.process(launcher)?.thread;
    let conns = world.netd.conns;
    let pipe_label = Label::builder()
        .set(world.netd.taint, Level::L2)
        .set(account.write_cat, Level::L0)
        .build();
    let kernel = world.env.machine_mut().kernel_mut();
    let pipe_seg = kernel.trap_segment_create(
        launcher_thread,
        conns,
        pipe_label,
        PIPE_HEADER + PIPE_CAPACITY,
        &format!("job pipe {user}"),
    )?;
    // Ring header (rpos 0, wpos 0, writers 1): the launcher is the single
    // writer, so an empty pipe blocks the worker rather than reading EOF —
    // until the launcher hangs up at shutdown.
    let mut header = [0u8; PIPE_HEADER as usize];
    header[16] = 1;
    kernel.trap_segment_write(
        launcher_thread,
        ContainerEntry::new(conns, pipe_seg),
        0,
        &header,
    )?;
    let job_wfd = world.env.install_descriptor(
        launcher,
        FdState {
            kind: FdKind::PipeWrite,
            target: pipe_seg,
            target_container: conns,
            position: 0,
            flags: FLAG_WRONLY,
            refs: 1,
        },
    )?;
    let job_rfd = world.env.install_descriptor(
        worker,
        FdState {
            kind: FdKind::PipeRead,
            target: pipe_seg,
            target_container: conns,
            position: 0,
            flags: FLAG_RDONLY,
            refs: 1,
        },
    )?;

    let thread = world.env.process(worker)?.thread;
    world.spawned.push((
        thread,
        worker_program(worker, job_rfd, format!("/persist/home/{user}")),
    ));
    let handle = WorkerHandle {
        pid: worker,
        job_wfd,
    };
    world.workers.insert(user.to_string(), handle);
    Ok(handle)
}

// ----- the worker: one user's privilege only -------------------------------

/// One job as the worker parses it off the pipe: the granted connection
/// descriptor, the connection's two categories (to renounce once the
/// response is out), and the request path.
struct Job {
    fd: Fd,
    taint_cat: Category,
    write_cat: Category,
    path: String,
}

/// Closes a finished connection and sheds its two categories from the
/// worker's label: the worker serves thousands of connections over its
/// lifetime, and keeping every pair would grow its label — and the cost
/// of every label check it makes — without bound.
fn finish_conn(world: &mut HttpdWorld, pid: Pid, job: &Job) -> Result<()> {
    world.env.close(pid, job.fd)?;
    world.served += 1;
    gatecall::drop_categories(&mut world.env, pid, &[job.taint_cat, job.write_cat])
}

fn worker_program(pid: Pid, job_rfd: Fd, home: String) -> Program<HttpdWorld> {
    let mut inbox: Vec<u8> = Vec::new();
    let mut jobs: VecDeque<Job> = VecDeque::new();
    // A response mid-write when the connection ring filled: resume here.
    let mut partial: Option<(Job, Vec<u8>, usize)> = None;
    Box::new(move |world: &mut HttpdWorld, _tid| {
        // Finish a partially written response first.
        if let Some((job, data, mut off)) = partial.take() {
            match world.env.write_blocking(pid, job.fd, &data[off..]) {
                Ok(Some(n)) => {
                    off += n as usize;
                    if off < data.len() {
                        partial = Some((job, data, off));
                        return Step::Yield;
                    }
                    if let Err(e) = finish_conn(world, pid, &job) {
                        world.fail(pid, e);
                        return Step::Done;
                    }
                }
                Ok(None) => {
                    partial = Some((job, data, off));
                    return Step::Block;
                }
                Err(e) => {
                    world.fail(pid, e);
                    return Step::Done;
                }
            }
        }

        // Serve queued jobs: read the user's file through the VFS and
        // write the response back through the granted connection.
        while let Some(job) = jobs.pop_front() {
            let response = match world.env.read_file_as(pid, &format!("{home}/{}", job.path)) {
                Ok(body) => {
                    let mut r = b"200 ".to_vec();
                    r.extend_from_slice(&body);
                    r
                }
                Err(_) => b"404 not found\n".to_vec(),
            };
            match world.env.write_blocking(pid, job.fd, &response) {
                Ok(Some(n)) if n as usize == response.len() => {
                    // Closing our descriptor hangs up the response
                    // direction: the client reads the bytes, then EOF.
                    if let Err(e) = finish_conn(world, pid, &job) {
                        world.fail(pid, e);
                        return Step::Done;
                    }
                }
                Ok(Some(n)) => {
                    partial = Some((job, response, n as usize));
                    return Step::Yield;
                }
                Ok(None) => {
                    partial = Some((job, response, 0));
                    return Step::Block;
                }
                Err(e) => {
                    world.fail(pid, e);
                    return Step::Done;
                }
            }
        }

        // Pull more jobs off the pipe; an empty pipe parks us (zero
        // quanta) until the launcher's next job write wakes us, and EOF —
        // the launcher hung up at shutdown — retires us.
        match world.env.read_blocking(pid, job_rfd, 4096) {
            Ok(None) => Step::Block,
            Ok(Some(data)) if data.is_empty() => {
                let _ = world.env.close(pid, job_rfd);
                Step::Done
            }
            Ok(Some(data)) => {
                inbox.extend_from_slice(&data);
                while let Some(nl) = inbox.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = inbox.drain(..=nl).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                    let mut parts = line.splitn(4, ' ');
                    if let (Some(fd), Some(cr), Some(cw), Some(path)) = (
                        parts.next().and_then(|s| s.parse::<Fd>().ok()),
                        parts.next().and_then(|s| s.parse::<u64>().ok()),
                        parts.next().and_then(|s| s.parse::<u64>().ok()),
                        parts.next(),
                    ) {
                        jobs.push_back(Job {
                            fd,
                            taint_cat: Category::from_raw(cr),
                            write_cat: Category::from_raw(cw),
                            path: path.to_string(),
                        });
                    }
                }
                Step::Yield
            }
            Err(e) => {
                world.fail(pid, e);
                Step::Done
            }
        }
    })
}

// ----- the client ----------------------------------------------------------

enum ClientPhase {
    Connect,
    Await { fd: Fd, start: u64 },
}

fn client_program(pid: Pid, listener: Listener, request: String) -> Program<HttpdWorld> {
    let mut phase = ClientPhase::Connect;
    Box::new(move |world: &mut HttpdWorld, tid| match phase {
        ClientPhase::Connect => {
            let netd = world.netd;
            let fd = match netd.connect(&mut world.env, pid, &listener) {
                Ok(fd) => fd,
                Err(e) => {
                    world.fail(pid, e);
                    return Step::Done;
                }
            };
            if let Err(e) = world.env.write(pid, fd, request.as_bytes()) {
                world.fail(pid, e);
                return Step::Done;
            }
            world.active += 1;
            world.high_water = world.high_water.max(world.active);
            let start = world.env.machine().kernel().now().as_nanos();
            phase = ClientPhase::Await { fd, start };
            Step::Yield
        }
        ClientPhase::Await { fd, start } => {
            match world.env.read_blocking(pid, fd, 4096) {
                // Nothing yet: park until the response write wakes us.
                Ok(None) => Step::Block,
                Ok(Some(data)) => {
                    let end = world.env.machine().kernel().now().as_nanos();
                    world.active -= 1;
                    let ok = data.starts_with(b"200 ");
                    if ok {
                        world.latencies.push(end - start);
                    } else {
                        world.refused += 1;
                    }
                    world.env.machine().kernel().recorder().record(Span {
                        cat: "httpd",
                        name: if ok { "request" } else { "refused" },
                        start,
                        end,
                        tid: tid.raw(),
                        seq: (world.latencies.len() + world.refused as usize) as u64,
                    });
                    let _ = world.env.close(pid, fd);
                    Step::Done
                }
                Err(e) => {
                    world.active -= 1;
                    world.fail(pid, e);
                    Step::Done
                }
            }
        }
    })
}

// ----- building and running the scenario -----------------------------------

/// Builds the world: one machine, `users` accounts with private home pages
/// under `/persist/home`, netd, the trusted launcher listening, and
/// `clients` request programs scheduled but not yet run.
pub fn build_httpd(params: HttpdParams) -> Result<(HttpdWorld, Scheduler<HttpdWorld>)> {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let mut auth = AuthSystem::new();
    let netd = Netd::start(&mut env, init, "internet")?;

    env.mkdir(init, "/persist/home", None)?;
    let mut usernames = Vec::new();
    for u in 0..params.users.max(1) {
        let name = format!("user{u}");
        let user = env.create_user(&name)?;
        auth.register(AuthService::new(user.clone(), &format!("pw-{name}")));
        env.mkdir(init, &format!("/persist/home/{name}"), None)?;
        env.write_file_as(
            init,
            &format!("/persist/home/{name}/index.html"),
            format!("<html>{name}'s private page</html>").as_bytes(),
            Some(user.private_file_label()),
        )?;
        usernames.push(name);
    }

    // The launcher is the trusted component: it owns the network taint
    // category (granted by the boot environment, which allocated it), so
    // it can run untainted while looking at network data — and therefore
    // spawn workers, create job pipes and authenticate.  That ownership
    // IS its trust: everything else in the server runs without any
    // cross-user privilege.
    let launcher = env.spawn_with_label(init, "/usr/sbin/httpd", vec![netd.taint], vec![])?;
    // The launcher keeps a server-side descriptor per live connection
    // (one page of container quota each); provision its process container
    // for the full burst up front.  The launcher's own thread moves the
    // quota down from the root's infinite pool — it owns its container's
    // write-protect category, which init (label restored after spawn)
    // does not.
    {
        let pc = env.process(launcher)?.process_container;
        let launcher_thread = env.process(launcher)?.thread;
        let kernel = env.kernel_mut();
        let kroot = kernel.root_container();
        kernel.trap_quota_move(launcher_thread, kroot, pc, 256 * 1024 * 1024)?;
    }
    let listener = netd.listen(&mut env, launcher)?;

    if params.trace_capacity > 0 {
        env.kernel_mut().enable_syscall_trace(params.trace_capacity);
    }
    if params.recorder_capacity > 0 {
        env.kernel_mut()
            .enable_flight_recorder(params.recorder_capacity);
    }

    let mut sched: Scheduler<HttpdWorld> = Scheduler::new(SchedConfig::new().seed(params.seed));
    let launcher_thread = env.process(launcher)?.thread;
    sched.spawn(launcher_thread, launcher_program(launcher, listener.fd));

    let mut world = HttpdWorld {
        env,
        netd,
        auth,
        launcher,
        listener,
        workers: HashMap::new(),
        creds: HashMap::new(),
        spawned: Vec::new(),
        shutdown: false,
        expected: params.clients as u64,
        served: 0,
        denied: 0,
        refused: 0,
        active: 0,
        high_water: 0,
        latencies: Vec::new(),
        failures: Vec::new(),
    };
    for i in 0..params.clients {
        let username = usernames[i % usernames.len()].clone();
        let password = if params.wrong_every > 0 && i % params.wrong_every == params.wrong_every - 1
        {
            "wrong-password".to_string()
        } else {
            format!("pw-{username}")
        };
        let pid =
            world
                .netd
                .spawn_tainted(&mut world.env, init, &format!("/usr/bin/client-{i}"))?;
        let thread = world.env.process(pid)?.thread;
        let request = format!("{username} {password} index.html\n");
        sched.spawn(thread, client_program(pid, world.listener, request));
    }
    Ok((world, sched))
}

fn percentile(sorted: &[u64], q: f64) -> SimDuration {
    if sorted.is_empty() {
        return SimDuration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    SimDuration::from_nanos(sorted[idx.min(sorted.len() - 1)])
}

/// Runs the full scenario to completion and reports what happened.
///
/// The scheduler is run in slices: a program cannot admit the programs it
/// spawned (the launcher spawning a worker) to the scheduler itself, so
/// each slice ends with newly spawned programs admitted, and once every
/// expected request resolved, the driver flips `shutdown` and wakes the
/// parked launcher (the external-wake path: a parked thread is still
/// reachable), which hangs up the job pipes so the workers retire.
pub fn run_httpd(params: HttpdParams) -> Result<(HttpdWorld, HttpdReport)> {
    let (mut world, mut sched) = build_httpd(params)?;
    let kernel_before = world.env.machine().kernel().stats();
    let dispatch_before = world.env.machine().kernel().dispatch_stats();
    let start = world.env.machine().kernel().now();

    let stop = loop {
        let report = sched.run(&mut world, RunLimit::to_completion());
        let newly: Vec<(ObjectId, Program<HttpdWorld>)> = world.spawned.drain(..).collect();
        let admitted = newly.len();
        for (tid, program) in newly {
            sched.spawn(tid, program);
        }
        if admitted > 0 {
            continue;
        }
        match report.stop {
            StopReason::AllBlocked
                if !world.shutdown && world.served + world.denied >= world.expected =>
            {
                world.shutdown = true;
                let launcher_thread = world.env.process(world.launcher)?.thread;
                world.env.kernel_mut().sched_wake(launcher_thread)?;
            }
            // AllComplete is the healthy exit; anything else is a genuine
            // deadlock or exhaustion, surfaced rather than spun on.
            stop => break stop,
        }
    };

    let elapsed = world.env.machine().kernel().now() - start;
    let kernel = world.env.machine().kernel().stats().since(&kernel_before);
    let dispatch = world
        .env
        .machine()
        .kernel()
        .dispatch_stats()
        .since(&dispatch_before);
    let mut sorted = world.latencies.clone();
    sorted.sort_unstable();
    let resolved = world.served + world.denied;
    let secs = elapsed.as_secs_f64();
    let report = HttpdReport {
        stop,
        sched: sched.stats(),
        served: world.served,
        denied: world.denied,
        refused: world.refused,
        high_water: world.high_water,
        requests_per_sec: if secs > 0.0 {
            resolved as f64 / secs
        } else {
            0.0
        },
        p50_latency: percentile(&sorted, 0.50),
        p99_latency: percentile(&sorted, 0.99),
        elapsed,
        kernel,
        dispatch,
    };
    Ok((world, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_kernel::TraceRecord;

    #[test]
    fn serves_every_client_its_own_users_page() {
        let params = HttpdParams {
            clients: 60,
            users: 4,
            wrong_every: 0,
            seed: 7,
            trace_capacity: 0,
            recorder_capacity: 0,
        };
        let (world, report) = run_httpd(params).unwrap();
        assert!(world.failures.is_empty(), "failures: {:?}", world.failures);
        assert_eq!(report.stop, StopReason::AllComplete);
        assert_eq!(report.served, 60);
        assert_eq!(report.denied, 0);
        assert_eq!(report.refused, 0);
        assert_eq!(world.latencies.len(), 60);
        assert_eq!(world.workers.len(), 4, "one worker per user, reused");
        assert!(report.requests_per_sec > 0.0);
        assert!(report.p99_latency >= report.p50_latency);
        // All clients connect before the first response lands, so the
        // high-water mark shows genuine concurrency.
        assert!(report.high_water >= 30, "got {}", report.high_water);
    }

    #[test]
    fn wrong_passwords_are_refused_not_served() {
        let params = HttpdParams {
            clients: 24,
            users: 8,
            wrong_every: 8, // 3 wrong clients, spread over distinct users
            seed: 11,
            trace_capacity: 0,
            recorder_capacity: 0,
        };
        let (world, report) = run_httpd(params).unwrap();
        assert!(world.failures.is_empty(), "failures: {:?}", world.failures);
        assert_eq!(report.denied, 3);
        assert_eq!(report.served, 21);
        assert_eq!(report.refused, 3, "clients observe their 403s");
        assert_eq!(world.latencies.len(), 21);
    }

    #[test]
    fn parked_clients_consume_zero_quanta() {
        let params = HttpdParams {
            clients: 40,
            users: 4,
            wrong_every: 0,
            seed: 3,
            trace_capacity: 0,
            recorder_capacity: 0,
        };
        let (world, report) = run_httpd(params).unwrap();
        assert!(world.failures.is_empty(), "failures: {:?}", world.failures);
        // Every blocked wait (client awaiting its response, worker on an
        // empty job pipe, launcher on an empty accept queue) parks in the
        // wait set: the quanta bill stays linear in the work, not in time
        // spent waiting.
        assert!(
            report.sched.quanta <= 12 * 40 + 200,
            "busy-waiting detected: {} quanta for 40 requests",
            report.sched.quanta
        );
        assert!(
            report.sched.completion_wakeups > 0,
            "wakes must be event-driven"
        );
    }

    #[test]
    fn same_seed_replays_identical_run() {
        let params = HttpdParams {
            clients: 30,
            users: 3,
            wrong_every: 0,
            seed: 42,
            trace_capacity: 1 << 20,
            recorder_capacity: 0,
        };
        let (w1, r1) = run_httpd(params).unwrap();
        let (w2, r2) = run_httpd(params).unwrap();
        assert_eq!(w1.latencies, w2.latencies);
        assert_eq!(r1.sched.quanta, r2.sched.quanta);
        let t1: Vec<TraceRecord> = w1
            .env
            .machine()
            .kernel()
            .syscall_trace()
            .unwrap()
            .records()
            .copied()
            .collect();
        let t2: Vec<TraceRecord> = w2
            .env
            .machine()
            .kernel()
            .syscall_trace()
            .unwrap()
            .records()
            .copied()
            .collect();
        assert!(!t1.is_empty());
        assert_eq!(t1, t2, "same seed must replay the identical syscall stream");
    }
}
