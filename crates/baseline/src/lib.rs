//! Baseline operating-system models used as Figure 12/13 comparators.
//!
//! The paper compares HiStar against Fedora Core 5 Linux (ext3) and
//! OpenBSD 3.9 (in-memory mfs).  We obviously cannot run those kernels here,
//! so this crate provides *monolithic-OS cost models* with the structural
//! properties the paper credits for their results: a 9-system-call
//! fork/exec path with a pre-zeroed page pool, in-kernel pipes, an ext3-like
//! journal that synchronously commits only the affected metadata (rather
//! than checkpointing the world), and directory-clustered file layout that
//! benefits from the disk's read look-ahead.  All times are charged to the
//! same simulated disk/clock models as the HiStar side, so the comparison is
//! apples-to-apples at the hardware level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use histar_sim::disk::BLOCK_SIZE;
use histar_sim::{CostModel, DiskConfig, OsFlavor, SimClock, SimDisk, SimDuration};
use std::collections::HashMap;

/// A monolithic-kernel Unix model (Linux-like or OpenBSD-like).
#[derive(Debug)]
pub struct BaselineOs {
    /// Which OS this models.
    pub flavor: OsFlavor,
    cost: CostModel,
    clock: SimClock,
    disk: SimDisk,
    /// In-memory page cache: path → contents.
    files: HashMap<String, Vec<u8>>,
    /// Next free byte on disk for newly allocated files.
    alloc_cursor: u64,
    /// Journal head (sequential region near the start of the disk).
    journal_cursor: u64,
    /// Path → on-disk offset for files that have been written back.
    layout: HashMap<String, u64>,
    /// Whether the file system is in-memory only (OpenBSD mfs in the paper).
    memory_fs: bool,
}

impl BaselineOs {
    /// Creates a Linux-like baseline (ext3 on the simulated IDE disk).
    pub fn linux() -> BaselineOs {
        BaselineOs::new(OsFlavor::LinuxLike, DiskConfig::default(), false)
    }

    /// Creates an OpenBSD-like baseline (in-memory mfs, as benchmarked in
    /// the paper).
    pub fn openbsd() -> BaselineOs {
        BaselineOs::new(OsFlavor::OpenBsdLike, DiskConfig::default(), true)
    }

    /// Creates a baseline with an explicit disk configuration (used by the
    /// "no IDE disk prefetch" row).
    pub fn with_disk(flavor: OsFlavor, disk: DiskConfig) -> BaselineOs {
        BaselineOs::new(flavor, disk, flavor == OsFlavor::OpenBsdLike)
    }

    fn new(flavor: OsFlavor, disk_config: DiskConfig, memory_fs: bool) -> BaselineOs {
        let clock = SimClock::new();
        BaselineOs {
            flavor,
            cost: CostModel::for_flavor(flavor),
            disk: SimDisk::new(disk_config, clock.clone()),
            clock,
            files: HashMap::new(),
            alloc_cursor: 128 * 1024 * 1024,
            journal_cursor: 4096,
            layout: HashMap::new(),
            memory_fs,
        }
    }

    /// The simulated clock (shared with the disk).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn syscall(&self, n: u64) {
        self.clock.advance(self.cost.syscall * n);
    }

    /// One pipe round trip of `bytes` bytes: 4 system calls (two writes, two
    /// reads), two scheduler wakeups and two context switches, plus copies.
    pub fn pipe_round_trip(&self, bytes: u64) -> SimDuration {
        let start = self.clock.now();
        self.syscall(4);
        self.clock.advance(self.cost.wakeup * 2);
        self.clock.advance(self.cost.context_switch_full * 2);
        self.clock.advance(self.cost.copy(bytes * 2));
        self.clock.now() - start
    }

    /// `fork` + `exec /bin/true` + `exit` + `wait`: 9 system calls on the
    /// monolithic kernels, with copy-on-write page-table setup and a
    /// pre-zeroed page pool for the new image.
    pub fn fork_exec_true(&self) -> SimDuration {
        let start = self.clock.now();
        self.syscall(9);
        // Page-table setup / COW bookkeeping for a small shell-sized parent,
        // plus faulting in a handful of pre-zeroed pages for /bin/true.
        self.clock.advance(self.cost.page_copy * 40);
        self.clock.advance(self.cost.page_zero * 170);
        self.clock.advance(self.cost.page_fault * 10);
        self.clock.advance(self.cost.context_switch_full * 2);
        self.clock.now() - start
    }

    /// With dynamic linking the paper's numbers roughly double; modelled as
    /// extra page faults and relocation work.
    pub fn fork_exec_true_dynamic(&self) -> SimDuration {
        let t = self.fork_exec_true();
        let start = self.clock.now();
        self.clock.advance(self.cost.page_fault * 60);
        self.clock.advance(self.cost.compute(1_200));
        t + (self.clock.now() - start)
    }

    // ----- LFS small-file benchmark ----------------------------------------

    /// Creates one small file of `size` bytes (async: page-cache only).
    pub fn create_file(&mut self, path: &str, size: usize) {
        self.syscall(3); // open, write, close
        self.clock.advance(self.cost.copy(size as u64));
        self.clock.advance(self.cost.compute(40)); // dcache/inode work
        self.files.insert(path.to_string(), vec![0xaa; size]);
    }

    /// `fsync` after creating `path`: an ext3-style journal commit (one
    /// sequential journal write + barrier) plus the data block write-back.
    pub fn fsync_file(&mut self, path: &str) {
        self.syscall(1);
        if self.memory_fs {
            return;
        }
        let size = self.files.get(path).map_or(0, Vec::len) as u64;
        // Journal commit record (sequential-ish but each commit waits for
        // the platter: ~one rotation), then data + inode writeback.
        let journal_off = self.journal_cursor;
        self.journal_cursor = 4096 + (self.journal_cursor + 512) % (32 * 1024 * 1024);
        self.disk.write(journal_off, &vec![0u8; 512]);
        self.disk.flush();
        let data_off = *self.layout.entry(path.to_string()).or_insert_with(|| {
            let off = self.alloc_cursor;
            self.alloc_cursor += size.max(BLOCK_SIZE);
            off
        });
        self.disk
            .write(data_off, &vec![0u8; size.max(512) as usize]);
        self.disk.flush();
    }

    /// Reads a small file back.  `cached` serves it from the page cache;
    /// uncached reads hit the disk, where ext3's directory clustering plus
    /// the drive's read look-ahead make consecutive small files cheap.
    pub fn read_file(&mut self, path: &str, cached: bool) -> Vec<u8> {
        self.syscall(3);
        let data = self.files.get(path).cloned().unwrap_or_default();
        if !cached && !self.memory_fs {
            let off = *self.layout.get(path).unwrap_or(&0);
            self.disk.read(off, data.len().max(1024) as u64);
        } else {
            self.clock.advance(self.cost.copy(data.len() as u64));
        }
        data
    }

    /// Unlinks a small file (async).
    pub fn unlink_file(&mut self, path: &str) {
        self.syscall(1);
        self.clock.advance(self.cost.compute(30));
        self.files.remove(path);
    }

    /// `fsync` of the directory after an unlink: a single journal commit.
    pub fn fsync_unlink(&mut self) {
        self.syscall(1);
        if self.memory_fs {
            return;
        }
        let journal_off = self.journal_cursor;
        self.journal_cursor = 4096 + (self.journal_cursor + 512) % (32 * 1024 * 1024);
        self.disk.write(journal_off, &vec![0u8; 512]);
        self.disk.flush();
    }

    // ----- LFS large-file benchmark -----------------------------------------

    /// Sequentially writes a large file in `chunk`-byte pieces and fsyncs
    /// once at the end.  ext3's block-based allocation costs it a little
    /// extra seeking compared to an extent-based layout.
    pub fn write_large_sequential(&mut self, total: u64, chunk: u64) -> SimDuration {
        let start = self.clock.now();
        let base = self.alloc_cursor;
        let mut off = 0;
        let buf = vec![0x5au8; chunk as usize];
        while off < total {
            self.syscall(1);
            self.clock.advance(self.cost.copy(chunk));
            off += chunk;
        }
        // Write-back at fsync: mostly sequential, with periodic indirect
        // block updates for a block-mapped file system.
        let mut written = 0;
        while written < total {
            let extent = (4 * 1024 * 1024).min(total - written);
            self.disk.write(base + written, &buf[..1]);
            self.disk.write(base + written, &vec![0u8; extent as usize]);
            written += extent;
            if self.flavor == OsFlavor::LinuxLike {
                // Indirect-block update: a short seek away.
                self.disk
                    .write(base + written + 8 * 1024 * 1024, &[0u8; 512]);
            }
        }
        self.disk.flush();
        self.alloc_cursor += total;
        self.clock.now() - start
    }

    /// Random synchronous writes of `chunk` bytes each into an existing
    /// large file: each write flushes two pages in place.
    pub fn write_large_random_sync(
        &mut self,
        total: u64,
        chunk: u64,
        file_size: u64,
    ) -> SimDuration {
        let start = self.clock.now();
        let base = self.alloc_cursor;
        let mut rng = histar_sim::SimRng::new(42);
        let mut written = 0;
        while written < total {
            self.syscall(2);
            let off = rng.next_below(file_size / chunk) * chunk;
            self.disk.write(base + off, &vec![0u8; BLOCK_SIZE as usize]);
            self.disk
                .write(base + off + BLOCK_SIZE, &vec![0u8; BLOCK_SIZE as usize]);
            self.disk.flush();
            written += chunk;
        }
        self.clock.now() - start
    }

    /// Uncached sequential read of a large file.
    pub fn read_large_sequential(&mut self, total: u64, chunk: u64) -> SimDuration {
        let start = self.clock.now();
        let base = 256 * 1024 * 1024;
        let mut off = 0;
        while off < total {
            self.syscall(1);
            self.disk.read(base + off, chunk);
            off += chunk;
        }
        self.clock.now() - start
    }

    // ----- application benchmarks (Figure 13) -------------------------------

    /// Building the HiStar kernel: compile `files` sources of `file_size`
    /// bytes each (fork/exec of cc1 per file plus byte-proportional compute).
    pub fn build_kernel(&mut self, files: usize, file_size: usize) -> SimDuration {
        let start = self.clock.now();
        for i in 0..files {
            self.fork_exec_true();
            self.create_file(&format!("/tmp/obj{i}.o"), file_size / 2);
            self.clock.advance(self.cost.compute(file_size as u64 * 20));
        }
        self.clock.now() - start
    }

    /// Downloading `size` bytes over a 100 Mbps link with wget.
    pub fn wget(&mut self, size: u64) -> SimDuration {
        let start = self.clock.now();
        let mut net =
            histar_sim::SimNetwork::new(histar_sim::NetConfig::default(), self.clock.clone());
        let mut received = 0;
        while received < size {
            let chunk = (32 * 1024).min(size - received);
            net.receive(chunk);
            self.syscall(2);
            self.clock.advance(self.cost.copy(chunk));
            received += chunk;
        }
        self.clock.now() - start
    }

    /// Virus-checking a `size`-byte file (signature matching is
    /// byte-proportional CPU work, identical on every OS).
    pub fn virus_scan(&mut self, size: u64) -> SimDuration {
        let start = self.clock.now();
        self.syscall(size / (64 * 1024) + 3);
        self.clock.advance(self.cost.compute(size));
        self.clock.now() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_round_trip_is_microseconds() {
        let linux = BaselineOs::linux();
        let bsd = BaselineOs::openbsd();
        let tl = linux.pipe_round_trip(8);
        let tb = bsd.pipe_round_trip(8);
        assert!(tl.as_micros_f64() > 1.0 && tl.as_micros_f64() < 20.0);
        assert!(tb < tl, "OpenBSD IPC is faster than Linux in the paper");
    }

    #[test]
    fn fork_exec_is_fraction_of_a_millisecond() {
        let linux = BaselineOs::linux();
        let t = linux.fork_exec_true();
        assert!(
            t.as_micros_f64() > 50.0 && t.as_micros_f64() < 1000.0,
            "{t}"
        );
        let td = linux.fork_exec_true_dynamic();
        assert!(td > t, "dynamic linking costs more");
    }

    #[test]
    fn sync_creates_are_dominated_by_the_disk() {
        let mut linux = BaselineOs::linux();
        let async_time = {
            let start = linux.clock().now();
            for i in 0..100 {
                linux.create_file(&format!("/f{i}"), 1024);
            }
            linux.clock().now() - start
        };
        let sync_time = {
            let start = linux.clock().now();
            for i in 0..100 {
                linux.create_file(&format!("/g{i}"), 1024);
                linux.fsync_file(&format!("/g{i}"));
            }
            linux.clock().now() - start
        };
        assert!(
            sync_time.as_nanos() > async_time.as_nanos() * 100,
            "sync {sync_time} vs async {async_time}"
        );
        // OpenBSD's mfs makes fsync nearly free (the paper could not run it).
        let mut bsd = BaselineOs::openbsd();
        bsd.create_file("/x", 1024);
        let before = bsd.clock().now();
        bsd.fsync_file("/x");
        assert!((bsd.clock().now() - before).as_micros() < 10);
    }

    #[test]
    fn file_contents_round_trip() {
        let mut linux = BaselineOs::linux();
        linux.create_file("/data", 2048);
        assert_eq!(linux.read_file("/data", true).len(), 2048);
        linux.unlink_file("/data");
        assert!(linux.read_file("/data", true).is_empty());
    }

    #[test]
    fn large_file_phases_have_plausible_shape() {
        let mut linux = BaselineOs::linux();
        let seq = linux.write_large_sequential(16 * 1024 * 1024, 8192);
        let rand = linux.write_large_random_sync(1024 * 1024, 8192, 16 * 1024 * 1024);
        let read = linux.read_large_sequential(16 * 1024 * 1024, 8192);
        // Random synchronous writes are far slower per byte than sequential.
        let seq_per_byte = seq.as_nanos() as f64 / (16.0 * 1024.0 * 1024.0);
        let rand_per_byte = rand.as_nanos() as f64 / (1024.0 * 1024.0);
        assert!(rand_per_byte > seq_per_byte * 10.0);
        assert!(read > SimDuration::ZERO);
    }

    #[test]
    fn application_benchmarks_run() {
        let mut linux = BaselineOs::linux();
        let build = linux.build_kernel(20, 20 * 1024);
        let wget = linux.wget(10 * 1024 * 1024);
        let scan = linux.virus_scan(10 * 1024 * 1024);
        assert!(build > SimDuration::ZERO);
        // 10 MB at 100 Mbps is at least 0.8 s.
        assert!(wget.as_millis() > 800, "{wget}");
        // 10 MB at ~170 ns/byte is ~1.7 s.
        assert!(scan.as_millis() > 1000, "{scan}");
    }
}
