//! The web-server benchmark: the §6.1 label-isolated httpd under load.
//!
//! A burst of concurrent clients (10⁴ in the full configuration) connect
//! through netd, authenticate, and are each served their own user's
//! private page by that user's worker.  Everything waits on *real
//! blocking I/O* — parked threads in the scheduler's wait set, woken by
//! kernel readiness completions — so the benchmark asserts the
//! no-busy-wait property directly from the scheduler counters: the
//! quanta bill must stay linear in the requests served, regardless of
//! how long anything waited.
//!
//! Reported numbers are *simulated* time, like every other harness in
//! this crate.

use crate::report::{BenchJson, Row, Table};
use histar_httpd::{run_httpd, HttpdParams, HttpdReport};

/// Parameters of the web-server benchmark.
#[derive(Clone, Copy, Debug)]
pub struct HttpdBenchParams {
    /// Concurrent clients (one request each).
    pub clients: usize,
    /// Distinct user accounts (and therefore workers).
    pub users: usize,
    /// Scheduler seed.
    pub seed: u64,
}

impl HttpdBenchParams {
    /// Quick parameters for tests and CI smoke runs.
    pub fn smoke() -> HttpdBenchParams {
        HttpdBenchParams {
            clients: 400,
            users: 8,
            seed: 0x4177,
        }
    }

    /// The parameters the `httpd_bench` binary reports: the paper-scale
    /// burst of ten thousand concurrent clients.
    pub fn full() -> HttpdBenchParams {
        HttpdBenchParams {
            clients: 10_000,
            users: 16,
            seed: 0x4177,
        }
    }
}

/// Quanta allowed per resolved request before the run counts as
/// busy-waiting.  Each request needs a bounded number of turns from its
/// client, the launcher and a worker; every wait in between parks.
const QUANTA_PER_REQUEST: u64 = 16;
/// Fixed quanta allowance for boot, worker spawning and shutdown.
const QUANTA_FLOOR: u64 = 512;

/// Runs the scenario and returns the report, asserting the structural
/// properties the benchmark exists to demonstrate.
pub fn measure(params: HttpdBenchParams) -> HttpdReport {
    let (world, report) = run_httpd(HttpdParams {
        clients: params.clients,
        users: params.users,
        wrong_every: 0,
        seed: params.seed,
        trace_capacity: 0,
        recorder_capacity: 0,
    })
    .expect("httpd scenario");
    assert!(
        world.failures.is_empty(),
        "httpd failures: {:?}",
        &world.failures[..world.failures.len().min(5)]
    );
    assert_eq!(
        report.served, params.clients as u64,
        "every client must be served"
    );
    assert_eq!(
        report.high_water, params.clients,
        "the whole burst must be concurrently connected at the peak"
    );
    // The no-busy-wait assertion: with every blocked thread parked in the
    // wait set, quanta stay linear in the work.  A polling loop anywhere
    // (launcher re-checking an empty accept queue, a client spinning on
    // its response) breaks this bound immediately at 10⁴ clients.
    let budget = QUANTA_PER_REQUEST * report.served + QUANTA_FLOOR;
    assert!(
        report.sched.quanta <= budget,
        "busy-waiting detected: {} quanta for {} requests (budget {budget})",
        report.sched.quanta,
        report.served
    );
    assert!(
        report.sched.completion_wakeups > 0,
        "wakes must come from kernel readiness completions"
    );
    report
}

/// Runs a smaller flight-recorder-enabled pass and returns its
/// chrome-trace JSON dump — the `TRACE_httpd.json` artifact CI uploads so
/// per-request spans can be inspected in a trace viewer.
pub fn chrome_trace(params: HttpdBenchParams) -> String {
    let (world, _report) = run_httpd(HttpdParams {
        clients: params.clients.min(64),
        users: params.users,
        wrong_every: 0,
        seed: params.seed,
        trace_capacity: 0,
        recorder_capacity: 1 << 16,
    })
    .expect("httpd scenario");
    world.env.machine().kernel().recorder().chrome_trace_json()
}

/// Runs the benchmark and renders the table plus the machine-readable
/// report.
pub fn run(params: HttpdBenchParams) -> (Table, BenchJson) {
    let report = measure(params);

    let mut table = Table::new(&format!(
        "httpd: {} concurrent clients, {} users, blocking I/O (quantum 50us)",
        params.clients, params.users
    ));
    table.push(Row::new("total simulated time").measure("HiStar", report.elapsed));
    table.push(Row::new("p50 request latency").measure("HiStar", report.p50_latency));
    table.push(Row::new("p99 request latency").measure("HiStar", report.p99_latency));

    let ticks = report.elapsed.as_nanos();
    let mut json = BenchJson::new("httpd");
    json.metric("requests_per_sec", report.requests_per_sec, ticks);
    json.metric(
        "p50_latency_ns",
        report.p50_latency.as_nanos() as f64,
        ticks,
    );
    json.metric(
        "p99_latency_ns",
        report.p99_latency.as_nanos() as f64,
        ticks,
    );
    json.metric(
        "concurrent_clients_high_water",
        report.high_water as f64,
        ticks,
    );
    json.metric(
        "quanta_per_request",
        report.sched.quanta as f64 / report.served.max(1) as f64,
        ticks,
    );
    json.metric(
        "completion_wakeups",
        report.sched.completion_wakeups as f64,
        ticks,
    );
    (table, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_configuration_holds_the_structural_assertions() {
        let report = measure(HttpdBenchParams::smoke());
        assert_eq!(report.served, 400);
        assert!(report.requests_per_sec > 0.0);
        assert!(report.p99_latency >= report.p50_latency);
    }

    #[test]
    fn chrome_trace_contains_request_spans() {
        let trace = chrome_trace(HttpdBenchParams::smoke());
        assert!(
            trace.contains("\"request\""),
            "trace: {}",
            &trace[..200.min(trace.len())]
        );
    }
}
