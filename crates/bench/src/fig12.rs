//! Figure 12: microbenchmarks.
//!
//! Every row of the paper's Figure 12 has a generator here, for HiStar
//! (running the real Unix library over the real kernel and single-level
//! store) and for the Linux-like / OpenBSD-like baseline models.

use histar_apps as _;
use histar_baseline::BaselineOs;
use histar_sim::{DiskConfig, OsFlavor, SimClock, SimDuration, SimRng};
use histar_store::{SingleLevelStore, StoreConfig, SyncPolicy};
use histar_unix::fs::OpenFlags;
use histar_unix::process::ExitStatus;
use histar_unix::UnixEnv;

use crate::report::{Row, Table};

/// How the LFS small-file phases are synchronized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// No synchronization (page cache / object cache only).
    Async,
    /// `fsync` after every operation.
    PerFile,
    /// A single whole-system sync at the end of the phase (HiStar only).
    Group,
}

/// The IPC benchmark: average simulated time per 8-byte pipe round trip.
pub fn histar_ipc_rtt(rounds: u64) -> SimDuration {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    // Two unidirectional pipes, created before the fork so both processes
    // share the descriptor segments (as the paper's benchmark does).
    let (r1, w1) = env.pipe(init).expect("pipe 1");
    let (r2, w2) = env.pipe(init).expect("pipe 2");
    let child = env.fork(init).expect("fork for the IPC benchmark");
    let start = env.machine().clock().now();
    for _ in 0..rounds {
        env.write(init, w1, b"12345678").expect("parent write");
        let m = env.read(child, r1, 8).expect("child read");
        env.write(child, w2, &m).expect("child write");
        env.read(init, r2, 8).expect("parent read");
    }
    let total = env.machine().clock().now() - start;
    SimDuration::from_nanos(total.as_nanos() / rounds)
}

/// fork + exec `/bin/true` + exit + wait, per iteration.
pub fn histar_fork_exec(iterations: u64) -> SimDuration {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/bin_true", &vec![0u8; 16 * 1024], None)
        .expect("install /bin/true");
    let start = env.machine().clock().now();
    for _ in 0..iterations {
        let child = env.fork(init).expect("fork");
        env.exec(child, "/bin_true").expect("exec");
        env.exit(child, ExitStatus::Exited(0)).expect("exit");
        env.wait(init, child).expect("wait");
    }
    let total = env.machine().clock().now() - start;
    SimDuration::from_nanos(total.as_nanos() / iterations)
}

/// The `spawn` fast path (build the process directly), per iteration.
pub fn histar_spawn(iterations: u64) -> SimDuration {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.write_file_as(init, "/bin_true", &vec![0u8; 16 * 1024], None)
        .expect("install /bin/true");
    let start = env.machine().clock().now();
    for _ in 0..iterations {
        let child = env.spawn(init, "/bin_true", None).expect("spawn");
        env.exit(child, ExitStatus::Exited(0)).expect("exit");
        env.wait(init, child).expect("wait");
    }
    let total = env.machine().clock().now() - start;
    SimDuration::from_nanos(total.as_nanos() / iterations)
}

/// Results of one LFS small-file run.
#[derive(Clone, Copy, Debug)]
pub struct LfsSmallResult {
    /// Time for the create phase.
    pub create: SimDuration,
    /// Time for the (cached) read phase.
    pub read: SimDuration,
    /// Time for the unlink phase.
    pub unlink: SimDuration,
}

/// The LFS small-file benchmark on HiStar: create, read and unlink `files`
/// files of `size` bytes under the given durability mode.
pub fn histar_lfs_small(files: usize, size: usize, mode: SyncMode) -> LfsSmallResult {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    env.mkdir(init, "/lfs", None).expect("mkdir /lfs");
    if mode == SyncMode::PerFile {
        env.machine_mut()
            .store_mut()
            .set_sync_policy(SyncPolicy::PerOperation);
    }
    let payload = vec![0x42u8; size];

    let start = env.machine().clock().now();
    for i in 0..files {
        let path = format!("/lfs/f{i}");
        env.write_file_as(init, &path, &payload, None)
            .expect("create");
        if mode == SyncMode::PerFile {
            env.fsync_path(init, &path).expect("fsync");
        }
    }
    if mode == SyncMode::Group {
        env.sync_all();
    }
    let create = env.machine().clock().now() - start;

    let start = env.machine().clock().now();
    for i in 0..files {
        let data = env
            .read_file_as(init, &format!("/lfs/f{i}"))
            .expect("read back");
        assert_eq!(data.len(), size);
    }
    let read = env.machine().clock().now() - start;

    let start = env.machine().clock().now();
    for i in 0..files {
        let path = format!("/lfs/f{i}");
        env.unlink(init, &path).expect("unlink");
        if mode == SyncMode::PerFile {
            env.fsync_path(init, &path).expect("fsync dir");
        }
    }
    if mode == SyncMode::Group {
        env.sync_all();
    }
    let unlink = env.machine().clock().now() - start;

    LfsSmallResult {
        create,
        read,
        unlink,
    }
}

/// Uncached small-file reads, measured at the single-level-store layer
/// (where the disk model and its read look-ahead live): `files` objects of
/// `size` bytes are written, checkpointed, evicted and read back.
pub fn histar_lfs_small_uncached_read(files: usize, size: usize, lookahead: bool) -> SimDuration {
    let disk = if lookahead {
        DiskConfig::default()
    } else {
        DiskConfig::no_lookahead()
    };
    let config = StoreConfig {
        disk,
        ..StoreConfig::default()
    };
    let mut store = SingleLevelStore::format(config, SimClock::new());
    let mut rng = SimRng::new(11);
    for i in 0..files as u64 {
        store.put(i, rng.bytes(size));
    }
    store.checkpoint();
    store.evict_clean();
    // Read in LFS's directory order, which is *near* but not identical to
    // on-disk order (here: all even-numbered files, then all odd ones).
    // With the drive's look-ahead enabled the skipped neighbours are already
    // in the track cache; without it, every skip costs a seek + rotation.
    let order: Vec<u64> = (0..files as u64)
        .step_by(2)
        .chain((1..files as u64).step_by(2))
        .collect();
    let start = store.disk().clock().now();
    for i in order {
        let data = store.get(i).expect("object read back");
        assert_eq!(data.len(), size);
    }
    store.disk().clock().now() - start
}

/// Results of one LFS large-file run.
#[derive(Clone, Copy, Debug)]
pub struct LfsLargeResult {
    /// Sequential write of the whole file (one fsync at the end).
    pub sequential_write: SimDuration,
    /// Random synchronous writes.
    pub random_sync_write: SimDuration,
    /// Uncached sequential read.
    pub uncached_read: SimDuration,
}

/// The LFS large-file benchmark on HiStar.
///
/// The sequential write goes through the Unix library; the synchronous
/// random writes and the uncached read are measured at the store layer,
/// where HiStar flushes modified segment pages in place.
pub fn histar_lfs_large(file_size: u64, chunk: u64) -> LfsLargeResult {
    // Sequential write through the Unix library, group-synced at the end.
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let start = env.machine().clock().now();
    let fd = env
        .open(init, "/big", OpenFlags::write_create())
        .expect("create big file");
    let buf = vec![0x5au8; chunk as usize];
    let mut off = 0;
    while off < file_size {
        env.write(init, fd, &buf).expect("sequential write");
        off += chunk;
    }
    env.close(init, fd).expect("close");
    env.sync_all();
    let sequential_write = env.machine().clock().now() - start;

    // Random synchronous writes: in-place page flushes at the store layer.
    let mut store = SingleLevelStore::format(StoreConfig::default(), SimClock::new());
    let mut rng = SimRng::new(3);
    store.put(1, vec![0u8; file_size as usize]);
    store.checkpoint();
    let pages_per_chunk = chunk / 4096;
    let writes = file_size / chunk;
    let start = store.disk().clock().now();
    for _ in 0..writes {
        let page = rng.next_below(file_size / 4096 - pages_per_chunk);
        let pages: Vec<u64> = (page..page + pages_per_chunk).collect();
        store
            .sync_pages_in_place(1, &pages)
            .expect("in-place page flush");
    }
    let random_sync_write = store.disk().clock().now() - start;

    // Uncached sequential read of the whole object.
    store.evict_clean();
    let start = store.disk().clock().now();
    let data = store.get(1).expect("large object read");
    assert_eq!(data.len(), file_size as usize);
    let uncached_read = store.disk().clock().now() - start;

    LfsLargeResult {
        sequential_write,
        random_sync_write,
        uncached_read,
    }
}

/// Scale factors used by the default `fig12` binary so it completes in
/// seconds of wall-clock time; EXPERIMENTS.md records them.
#[derive(Clone, Copy, Debug)]
pub struct Fig12Params {
    /// Pipe round trips (paper: 1,000,000).
    pub ipc_rounds: u64,
    /// fork/exec and spawn iterations.
    pub proc_iterations: u64,
    /// Small files per LFS phase (paper: 10,000).
    pub small_files: usize,
    /// Small-file size in bytes (paper: 1 kB).
    pub small_size: usize,
    /// Large-file size in bytes (paper: 100 MB).
    pub large_size: u64,
    /// Large-file chunk size (paper: 8 kB).
    pub large_chunk: u64,
}

impl Default for Fig12Params {
    fn default() -> Fig12Params {
        Fig12Params {
            ipc_rounds: 5_000,
            proc_iterations: 20,
            small_files: 500,
            small_size: 1024,
            large_size: 32 * 1024 * 1024,
            large_chunk: 8 * 1024,
        }
    }
}

impl Fig12Params {
    /// A tiny parameter set for unit tests and Criterion runs.
    pub fn smoke() -> Fig12Params {
        Fig12Params {
            ipc_rounds: 200,
            proc_iterations: 3,
            small_files: 40,
            small_size: 1024,
            large_size: 4 * 1024 * 1024,
            large_chunk: 8 * 1024,
        }
    }
}

/// Runs every row of Figure 12 and assembles the table.
pub fn run(params: Fig12Params) -> Table {
    let mut table = Table::new("Figure 12: microbenchmark results (simulated time)");

    // IPC.
    let histar_rtt = histar_ipc_rtt(params.ipc_rounds);
    let linux_rtt = BaselineOs::linux().pipe_round_trip(8);
    let bsd_rtt = BaselineOs::openbsd().pipe_round_trip(8);
    table.push(
        Row::new("IPC benchmark, per RTT")
            .measure("HiStar", histar_rtt)
            .measure("Linux", linux_rtt)
            .measure("OpenBSD", bsd_rtt)
            .paper_value("HiStar", "3.11us")
            .paper_value("Linux", "4.32us")
            .paper_value("OpenBSD", "2.13us"),
    );

    // fork/exec and spawn.
    let histar_fork = histar_fork_exec(params.proc_iterations);
    let linux_fork = BaselineOs::linux().fork_exec_true();
    let bsd_fork = BaselineOs::openbsd().fork_exec_true();
    table.push(
        Row::new("Fork/exec, per iteration")
            .measure("HiStar", histar_fork)
            .measure("Linux", linux_fork)
            .measure("OpenBSD", bsd_fork)
            .paper_value("HiStar", "1.35ms")
            .paper_value("Linux", "0.18ms")
            .paper_value("OpenBSD", "0.18ms"),
    );
    table.push(
        Row::new("Spawn, per iteration")
            .measure("HiStar", histar_spawn(params.proc_iterations))
            .paper_value("HiStar", "0.47ms"),
    );

    // LFS small file phases.
    let histar_async = histar_lfs_small(params.small_files, params.small_size, SyncMode::Async);
    let histar_sync = histar_lfs_small(params.small_files, params.small_size, SyncMode::PerFile);
    let histar_group = histar_lfs_small(params.small_files, params.small_size, SyncMode::Group);
    let (linux_async, linux_sync) = baseline_lfs_small(OsFlavor::LinuxLike, params);
    let (bsd_async, _) = baseline_lfs_small(OsFlavor::OpenBsdLike, params);

    table.push(
        Row::new(&format!(
            "LFS small ({} files), create, async",
            params.small_files
        ))
        .measure("HiStar", histar_async.create)
        .measure("Linux", linux_async.create)
        .measure("OpenBSD", bsd_async.create)
        .paper_value("HiStar", "0.31s/10k")
        .paper_value("Linux", "0.316s/10k"),
    );
    table.push(
        Row::new("LFS small, create, per-file sync")
            .measure("HiStar", histar_sync.create)
            .measure("Linux", linux_sync.create)
            .paper_value("HiStar", "459s/10k")
            .paper_value("Linux", "558s/10k"),
    );
    table.push(
        Row::new("LFS small, create, group sync")
            .measure("HiStar", histar_group.create)
            .paper_value("HiStar", "2.57s/10k"),
    );
    table.push(
        Row::new("LFS small, read, cached")
            .measure("HiStar", histar_async.read)
            .measure("Linux", linux_async.read)
            .measure("OpenBSD", bsd_async.read)
            .paper_value("HiStar", "0.16s/10k")
            .paper_value("Linux", "0.068s/10k"),
    );
    table.push(
        Row::new("LFS small, read, uncached")
            .measure(
                "HiStar",
                histar_lfs_small_uncached_read(params.small_files, params.small_size, true),
            )
            .measure("Linux", {
                let mut linux = BaselineOs::linux();
                lfs_small_baseline_uncached(&mut linux, params)
            })
            .paper_value("HiStar", "6.49s/10k")
            .paper_value("Linux", "1.86s/10k"),
    );
    table.push(
        Row::new("LFS small, read, no IDE disk prefetch")
            .measure(
                "HiStar",
                histar_lfs_small_uncached_read(params.small_files, params.small_size, false),
            )
            .measure("Linux", {
                let mut linux =
                    BaselineOs::with_disk(OsFlavor::LinuxLike, DiskConfig::no_lookahead());
                lfs_small_baseline_uncached(&mut linux, params)
            })
            .paper_value("HiStar", "86.4s/10k")
            .paper_value("Linux", "86.6s/10k"),
    );
    table.push(
        Row::new("LFS small, unlink, async")
            .measure("HiStar", histar_async.unlink)
            .measure("Linux", linux_async.unlink)
            .paper_value("HiStar", "0.090s/10k")
            .paper_value("Linux", "0.244s/10k"),
    );
    table.push(
        Row::new("LFS small, unlink, per-file sync")
            .measure("HiStar", histar_sync.unlink)
            .measure("Linux", linux_sync.unlink)
            .paper_value("HiStar", "456s/10k")
            .paper_value("Linux", "173s/10k"),
    );
    table.push(
        Row::new("LFS small, unlink, group sync")
            .measure("HiStar", histar_group.unlink)
            .paper_value("HiStar", "0.38s/10k"),
    );

    // LFS large file phases.
    let histar_large = histar_lfs_large(params.large_size, params.large_chunk);
    let mut linux = BaselineOs::linux();
    let linux_seq = linux.write_large_sequential(params.large_size, params.large_chunk);
    let linux_rand =
        linux.write_large_random_sync(params.large_size / 8, params.large_chunk, params.large_size);
    let linux_read = linux.read_large_sequential(params.large_size, params.large_chunk);
    table.push(
        Row::new("LFS large, sequential write")
            .measure("HiStar", histar_large.sequential_write)
            .measure("Linux", linux_seq)
            .paper_value("HiStar", "2.14s/100MB")
            .paper_value("Linux", "3.88s/100MB"),
    );
    table.push(
        Row::new("LFS large, sync random write")
            .measure("HiStar", histar_large.random_sync_write)
            .measure("Linux", linux_rand)
            .paper_value("HiStar", "93.0s/100MB")
            .paper_value("Linux", "89.7s/100MB"),
    );
    table.push(
        Row::new("LFS large, uncached read")
            .measure("HiStar", histar_large.uncached_read)
            .measure("Linux", linux_read)
            .paper_value("HiStar", "1.96s/100MB")
            .paper_value("Linux", "1.80s/100MB"),
    );

    table
}

fn baseline_lfs_small(flavor: OsFlavor, params: Fig12Params) -> (LfsSmallResult, LfsSmallResult) {
    let run = |sync: bool| {
        let mut os = BaselineOs::with_disk(flavor, DiskConfig::default());
        let start = os.clock().now();
        for i in 0..params.small_files {
            os.create_file(&format!("/f{i}"), params.small_size);
            if sync {
                os.fsync_file(&format!("/f{i}"));
            }
        }
        let create = os.clock().now() - start;
        let start = os.clock().now();
        for i in 0..params.small_files {
            os.read_file(&format!("/f{i}"), true);
        }
        let read = os.clock().now() - start;
        let start = os.clock().now();
        for i in 0..params.small_files {
            os.unlink_file(&format!("/f{i}"));
            if sync {
                os.fsync_unlink();
            }
        }
        let unlink = os.clock().now() - start;
        LfsSmallResult {
            create,
            read,
            unlink,
        }
    };
    (run(false), run(true))
}

fn lfs_small_baseline_uncached(os: &mut BaselineOs, params: Fig12Params) -> SimDuration {
    for i in 0..params.small_files {
        os.create_file(&format!("/u{i}"), params.small_size);
        os.fsync_file(&format!("/u{i}"));
    }
    let start = os.clock().now();
    for i in 0..params.small_files {
        os.read_file(&format!("/u{i}"), false);
    }
    os.clock().now() - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_shape_matches_paper() {
        let histar = histar_ipc_rtt(500);
        let linux = BaselineOs::linux().pipe_round_trip(8);
        let bsd = BaselineOs::openbsd().pipe_round_trip(8);
        // Microsecond scale, OpenBSD fastest.
        assert!(histar.as_micros_f64() < 50.0);
        assert!(bsd < linux);
    }

    #[test]
    fn spawn_is_cheaper_than_fork_exec() {
        let fork = histar_fork_exec(3);
        let spawn = histar_spawn(3);
        assert!(
            spawn.as_nanos() * 2 < fork.as_nanos(),
            "spawn {spawn} should be well under fork/exec {fork}"
        );
    }

    #[test]
    fn sync_modes_order_correctly() {
        let async_run = histar_lfs_small(30, 1024, SyncMode::Async);
        let group = histar_lfs_small(30, 1024, SyncMode::Group);
        let per_file = histar_lfs_small(30, 1024, SyncMode::PerFile);
        assert!(per_file.create > group.create);
        assert!(per_file.create.as_nanos() > async_run.create.as_nanos() * 10);
    }

    #[test]
    fn lookahead_matters_for_uncached_reads() {
        let with = histar_lfs_small_uncached_read(100, 1024, true);
        let without = histar_lfs_small_uncached_read(100, 1024, false);
        assert!(without.as_nanos() > with.as_nanos() * 3);
    }

    #[test]
    fn large_file_random_writes_are_disk_bound() {
        let r = histar_lfs_large(8 * 1024 * 1024, 8192);
        assert!(r.random_sync_write > r.sequential_write);
        assert!(r.uncached_read > SimDuration::ZERO);
    }

    #[test]
    fn full_table_renders() {
        let table = run(Fig12Params::smoke());
        let text = table.render();
        assert!(text.contains("IPC benchmark"));
        assert!(text.contains("LFS large, uncached read"));
    }
}
