//! The torn-write-ahead-log crash harness behind the `crash-recovery` CI
//! job.
//!
//! A seeded workload writes labeled files into `/persist`, fsyncing some
//! of them and recording the write-ahead-log high-water mark after each
//! sync.  The harness then re-runs the identical workload once per *cut
//! point* — every log record boundary, plus a torn position inside each
//! record — zeroes the log from the cut onward, recovers the machine,
//! remounts `/persist`, and asserts:
//!
//! 1. the store's B+-tree object maps satisfy their structural
//!    invariants after replaying the truncated log;
//! 2. every file whose fsync completed at or before the cut is present
//!    with exactly its original contents (durability is prefix-closed);
//! 3. the secret file, *whenever* it survives, still refuses an
//!    unprivileged reader — labels recover with the data or not at all.

use histar_kernel::{Machine, MachineConfig, SyscallError};
use histar_obs::Recorder;
use histar_store::codec::unframe;
use histar_store::ReplayMode;
use histar_unix::{UnixEnv, UnixError};

/// One file the workload created, with the log offset that made it
/// durable (`None` for the deliberately unsynced file).
#[derive(Clone, Debug)]
struct ManifestEntry {
    path: String,
    content: Vec<u8>,
    synced_at: Option<u64>,
}

/// What one full torn-WAL sweep observed.
#[derive(Clone, Debug, Default)]
pub struct TornReport {
    /// Cut positions exercised (byte offsets into the log region).
    pub cuts: usize,
    /// Files found intact across all cuts.
    pub files_verified: usize,
    /// Cuts at which the secret file had recovered and was label-checked.
    pub secret_checks: usize,
    /// Per-phase recovery tick totals — `(phase, total simulated ns,
    /// occurrences)` summed over every recovery of the sweep, sorted by
    /// total descending (from the flight recorder's `recover` spans).
    pub recovery_phases: Vec<(&'static str, u64, u64)>,
}

/// Runs the seeded workload on a fresh machine, returning the machine
/// plus the manifest of `(path, content, wal offset after fsync)`.
fn run_workload(seed: u64) -> (UnixEnv, Vec<ManifestEntry>) {
    let config = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    let mut env = UnixEnv::on_machine(Machine::boot(config));
    let init = env.init_pid();
    let mut manifest = Vec::new();

    // A user whose private file must never lose its label.
    let alice = env.create_user("alice").unwrap();
    env.mkdir(init, "/persist/home", None).unwrap();
    let secret = b"alice's torn-wal secret".to_vec();
    env.write_file_as(
        init,
        "/persist/home/secret",
        &secret,
        Some(alice.private_file_label()),
    )
    .unwrap();
    env.fsync_path(init, "/persist/home/secret").unwrap();
    env.fsync_path(init, "/persist/home").unwrap();
    manifest.push(ManifestEntry {
        path: "/persist/home/secret".into(),
        content: secret,
        synced_at: Some(env.machine().store().wal_used()),
    });

    // Public files of varied sizes (including multi-extent), each fsynced
    // in turn so every record boundary is a meaningful cut point.
    let mut x = seed | 1;
    for i in 0..6u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let len = 1 + (x % 9000) as usize;
        let content: Vec<u8> = (0..len).map(|j| ((x as usize + j) % 251) as u8).collect();
        let path = format!("/persist/f{i}");
        env.write_file_as(init, &path, &content, None).unwrap();
        env.fsync_path(init, &path).unwrap();
        manifest.push(ManifestEntry {
            path,
            content,
            synced_at: Some(env.machine().store().wal_used()),
        });
    }

    // One file that is written but never synced: it must be cleanly
    // absent after every crash.
    env.write_file_as(init, "/persist/unsynced", b"ephemeral", None)
        .unwrap();
    manifest.push(ManifestEntry {
        path: "/persist/unsynced".into(),
        content: b"ephemeral".to_vec(),
        synced_at: None,
    });
    (env, manifest)
}

/// The record-boundary offsets of the log region `[0, used)`.
fn record_boundaries(region: &[u8], used: u64) -> Vec<u64> {
    let mut cuts = vec![0u64];
    let mut pos = 0usize;
    while (pos as u64) < used {
        match unframe(&region[pos..]) {
            Ok((payload, consumed)) => {
                if payload.is_empty() {
                    break;
                }
                pos += consumed;
                cuts.push(pos as u64);
            }
            Err(_) => break,
        }
    }
    cuts
}

/// Runs the full torn-WAL sweep for one seed.  `max_cuts` bounds how many
/// cut points are exercised (0 = all), so the tier-1 unit test stays
/// quick while the CI job sweeps everything.
pub fn run_torn_wal(seed: u64, max_cuts: usize) -> Result<TornReport, String> {
    // One pristine run to learn the log layout.
    let (env, manifest) = run_workload(seed);
    let machine_config = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    let region_start = machine_config.store.superblock_len;
    let used = env.machine().store().wal_used();
    let mut disk = env.into_machine().into_disk();
    let region = disk.read(region_start, used.max(16));

    let boundaries = record_boundaries(&region, used);
    if boundaries.len() < manifest.len() {
        return Err(format!(
            "expected at least {} log records, found {} boundaries",
            manifest.len(),
            boundaries.len() - 1
        ));
    }
    // Every boundary, plus a torn position inside each record.
    let mut cuts: Vec<u64> = Vec::new();
    for w in boundaries.windows(2) {
        cuts.push(w[0]);
        cuts.push(w[0] + (w[1] - w[0]) / 2);
    }
    cuts.push(*boundaries.last().expect("at least the zero boundary"));
    if max_cuts > 0 && cuts.len() > max_cuts {
        // Keep the extremes and a deterministic spread in between.
        let step = cuts.len().div_ceil(max_cuts);
        cuts = cuts.iter().copied().step_by(step).collect();
    }

    let mut report = TornReport {
        cuts: cuts.len(),
        ..TornReport::default()
    };
    // Every recovery of the sweep records its phases into one shared
    // flight recorder; if a guarantee fails and the harness panics, the
    // on-panic hook prints the last spans leading up to the failure.
    let recorder = Recorder::with_capacity(1 << 16);
    histar_obs::hook::arm_crash_dump("torn_wal", &recorder, 32);
    for &cut in &cuts {
        let (env, _) = run_workload(seed);
        let mut disk2 = env.into_machine().into_disk();
        // Zero the log from the cut to the end of the used region: a
        // crash that tore the tail of the log off mid-write.
        if cut < used {
            disk2.write(region_start + cut, &vec![0u8; (used - cut) as usize]);
        }
        let mut machine = Machine::recover_traced(machine_config, disk2, recorder.clone())
            .map_err(|e| format!("cut {cut}: recovery failed: {e}"))?;
        machine
            .store()
            .check_invariants()
            .map_err(|e| format!("cut {cut}: store invariants violated: {e}"))?;
        // The shared ring is for *recovery* phases: detach it before the
        // recovered machine's ordinary dispatch traffic can evict them.
        machine.kernel_mut().disable_flight_recorder();
        let mut env = UnixEnv::on_machine(machine);
        let init = env.init_pid();

        for entry in &manifest {
            match entry.synced_at {
                Some(offset) if offset <= cut => {
                    let got = env.read_file_as(init, &entry.path).map_err(|e| {
                        format!(
                            "cut {cut}: {} was fsynced at log offset {offset} but \
                             is unreadable after recovery: {e}",
                            entry.path
                        )
                    })?;
                    if got != entry.content {
                        return Err(format!(
                            "cut {cut}: {} recovered with wrong contents",
                            entry.path
                        ));
                    }
                    report.files_verified += 1;
                }
                _ => {
                    // Not durable by this cut: absence is fine, and a
                    // partially recovered file (the cut landed inside its
                    // fsync) may be visible as a prefix or with
                    // zero-filled holes — but bytes that are neither the
                    // original data nor zeros mean the log replayed
                    // garbage.
                    if let Ok(got) = env.read_file_as(init, &entry.path) {
                        let sparse_ok = got.len() == entry.content.len()
                            && got
                                .iter()
                                .zip(&entry.content)
                                .all(|(g, c)| g == c || *g == 0);
                        if !(entry.content.starts_with(&got) || sparse_ok) {
                            return Err(format!(
                                "cut {cut}: {} recovered with corrupt contents",
                                entry.path
                            ));
                        }
                    }
                }
            }
        }

        // Whenever the secret file recovered, its label must have
        // recovered with it: an unprivileged reader is still refused by
        // the kernel's record label check.
        if env.stat(init, "/persist/home/secret").is_ok() {
            let snoop = env
                .spawn(init, "/bin_snoop", None)
                .map_err(|e| format!("cut {cut}: spawn failed: {e}"))?;
            match env.read_file_as(snoop, "/persist/home/secret") {
                Err(UnixError::Kernel(SyscallError::CannotObserveRecord(_))) => {
                    report.secret_checks += 1;
                }
                other => {
                    return Err(format!(
                        "cut {cut}: tainted reader observed the recovered \
                         secret file (or failed oddly): {other:?}"
                    ));
                }
            }
        }
    }
    report.recovery_phases = recorder.phase_totals("recover");
    histar_obs::hook::disarm_crash_dump("torn_wal");
    Ok(report)
}

/// What one replay-equivalence sweep observed.
#[derive(Clone, Debug, Default)]
pub struct EquivalenceReport {
    /// Cut positions exercised (byte offsets into the log region).
    pub cuts: usize,
    /// Cuts at which the recovered secret passed its label check under
    /// *both* replay modes.
    pub secret_checks: usize,
}

/// Proves batched replay is an optimisation, not a semantic change: for
/// every torn-WAL cut point, recovering the same crashed disk with
/// [`ReplayMode::Batched`] and [`ReplayMode::RecordByRecord`] must yield
/// machines whose post-`snapshot` disk images are byte-identical, and
/// whose recovered secret files refuse an unprivileged reader under both
/// modes.  `max_cuts` bounds the sweep exactly as in [`run_torn_wal`].
pub fn run_replay_equivalence(seed: u64, max_cuts: usize) -> Result<EquivalenceReport, String> {
    // One pristine run to learn the log layout (the workload is
    // deterministic, so re-running it reproduces this exact disk).
    let (env, manifest) = run_workload(seed);
    let base_config = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    let region_start = base_config.store.superblock_len;
    let used = env.machine().store().wal_used();
    let mut disk = env.into_machine().into_disk();
    let region = disk.read(region_start, used.max(16));

    let boundaries = record_boundaries(&region, used);
    if boundaries.len() < manifest.len() {
        return Err(format!(
            "expected at least {} log records, found {} boundaries",
            manifest.len(),
            boundaries.len() - 1
        ));
    }
    let mut cuts: Vec<u64> = Vec::new();
    for w in boundaries.windows(2) {
        cuts.push(w[0]);
        cuts.push(w[0] + (w[1] - w[0]) / 2);
    }
    cuts.push(*boundaries.last().expect("at least the zero boundary"));
    if max_cuts > 0 && cuts.len() > max_cuts {
        let step = cuts.len().div_ceil(max_cuts);
        cuts = cuts.iter().copied().step_by(step).collect();
    }

    let mut report = EquivalenceReport {
        cuts: cuts.len(),
        ..EquivalenceReport::default()
    };
    for &cut in &cuts {
        let mut images: Vec<Vec<(u64, Vec<u8>)>> = Vec::new();
        let mut secret_ok = true;
        for mode in [ReplayMode::Batched, ReplayMode::RecordByRecord] {
            // The workload is deterministic, so each mode starts from a
            // bit-identical crashed disk.
            let (env, _) = run_workload(seed);
            let mut disk = env.into_machine().into_disk();
            if cut < used {
                disk.write(region_start + cut, &vec![0u8; (used - cut) as usize]);
            }
            let mut config = base_config;
            config.store.replay_mode = mode;
            let machine = Machine::recover(config, disk)
                .map_err(|e| format!("cut {cut} ({mode:?}): recovery failed: {e}"))?;
            machine
                .store()
                .check_invariants()
                .map_err(|e| format!("cut {cut} ({mode:?}): store invariants violated: {e}"))?;
            let mut env = UnixEnv::on_machine(machine);
            let init = env.init_pid();
            // Labels must recover identically: whenever the secret file
            // survives, both modes must refuse the unprivileged reader.
            if env.stat(init, "/persist/home/secret").is_ok() {
                let snoop = env
                    .spawn(init, "/bin_snoop", None)
                    .map_err(|e| format!("cut {cut} ({mode:?}): spawn failed: {e}"))?;
                match env.read_file_as(snoop, "/persist/home/secret") {
                    Err(UnixError::Kernel(SyscallError::CannotObserveRecord(_))) => {}
                    other => {
                        return Err(format!(
                            "cut {cut} ({mode:?}): tainted reader observed the \
                             recovered secret file (or failed oddly): {other:?}"
                        ));
                    }
                }
            } else {
                secret_ok = false;
            }
            let mut machine = env.into_machine();
            machine.snapshot();
            let disk = machine.into_disk();
            images.push(
                disk.image()
                    .into_iter()
                    .map(|(off, bytes)| (off, bytes.to_vec()))
                    .collect(),
            );
        }
        if images[0] != images[1] {
            let detail = diff_images(&images[0], &images[1]);
            return Err(format!(
                "cut {cut}: batched and record-by-record replay diverged: {detail}"
            ));
        }
        if secret_ok {
            report.secret_checks += 1;
        }
    }
    Ok(report)
}

/// Describes the first difference between two disk images, for error
/// messages when the equivalence sweep fails.
fn diff_images(a: &[(u64, Vec<u8>)], b: &[(u64, Vec<u8>)]) -> String {
    if a.len() != b.len() {
        return format!("{} vs {} populated blocks", a.len(), b.len());
    }
    for ((off_a, bytes_a), (off_b, bytes_b)) in a.iter().zip(b) {
        if off_a != off_b {
            return format!("block offsets diverge: {off_a} vs {off_b}");
        }
        if bytes_a != bytes_b {
            let byte = bytes_a
                .iter()
                .zip(bytes_b)
                .position(|(x, y)| x != y)
                .unwrap_or(0);
            return format!("block at offset {off_a} differs from byte {byte}");
        }
    }
    "images compare equal pairwise (length bookkeeping bug)".into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_wal_sweep_smoke() {
        let report = run_torn_wal(0x5eed, 6).expect("sweep passes");
        assert!(report.cuts >= 4, "got {report:?}");
        assert!(report.files_verified > 0, "got {report:?}");
        assert!(
            report.secret_checks > 0,
            "the secret file must recover (and be checked) at the full-log cut: {report:?}"
        );
        let phases: Vec<&str> = report.recovery_phases.iter().map(|(n, _, _)| *n).collect();
        for phase in [
            "superblock",
            "btree_rebuild",
            "wal_replay",
            "object_restore",
        ] {
            assert!(phases.contains(&phase), "missing recovery phase {phase}");
        }
        // Sorted by total descending: the top entry dominates the sweep.
        let totals: Vec<u64> = report.recovery_phases.iter().map(|(_, t, _)| *t).collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn replay_equivalence_smoke() {
        let report = run_replay_equivalence(0x5eed, 5).expect("replay modes agree");
        assert!(report.cuts >= 4, "got {report:?}");
        assert!(
            report.secret_checks > 0,
            "the secret file must recover (and be checked under both modes) \
             at the full-log cut: {report:?}"
        );
    }
}
