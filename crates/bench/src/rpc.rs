//! Cross-node RPC microbenchmark: throughput and latency of exporter-tunneled
//! gate calls over the simulated network, with and without message batching.
//!
//! This extends the paper's evaluation (§7) to the federation layer: where
//! Figure 12 measures the cost of a local IPC round trip, this measures the
//! cost of the same logical call when it crosses a machine boundary — label
//! translation, certificate handling, netd, and the wire — and how much of
//! the per-message cost batching amortizes.

use crate::report::{Row, Table};
use histar_exporter::Fabric;
use histar_sim::{LinkConfig, NetConfig, SimDuration, Topology};

/// Parameters for the cross-node RPC benchmark.
#[derive(Clone, Copy, Debug)]
pub struct RpcParams {
    /// Number of RPC messages per measured run.
    pub messages: usize,
    /// Payload size per message, in bytes.
    pub payload: usize,
    /// Batch sizes to compare (1 = one frame per message).
    pub batch_sizes: [usize; 3],
}

impl RpcParams {
    /// A quick configuration for tests.
    pub fn smoke() -> RpcParams {
        RpcParams {
            messages: 16,
            payload: 64,
            batch_sizes: [1, 4, 16],
        }
    }

    /// The configuration the `exporter_rpc` binary reports.
    pub fn full() -> RpcParams {
        RpcParams {
            messages: 128,
            payload: 256,
            batch_sizes: [1, 8, 32],
        }
    }
}

/// One measured cell: total simulated time and derived per-message latency.
#[derive(Clone, Copy, Debug)]
pub struct RpcMeasurement {
    /// Messages exchanged (calls; each also produced a reply).
    pub messages: usize,
    /// Messages per wire frame.
    pub batch: usize,
    /// Total simulated time on the calling node.
    pub elapsed: SimDuration,
}

impl RpcMeasurement {
    /// Mean simulated time per call (round trip).
    pub fn per_message(&self) -> SimDuration {
        SimDuration::from_nanos(self.elapsed.as_nanos() / self.messages.max(1) as u64)
    }

    /// Calls per simulated second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.messages as f64 / secs
        }
    }
}

fn echo_fabric() -> (Fabric, u64, u64) {
    let mut topology = Topology::fully_connected(2);
    topology.set_default_link(LinkConfig {
        net: NetConfig::default(),
        per_message_cpu: SimDuration::from_micros(10),
    });
    let mut fabric = Fabric::with_topology(topology);
    let provider = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        n.env.spawn(init, "/usr/bin/echod", None).unwrap()
    };
    fabric
        .register_service(1, "echo", provider, Box::new(|_e, _w, req| req.to_vec()))
        .unwrap();
    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/client", None).unwrap()
    };
    (fabric, client, provider)
}

/// Runs `messages` echo calls with the given batch size and returns the
/// calling node's simulated time.
pub fn measure_rpc(params: RpcParams, batch: usize) -> RpcMeasurement {
    let (mut fabric, client, _provider) = echo_fabric();
    let payload = vec![0xa5u8; params.payload];
    let before = fabric.nodes[0].env.machine().uptime();
    let mut sent = 0;
    while sent < params.messages {
        let n = (params.messages - sent).min(batch);
        let requests: Vec<Vec<u8>> = (0..n).map(|_| payload.clone()).collect();
        let replies = fabric
            .remote_call_batch(0, client, 1, "echo", &requests, None, &[])
            .expect("batch call");
        for r in replies {
            let reply = r.expect("echo reply");
            let bytes = fabric.read_reply(0, client, &reply).expect("read reply");
            assert_eq!(bytes.len(), params.payload);
        }
        sent += n;
    }
    RpcMeasurement {
        messages: params.messages,
        batch,
        elapsed: fabric.nodes[0].env.machine().uptime() - before,
    }
}

/// Runs the full comparison and renders the table.
pub fn run(params: RpcParams) -> Table {
    let mut table = Table::new("Cross-node RPC: exporter-tunneled gate calls");
    for &batch in &params.batch_sizes {
        let m = measure_rpc(params, batch);
        table.push(
            Row::new(&format!(
                "echo x{}, {} B payload, batch={batch}",
                m.messages, params.payload
            ))
            .measure("per-call", m.per_message())
            .measure("total", m.elapsed),
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_reduces_per_message_cost() {
        let params = RpcParams::smoke();
        let single = measure_rpc(params, 1);
        let batched = measure_rpc(params, *params.batch_sizes.last().unwrap());
        assert!(
            batched.per_message() < single.per_message(),
            "batch={} per-msg {:?} must beat batch=1 per-msg {:?}",
            batched.batch,
            batched.per_message(),
            single.per_message(),
        );
        assert!(batched.throughput() > single.throughput());
    }

    #[test]
    fn report_renders() {
        let table = run(RpcParams::smoke());
        let text = table.render();
        assert!(text.contains("Cross-node RPC"));
        assert!(text.contains("batch=1"));
    }
}
