//! The multiprogramming benchmark: N concurrent untrusted logins
//! interleaved by the deterministic scheduler, on one node and across the
//! two-node exporter fabric.
//!
//! Reported numbers are *simulated* time, like every other harness in this
//! crate: syscalls per simulated second through the dispatch boundary, and
//! the mean context-switch cost actually charged (a mix of full TLB
//! flushes and HiStar's cheap `invlpg` switches, depending on how often
//! adjacent quanta share an address space).

use crate::report::{BenchJson, Row, Table};
use histar_apps::multilogin::{run_multilogin, MultiLoginParams};
use histar_auth::{AuthService, AuthSystem, LoginOutcome};
use histar_exporter::Fabric;
use histar_kernel::sched::{
    Program, RunLimit, SchedConfig, SchedContext, Scheduler, Step, StopReason, DEFAULT_SHARDS,
};
use histar_kernel::{DispatchStats, Kernel, SyscallStats};
use histar_sim::{CostModel, OsFlavor, SimDuration};
use histar_unix::process::Pid;

/// Parameters of the scheduler benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SchedBenchParams {
    /// Concurrent login processes on the single node.
    pub processes: usize,
    /// Distinct user accounts.
    pub users: usize,
    /// Scheduler seed.
    pub seed: u64,
    /// Login processes per node in the fabric variant.
    pub fabric_processes: usize,
    /// Simulated users admitted in the `max_users` phase (mostly parked).
    pub max_users: usize,
    /// Users in the `max_users` phase that actually run a small workload.
    pub max_users_working: usize,
    /// Parked users the `max_users` phase wakes individually at the end.
    pub max_users_wakes: usize,
}

impl SchedBenchParams {
    /// Quick parameters for tests and CI smoke runs.
    pub fn smoke() -> SchedBenchParams {
        SchedBenchParams {
            processes: 24,
            users: 4,
            seed: 0xded,
            fabric_processes: 6,
            max_users: 2_000,
            max_users_working: 32,
            max_users_wakes: 8,
        }
    }

    /// The parameters the `sched_bench` binary reports.
    pub fn full() -> SchedBenchParams {
        SchedBenchParams {
            processes: 200,
            users: 16,
            seed: 0xded,
            fabric_processes: 24,
            max_users: 100_000,
            max_users_working: 512,
            max_users_wakes: 64,
        }
    }
}

/// Mean context-switch cost implied by the kernel's switch counters: the
/// blend of full-flush and `invlpg` switches the run actually performed.
fn mean_switch_cost(stats: &SyscallStats) -> SimDuration {
    let cost = CostModel::for_flavor(OsFlavor::HiStar);
    if stats.context_switches == 0 {
        return SimDuration::ZERO;
    }
    let full = stats.context_switches - stats.invlpg_switches;
    let total_ns = full * cost.context_switch_full.as_nanos()
        + stats.invlpg_switches * cost.context_switch_invlpg.as_nanos();
    SimDuration::from_nanos(total_ns / stats.context_switches)
}

/// One measured variant.
#[derive(Clone, Copy, Debug)]
pub struct SchedMeasurement {
    /// Processes that ran to completion.
    pub completed: u64,
    /// Syscalls through the dispatch boundary.
    pub syscalls: u64,
    /// Scheduler quanta executed.
    pub quanta: u64,
    /// Context switches charged.
    pub context_switches: u64,
    /// Simulated time consumed.
    pub elapsed: SimDuration,
    /// Mean charged context-switch cost.
    pub switch_cost: SimDuration,
    /// Per-syscall dispatch counters over the run, including the
    /// submission-batch size histogram.
    pub dispatch: DispatchStats,
}

impl SchedMeasurement {
    /// Dispatched syscalls per simulated second.
    pub fn syscalls_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.syscalls as f64 / secs
        }
    }

    /// Amortized boundary-crossing cost per dispatched entry, in
    /// nanoseconds: one full trap per batch plus the decode cost for every
    /// further entry, divided over all entries.
    pub fn amortized_trap_ns(&self) -> f64 {
        let cost = CostModel::for_flavor(OsFlavor::HiStar);
        self.dispatch.amortized_trap_ns(
            cost.syscall.as_nanos(),
            cost.syscall_batched_entry.as_nanos(),
        )
    }
}

/// Runs the single-node multiprogrammed-login scenario.
pub fn measure_single_node(params: SchedBenchParams) -> SchedMeasurement {
    let (_world, report) = run_multilogin(MultiLoginParams {
        processes: params.processes,
        users: params.users,
        seed: params.seed,
        shards: DEFAULT_SHARDS,
        wrong_every: 7,
        trace_capacity: 0,
        recorder_capacity: 0,
    })
    .expect("multilogin scenario");
    SchedMeasurement {
        completed: report.schedule.stats.completed,
        syscalls: report.syscalls,
        quanta: report.schedule.stats.quanta,
        context_switches: report.schedule.stats.context_switches,
        elapsed: report.elapsed,
        switch_cost: mean_switch_cost(&report.kernel),
        dispatch: report.dispatch,
    }
}

/// Runs a flight-recorder-enabled single-node pass and returns its
/// chrome-trace JSON dump — the `TRACE_sched.json` artifact CI uploads so
/// a regression can be inspected span-by-span in a trace viewer.
pub fn chrome_trace(params: SchedBenchParams) -> String {
    let (world, _report) = run_multilogin(MultiLoginParams {
        // A bounded slice of the workload: the trace is for inspection,
        // not measurement, and the viewer does not need 200 logins.
        processes: params.processes.min(24),
        users: params.users,
        seed: params.seed,
        shards: DEFAULT_SHARDS,
        wrong_every: 7,
        trace_capacity: 0,
        recorder_capacity: 1 << 16,
    })
    .expect("multilogin scenario");
    world.env.machine().kernel().recorder().chrome_trace_json()
}

// ----- the two-node fabric variant ---------------------------------------

/// The shared world of the fabric variant: two nodes, each with its own
/// auth system and its own scheduler; `active` names the node whose CPU is
/// currently running (the driver alternates them like two machines).
struct FabricWorld {
    fabric: Fabric,
    auths: Vec<AuthSystem>,
    active: usize,
    outcomes: Vec<(usize, Pid, LoginOutcome)>,
    failures: Vec<String>,
}

impl SchedContext for FabricWorld {
    fn sched_kernel(&mut self) -> &mut Kernel {
        self.fabric.nodes[self.active]
            .env
            .machine_mut()
            .kernel_mut()
    }
}

enum FabricPhase {
    Login,
    RemoteEcho,
}

fn fabric_login_program(node: usize, pid: Pid, username: String) -> Program<FabricWorld> {
    let mut phase = FabricPhase::Login;
    Box::new(move |world: &mut FabricWorld, _tid| match phase {
        FabricPhase::Login => {
            let env = &mut world.fabric.nodes[node].env;
            match world.auths[node].login(env, pid, &username, &format!("pw-{username}")) {
                Ok(outcome) => {
                    let granted = outcome == LoginOutcome::Granted;
                    world.outcomes.push((node, pid, outcome));
                    if granted {
                        phase = FabricPhase::RemoteEcho;
                        Step::Yield
                    } else {
                        Step::Done
                    }
                }
                Err(e) => {
                    world.failures.push(format!("node{node} pid{pid}: {e}"));
                    Step::Done
                }
            }
        }
        FabricPhase::RemoteEcho => {
            // One label-checked RPC to the peer node's echo service: the
            // cross-node leg of the scenario.
            let peer = 1 - node;
            let payload = format!("hello from node{node} pid{pid}");
            let result = world
                .fabric
                .remote_call(node, pid, peer, "echo", payload.as_bytes(), None, &[])
                .and_then(|reply| world.fabric.read_reply(node, pid, &reply));
            match result {
                Ok(bytes) if bytes == payload.as_bytes() => Step::Done,
                Ok(_) => {
                    world
                        .failures
                        .push(format!("node{node} pid{pid}: bad echo"));
                    Step::Done
                }
                Err(e) => {
                    world.failures.push(format!("node{node} pid{pid}: {e}"));
                    Step::Done
                }
            }
        }
    })
}

/// Runs logins + cross-node echo RPCs on both nodes of a two-node fabric,
/// alternating the nodes' schedulers like two CPUs.  Returns the
/// measurement over node 0's clock plus the total completions across both
/// nodes.
pub fn measure_fabric(params: SchedBenchParams) -> SchedMeasurement {
    let mut fabric = Fabric::new(2);
    let mut auths = Vec::new();
    let mut scheds: Vec<Scheduler<FabricWorld>> = Vec::new();
    let mut spawned: Vec<Vec<(usize, Pid, histar_kernel::ObjectId, String)>> = Vec::new();
    for node in 0..2 {
        let mut auth = AuthSystem::new();
        let env = &mut fabric.nodes[node].env;
        let init = env.init_pid();
        env.mkdir(init, "/home", None).expect("mkdir /home");
        let mut jobs = Vec::new();
        for u in 0..params.users.max(1) {
            let name = format!("n{node}user{u}");
            let user = env.create_user(&name).expect("create user");
            auth.register(AuthService::new(user, &format!("pw-{name}")));
        }
        for i in 0..params.fabric_processes {
            let name = format!("n{node}user{}", i % params.users.max(1));
            let pid = env
                .spawn(init, &format!("/bin/login-{i}"), None)
                .expect("spawn login process");
            let thread = env.process(pid).expect("process").thread;
            jobs.push((node, pid, thread, name));
        }
        auths.push(auth);
        spawned.push(jobs);
        scheds.push(Scheduler::new(
            SchedConfig::new().seed(params.seed + node as u64),
        ));
    }
    // Each node provides an echo service the other node's logins call.
    for node in 0..2 {
        let provider = {
            let env = &mut fabric.nodes[node].env;
            let init = env.init_pid();
            env.spawn(init, "/usr/bin/echod", None)
                .expect("spawn echod")
        };
        fabric
            .register_service(node, "echo", provider, Box::new(|_e, _w, req| req.to_vec()))
            .expect("register echo service");
    }
    for (sched, jobs) in scheds.iter_mut().zip(spawned) {
        for (node, pid, thread, username) in jobs {
            sched.spawn(thread, fabric_login_program(node, pid, username));
        }
    }

    let mut world = FabricWorld {
        fabric,
        auths,
        active: 0,
        outcomes: Vec::new(),
        failures: Vec::new(),
    };
    let before_clock = world.fabric.nodes[0].env.machine().uptime();
    let dispatch_snapshots: Vec<DispatchStats> = (0..2)
        .map(|n| {
            world.fabric.nodes[n]
                .env
                .machine()
                .kernel()
                .dispatch_stats()
        })
        .collect();
    let stats_before: Vec<SyscallStats> = (0..2)
        .map(|n| world.fabric.nodes[n].env.machine().kernel().stats())
        .collect();

    // Alternate the two nodes' CPUs until both run dry.
    let mut rounds = 0;
    loop {
        let mut remaining = 0;
        for (node, sched) in scheds.iter_mut().enumerate() {
            world.active = node;
            let r = sched.run(&mut world, RunLimit::quanta(8));
            remaining += r.remaining;
        }
        rounds += 1;
        if remaining == 0 || rounds > 100_000 {
            break;
        }
    }
    assert!(
        world.failures.is_empty(),
        "fabric failures: {:?}",
        world.failures
    );

    let elapsed = world.fabric.nodes[0].env.machine().uptime() - before_clock;
    // Combine both nodes' dispatch deltas into one histogram.
    let mut dispatch = DispatchStats::default();
    for (n, before) in dispatch_snapshots.iter().enumerate() {
        let d = world.fabric.nodes[n]
            .env
            .machine()
            .kernel()
            .dispatch_stats()
            .since(before);
        dispatch = dispatch.merge(&d);
    }
    let mut switch_stats = SyscallStats::default();
    for (n, before) in stats_before.iter().enumerate() {
        let s = world.fabric.nodes[n].env.machine().kernel().stats();
        let d = s.since(before);
        switch_stats.context_switches += d.context_switches;
        switch_stats.invlpg_switches += d.invlpg_switches;
    }
    SchedMeasurement {
        completed: (scheds[0].stats().completed + scheds[1].stats().completed),
        syscalls: dispatch.total(),
        quanta: scheds[0].stats().quanta + scheds[1].stats().quanta,
        context_switches: switch_stats.context_switches,
        elapsed,
        switch_cost: mean_switch_cost(&switch_stats),
        dispatch,
    }
}

// ----- the max-users variant ----------------------------------------------

/// What the `max_users` phase measured: a population of mostly-parked
/// simulated users, a small working subset, then a handful of targeted
/// wakes — the scaling story of the sharded scheduler in numbers.
#[derive(Clone, Copy, Debug)]
pub struct MaxUsersMeasurement {
    /// Users admitted (each parks after its first quantum unless working).
    pub users: u64,
    /// Most threads parked at once.
    pub parked_high_water: u64,
    /// Quanta spent admitting and parking the whole population.
    pub admit_quanta: u64,
    /// Quanta spent waking and retiring the targeted users.
    pub wake_quanta: u64,
    /// Parked threads re-examined during the targeted-wake phase.  The
    /// O(events) claim: this must scale with the wakes, not the parked
    /// population.
    pub wake_examined: u64,
    /// Targeted wakes issued.
    pub wakes: u64,
    /// Simulated time for the whole phase.
    pub elapsed: SimDuration,
}

impl MaxUsersMeasurement {
    /// Parked threads examined per targeted wake (≈1 when wakes are O(1)).
    pub fn examined_per_wake(&self) -> f64 {
        if self.wakes == 0 {
            0.0
        } else {
            self.wake_examined as f64 / self.wakes as f64
        }
    }

    /// Fraction of examined threads that actually woke (1.0 when every
    /// wake pass touches only dirtied threads).  Higher is better, so CI
    /// can gate it directly: any rescan of the parked mass drags it
    /// toward zero.
    pub fn wake_efficiency(&self) -> f64 {
        if self.wake_examined == 0 {
            1.0
        } else {
            self.wakes as f64 / self.wake_examined as f64
        }
    }
}

/// Admits `params.max_users` threads on a raw machine — a working subset
/// runs a few labeled syscalls and retires, the rest park — then wakes
/// `params.max_users_wakes` parked users one by one via the external-wake
/// path and measures what each wake cost the scheduler.
pub fn measure_max_users(params: SchedBenchParams) -> MaxUsersMeasurement {
    use histar_kernel::{Machine, MachineConfig};
    use histar_label::Label;

    let mut m = Machine::boot(MachineConfig::default());
    let boot = m.kernel_thread();
    let root = m.kernel().root_container();
    let mut sched: Scheduler<Machine> = Scheduler::new(SchedConfig::new().seed(params.seed));

    let users = params.max_users.max(1);
    let working_stride = (users / params.max_users_working.max(1)).max(1);
    let mut parked_tids = Vec::new();
    for i in 0..users {
        let tid = m
            .kernel_mut()
            .trap_thread_create(
                boot,
                root,
                Label::unrestricted(),
                Label::default_clearance(),
                0,
                &format!("u{i}"),
            )
            .expect("create user thread");
        if i % working_stride == 0 {
            // The working subset: a couple of real syscalls, then done.
            sched.spawn(
                tid,
                Box::new(move |m: &mut Machine, tid| {
                    let _ = m.kernel_mut().trap_self_get_label(tid);
                    Step::Done
                }),
            );
        } else {
            // The idle mass: park on the first quantum, retire if woken.
            parked_tids.push(tid);
            let mut parked = false;
            sched.spawn(
                tid,
                Box::new(move |_m: &mut Machine, _tid| {
                    if parked {
                        Step::Done
                    } else {
                        parked = true;
                        Step::Block
                    }
                }),
            );
        }
    }

    let start = m.kernel().now();
    let admit = m.run_until(&mut sched, RunLimit::to_completion());
    assert_eq!(admit.stop, StopReason::AllBlocked, "the idle mass parks");

    // Wake a spread of parked users, one targeted event each.
    let wakes = params.max_users_wakes.min(parked_tids.len());
    let wake_stride = (parked_tids.len() / wakes.max(1)).max(1);
    for w in 0..wakes {
        let tid = parked_tids[w * wake_stride];
        m.kernel_mut().sched_wake(tid).expect("wake parked user");
    }
    let wake = m.run_until(&mut sched, RunLimit::to_completion());
    assert_eq!(wake.stop, StopReason::AllBlocked, "the rest stay parked");
    assert_eq!(wake.stats.completed, wakes as u64, "each wake retires one");

    MaxUsersMeasurement {
        users: users as u64,
        parked_high_water: sched.stats().parked_high_water,
        admit_quanta: admit.stats.quanta,
        wake_quanta: wake.stats.quanta,
        wake_examined: wake.stats.wake_examined,
        wakes: wakes as u64,
        elapsed: m.kernel().now() - start,
    }
}

/// Runs both variants and renders the table plus the machine-readable
/// report.
pub fn run(params: SchedBenchParams) -> (Table, BenchJson) {
    let single = measure_single_node(params);
    let fabric = measure_fabric(params);
    let max_users = measure_max_users(params);

    let mut table = Table::new(&format!(
        "Scheduler: {} multiprogrammed untrusted logins (quantum 50us)",
        params.processes
    ));
    table.push(Row::new("single node: total simulated time").measure("HiStar", single.elapsed));
    table.push(
        Row::new("single node: mean context-switch cost").measure("HiStar", single.switch_cost),
    );
    table.push(Row::new("two-node fabric: total simulated time").measure("HiStar", fabric.elapsed));
    table.push(
        Row::new("two-node fabric: mean context-switch cost").measure("HiStar", fabric.switch_cost),
    );

    table.push(
        Row::new("single node: amortized boundary cost/call").measure(
            "HiStar",
            SimDuration::from_nanos(single.amortized_trap_ns() as u64),
        ),
    );
    table.push(
        Row::new(&format!(
            "max users: {} admitted, {} targeted wakes",
            max_users.users, max_users.wakes
        ))
        .measure("HiStar", max_users.elapsed),
    );

    let mut json = BenchJson::new("sched");
    json.metric(
        "single_node.syscalls_per_sec",
        single.syscalls_per_sec(),
        single.elapsed.as_nanos(),
    );
    json.metric(
        "single_node.mean_batch_size",
        single.dispatch.mean_batch_size(),
        single.elapsed.as_nanos(),
    );
    json.metric(
        "single_node.amortized_trap_ns_per_call",
        single.amortized_trap_ns(),
        single.elapsed.as_nanos(),
    );
    json.metric(
        "single_node.batches",
        single.dispatch.batches as f64,
        single.elapsed.as_nanos(),
    );
    json.histogram(
        "single_node.batch_hist",
        &single.dispatch.batch_size_hist,
        single.elapsed.as_nanos(),
    );
    json.metric(
        "single_node.context_switch_cost_ns",
        single.switch_cost.as_nanos() as f64,
        single.elapsed.as_nanos(),
    );
    json.metric(
        "single_node.syscalls",
        single.syscalls as f64,
        single.elapsed.as_nanos(),
    );
    json.metric(
        "single_node.completed",
        single.completed as f64,
        single.elapsed.as_nanos(),
    );
    json.metric(
        "fabric.syscalls_per_sec",
        fabric.syscalls_per_sec(),
        fabric.elapsed.as_nanos(),
    );
    json.metric(
        "fabric.context_switch_cost_ns",
        fabric.switch_cost.as_nanos() as f64,
        fabric.elapsed.as_nanos(),
    );
    json.metric(
        "fabric.completed",
        fabric.completed as f64,
        fabric.elapsed.as_nanos(),
    );
    json.metric(
        "fabric.mean_batch_size",
        fabric.dispatch.mean_batch_size(),
        fabric.elapsed.as_nanos(),
    );
    json.metric(
        "fabric.handle_resolutions",
        fabric.dispatch.handle_resolutions as f64,
        fabric.elapsed.as_nanos(),
    );
    json.metric(
        "max_users.users",
        max_users.users as f64,
        max_users.elapsed.as_nanos(),
    );
    json.metric(
        "max_users.parked_high_water",
        max_users.parked_high_water as f64,
        max_users.elapsed.as_nanos(),
    );
    json.metric(
        "max_users.examined_per_wake",
        max_users.examined_per_wake(),
        max_users.elapsed.as_nanos(),
    );
    json.metric(
        "max_users.wake_efficiency",
        max_users.wake_efficiency(),
        max_users.elapsed.as_nanos(),
    );
    json.metric(
        "max_users.wake_quanta",
        max_users.wake_quanta as f64,
        max_users.elapsed.as_nanos(),
    );
    (table, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_smoke_measures_throughput() {
        let m = measure_single_node(SchedBenchParams::smoke());
        assert_eq!(m.completed, 24);
        assert!(m.syscalls > 500);
        assert!(m.syscalls_per_sec() > 0.0);
        assert!(m.switch_cost > SimDuration::ZERO);
        assert!(m.context_switches >= 24);
    }

    #[test]
    fn fabric_smoke_completes_all_logins_and_echoes() {
        let m = measure_fabric(SchedBenchParams::smoke());
        assert_eq!(m.completed, 12, "6 logins per node across 2 nodes");
        assert!(m.syscalls > 0);
        assert!(m.elapsed > SimDuration::ZERO);
        // The echo RPCs ride netd, whose packet path names the device and
        // buffers by capability handle.
        assert!(
            m.dispatch.handle_resolutions > 0,
            "netd's hot path must resolve handle-encoded arguments"
        );
    }

    #[test]
    fn run_emits_table_and_json() {
        let (table, json) = run(SchedBenchParams::smoke());
        let rendered = table.render();
        assert!(rendered.contains("single node"));
        assert!(rendered.contains("two-node fabric"));
        assert!(rendered.contains("max users"));
        let j = json.render();
        assert!(j.contains("\"name\": \"sched\""));
        assert!(j.contains("single_node.syscalls_per_sec"));
        assert!(j.contains("fabric.completed"));
        assert!(j.contains("single_node.mean_batch_size"));
        assert!(j.contains("single_node.amortized_trap_ns_per_call"));
        assert!(j.contains("single_node.batch_hist.1"));
        assert!(j.contains("max_users.examined_per_wake"));
    }

    #[test]
    fn max_users_wakes_are_o_of_events() {
        let m = measure_max_users(SchedBenchParams::smoke());
        assert_eq!(m.users, 2_000);
        assert!(
            m.parked_high_water >= m.users - 40,
            "nearly everyone parks; high water {}",
            m.parked_high_water
        );
        assert_eq!(m.wakes, 8);
        // The wake pass must examine only the dirtied threads, never the
        // parked population.
        assert!(
            m.wake_examined <= 2 * m.wakes,
            "examined {} for {} wakes",
            m.wake_examined,
            m.wakes
        );
        assert!(m.wake_quanta <= 2 * m.wakes);
    }

    #[test]
    fn batching_amortizes_the_trap_cost() {
        let m = measure_single_node(SchedBenchParams::smoke());
        // The login workload batches its gate-call spills, so batches are
        // smaller in number than entries and the amortized boundary cost
        // is strictly below the full trap cost.
        assert!(m.dispatch.batches > 0);
        assert!(m.dispatch.mean_batch_size() > 1.0);
        let full_trap = CostModel::for_flavor(OsFlavor::HiStar).syscall.as_nanos() as f64;
        assert!(m.amortized_trap_ns() < full_trap);
        // The histogram sees both single-call traps and multi-call batches.
        assert!(m.dispatch.batch_size_hist[0] > 0, "1-entry batches");
        assert!(
            m.dispatch.batch_size_hist.counts()[1..].iter().sum::<u64>() > 0,
            "multi-entry batches"
        );
    }
}
