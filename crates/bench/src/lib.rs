//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§7) on the simulated substrate.
//!
//! * [`fig12`] — the microbenchmarks of Figure 12 (IPC, fork/exec, spawn,
//!   LFS small-file and large-file phases) for HiStar and the two baseline
//!   models.
//! * [`fig13`] — the application benchmarks of Figure 13 (kernel build,
//!   wget, virus scan with and without the isolation wrapper).
//! * [`fs`] — file-system throughput through the Unix library's VFS:
//!   open/read/write/readdir ops per simulated second, plus the
//!   submission-batch histogram over the I/O hot path and the `/persist`
//!   read/write/recover workloads.
//! * [`crash`] — the torn-write-ahead-log sweep behind the
//!   `crash-recovery` CI job: truncate the log at every record boundary,
//!   recover, and assert tree invariants, prefix-closed durability and
//!   label enforcement on recovered secrets.
//! * [`rpc`] — cross-node RPC over the exporter subsystem: latency and
//!   throughput of label-checked calls, with and without message batching.
//! * [`httpd`] — the web-server benchmark: the §6.1 label-isolated httpd
//!   serving a burst of concurrent clients (10⁴ in the full run) over real
//!   blocking I/O (requests/sec, tail latency, no-busy-wait quanta bound).
//! * [`sched`] — the multiprogramming benchmark: N concurrent untrusted
//!   logins interleaved by the deterministic scheduler, on one node and
//!   across the two-node fabric (syscalls/sec, context-switch cost).
//! * [`obs`] — the observability overhead benchmark: the login workload
//!   with tracing off vs on (audit trace + flight recorder), gated in CI
//!   so tracing stays within 3% of the untraced throughput.
//! * [`report`] — small helpers for printing paper-style tables, recording
//!   paper-vs-measured comparisons, and emitting machine-readable
//!   `BENCH_<name>.json` files for CI.
//!
//! Absolute numbers are *simulated* time; EXPERIMENTS.md discusses how the
//! shapes compare against the paper's measurements on real hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod fig12;
pub mod fig13;
pub mod fs;
pub mod httpd;
pub mod obs;
pub mod report;
pub mod rpc;
pub mod sched;

pub use report::{BenchJson, Row, Table};
