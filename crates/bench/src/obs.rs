//! The observability overhead benchmark: the multiprogrammed-login
//! workload run twice with the same seed — once with all tracing off,
//! once with the syscall audit trace *and* the flight recorder on — and
//! the two throughputs compared.
//!
//! Spans and counters charge no simulated time by construction (they are
//! bookkeeping around the clock, never a cost model entry), so on the
//! simulated substrate the enabled/disabled ratio is exactly 1.0; the CI
//! gate pins it within 3% so any future change that leaks tracing work
//! into the simulated cost model fails loudly.

use crate::report::{BenchJson, Row, Table};
use histar_apps::multilogin::{run_multilogin, MultiLoginParams};
use histar_sim::SimDuration;

/// Parameters of the observability benchmark.
#[derive(Clone, Copy, Debug)]
pub struct ObsBenchParams {
    /// Concurrent login processes.
    pub processes: usize,
    /// Distinct user accounts.
    pub users: usize,
    /// Scheduler seed (identical for both runs).
    pub seed: u64,
    /// Ring capacity for the audit trace and the flight recorder in the
    /// tracing-enabled run.
    pub capacity: usize,
}

impl ObsBenchParams {
    /// Quick parameters for tests and CI smoke runs.
    pub fn smoke() -> ObsBenchParams {
        ObsBenchParams {
            processes: 24,
            users: 4,
            seed: 0x0b5,
            capacity: 4096,
        }
    }

    /// The parameters the `obs_bench` binary reports.
    pub fn full() -> ObsBenchParams {
        ObsBenchParams {
            processes: 200,
            users: 16,
            seed: 0x0b5,
            capacity: 1 << 16,
        }
    }
}

/// One run of the workload (tracing on or off).
#[derive(Clone, Debug)]
pub struct ObsRun {
    /// Syscalls through the dispatch boundary.
    pub syscalls: u64,
    /// Simulated time consumed.
    pub elapsed: SimDuration,
    /// Spans the flight recorder captured (0 when disabled).
    pub spans_recorded: u64,
    /// Spans the bounded ring evicted (0 when disabled).
    pub spans_dropped: u64,
    /// Audit-trace records silently evicted, as mirrored into
    /// `DispatchStats::trace_dropped`.
    pub trace_dropped: u64,
    /// Chrome-trace JSON dump of the recorder's ring (tracing-enabled run
    /// only).
    pub chrome_trace: Option<String>,
    /// Entries in the kernel-wide metrics registry snapshot.
    pub registry_len: u64,
}

impl ObsRun {
    /// Dispatched syscalls per simulated second.
    pub fn syscalls_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.syscalls as f64 / secs
        }
    }
}

/// Both runs side by side.
#[derive(Clone, Debug)]
pub struct ObsComparison {
    /// The tracing-off run.
    pub disabled: ObsRun,
    /// The tracing-on run (audit trace + flight recorder).
    pub enabled: ObsRun,
}

impl ObsComparison {
    /// Enabled-over-disabled throughput ratio (1.0 = tracing is free).
    pub fn ratio(&self) -> f64 {
        let base = self.disabled.syscalls_per_sec();
        if base == 0.0 {
            0.0
        } else {
            self.enabled.syscalls_per_sec() / base
        }
    }
}

fn measure(params: ObsBenchParams, tracing: bool) -> ObsRun {
    let capacity = if tracing { params.capacity } else { 0 };
    let (mut world, report) = run_multilogin(MultiLoginParams {
        processes: params.processes,
        users: params.users,
        seed: params.seed,
        shards: histar_kernel::sched::DEFAULT_SHARDS,
        wrong_every: 7,
        trace_capacity: capacity,
        recorder_capacity: capacity,
    })
    .expect("multilogin scenario");
    let registry_len = world.env.kernel_mut().metrics().len() as u64;
    let recorder = world.env.machine().kernel().recorder();
    ObsRun {
        syscalls: report.syscalls,
        elapsed: report.elapsed,
        spans_recorded: recorder.total_recorded(),
        spans_dropped: recorder.dropped(),
        trace_dropped: report.dispatch.trace_dropped,
        chrome_trace: tracing.then(|| recorder.chrome_trace_json()),
        registry_len,
    }
}

/// Runs both variants and renders the table plus the machine-readable
/// report gated in CI.
pub fn run(params: ObsBenchParams) -> (Table, BenchJson, ObsComparison) {
    let disabled = measure(params, false);
    let enabled = measure(params, true);
    let cmp = ObsComparison { disabled, enabled };

    let mut table = Table::new(&format!(
        "Observability overhead: {} logins, tracing off vs on",
        params.processes
    ));
    table.push(
        Row::new("tracing off: total simulated time").measure("HiStar", cmp.disabled.elapsed),
    );
    table.push(Row::new("tracing on: total simulated time").measure("HiStar", cmp.enabled.elapsed));

    let mut json = BenchJson::new("obs");
    json.metric(
        "tracing.disabled.syscalls_per_sec",
        cmp.disabled.syscalls_per_sec(),
        cmp.disabled.elapsed.as_nanos(),
    );
    json.metric(
        "tracing.enabled.syscalls_per_sec",
        cmp.enabled.syscalls_per_sec(),
        cmp.enabled.elapsed.as_nanos(),
    );
    json.metric(
        "tracing.enabled_over_disabled_ratio",
        cmp.ratio(),
        cmp.enabled.elapsed.as_nanos(),
    );
    json.metric(
        "tracing.spans_recorded",
        cmp.enabled.spans_recorded as f64,
        cmp.enabled.elapsed.as_nanos(),
    );
    json.metric(
        "tracing.spans_dropped",
        cmp.enabled.spans_dropped as f64,
        cmp.enabled.elapsed.as_nanos(),
    );
    json.metric(
        "tracing.trace_dropped",
        cmp.enabled.trace_dropped as f64,
        cmp.enabled.elapsed.as_nanos(),
    );
    json.metric(
        "registry.metrics",
        cmp.enabled.registry_len as f64,
        cmp.enabled.elapsed.as_nanos(),
    );
    (table, json, cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_is_free_on_simulated_time() {
        let (_table, _json, cmp) = run(ObsBenchParams::smoke());
        // Spans and counters never touch the cost model, so the same seed
        // yields bit-identical simulated time with tracing on.
        assert_eq!(cmp.disabled.elapsed, cmp.enabled.elapsed);
        assert_eq!(cmp.disabled.syscalls, cmp.enabled.syscalls);
        assert!((cmp.ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn enabled_run_captures_spans_and_registry() {
        let (_table, json, cmp) = run(ObsBenchParams::smoke());
        assert_eq!(cmp.disabled.spans_recorded, 0);
        assert!(cmp.enabled.spans_recorded > 0, "recorder saw dispatches");
        assert!(
            cmp.enabled.registry_len > 20,
            "registry snapshots the machine"
        );
        let trace = cmp.enabled.chrome_trace.as_deref().unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"dispatch\""));
        let j = json.render();
        assert!(j.contains("tracing.enabled_over_disabled_ratio"));
        assert!(j.contains("tracing.disabled.syscalls_per_sec"));
    }
}
