//! The file-system benchmark: open/read/write/readdir operations per
//! simulated second through the Unix library's file API, single node.
//!
//! The interesting number is the hot read/write path: each iteration goes
//! descriptor segment → backing segment → descriptor seek update, so the
//! measured throughput tracks exactly the boundary crossings the VFS layer
//! spends per I/O.  The submission-batch histogram over the I/O phases is
//! emitted alongside, making the batched seek-update (data op + descriptor
//! position write in ONE batch) visible in `BENCH_fs.json`.

use crate::report::{BenchJson, Row, Table};
use histar_kernel::DispatchStats;
use histar_obs::Recorder;
use histar_sim::SimDuration;
use histar_unix::fs::OpenFlags;
use histar_unix::UnixEnv;

/// Parameters of the file-system benchmark.
#[derive(Clone, Copy, Debug)]
pub struct FsBenchParams {
    /// open+close iterations.
    pub open_ops: u64,
    /// Sequential 4 KiB read iterations.
    pub read_ops: u64,
    /// Sequential 4 KiB write iterations.
    pub write_ops: u64,
    /// readdir iterations.
    pub readdir_ops: u64,
    /// Entries in the readdir target directory.
    pub dir_entries: u64,
    /// Sequential 4 KiB reads through a `/persist` descriptor.
    pub persist_read_ops: u64,
    /// Sequential 4 KiB overwrites through a `/persist` descriptor.
    pub persist_write_ops: u64,
    /// Crash → recover → remount → read-back round trips.
    pub recover_iters: u64,
    /// Small `/persist` files synced together per fsync round.
    pub persist_sync_files: u64,
    /// Rounds of rewrite-everything-then-fsync-everything.
    pub persist_sync_rounds: u64,
}

/// Bytes moved per read/write iteration.
pub const IO_SIZE: u64 = 4096;

impl FsBenchParams {
    /// Quick parameters for tests and CI smoke runs.
    pub fn smoke() -> FsBenchParams {
        FsBenchParams {
            open_ops: 200,
            read_ops: 400,
            write_ops: 400,
            readdir_ops: 100,
            dir_entries: 32,
            persist_read_ops: 400,
            persist_write_ops: 400,
            recover_iters: 3,
            persist_sync_files: 8,
            persist_sync_rounds: 10,
        }
    }

    /// The parameters the `fs_bench` binary reports.
    pub fn full() -> FsBenchParams {
        FsBenchParams {
            open_ops: 2_000,
            read_ops: 8_000,
            write_ops: 8_000,
            readdir_ops: 1_000,
            dir_entries: 64,
            persist_read_ops: 8_000,
            persist_write_ops: 8_000,
            recover_iters: 8,
            persist_sync_files: 16,
            persist_sync_rounds: 100,
        }
    }
}

/// One measured phase: iterations and the simulated time they consumed.
#[derive(Clone, Copy, Debug)]
pub struct FsPhase {
    /// Iterations completed.
    pub ops: u64,
    /// Simulated time consumed.
    pub elapsed: SimDuration,
}

impl FsPhase {
    /// Operations per simulated second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Mean simulated time per operation.
    pub fn per_op(&self) -> SimDuration {
        match self.elapsed.as_nanos().checked_div(self.ops) {
            Some(ns) => SimDuration::from_nanos(ns),
            None => SimDuration::ZERO,
        }
    }
}

/// The full measurement: per-phase throughput plus the dispatch counters
/// accumulated over the read+write (hot-path) phases.
#[derive(Clone, Debug)]
pub struct FsMeasurement {
    /// open+close a pre-existing file.
    pub open_close: FsPhase,
    /// Sequential 4 KiB reads through one descriptor.
    pub read: FsPhase,
    /// Sequential 4 KiB writes through one descriptor.
    pub write: FsPhase,
    /// readdir of a populated directory.
    pub readdir: FsPhase,
    /// Sequential 4 KiB reads through a `/persist` descriptor (extent
    /// records in the single-level store, one batch per read).
    pub persist_read: FsPhase,
    /// Sequential 4 KiB overwrites through a `/persist` descriptor.
    pub persist_write: FsPhase,
    /// Crash → recover → remount → read-back round trips.
    pub recover_mount: FsPhase,
    /// fsync-heavy `/persist` workload: many files rewritten and synced
    /// together, each round group-committed into one WAL frame.
    pub persist_sync: FsPhase,
    /// Mean records per physical WAL frame over the fsync phase
    /// (Δappends / Δframes from the store's own counters).
    pub wal_mean_flush_batch: f64,
    /// Per-phase recovery tick totals over the recover_mount iterations —
    /// `(phase, total simulated ns, occurrences)` from the flight
    /// recorder's `recover` spans, sorted by total descending.
    pub recovery_phases: Vec<(&'static str, u64, u64)>,
    /// Dispatch counters over the read+write phases only (batch-size
    /// histogram, handle traffic).
    pub io_dispatch: DispatchStats,
}

/// Runs the benchmark on a freshly booted environment.
pub fn measure(params: FsBenchParams) -> FsMeasurement {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();

    // Fixture: one big file for the I/O phases, one populated directory.
    env.mkdir(init, "/bench", None).expect("mkdir /bench");
    let file_size = params.read_ops.max(1) * IO_SIZE;
    env.reserve_quota(init, "/bench", 4 * file_size + 64 * 1024 * 1024)
        .expect("reserve quota");
    env.write_file_as(init, "/bench/big", &vec![0xabu8; file_size as usize], None)
        .expect("create /bench/big");
    env.mkdir(init, "/bench/dir", None)
        .expect("mkdir /bench/dir");
    for i in 0..params.dir_entries {
        env.write_file_as(init, &format!("/bench/dir/f{i}"), b"x", None)
            .expect("populate dir");
    }

    let clock_now = |env: &UnixEnv| env.machine().clock().now();

    // Phase: open+close.
    let start = clock_now(&env);
    for _ in 0..params.open_ops {
        let fd = env
            .open(init, "/bench/big", OpenFlags::read_only())
            .expect("open");
        env.close(init, fd).expect("close");
    }
    let open_close = FsPhase {
        ops: params.open_ops,
        elapsed: clock_now(&env) - start,
    };

    // Phase: sequential reads (the descriptor advances through the file;
    // every iteration re-reads descriptor state and updates the seek
    // position, like a real read(2) loop).
    let dispatch_before = env.machine().kernel().dispatch_stats();
    let fd = env
        .open(init, "/bench/big", OpenFlags::read_only())
        .expect("open for reads");
    let start = clock_now(&env);
    for _ in 0..params.read_ops {
        let data = env.read(init, fd, IO_SIZE).expect("read");
        assert_eq!(data.len() as u64, IO_SIZE, "fixture sized for read count");
    }
    let read = FsPhase {
        ops: params.read_ops,
        elapsed: clock_now(&env) - start,
    };
    env.close(init, fd).expect("close read fd");

    // Phase: sequential overwrites of the same file.
    let fd = env
        .open(
            init,
            "/bench/big",
            OpenFlags {
                write: true,
                ..Default::default()
            },
        )
        .expect("open for writes");
    let buf = vec![0x5au8; IO_SIZE as usize];
    let start = clock_now(&env);
    for _ in 0..params.write_ops {
        let n = env.write(init, fd, &buf).expect("write");
        assert_eq!(n, IO_SIZE);
    }
    let write = FsPhase {
        ops: params.write_ops,
        elapsed: clock_now(&env) - start,
    };
    env.close(init, fd).expect("close write fd");
    let io_dispatch = env
        .machine()
        .kernel()
        .dispatch_stats()
        .since(&dispatch_before);

    // Phase: readdir.
    let start = clock_now(&env);
    for _ in 0..params.readdir_ops {
        let entries = env.readdir(init, "/bench/dir").expect("readdir");
        assert_eq!(entries.len() as u64, params.dir_entries);
    }
    let readdir = FsPhase {
        ops: params.readdir_ops,
        elapsed: clock_now(&env) - start,
    };

    // Fixture for the persist phases: one big file under /persist whose
    // extents live in the single-level store, not the object heap.
    let persist_size = params.persist_read_ops.max(1) * IO_SIZE;
    env.write_file_as(
        init,
        "/persist/bench_big",
        &vec![0xcdu8; persist_size as usize],
        None,
    )
    .expect("create /persist/bench_big");

    // Phase: sequential /persist reads (extent read + seek update, one
    // batch per iteration).
    let fd = env
        .open(init, "/persist/bench_big", OpenFlags::read_only())
        .expect("open persist for reads");
    let start = clock_now(&env);
    for _ in 0..params.persist_read_ops {
        let data = env.read(init, fd, IO_SIZE).expect("persist read");
        assert_eq!(data.len() as u64, IO_SIZE);
    }
    let persist_read = FsPhase {
        ops: params.persist_read_ops,
        elapsed: clock_now(&env) - start,
    };
    env.close(init, fd).expect("close persist read fd");

    // Phase: sequential /persist overwrites.
    let fd = env
        .open(
            init,
            "/persist/bench_big",
            OpenFlags {
                write: true,
                ..Default::default()
            },
        )
        .expect("open persist for writes");
    let start = clock_now(&env);
    for _ in 0..params.persist_write_ops {
        let n = env.write(init, fd, &buf).expect("persist write");
        assert_eq!(n, IO_SIZE);
    }
    let persist_write = FsPhase {
        ops: params.persist_write_ops,
        elapsed: clock_now(&env) - start,
    };
    env.close(init, fd).expect("close persist write fd");

    // Phase: crash → recover → remount → read one fsynced file back.
    // This prices the full recovery path: superblock + checkpoint
    // metadata decode, write-ahead-log replay, object-table restore and
    // the /persist reattach.
    env.write_file_as(init, "/persist/marker", b"recover me", None)
        .expect("create marker");
    env.fsync_path(init, "/persist/marker")
        .expect("fsync marker");
    let recorder = Recorder::with_capacity(1 << 16);
    let start = clock_now(&env);
    let mut env = env;
    for _ in 0..params.recover_iters {
        let machine = env
            .into_machine()
            .crash_and_recover_traced(recorder.clone())
            .expect("crash recovery");
        env = histar_unix::UnixEnv::on_machine(machine);
        // The shared ring is for *recovery* phases: detach it before the
        // read-back's dispatch traffic can evict them.
        env.kernel_mut().disable_flight_recorder();
        let init = env.init_pid();
        let back = env
            .read_file_as(init, "/persist/marker")
            .expect("marker survives");
        assert_eq!(back, b"recover me");
    }
    let recover_mount = FsPhase {
        ops: params.recover_iters,
        elapsed: clock_now(&env) - start,
    };
    let recovery_phases = recorder.phase_totals("recover");

    // Phase: fsync-heavy /persist workload.  Every round rewrites all the
    // small files and syncs them with ONE `fsync_paths` call: the library
    // resolves each file to its record keys, issues a single persist_sync,
    // and the store group-commits the whole round into one multi-record
    // WAL frame (§5's group sync) — the per-frame seek is amortised over
    // every file in the round, which the mean-flush-batch counter makes
    // visible.
    let init = env.init_pid();
    let sync_paths: Vec<String> = (0..params.persist_sync_files)
        .map(|i| format!("/persist/sync{i}"))
        .collect();
    for path in &sync_paths {
        env.write_file_as(init, path, b"seed", None)
            .expect("create sync file");
    }
    let sync_refs: Vec<&str> = sync_paths.iter().map(String::as_str).collect();
    let wal_before = env.machine().store().wal_stats();
    let start = clock_now(&env);
    for round in 0..params.persist_sync_rounds {
        let payload = [(round & 0xff) as u8; 64];
        for path in &sync_paths {
            env.write_file_as(init, path, &payload, None)
                .expect("rewrite sync file");
        }
        env.fsync_paths(init, &sync_refs).expect("fsync round");
    }
    let persist_sync = FsPhase {
        ops: params.persist_sync_files * params.persist_sync_rounds,
        elapsed: clock_now(&env) - start,
    };
    let wal_after = env.machine().store().wal_stats();
    let frames = wal_after.frames - wal_before.frames;
    let wal_mean_flush_batch = if frames == 0 {
        0.0
    } else {
        (wal_after.appends - wal_before.appends) as f64 / frames as f64
    };

    FsMeasurement {
        open_close,
        read,
        write,
        readdir,
        persist_read,
        persist_write,
        recover_mount,
        persist_sync,
        wal_mean_flush_batch,
        recovery_phases,
        io_dispatch,
    }
}

/// Runs a flight-recorder-enabled mini I/O pass — segment and `/persist`
/// reads and writes, an fsync, and one traced crash/recover round trip —
/// and returns the chrome-trace JSON dump: the `TRACE_fs.json` artifact
/// CI uploads so the batched I/O hot path and the recovery phases can be
/// inspected in a trace viewer.
pub fn chrome_trace() -> String {
    let mut env = UnixEnv::boot();
    let recorder = env.kernel_mut().enable_flight_recorder(1 << 16);
    let init = env.init_pid();
    env.mkdir(init, "/bench", None).expect("mkdir /bench");
    env.reserve_quota(init, "/bench", 64 * 1024 * 1024)
        .expect("reserve quota");
    env.write_file_as(
        init,
        "/bench/traced",
        &vec![0xabu8; (64 * IO_SIZE) as usize],
        None,
    )
    .expect("create /bench/traced");
    let fd = env
        .open(init, "/bench/traced", OpenFlags::read_only())
        .expect("open traced file");
    for _ in 0..64 {
        env.read(init, fd, IO_SIZE).expect("traced read");
    }
    env.close(init, fd).expect("close traced fd");
    env.write_file_as(init, "/persist/traced", b"traced bytes", None)
        .expect("create /persist/traced");
    env.fsync_path(init, "/persist/traced").expect("fsync");
    // One traced recovery so the dump also shows the wal/recover phases.
    let machine = env
        .into_machine()
        .crash_and_recover_traced(recorder.clone())
        .expect("traced crash recovery");
    drop(machine);
    recorder.chrome_trace_json()
}

/// Runs the benchmark and renders the table + `BENCH_fs.json` report.
pub fn run(params: FsBenchParams) -> (Table, BenchJson) {
    let m = measure(params);

    let mut table = Table::new("File-system throughput through the VFS (simulated time)");
    table.push(Row::new("open+close, per op").measure("HiStar", m.open_close.per_op()));
    table.push(Row::new("read 4 KiB, per op").measure("HiStar", m.read.per_op()));
    table.push(Row::new("write 4 KiB, per op").measure("HiStar", m.write.per_op()));
    table.push(Row::new("readdir, per op").measure("HiStar", m.readdir.per_op()));
    table.push(Row::new("/persist read 4 KiB, per op").measure("HiStar", m.persist_read.per_op()));
    table
        .push(Row::new("/persist write 4 KiB, per op").measure("HiStar", m.persist_write.per_op()));
    table.push(
        Row::new("crash+recover+remount, per op").measure("HiStar", m.recover_mount.per_op()),
    );
    table.push(
        Row::new("/persist fsync (grouped), per op").measure("HiStar", m.persist_sync.per_op()),
    );
    table.push(Row::new("I/O-phase mean batch size").measure(
        "HiStar",
        SimDuration::from_nanos((m.io_dispatch.mean_batch_size() * 100.0) as u64),
    ));

    let mut json = BenchJson::new("fs");
    json.metric(
        "open_close.ops_per_sec",
        m.open_close.ops_per_sec(),
        m.open_close.elapsed.as_nanos(),
    );
    json.metric(
        "read.ops_per_sec",
        m.read.ops_per_sec(),
        m.read.elapsed.as_nanos(),
    );
    json.metric(
        "write.ops_per_sec",
        m.write.ops_per_sec(),
        m.write.elapsed.as_nanos(),
    );
    json.metric(
        "readdir.ops_per_sec",
        m.readdir.ops_per_sec(),
        m.readdir.elapsed.as_nanos(),
    );
    json.metric(
        "persist_read.ops_per_sec",
        m.persist_read.ops_per_sec(),
        m.persist_read.elapsed.as_nanos(),
    );
    json.metric(
        "persist_write.ops_per_sec",
        m.persist_write.ops_per_sec(),
        m.persist_write.elapsed.as_nanos(),
    );
    json.metric(
        "recover_mount.ops_per_sec",
        m.recover_mount.ops_per_sec(),
        m.recover_mount.elapsed.as_nanos(),
    );
    for (phase, total_ns, _count) in &m.recovery_phases {
        json.metric(
            &format!("recover_mount.phase.{phase}"),
            *total_ns as f64,
            *total_ns,
        );
    }
    json.metric(
        "persist_sync.ops_per_sec",
        m.persist_sync.ops_per_sec(),
        m.persist_sync.elapsed.as_nanos(),
    );
    json.metric(
        "wal.mean_flush_batch",
        m.wal_mean_flush_batch,
        m.persist_sync.elapsed.as_nanos(),
    );
    json.metric(
        "io.mean_batch_size",
        m.io_dispatch.mean_batch_size(),
        (m.read.elapsed + m.write.elapsed).as_nanos(),
    );
    json.metric(
        "io.batches",
        m.io_dispatch.batches as f64,
        (m.read.elapsed + m.write.elapsed).as_nanos(),
    );
    json.histogram(
        "io.batch_hist",
        &m.io_dispatch.batch_size_hist,
        (m.read.elapsed + m.write.elapsed).as_nanos(),
    );
    json.metric(
        "io.handle_resolutions",
        m.io_dispatch.handle_resolutions as f64,
        (m.read.elapsed + m.write.elapsed).as_nanos(),
    );
    (table, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_metrics() {
        let (table, json) = run(FsBenchParams::smoke());
        assert_eq!(table.rows.len(), 9);
        let doc = json.render();
        for metric in [
            "open_close.ops_per_sec",
            "read.ops_per_sec",
            "write.ops_per_sec",
            "readdir.ops_per_sec",
            "persist_read.ops_per_sec",
            "persist_write.ops_per_sec",
            "recover_mount.ops_per_sec",
            "recover_mount.phase.superblock",
            "recover_mount.phase.btree_rebuild",
            "recover_mount.phase.wal_replay",
            "recover_mount.phase.object_restore",
            "persist_sync.ops_per_sec",
            "wal.mean_flush_batch",
            "io.mean_batch_size",
        ] {
            assert!(doc.contains(metric), "missing {metric} in {doc}");
        }
    }

    #[test]
    fn grouped_fsync_coalesces_records_into_frames() {
        let m = measure(FsBenchParams::smoke());
        // Each round syncs 8 files' record keys through one persist_sync:
        // the WAL must be averaging well more than one record per frame.
        assert!(
            m.wal_mean_flush_batch > 2.0,
            "fsync rounds were not group-committed: mean flush batch {}",
            m.wal_mean_flush_batch
        );
    }
}
