//! The web-server benchmark: the §6.1 label-isolated httpd serving a
//! burst of concurrent clients over real blocking I/O.
//! Run with `--smoke` for the quick CI configuration.

use histar_bench::httpd::{chrome_trace, run, HttpdBenchParams};
use histar_bench::report::write_artifact;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = if smoke {
        HttpdBenchParams::smoke()
    } else {
        HttpdBenchParams::full()
    };
    println!("parameters: {params:?}\n");
    let (table, json) = run(params);
    print!("{}", table.render());
    match json.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write JSON report: {e}"),
    }
    match write_artifact("TRACE_httpd.json", &chrome_trace(params)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write chrome trace: {e}"),
    }
    println!("Times are simulated; requests/sec and tail latency are also");
    println!("emitted as machine-readable JSON for the CI trajectory.");
}
