//! Reproduces the §4.1 code-size discussion: lines of Rust per subsystem of
//! this reproduction, next to the paper's C line counts for the HiStar
//! kernel components.

use std::fs;
use std::path::Path;

fn count_lines(dir: &Path) -> (usize, usize) {
    let mut total = 0;
    let mut code = 0;
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let (t, c) = count_lines(&path);
                total += t;
                code += c;
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(text) = fs::read_to_string(&path) {
                    for line in text.lines() {
                        total += 1;
                        let trimmed = line.trim();
                        if !trimmed.is_empty() && !trimmed.starts_with("//") {
                            code += 1;
                        }
                    }
                }
            }
        }
    }
    (total, code)
}

fn main() {
    println!("== Code-size inventory (cf. paper §4.1: 15,200 lines of C kernel code) ==");
    println!("{:<28} {:>12} {:>12}", "crate", "total lines", "code lines");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut grand = (0, 0);
    for crate_dir in [
        "crates/label",
        "crates/sim",
        "crates/store",
        "crates/kernel",
        "crates/unix",
        "crates/net",
        "crates/auth",
        "crates/apps",
        "crates/baseline",
        "crates/bench",
        "src",
        "examples",
        "tests",
    ] {
        let (total, code) = count_lines(&root.join(crate_dir));
        grand.0 += total;
        grand.1 += code;
        println!("{crate_dir:<28} {total:>12} {code:>12}");
    }
    println!("{:<28} {:>12} {:>12}", "TOTAL", grand.0, grand.1);
    println!();
    println!("Paper kernel breakdown (C): 3,400 arch, 4,000 B+-tree/log/persistence,");
    println!("3,000 device drivers, 4,800 syscalls/containers/misc = 15,200 total;");
    println!("Unix emulation library: ~10,000 lines; wrap: 110 lines;");
    println!("auth services: 58 + 188 + 233 + 370 + 30 lines.");
}
