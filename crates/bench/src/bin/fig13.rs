//! Regenerates Figure 13 (application-level benchmarks).

use histar_bench::fig13::{run, Fig13Params};
use histar_bench::BenchJson;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let params = if full {
        Fig13Params {
            build_files: 300,
            build_file_size: 32 * 1024,
            wget_bytes: 100 * 1024 * 1024,
            scan_bytes: 100 * 1024 * 1024,
        }
    } else {
        Fig13Params::default()
    };
    println!("parameters: {params:?}\n");
    let table = run(params);
    print!("{}", table.render());
    match BenchJson::from_table("fig13", &table).write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write JSON report: {e}"),
    }
}
