//! Regenerates Figure 12 (microbenchmarks).  Run with `--full` for the
//! paper-scale parameters (slower) or no arguments for the default scaled
//! run recorded in EXPERIMENTS.md.

use histar_bench::fig12::{run, Fig12Params};
use histar_bench::BenchJson;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let params = if full {
        Fig12Params {
            ipc_rounds: 200_000,
            proc_iterations: 100,
            small_files: 10_000,
            small_size: 1024,
            large_size: 100 * 1024 * 1024,
            large_chunk: 8 * 1024,
        }
    } else {
        Fig12Params::default()
    };
    println!("parameters: {params:?}\n");
    let table = run(params);
    print!("{}", table.render());
    match BenchJson::from_table("fig12", &table).write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write JSON report: {e}"),
    }
}
