//! The multiprogramming benchmark: interleaved untrusted logins under the
//! deterministic scheduler, single-node and across the two-node fabric.
//! Run with `--smoke` for the quick CI configuration.

use histar_bench::report::write_artifact;
use histar_bench::sched::{chrome_trace, run, SchedBenchParams};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = if smoke {
        SchedBenchParams::smoke()
    } else {
        SchedBenchParams::full()
    };
    println!("parameters: {params:?}\n");
    let (table, json) = run(params);
    print!("{}", table.render());
    match json.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write JSON report: {e}"),
    }
    match write_artifact("TRACE_sched.json", &chrome_trace(params)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write chrome trace: {e}"),
    }
    println!("Times are simulated; syscalls/sec and context-switch cost are");
    println!("also emitted as machine-readable JSON for the CI trajectory.");
}
