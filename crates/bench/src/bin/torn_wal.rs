//! The `crash-recovery` CI gate: a seeded torn-write-ahead-log sweep.
//!
//! For each seed, a deterministic workload fills `/persist` with fsynced
//! (and one deliberately unsynced) files, then the write-ahead log is
//! truncated at every record boundary — and torn mid-record — before
//! recovery.  Each recovered machine must satisfy the store's B+-tree
//! invariants, serve every file whose fsync preceded the cut byte-exact,
//! and keep refusing unprivileged readers of the recovered secret file.
//!
//! Usage: `torn_wal [--seed N]... [--max-cuts N]` (defaults: three seeds,
//! all cuts).  Exits nonzero on the first violated guarantee.

use histar_bench::crash::{run_replay_equivalence, run_torn_wal};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds: Vec<u64> = Vec::new();
    let mut max_cuts = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seeds.push(v),
                None => {
                    eprintln!("torn_wal: --seed needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--max-cuts" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_cuts = v,
                None => {
                    eprintln!("torn_wal: --max-cuts needs a number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("torn_wal: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if seeds.is_empty() {
        seeds = vec![0x0dd5_eed5, 42, 0x00c0_ffee];
    }

    for seed in seeds {
        match run_torn_wal(seed, max_cuts) {
            Ok(report) => {
                println!(
                    "torn_wal: seed {seed:#x}: OK — {} cuts, {} file recoveries verified, \
                     {} label checks on the recovered secret",
                    report.cuts, report.files_verified, report.secret_checks
                );
                // Where recovery time went, from the flight recorder's
                // per-phase spans (summed over every cut's recovery).
                for (phase, total_ns, count) in report.recovery_phases.iter().take(3) {
                    println!(
                        "torn_wal:   recovery phase {phase:<16} {total_ns:>12} ns \
                         across {count} recoveries"
                    );
                }
            }
            Err(e) => {
                eprintln!("torn_wal: seed {seed:#x}: FAIL — {e}");
                return ExitCode::FAILURE;
            }
        }
        // The same cut sweep again, recovering each crashed disk under
        // both replay modes: batched replay must be bit-identical to
        // record-by-record replay.
        match run_replay_equivalence(seed, max_cuts) {
            Ok(report) => {
                println!(
                    "torn_wal: seed {seed:#x}: replay equivalence OK — {} cuts, \
                     {} dual-mode label checks",
                    report.cuts, report.secret_checks
                );
            }
            Err(e) => {
                eprintln!("torn_wal: seed {seed:#x}: replay equivalence FAIL — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("torn_wal: all seeds passed");
    ExitCode::SUCCESS
}
