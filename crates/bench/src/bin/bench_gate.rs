//! CI perf gate: compares one metric of a freshly generated
//! `BENCH_<name>.json` against the committed baseline and fails (exit 1)
//! on a regression beyond the allowed fraction.
//!
//! Usage:
//!   bench_gate <baseline.json> <current.json> <metric> [max_regression]
//!   bench_gate <baseline.json> <current.json> <metric> --min-speedup <factor>
//!
//! `max_regression` is a fraction (default 0.20): the gate fails when
//! `current < baseline * (1 - max_regression)`.  With `--min-speedup F`
//! the gate inverts into an improvement floor: it fails unless
//! `current >= baseline * F` — used to pin a performance win (e.g.
//! recovery throughput vs a pre-optimisation baseline) so it cannot
//! quietly erode back.  Higher-is-better metrics only (rates like
//! `single_node.syscalls_per_sec`).  Simulated time is deterministic, so
//! the comparison is exact — no noise margin is needed beyond the
//! configured budget.

use std::process::ExitCode;

/// Extracts `"value"` for one metric from a `BenchJson`-rendered document
/// (one `{"metric": ..., "value": ..., "ticks": ...}` object per line).
fn metric_value(json: &str, metric: &str) -> Option<f64> {
    let needle = format!("\"metric\": \"{metric}\"");
    for line in json.lines() {
        if !line.contains(&needle) {
            continue;
        }
        let rest = line.split("\"value\":").nth(1)?;
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        return num.parse().ok();
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: bench_gate <baseline.json> <current.json> <metric> [max_regression]");
        return ExitCode::FAILURE;
    }
    let (baseline_path, current_path, metric) = (&args[0], &args[1], &args[2]);
    let min_speedup: Option<f64> = if args.get(3).map(String::as_str) == Some("--min-speedup") {
        Some(
            args.get(4)
                .map(|s| s.parse().expect("--min-speedup needs a number"))
                .unwrap_or_else(|| {
                    eprintln!("bench_gate: --min-speedup needs a number");
                    std::process::exit(1);
                }),
        )
    } else {
        None
    };
    let max_regression: f64 = if min_speedup.is_some() {
        0.0
    } else {
        args.get(3)
            .map(|s| s.parse().expect("max_regression must be a number"))
            .unwrap_or(0.20)
    };

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let baseline_doc = read(baseline_path);
    let current_doc = read(current_path);
    let Some(baseline) = metric_value(&baseline_doc, metric) else {
        eprintln!("bench_gate: metric {metric} missing from {baseline_path}");
        return ExitCode::FAILURE;
    };
    let Some(current) = metric_value(&current_doc, metric) else {
        eprintln!("bench_gate: metric {metric} missing from {current_path}");
        return ExitCode::FAILURE;
    };

    let floor = match min_speedup {
        Some(factor) => baseline * factor,
        None => baseline * (1.0 - max_regression),
    };
    let delta_pct = if baseline != 0.0 {
        (current - baseline) / baseline * 100.0
    } else {
        0.0
    };
    println!(
        "bench_gate: {metric}: baseline {baseline:.3}, current {current:.3} ({delta_pct:+.2}%), floor {floor:.3}"
    );
    if current < floor {
        match min_speedup {
            Some(factor) => eprintln!(
                "bench_gate: FAIL — {metric} fell below {factor}x the committed baseline"
            ),
            None => eprintln!(
                "bench_gate: FAIL — {metric} regressed more than {:.0}% below the committed baseline",
                max_regression * 100.0
            ),
        }
        return ExitCode::FAILURE;
    }
    println!("bench_gate: OK");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::metric_value;

    #[test]
    fn extracts_metric_values_from_bench_json() {
        let doc = "{\n  \"name\": \"sched\",\n  \"metrics\": [\n    {\"metric\": \"a.rate\", \"value\": 225450.508, \"ticks\": 1},\n    {\"metric\": \"b.count\", \"value\": 1548, \"ticks\": 2}\n  ]\n}\n";
        assert_eq!(metric_value(doc, "a.rate"), Some(225450.508));
        assert_eq!(metric_value(doc, "b.count"), Some(1548.0));
        assert_eq!(metric_value(doc, "missing"), None);
    }
}
