//! The file-system benchmark: open/read/write/readdir ops per simulated
//! second through the VFS, single node.  Run with `--smoke` for the quick
//! CI configuration.

use histar_bench::fs::{chrome_trace, run, FsBenchParams};
use histar_bench::report::write_artifact;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = if smoke {
        FsBenchParams::smoke()
    } else {
        FsBenchParams::full()
    };
    println!("parameters: {params:?}\n");
    let (table, json) = run(params);
    print!("{}", table.render());
    match json.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write JSON report: {e}"),
    }
    match write_artifact("TRACE_fs.json", &chrome_trace()) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write chrome trace: {e}"),
    }
    println!("Times are simulated; ops/sec and the I/O-phase batch-size");
    println!("histogram are emitted as machine-readable JSON for the CI gate.");
}
