//! Prints the cross-node RPC microbenchmark: per-call latency and total
//! simulated time for exporter-tunneled gate calls at several batch sizes.

use histar_bench::rpc::{run, RpcParams};
use histar_bench::BenchJson;

fn main() {
    let table = run(RpcParams::full());
    println!("{}", table.render());
    match BenchJson::from_table("exporter_rpc", &table).write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write JSON report: {e}"),
    }
    println!("Latency is simulated time on the calling node; each call is a");
    println!("label-translated, certificate-checked gate invocation behind netd.");
    println!("Batching packs several RPC messages into one wire frame, paying");
    println!("propagation latency and per-frame device costs once per batch.");
}
