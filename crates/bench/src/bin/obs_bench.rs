//! The observability overhead benchmark: the multiprogrammed-login
//! workload with tracing fully off and with the audit trace + flight
//! recorder on, emitting `BENCH_obs.json` (gated in CI) and the
//! tracing-enabled run's chrome-trace dump as `TRACE_obs.json`.
//! Run with `--smoke` for the quick CI configuration.

use histar_bench::obs::{run, ObsBenchParams};
use histar_bench::report::write_artifact;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = if smoke {
        ObsBenchParams::smoke()
    } else {
        ObsBenchParams::full()
    };
    println!("parameters: {params:?}\n");
    let (table, json, cmp) = run(params);
    print!("{}", table.render());
    println!(
        "\ntracing off: {:.0} syscalls/sec; tracing on: {:.0} syscalls/sec (ratio {:.4})",
        cmp.disabled.syscalls_per_sec(),
        cmp.enabled.syscalls_per_sec(),
        cmp.ratio()
    );
    println!(
        "recorder: {} spans captured, {} evicted; audit trace: {} records evicted",
        cmp.enabled.spans_recorded, cmp.enabled.spans_dropped, cmp.enabled.trace_dropped
    );
    match json.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write JSON report: {e}"),
    }
    if let Some(trace) = &cmp.enabled.chrome_trace {
        match write_artifact("TRACE_obs.json", trace) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write chrome trace: {e}"),
        }
    }
    // The acceptance bar, enforced here as well as by the CI bench gate:
    // tracing must cost less than 3% of untraced throughput (on the
    // simulated substrate it costs exactly nothing).
    assert!(
        cmp.ratio() >= 0.97,
        "tracing-enabled throughput fell more than 3% below tracing-disabled ({:.4})",
        cmp.ratio()
    );
    println!("tracing overhead within budget (>= 0.97 of untraced throughput)");
}
