//! Figure 13: application-level benchmarks.

use histar_apps::{build_benchmark, scan_benchmark, wget_benchmark};
use histar_baseline::BaselineOs;
use histar_net::Netd;
use histar_sim::SimDuration;
use histar_unix::UnixEnv;

use crate::report::{Row, Table};

/// Parameters for the Figure 13 workloads.
#[derive(Clone, Copy, Debug)]
pub struct Fig13Params {
    /// Number of source files in the kernel-build workload.
    pub build_files: usize,
    /// Size of each source file in bytes.
    pub build_file_size: usize,
    /// Bytes transferred by the wget workload (paper: 100 MB).
    pub wget_bytes: u64,
    /// Bytes scanned by the virus-scan workload (paper: 100 MB).
    pub scan_bytes: usize,
}

impl Default for Fig13Params {
    fn default() -> Fig13Params {
        Fig13Params {
            build_files: 60,
            build_file_size: 24 * 1024,
            wget_bytes: 16 * 1024 * 1024,
            scan_bytes: 32 * 1024 * 1024,
        }
    }
}

impl Fig13Params {
    /// Tiny parameters for tests and Criterion runs.
    pub fn smoke() -> Fig13Params {
        Fig13Params {
            build_files: 4,
            build_file_size: 8 * 1024,
            wget_bytes: 512 * 1024,
            scan_bytes: 512 * 1024,
        }
    }
}

/// The HiStar build workload.
pub fn histar_build(params: Fig13Params) -> SimDuration {
    let mut env = UnixEnv::boot();
    build_benchmark(&mut env, params.build_files, params.build_file_size)
        .expect("build workload runs")
}

/// The HiStar wget workload.
pub fn histar_wget(params: Fig13Params) -> SimDuration {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let netd = Netd::start(&mut env, init, "internet").expect("netd starts");
    wget_benchmark(&mut env, &netd, params.wget_bytes).expect("wget workload runs")
}

/// The HiStar virus-scan workload, with or without the isolation wrapper.
pub fn histar_scan(params: Fig13Params, isolated: bool) -> SimDuration {
    let mut env = UnixEnv::boot();
    scan_benchmark(&mut env, params.scan_bytes, isolated).expect("scan workload runs")
}

/// Runs every row of Figure 13 and assembles the table.
pub fn run(params: Fig13Params) -> Table {
    let mut table = Table::new("Figure 13: application-level benchmark results (simulated time)");

    let mut linux = BaselineOs::linux();
    let mut bsd = BaselineOs::openbsd();

    table.push(
        Row::new(&format!(
            "Building the HiStar kernel ({} files)",
            params.build_files
        ))
        .measure("HiStar", histar_build(params))
        .measure(
            "Linux",
            linux.build_kernel(params.build_files, params.build_file_size),
        )
        .measure(
            "OpenBSD",
            bsd.build_kernel(params.build_files, params.build_file_size),
        )
        .paper_value("HiStar", "6.2s")
        .paper_value("Linux", "4.7s")
        .paper_value("OpenBSD", "6.0s"),
    );

    table.push(
        Row::new(&format!(
            "Transferring {} MB with wget",
            params.wget_bytes / (1024 * 1024)
        ))
        .measure("HiStar", histar_wget(params))
        .measure("Linux", linux.wget(params.wget_bytes))
        .measure("OpenBSD", bsd.wget(params.wget_bytes))
        .paper_value("HiStar", "9.1s/100MB")
        .paper_value("Linux", "9.0s/100MB")
        .paper_value("OpenBSD", "9.0s/100MB"),
    );

    table.push(
        Row::new(&format!(
            "Virus-checking a {} MB file",
            params.scan_bytes / (1024 * 1024)
        ))
        .measure("HiStar", histar_scan(params, false))
        .measure("Linux", linux.virus_scan(params.scan_bytes as u64))
        .measure("OpenBSD", bsd.virus_scan(params.scan_bytes as u64))
        .paper_value("HiStar", "18.7s/100MB")
        .paper_value("Linux", "18.7s/100MB")
        .paper_value("OpenBSD", "21.2s/100MB"),
    );

    table.push(
        Row::new("... with isolation wrapper")
            .measure("HiStar", histar_scan(params, true))
            .paper_value("HiStar", "18.7s/100MB"),
    );

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_does_not_slow_down_the_scan() {
        let p = Fig13Params::smoke();
        let plain = histar_scan(p, false);
        let wrapped = histar_scan(p, true);
        // The wrapper's overhead is a handful of syscalls; the scan itself
        // dominates, so the two are within a few percent of each other.
        let ratio = wrapped.as_nanos() as f64 / plain.as_nanos() as f64;
        assert!(ratio < 1.1, "wrapper overhead too large: {ratio}");
    }

    #[test]
    fn wget_is_bandwidth_bound_on_all_systems() {
        let p = Fig13Params::smoke();
        let histar = histar_wget(p);
        let linux = BaselineOs::linux().wget(p.wget_bytes);
        // 512 KiB at 100 Mbps is ~42 ms of wire time; both should be close.
        assert!(histar.as_millis() >= 40);
        assert!(linux.as_millis() >= 40);
        let ratio = histar.as_nanos() as f64 / linux.as_nanos() as f64;
        assert!(ratio < 2.0, "HiStar should saturate the link too: {ratio}");
    }

    #[test]
    fn full_table_renders() {
        let text = run(Fig13Params::smoke()).render();
        assert!(text.contains("wget"));
        assert!(text.contains("isolation wrapper"));
    }
}
