//! Table formatting and paper-vs-measured bookkeeping.

use histar_sim::SimDuration;

/// One benchmark row: a label, the measured values per system, and the
/// paper's reported values for the same cell (when the paper reports one).
#[derive(Clone, Debug)]
pub struct Row {
    /// Human-readable benchmark name (matches the paper's row label).
    pub name: String,
    /// `(system name, measured simulated time)` pairs.
    pub measured: Vec<(String, SimDuration)>,
    /// `(system name, paper-reported value as printed in the paper)` pairs.
    pub paper: Vec<(String, String)>,
}

impl Row {
    /// Creates a row.
    pub fn new(name: &str) -> Row {
        Row {
            name: name.to_string(),
            measured: Vec::new(),
            paper: Vec::new(),
        }
    }

    /// Adds a measured value.
    pub fn measure(mut self, system: &str, value: SimDuration) -> Row {
        self.measured.push((system.to_string(), value));
        self
    }

    /// Adds the paper's reported value.
    pub fn paper_value(mut self, system: &str, value: &str) -> Row {
        self.paper.push((system.to_string(), value.to_string()));
        self
    }
}

/// A collection of rows printed as an aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (e.g. "Figure 12: microbenchmarks").
    pub title: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates a table.
    pub fn new(title: &str) -> Table {
        Table {
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for row in &self.rows {
            out.push_str(&format!("{:<44}", row.name));
            for (sys, v) in &row.measured {
                out.push_str(&format!(" | {sys}: {:>12}", v.to_string()));
            }
            if !row.paper.is_empty() {
                out.push_str("  [paper:");
                for (sys, v) in &row.paper {
                    out.push_str(&format!(" {sys}={v}"));
                }
                out.push(']');
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_rows_and_paper_values() {
        let mut t = Table::new("Figure 12");
        t.push(
            Row::new("IPC benchmark, per RTT")
                .measure("HiStar", SimDuration::from_nanos(3110))
                .measure("Linux", SimDuration::from_nanos(4320))
                .paper_value("HiStar", "3.11 usec"),
        );
        let s = t.render();
        assert!(s.contains("Figure 12"));
        assert!(s.contains("IPC benchmark"));
        assert!(s.contains("HiStar"));
        assert!(s.contains("paper"));
    }
}
