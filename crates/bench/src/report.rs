//! Table formatting and paper-vs-measured bookkeeping.

use histar_sim::SimDuration;

/// One benchmark row: a label, the measured values per system, and the
/// paper's reported values for the same cell (when the paper reports one).
#[derive(Clone, Debug)]
pub struct Row {
    /// Human-readable benchmark name (matches the paper's row label).
    pub name: String,
    /// `(system name, measured simulated time)` pairs.
    pub measured: Vec<(String, SimDuration)>,
    /// `(system name, paper-reported value as printed in the paper)` pairs.
    pub paper: Vec<(String, String)>,
}

impl Row {
    /// Creates a row.
    pub fn new(name: &str) -> Row {
        Row {
            name: name.to_string(),
            measured: Vec::new(),
            paper: Vec::new(),
        }
    }

    /// Adds a measured value.
    pub fn measure(mut self, system: &str, value: SimDuration) -> Row {
        self.measured.push((system.to_string(), value));
        self
    }

    /// Adds the paper's reported value.
    pub fn paper_value(mut self, system: &str, value: &str) -> Row {
        self.paper.push((system.to_string(), value.to_string()));
        self
    }
}

/// A collection of rows printed as an aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (e.g. "Figure 12: microbenchmarks").
    pub title: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates a table.
    pub fn new(title: &str) -> Table {
        Table {
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for row in &self.rows {
            out.push_str(&format!("{:<44}", row.name));
            for (sys, v) in &row.measured {
                out.push_str(&format!(" | {sys}: {:>12}", v.to_string()));
            }
            if !row.paper.is_empty() {
                out.push_str("  [paper:");
                for (sys, v) in &row.paper {
                    out.push_str(&format!(" {sys}={v}"));
                }
                out.push(']');
            }
            out.push('\n');
        }
        out
    }
}

/// Machine-readable benchmark output: one `BENCH_<name>.json` file per
/// harness run, so CI can track the perf trajectory without parsing the
/// human tables.
///
/// Schema: `{"name": ..., "ticks": <total simulated ns>, "metrics":
/// [{"metric": ..., "value": ..., "ticks": ...}, ...]}`.  `value` carries
/// the metric in its natural unit (ns for durations, plain numbers for
/// rates and counts); `ticks` is the simulated-time footprint backing the
/// metric, in nanoseconds.
#[derive(Clone, Debug, Default)]
pub struct BenchJson {
    /// The benchmark's name (`BENCH_<name>.json`).
    pub name: String,
    metrics: Vec<(String, f64, u64)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.3}")
        }
    } else {
        "0".to_string()
    }
}

impl BenchJson {
    /// Creates an empty report for benchmark `name`.
    pub fn new(name: &str) -> BenchJson {
        BenchJson {
            name: name.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Appends one metric: its value (natural unit) and the simulated-time
    /// footprint in nanoseconds.
    pub fn metric(&mut self, metric: &str, value: f64, ticks: u64) -> &mut BenchJson {
        self.metrics.push((metric.to_string(), value, ticks));
        self
    }

    /// Appends one metric per nonzero bucket of `hist`, named
    /// `<prefix>.<bucket label>` — the single emission path for every
    /// histogram any benchmark reports.
    pub fn histogram<const N: usize>(
        &mut self,
        prefix: &str,
        hist: &histar_obs::Histogram<N>,
        ticks: u64,
    ) -> &mut BenchJson {
        for (label, count) in hist.nonzero() {
            self.metric(&format!("{prefix}.{label}"), count as f64, ticks);
        }
        self
    }

    /// Builds a report from a rendered [`Table`]: every `(row, system)`
    /// measurement becomes one metric, valued in nanoseconds.
    pub fn from_table(name: &str, table: &Table) -> BenchJson {
        let mut out = BenchJson::new(name);
        for row in &table.rows {
            for (system, v) in &row.measured {
                let ns = v.as_nanos();
                out.metric(&format!("{} [{system}]", row.name), ns as f64, ns);
            }
        }
        out
    }

    /// Total simulated nanoseconds across all metrics.
    pub fn total_ticks(&self) -> u64 {
        self.metrics.iter().map(|(_, _, t)| *t).sum()
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"name\": \"{}\",\n  \"ticks\": {},\n  \"metrics\": [\n",
            json_escape(&self.name),
            self.total_ticks()
        ));
        for (i, (metric, value, ticks)) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"metric\": \"{}\", \"value\": {}, \"ticks\": {}}}{}\n",
                json_escape(metric),
                json_number(*value),
                ticks,
                if i + 1 == self.metrics.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into the current directory (or
    /// `$BENCH_OUT_DIR` when set) and returns its path.  The name is
    /// sanitized for the filesystem (anything outside `[A-Za-z0-9._-]`
    /// becomes `_`), so a name that needs JSON escaping cannot escape the
    /// output directory.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::env::var_os("BENCH_OUT_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        let safe: String = self
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("BENCH_{safe}.json"));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

/// Writes an arbitrary artifact (e.g. a chrome-trace JSON dump) next to the
/// `BENCH_*.json` reports, honoring `$BENCH_OUT_DIR`.  The name is
/// sanitized the same way as benchmark names.
pub fn write_artifact(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var_os("BENCH_OUT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(safe);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_rows_and_paper_values() {
        let mut t = Table::new("Figure 12");
        t.push(
            Row::new("IPC benchmark, per RTT")
                .measure("HiStar", SimDuration::from_nanos(3110))
                .measure("Linux", SimDuration::from_nanos(4320))
                .paper_value("HiStar", "3.11 usec"),
        );
        let s = t.render();
        assert!(s.contains("Figure 12"));
        assert!(s.contains("IPC benchmark"));
        assert!(s.contains("HiStar"));
        assert!(s.contains("paper"));
    }

    #[test]
    fn bench_json_from_table_and_render() {
        let mut t = Table::new("Figure 12");
        t.push(
            Row::new("IPC benchmark, per RTT")
                .measure("HiStar", SimDuration::from_nanos(3110))
                .measure("Linux", SimDuration::from_nanos(4320)),
        );
        let j = BenchJson::from_table("fig12", &t);
        let s = j.render();
        assert!(s.contains("\"name\": \"fig12\""));
        assert!(s.contains("\"ticks\": 7430"));
        assert!(s.contains("IPC benchmark, per RTT [HiStar]"));
        assert!(s.contains("\"value\": 3110, \"ticks\": 3110"));
        // Valid-ish JSON: balanced braces, no trailing comma.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert!(!s.contains(",\n  ]"));
    }

    #[test]
    fn bench_json_escapes_and_formats() {
        let mut j = BenchJson::new("weird\"name");
        j.metric("rate", 1234.5678, 99);
        let s = j.render();
        assert!(s.contains("weird\\\"name"));
        assert!(s.contains("\"value\": 1234.568"));
    }
}
