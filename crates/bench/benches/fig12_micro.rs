//! Criterion wrappers for the Figure 12 microbenchmarks.  These measure the
//! wall-clock cost of running each simulated workload; the simulated-time
//! results themselves are printed by `cargo run -p histar-bench --bin fig12`.

use criterion::{criterion_group, criterion_main, Criterion};
use histar_bench::fig12::{
    histar_fork_exec, histar_ipc_rtt, histar_lfs_small, histar_lfs_small_uncached_read,
    histar_spawn, SyncMode,
};
use std::hint::black_box;

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("ipc_rtt_200", |b| {
        b.iter(|| black_box(histar_ipc_rtt(200)))
    });
    group.bench_function("fork_exec_3", |b| {
        b.iter(|| black_box(histar_fork_exec(3)))
    });
    group.bench_function("spawn_3", |b| b.iter(|| black_box(histar_spawn(3))));
    group.bench_function("lfs_small_async_40", |b| {
        b.iter(|| black_box(histar_lfs_small(40, 1024, SyncMode::Async)))
    });
    group.bench_function("lfs_small_group_40", |b| {
        b.iter(|| black_box(histar_lfs_small(40, 1024, SyncMode::Group)))
    });
    group.bench_function("lfs_uncached_read_100", |b| {
        b.iter(|| black_box(histar_lfs_small_uncached_read(100, 1024, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
