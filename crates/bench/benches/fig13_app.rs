//! Criterion wrappers for the Figure 13 application benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use histar_bench::fig13::{histar_build, histar_scan, histar_wget, Fig13Params};
use std::hint::black_box;

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    let params = Fig13Params::smoke();
    group.bench_function("build_smoke", |b| b.iter(|| black_box(histar_build(params))));
    group.bench_function("wget_smoke", |b| b.iter(|| black_box(histar_wget(params))));
    group.bench_function("scan_wrapped_smoke", |b| {
        b.iter(|| black_box(histar_scan(params, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
