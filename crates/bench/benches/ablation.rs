//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//! the immutable-label comparison cache (§4) and write-ahead logging vs
//! full checkpoints for synchronous updates (§7.1).

use criterion::{criterion_group, criterion_main, Criterion};
use histar_label::{Category, Label, LabelCache, Level};
use histar_sim::SimClock;
use histar_store::{SingleLevelStore, StoreConfig, SyncPolicy};
use std::hint::black_box;

fn label_cache_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_label_cache");
    group.sample_size(20);
    // A pair of realistic labels (a user thread and a private file).
    let thread = Label::builder()
        .own(Category::from_raw(1))
        .own(Category::from_raw(2))
        .own(Category::from_raw(3))
        .build();
    let file = Label::builder()
        .set(Category::from_raw(2), Level::L3)
        .set(Category::from_raw(3), Level::L0)
        .set(Category::from_raw(9), Level::L2)
        .build();
    group.bench_function("uncached_comparisons", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(file.leq_high_rhs(&thread));
            }
        })
    });
    group.bench_function("cached_comparisons", |b| {
        let mut cache = LabelCache::new();
        let f = cache.intern(&file);
        let t = cache.intern(&thread);
        b.iter(|| {
            for _ in 0..1000 {
                black_box(cache.leq_high_rhs(f, t));
            }
        })
    });
    group.finish();
}

fn wal_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sync_strategy");
    group.sample_size(10);
    group.bench_function("per_op_sync_via_wal", |b| {
        b.iter(|| {
            let config = StoreConfig {
                sync_policy: SyncPolicy::PerOperation,
                ..StoreConfig::default()
            };
            let mut store = SingleLevelStore::format(config, SimClock::new());
            for i in 0..50u64 {
                store.put(i, vec![0u8; 1024]);
            }
            black_box(store.disk().clock().now())
        })
    });
    group.bench_function("per_op_sync_via_full_checkpoint", |b| {
        b.iter(|| {
            let mut store = SingleLevelStore::format(StoreConfig::default(), SimClock::new());
            for i in 0..50u64 {
                store.put(i, vec![0u8; 1024]);
                store.checkpoint();
            }
            black_box(store.disk().clock().now())
        })
    });
    group.finish();
}

criterion_group!(benches, label_cache_ablation, wal_ablation);
criterion_main!(benches);
