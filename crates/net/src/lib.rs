//! Networking for the HiStar reproduction: `netd` and VPN isolation.
//!
//! HiStar's network stack runs entirely in user space (§5.7): a `netd`
//! process owns the network device's read/write categories (`nr`, `nw`) and
//! exposes socket operations to other processes; everything received from
//! the network is tainted in a category `i`, so network data cannot affect
//! system files unless an owner of `i` explicitly untaints it.  §6.3 builds
//! VPN isolation on the same idea with a second category `v` for the
//! private network.
//!
//! The stack itself is deliberately minimal — the paper uses lwIP and we
//! only need the label behaviour — but the structure is the paper's: a
//! device object with a taint label, an untrusted daemon owning the device
//! categories, and clients whose ability to reach the network is decided
//! purely by the kernel's label checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use histar_kernel::abi::{Handle, SubmissionQueue};
use histar_kernel::bodies::DeviceBody;
use histar_kernel::object::{ContainerEntry, ObjectId};
use histar_kernel::Syscall;
use histar_label::{Category, Label, Level};
use histar_unix::fdtable::{
    FdKind, FdState, FLAG_NONBLOCK, FLAG_RDONLY, FLAG_SOCK_LISTEN, FLAG_SOCK_SERVER,
};
use histar_unix::net_queue::{self, ConnHandoff};
use histar_unix::process::Pid;
use histar_unix::vnode::{self, VfsCtx};
use histar_unix::{gatecall, Fd, UnixEnv, UnixError};

/// Result alias for networking operations.
pub type Result<T> = core::result::Result<T, UnixError>;

/// The user-level network daemon and its device.
///
/// The device is labelled `{nr 3, nw 0, i 2, 1}`: only owners of `nr`/`nw`
/// (netd) may drive it, and everything read from it carries taint `i 2`.
#[derive(Clone, Copy, Debug)]
pub struct Netd {
    /// The netd process.
    pub pid: Pid,
    /// The network device object.
    pub device: ObjectId,
    /// Category restricting who may read the device (`nr`).
    pub nr: Category,
    /// Category restricting who may write the device (`nw`).
    pub nw: Category,
    /// Category tainting all data received from this network (`i`).
    pub taint: Category,
    /// Container entry through which netd names the device.
    pub device_entry: ContainerEntry,
    /// Transmit buffer shared between clients and netd, labelled `{i 2, 1}`.
    pub tx_buffer: ContainerEntry,
    /// Receive buffer netd publishes incoming frames in, labelled `{i 2, 1}`.
    pub rx_buffer: ContainerEntry,
    /// netd's capability handle for the device (valid on netd's thread
    /// only; installed at start via reachability-checked resolution).
    pub device_handle: Handle,
    /// netd's capability handle for the transmit buffer.
    pub tx_handle: Handle,
    /// netd's capability handle for the receive buffer.
    pub rx_handle: Handle,
    /// Container holding accept queues and connection segments, labelled
    /// `{i 2, 1}` so the (tainted) netd can create objects in it and any
    /// `i`-tainted peer can name entries through it.
    pub conns: ObjectId,
}

/// A listening socket, as returned by [`Netd::listen`].
#[derive(Clone, Copy, Debug)]
pub struct Listener {
    /// The server's listening descriptor (accept on this).
    pub fd: Fd,
    /// The accept-queue segment — what clients pass to [`Netd::connect`]
    /// (in a real stack this is the address/port they dial).
    pub queue: ContainerEntry,
    /// The listener's guard category: the acceptor owns it, and every
    /// per-connection grant gate netd pre-creates pins it to `0` in the
    /// gate clearance, so nobody else can enter those gates and steal a
    /// connection's categories while it waits in the queue.
    pub guard: Category,
}

/// One accepted connection, as returned by [`Netd::accept`].
#[derive(Clone, Copy, Debug)]
pub struct Accepted {
    /// The server-side connection descriptor.
    pub fd: Fd,
    /// The connection's receive-taint category (the paper's `ssl_r`):
    /// level 3 in the connection label, so only its owners may observe
    /// the connection's bytes.
    pub taint_cat: Category,
    /// The connection's write-protect category (the paper's `ssl_w`):
    /// level 0 in the connection label, so only its owners may write the
    /// connection.
    pub write_cat: Category,
}

impl Netd {
    /// Starts a network daemon: spawns the netd process, allocates the
    /// `nr`/`nw`/`i` categories on its thread, and attaches a network
    /// device labelled `{nr 3, nw 0, i 2, 1}`.
    ///
    /// `name` distinguishes multiple stacks (e.g. `"internet"` / `"vpn"`).
    pub fn start(env: &mut UnixEnv, parent: Pid, name: &str) -> Result<Netd> {
        // The network taint category belongs to the boot environment (the
        // parent), matching the paper: "the bootstrap procedure already
        // labels the network device to taint anything received from the
        // Internet {i 2, 1}".  netd itself never owns it.
        let parent_thread = env.process(parent)?.thread;
        let taint = env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(parent_thread)?;

        // netd is born tainted `i 2` (Figure 11): it can eavesdrop on or
        // tamper with packets, but cannot leak tainted data anywhere
        // untainted — "a compromised netd can only mount the equivalent
        // of a network eavesdropping or packet tampering attack".
        // Spawning it pre-tainted (rather than raising its label later)
        // also labels its own containers `.. i 2 ..`, so the tainted
        // daemon can still create grant gates and connection state.
        let pid = env.spawn_with_label(
            parent,
            &format!("/sbin/netd-{name}"),
            vec![],
            vec![(taint, Level::L2)],
        )?;
        let thread = env.process(pid)?.thread;
        let kroot = env.machine().kernel().root_container();
        let kernel = env.machine_mut().kernel_mut();
        let nr = kernel.trap_create_category(thread)?;
        let nw = kernel.trap_create_category(thread)?;
        let label = Label::builder()
            .set(nr, Level::L3)
            .set(nw, Level::L0)
            .set(taint, Level::L2)
            .build();
        // The kernel "discovers" the device at netd start in this
        // reproduction; on real hardware it exists from boot and netd is
        // granted its categories by the administrator's boot environment.
        let device = kernel.boot_create_device(
            kroot,
            label,
            DeviceBody::network([0x52, 0x54, 0, 0, 0, 1]),
            &format!("nic-{name}"),
        )?;
        // Shared packet buffers, tainted like the network itself.
        let buffer_label = Label::builder().set(taint, Level::L2).build();
        let kernel = env.machine_mut().kernel_mut();
        let tx_buffer = kernel.trap_segment_create(
            parent_thread,
            kroot,
            buffer_label.clone(),
            64 * 1024,
            &format!("netd-{name} tx"),
        )?;
        let rx_buffer = kernel.trap_segment_create(
            parent_thread,
            kroot,
            buffer_label.clone(),
            64 * 1024,
            &format!("netd-{name} rx"),
        )?;
        // Connection state lives in its own container, tainted like the
        // network: netd (itself `i 2`) creates accept queues and
        // connection segments here, and any `i`-tainted peer can name
        // them through it.  Sized for a 10⁴-connection burst (each idle
        // connection segment charges one page of quota).
        let conns = kernel.trap_container_create(
            parent_thread,
            kroot,
            buffer_label,
            &format!("netd-{name} conns"),
            0,
            256 * 1024 * 1024,
        )?;
        let device_entry = ContainerEntry::new(kroot, device);
        let tx_entry = ContainerEntry::new(kroot, tx_buffer);
        let rx_entry = ContainerEntry::new(kroot, rx_buffer);
        // netd resolves its three hot objects into capability handles once
        // (one batch, reachability-checked); every per-packet call then
        // names them by handle instead of raw ⟨container, object⟩ pairs.
        let mut sq = SubmissionQueue::new();
        sq.open_handle(device_entry);
        sq.open_handle(tx_entry);
        sq.open_handle(rx_entry);
        kernel.submit(thread, &mut sq);
        let mut handles = kernel
            .reap_completions(thread)
            .into_iter()
            .map(|c| c.into_handle_result().map_err(UnixError::from));
        let device_handle = handles.next().expect("three completions")?;
        let tx_handle = handles.next().expect("three completions")?;
        let rx_handle = handles.next().expect("three completions")?;
        Ok(Netd {
            pid,
            device,
            nr,
            nw,
            taint,
            device_entry,
            tx_buffer: tx_entry,
            rx_buffer: rx_entry,
            device_handle,
            tx_handle,
            rx_handle,
            conns,
        })
    }

    /// Spawns a process pre-tainted `i 2` — the right birth label for
    /// anything that will speak sockets.  A process tainted from birth
    /// carries the taint on its own containers, so it can still maintain
    /// descriptor state after reading from the network; a process that
    /// raises the taint later cannot create new descriptors.
    pub fn spawn_tainted(&self, env: &mut UnixEnv, parent: Pid, executable: &str) -> Result<Pid> {
        env.spawn_with_label(parent, executable, vec![], vec![(self.taint, Level::L2)])
    }

    /// Raises `pid`'s taint to `i 2` if it neither owns `i` nor already
    /// carries it — the label cost of looking at network data.
    fn ensure_net_taint(&self, env: &mut UnixEnv, pid: Pid) -> Result<()> {
        let thread = env.process(pid)?.thread;
        let kernel = env.machine_mut().kernel_mut();
        let label = kernel.thread_label(thread)?;
        if !label.owns(self.taint) && label.level(self.taint).as_low() < Level::L2.as_low() {
            kernel.trap_self_set_label(thread, label.with(self.taint, Level::L2))?;
        }
        Ok(())
    }

    /// Creates a listening socket for `server`: netd allocates an accept
    /// queue in its connections container and the server gets a
    /// descriptor for it (`FLAG_SOCK_LISTEN`).  Returns the listener; the
    /// queue entry inside it is the "address" clients connect to.
    ///
    /// The server should be spawned via [`Netd::spawn_tainted`] (or
    /// otherwise carry taint `i 2` from birth).
    pub fn listen(&self, env: &mut UnixEnv, server: Pid) -> Result<Listener> {
        let netd_thread = env.process(self.pid)?.thread;
        let kernel = env.machine_mut().kernel_mut();
        let queue_label = Label::builder().set(self.taint, Level::L2).build();
        let queue = kernel.trap_segment_create(
            netd_thread,
            self.conns,
            queue_label,
            net_queue::QUEUE_SEGMENT_LEN,
            "accept queue",
        )?;
        let queue_entry = ContainerEntry::new(self.conns, queue);
        {
            let mut ctx = VfsCtx {
                machine: env.machine_mut(),
                thread: netd_thread,
            };
            net_queue::init_queue_segment(&mut ctx, queue_entry)?;
        }
        self.ensure_net_taint(env, server)?;
        // The listener's guard category: netd keeps `⋆` (one per
        // listener), the server gains `⋆` through an ordinary grant, and
        // every pending connection's grant gate demands it at `0`.
        let guard = {
            let netd_thread = env.process(self.pid)?.thread;
            env.machine_mut()
                .kernel_mut()
                .trap_create_category(netd_thread)?
        };
        gatecall::grant_categories(env, self.pid, server, &[guard])?;
        let fd = env.install_descriptor(
            server,
            FdState {
                kind: FdKind::Socket,
                target: queue,
                target_container: self.conns,
                position: 0,
                flags: FLAG_SOCK_LISTEN | FLAG_RDONLY,
                refs: 1,
            },
        )?;
        Ok(Listener {
            fd,
            queue: queue_entry,
            guard,
        })
    }

    /// Connects `client` to a listening socket (§6.1's connection setup):
    /// netd mints the two per-connection categories (`ssl_r`/`ssl_w`),
    /// creates the connection segment labelled
    /// `{i 2, ssl_r 3, ssl_w 0, 1}`, grants both categories to the
    /// client through a gate, pre-creates the (guarded) grant gate the
    /// acceptor will enter, and enqueues the handoff.  netd then *sheds*
    /// its own ownership of the two categories: a daemon that kept `⋆`
    /// for every connection it ever set up would grow its label without
    /// bound, and every label check it makes scales with that size.
    /// Returns the client-side descriptor.
    pub fn connect(&self, env: &mut UnixEnv, client: Pid, listener: &Listener) -> Result<Fd> {
        let queue = listener.queue;
        let netd_thread = env.process(self.pid)?.thread;
        let kernel = env.machine_mut().kernel_mut();
        let c_r = kernel.trap_create_category(netd_thread)?;
        let c_w = kernel.trap_create_category(netd_thread)?;
        let conn_label = Label::builder()
            .set(self.taint, Level::L2)
            .set(c_r, Level::L3)
            .set(c_w, Level::L0)
            .build();
        // Length 0: the two ring headers and the data bytes materialize
        // lazily inside the segment's one-page quota, so 10⁴ idle
        // connections cost ~48 bytes of memory each.
        let conn = kernel.trap_segment_create(netd_thread, self.conns, conn_label, 0, "conn")?;
        let conn_entry = ContainerEntry::new(self.conns, conn);
        {
            let mut ctx = VfsCtx {
                machine: env.machine_mut(),
                thread: netd_thread,
            };
            vnode::init_socket_segment(&mut ctx, conn_entry)?;
        }
        self.ensure_net_taint(env, client)?;
        gatecall::grant_categories(env, self.pid, client, &[c_r, c_w])?;
        let fd = env.install_descriptor(
            client,
            FdState {
                kind: FdKind::Socket,
                target: conn,
                target_container: self.conns,
                position: 0,
                flags: 0,
                refs: 1,
            },
        )?;
        // The acceptor runs later, so its grant rides a pre-created gate
        // (in the roomy connections container, not netd's own), guarded
        // by the listener's category so nobody else can enter it.
        let grant_gate = gatecall::create_grant_gate(
            env,
            self.pid,
            self.conns,
            &[c_r, c_w],
            Some(listener.guard),
        )?;
        let mut ctx = VfsCtx {
            machine: env.machine_mut(),
            thread: netd_thread,
        };
        net_queue::enqueue(
            &mut ctx,
            queue,
            &ConnHandoff {
                container: self.conns,
                segment: conn,
                taint_cat: c_r.raw(),
                write_cat: c_w.raw(),
                grant_gate: grant_gate.object,
            },
        )?;
        // Connection state is set up and both grants are arranged: netd
        // renounces the pair, keeping its own label O(1).
        gatecall::drop_categories(env, self.pid, &[c_r, c_w])?;
        Ok(fd)
    }

    /// Accepts the next pending connection on a listening descriptor.
    ///
    /// Returns `Ok(None)` when the queue is empty and the descriptor is
    /// blocking: a readiness watch is registered on the queue segment, so
    /// the caller should block its thread and retry after the wake-up —
    /// `accept(2)` semantics.  With `O_NONBLOCK` set, an empty queue is
    /// [`UnixError::WouldBlock`] instead.  On success the server is
    /// granted the connection's two categories and gets a server-side
    /// descriptor.
    pub fn accept(
        &self,
        env: &mut UnixEnv,
        server: Pid,
        listen_fd: Fd,
    ) -> Result<Option<Accepted>> {
        let state = env.fd_snapshot(server, listen_fd)?;
        if state.kind != FdKind::Socket || state.flags & FLAG_SOCK_LISTEN == 0 {
            return Err(UnixError::Kernel(
                histar_kernel::syscall::SyscallError::InvalidArgument(
                    "accept on a non-listening descriptor",
                ),
            ));
        }
        self.ensure_net_taint(env, server)?;
        let server_thread = env.process(server)?.thread;
        // Drain stale wake-ups so a watch registered below is the only
        // notification outstanding.
        env.machine_mut()
            .kernel_mut()
            .reap_completions(server_thread);
        let queue = ContainerEntry::new(state.target_container, state.target);
        let handoff = {
            let mut ctx = VfsCtx {
                machine: env.machine_mut(),
                thread: server_thread,
            };
            match net_queue::dequeue(&mut ctx, queue) {
                Ok(handoff) => handoff,
                Err(UnixError::WouldBlock) if state.flags & FLAG_NONBLOCK == 0 => {
                    ctx.kernel().trap_segment_watch(server_thread, queue)?;
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        };
        let taint_cat = Category::from_raw(handoff.taint_cat);
        let write_cat = Category::from_raw(handoff.write_cat);
        gatecall::enter_grant_gate(
            env,
            self.pid,
            ContainerEntry::new(handoff.container, handoff.grant_gate),
            server,
            &[taint_cat, write_cat],
        )?;
        let fd = env.install_descriptor(
            server,
            FdState {
                kind: FdKind::Socket,
                target: handoff.segment,
                target_container: handoff.container,
                position: 0,
                flags: FLAG_SOCK_SERVER,
                refs: 1,
            },
        )?;
        Ok(Some(Accepted {
            fd,
            taint_cat,
            write_cat,
        }))
    }

    /// Transmits a payload on behalf of a client process.
    ///
    /// The client's thread writes the payload into netd's (untainted)
    /// transmit buffer segment, and netd's own thread — which owns `nr`/`nw`
    /// and runs tainted `i 2` — moves it onto the device.  The first step is
    /// an ordinary kernel write check, so a client tainted in any category
    /// the buffer is not (the isolated virus scanner, a `v`-tainted VPN
    /// application) is refused by the kernel: its data cannot reach the
    /// wire.
    pub fn send(&self, env: &mut UnixEnv, client: Pid, payload: &[u8]) -> Result<()> {
        let client_thread = env.process(client)?.thread;
        let netd_thread = env.process(self.pid)?.thread;
        let kernel = env.machine_mut().kernel_mut();
        // The client's side is one submission batch: the taint raise (the
        // paper's web browser runs at `{i 2, 1}`, unless it owns `i`) and
        // the write that conveys the payload to netd.
        let label = kernel.thread_label(client_thread)?;
        let mut client_calls = Vec::with_capacity(2);
        if !label.owns(self.taint) && label.level(self.taint).as_low() < Level::L2.as_low() {
            client_calls.push(Syscall::SelfSetLabel {
                label: label.with(self.taint, Level::L2),
            });
        }
        let mut msg = (payload.len() as u64).to_le_bytes().to_vec();
        msg.extend_from_slice(payload);
        client_calls.push(Syscall::SegmentWrite {
            entry: self.tx_buffer,
            offset: 0,
            data: msg,
        });
        for r in kernel.submit_calls(client_thread, client_calls) {
            r?;
        }
        // netd drains its buffer onto the device, naming the buffer and
        // the device by capability handle.  The payload read cannot share
        // the length read's batch (user-level data dependency), but the
        // transmit is driven by kernel state the read established, so read
        // and transmit stay one trap apart at most.
        let len = u64::from_le_bytes(
            kernel.trap_segment_read(netd_thread, self.tx_handle.entry(), 0, 8)?[..8]
                .try_into()
                .expect("8 bytes"),
        );
        let frame = kernel.trap_segment_read(netd_thread, self.tx_handle.entry(), 8, len)?;
        kernel.trap_net_transmit(netd_thread, self.device_handle.entry(), frame)?;
        Ok(())
    }

    /// Transmits several already-encoded wire frames in a single
    /// submission batch on netd's own thread (one trap cost for the whole
    /// burst) — the device-side half of batched tx.
    pub fn transmit_frames(&self, env: &mut UnixEnv, frames: Vec<Vec<u8>>) -> Result<()> {
        if frames.is_empty() {
            return Ok(());
        }
        let netd_thread = env.process(self.pid)?.thread;
        let kernel = env.machine_mut().kernel_mut();
        let calls: Vec<Syscall> = frames
            .into_iter()
            .map(|frame| Syscall::NetTransmit {
                device: self.device_handle.entry(),
                frame,
            })
            .collect();
        for r in kernel.submit_calls(netd_thread, calls) {
            r?;
        }
        Ok(())
    }

    /// Takes up to `max` frames off the device in a single submission
    /// batch on netd's own thread — the device-side half of batched rx.
    /// Returns the frames in arrival order (shorter than `max` when the
    /// device ran dry).
    pub fn drain_device(&self, env: &mut UnixEnv, max: usize) -> Result<Vec<Vec<u8>>> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let netd_thread = env.process(self.pid)?.thread;
        let kernel = env.machine_mut().kernel_mut();
        let calls: Vec<Syscall> = (0..max)
            .map(|_| Syscall::NetReceive {
                device: self.device_handle.entry(),
            })
            .collect();
        let mut frames = Vec::new();
        for r in kernel.submit_calls(netd_thread, calls) {
            match r?.into_frame() {
                Some(frame) => frames.push(frame),
                None => break,
            }
        }
        Ok(frames)
    }

    /// Receives the next pending frame for a client.
    ///
    /// netd's thread takes the frame off the device and publishes it in the
    /// receive buffer segment, which is labelled `{i 2, 1}`; the client must
    /// therefore taint itself `i 2` (up to its clearance) to observe it —
    /// unless it owns `i`, like the VPN client.  The taint sticks: network
    /// input cannot silently flow into untainted system files afterwards.
    pub fn recv(&self, env: &mut UnixEnv, client: Pid) -> Result<Option<Vec<u8>>> {
        let client_thread = env.process(client)?.thread;
        let netd_thread = env.process(self.pid)?.thread;
        let kernel = env.machine_mut().kernel_mut();
        let Some(frame) = kernel.trap_net_receive(netd_thread, self.device_handle.entry())? else {
            return Ok(None);
        };
        // netd publishes the frame in the {i 2, 1} receive buffer.
        let mut msg = (frame.len() as u64).to_le_bytes().to_vec();
        msg.extend_from_slice(&frame);
        kernel.trap_segment_write(netd_thread, self.rx_handle.entry(), 0, &msg)?;
        // The client's taint raise (if it does not own i) and its length
        // read share one submission batch; only the payload read, whose
        // size is computed user-side from the length, needs a second trap.
        let label = kernel.thread_label(client_thread)?;
        let mut client_calls = Vec::with_capacity(2);
        if !label.owns(self.taint) && label.level(self.taint).as_low() < Level::L2.as_low() {
            client_calls.push(Syscall::SelfSetLabel {
                label: label.with(self.taint, Level::L2),
            });
        }
        client_calls.push(Syscall::SegmentRead {
            entry: self.rx_buffer,
            offset: 0,
            len: 8,
        });
        let mut results = kernel.submit_calls(client_thread, client_calls);
        let header = results.pop().expect("one completion per submitted call");
        for earlier in results {
            earlier?;
        }
        let head = header?.into_bytes();
        let len = u64::from_le_bytes(head[..8].try_into().expect("8 bytes"));
        let data = kernel.trap_segment_read(client_thread, self.rx_buffer, 8, len)?;
        Ok(Some(data))
    }

    /// Encodes several messages into one wire frame (`count` then
    /// length-prefixed messages).  Exporters batch RPC messages this way so
    /// the per-frame costs of the device and the wire are paid once per
    /// batch instead of once per message.
    pub fn encode_batch(payloads: &[Vec<u8>]) -> Vec<u8> {
        let mut frame = (payloads.len() as u32).to_le_bytes().to_vec();
        for p in payloads {
            frame.extend_from_slice(&(p.len() as u64).to_le_bytes());
            frame.extend_from_slice(p);
        }
        frame
    }

    /// Decodes a frame written by [`Netd::encode_batch`].  Returns `None`
    /// for malformed frames (a truncated or non-batch frame).  Frames come
    /// off the wire, so every length is validated before it drives an
    /// allocation or an index.
    pub fn decode_batch(frame: &[u8]) -> Option<Vec<Vec<u8>>> {
        let count = u32::from_le_bytes(frame.get(..4)?.try_into().ok()?) as usize;
        // Each message needs at least its 8-byte length prefix; a count the
        // frame cannot possibly hold is rejected before any allocation.
        if count > frame.len().saturating_sub(4) / 8 {
            return None;
        }
        let mut out = Vec::with_capacity(count);
        let mut pos = 4usize;
        for _ in 0..count {
            let len_bytes = frame.get(pos..pos.checked_add(8)?)?;
            let len = u64::from_le_bytes(len_bytes.try_into().ok()?);
            pos = pos.checked_add(8)?;
            let len = usize::try_from(len).ok()?;
            let end = pos.checked_add(len)?;
            out.push(frame.get(pos..end)?.to_vec());
            pos = end;
        }
        (pos == frame.len()).then_some(out)
    }

    /// Transmits several messages as a single wire frame on behalf of a
    /// client, with exactly the same label discipline as [`Netd::send`]: the
    /// client's thread writes the batch into the shared transmit buffer (so
    /// the kernel refuses tainted senders), and netd moves it to the device.
    pub fn send_batch(&self, env: &mut UnixEnv, client: Pid, payloads: &[Vec<u8>]) -> Result<()> {
        self.send(env, client, &Netd::encode_batch(payloads))
    }

    /// Receives the next pending frame for a client and splits it into the
    /// batched messages.  The client picks up the network taint exactly as
    /// with [`Netd::recv`].
    ///
    /// A malformed frame is an error, distinct from `Ok(None)` ("nothing
    /// pending") — otherwise one garbage frame would silently end a drain
    /// loop with legitimate traffic still queued behind it.
    pub fn recv_batch(&self, env: &mut UnixEnv, client: Pid) -> Result<Option<Vec<Vec<u8>>>> {
        let Some(frame) = self.recv(env, client)? else {
            return Ok(None);
        };
        match Netd::decode_batch(&frame) {
            Some(batch) => Ok(Some(batch)),
            None => Err(UnixError::Kernel(
                histar_kernel::syscall::SyscallError::InvalidArgument("malformed batch frame"),
            )),
        }
    }

    /// Simulation hook: a frame arrives from the physical wire.
    pub fn wire_deliver(&self, env: &mut UnixEnv, frame: Vec<u8>) -> Result<()> {
        env.machine_mut()
            .kernel_mut()
            .device_inject_rx(self.device, frame)?;
        Ok(())
    }

    /// Simulation hook: frames the machine has put on the physical wire.
    pub fn wire_collect(&self, env: &mut UnixEnv) -> Result<Vec<Vec<u8>>> {
        Ok(env
            .machine_mut()
            .kernel_mut()
            .device_drain_tx(self.device)?)
    }
}

/// VPN isolation (§6.3): two network stacks whose taints keep the corporate
/// network and the Internet apart, bridged only by the VPN client, which
/// owns both `i` and `v` and swaps the taints as it encrypts/decrypts.
#[derive(Clone, Copy, Debug)]
pub struct VpnIsolation {
    /// The Internet-facing stack (taints received data `i 2`).
    pub internet: Netd,
    /// The VPN-facing stack (taints received data `v 2`).
    pub vpn: Netd,
    /// The VPN client process, the only owner of both taint categories.
    pub client: Pid,
}

impl VpnIsolation {
    /// Builds the two stacks and the VPN client process.
    pub fn start(env: &mut UnixEnv, parent: Pid) -> Result<VpnIsolation> {
        let internet = Netd::start(env, parent, "internet")?;
        let vpn = Netd::start(env, parent, "vpn")?;
        // The VPN client owns both taint categories so it can move (encrypt
        // / decrypt) data between the two networks.
        let client = env.spawn_with_label(
            parent,
            "/usr/sbin/openvpn",
            vec![internet.taint, vpn.taint],
            vec![],
        )?;
        Ok(VpnIsolation {
            internet,
            vpn,
            client,
        })
    }

    /// The VPN client takes one frame that arrived from the Internet side,
    /// "decrypts" it and delivers it into the VPN stack (swapping taint `i`
    /// for taint `v`).  Returns false if nothing was pending.
    pub fn pump_inbound(&self, env: &mut UnixEnv) -> Result<bool> {
        let Some(frame) = self.internet.recv(env, self.client)? else {
            return Ok(false);
        };
        // "Decrypt" (identity in the simulation) and forward.  The client
        // owns both i and v, so untainting i and retainting v is legal for
        // it and only for it.
        self.vpn.wire_deliver(env, frame)?;
        self.reset_client_label(env)?;
        Ok(true)
    }

    /// The reverse direction: a frame from the VPN side is encrypted and
    /// sent out over the Internet stack.
    pub fn pump_outbound(&self, env: &mut UnixEnv) -> Result<bool> {
        let Some(frame) = self.vpn.recv(env, self.client)? else {
            return Ok(false);
        };
        self.reset_client_label(env)?;
        self.internet.send(env, self.client, &frame)?;
        Ok(true)
    }

    fn reset_client_label(&self, env: &mut UnixEnv) -> Result<()> {
        // The client owns i and v, so it may clear the taint it picked up
        // while reading a device (this is the untainting step of OpenVPN's
        // taint swap).
        let p = env.process(self.client)?.clone();
        let thread = p.thread;
        let kernel = env.machine_mut().kernel_mut();
        kernel.trap_self_set_label(thread, p.thread_label())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_kernel::syscall::SyscallError;

    fn setup() -> (UnixEnv, Pid, Netd) {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let netd = Netd::start(&mut env, init, "internet").unwrap();
        (env, init, netd)
    }

    #[test]
    fn untainted_client_can_send_and_receive() {
        let (mut env, init, netd) = setup();
        let client = env.spawn(init, "/usr/bin/wget", None).unwrap();
        netd.send(&mut env, client, b"GET / HTTP/1.0").unwrap();
        assert_eq!(
            netd.wire_collect(&mut env).unwrap(),
            vec![b"GET / HTTP/1.0".to_vec()]
        );
        netd.wire_deliver(&mut env, b"200 OK".to_vec()).unwrap();
        assert_eq!(
            netd.recv(&mut env, client).unwrap(),
            Some(b"200 OK".to_vec())
        );
        // After receiving, the client is tainted in i.
        let thread = env.process(client).unwrap().thread;
        let label = env.machine().kernel().thread_label(thread).unwrap();
        assert_eq!(label.level(netd.taint), Level::L2);
    }

    #[test]
    fn batched_frames_round_trip_with_labels_intact() {
        let (mut env, init, netd) = setup();
        let client = env.spawn(init, "/usr/bin/dstar", None).unwrap();
        let msgs = vec![b"call 1".to_vec(), b"call 2".to_vec(), b"call 3".to_vec()];
        netd.send_batch(&mut env, client, &msgs).unwrap();
        let frames = netd.wire_collect(&mut env).unwrap();
        assert_eq!(frames.len(), 1, "a batch is one wire frame");
        netd.wire_deliver(&mut env, frames[0].clone()).unwrap();
        let got = netd.recv_batch(&mut env, client).unwrap().unwrap();
        assert_eq!(got, msgs);
        // The batch path taints the receiving client like any other read
        // from the network.
        let thread = env.process(client).unwrap().thread;
        let label = env.machine().kernel().thread_label(thread).unwrap();
        assert_eq!(label.level(netd.taint), Level::L2);
        // A malformed frame decodes to None rather than garbage.
        assert_eq!(Netd::decode_batch(b"xx"), None);
        assert_eq!(Netd::decode_batch(&[1, 0, 0, 0]), None);
    }

    #[test]
    fn device_side_batching_transmits_and_drains_in_one_trap() {
        let (mut env, _init, netd) = setup();
        let batches_before = env.machine().kernel().dispatch_stats().batches;

        // Three frames out in one submission batch.
        netd.transmit_frames(
            &mut env,
            vec![b"f1".to_vec(), b"f2".to_vec(), b"f3".to_vec()],
        )
        .unwrap();
        assert_eq!(
            netd.wire_collect(&mut env).unwrap(),
            vec![b"f1".to_vec(), b"f2".to_vec(), b"f3".to_vec()]
        );

        // Two frames pending, drained with headroom: both arrive, in
        // order, and the first empty receive ends the batch's harvest.
        netd.wire_deliver(&mut env, b"r1".to_vec()).unwrap();
        netd.wire_deliver(&mut env, b"r2".to_vec()).unwrap();
        let frames = netd.drain_device(&mut env, 4).unwrap();
        assert_eq!(frames, vec![b"r1".to_vec(), b"r2".to_vec()]);
        assert_eq!(
            netd.drain_device(&mut env, 4).unwrap(),
            Vec::<Vec<u8>>::new()
        );
        assert_eq!(
            netd.drain_device(&mut env, 0).unwrap(),
            Vec::<Vec<u8>>::new()
        );

        // Each burst crossed the boundary once (plus the empty drain).
        let batches = env.machine().kernel().dispatch_stats().batches - batches_before;
        assert_eq!(batches, 3, "transmit burst, drain, empty drain");
    }

    #[test]
    fn refused_taint_raise_keeps_payload_off_the_wire() {
        // A batch does not stop on errors, so when a client's taint raise
        // is refused (clearance in `i` below L2 — the mechanism for
        // denying network access), the batched SegmentWrite still
        // *executes* — but the kernel's own per-call write check refuses
        // the still-untainted client, so nothing reaches the buffer or
        // the wire.  This pins down that batching never weakens a check.
        let (mut env, init, netd) = setup();
        let client = env.spawn(init, "/usr/bin/lowclear", None).unwrap();
        let thread = env.process(client).unwrap().thread;
        let kernel = env.machine_mut().kernel_mut();
        let lowered = kernel
            .thread_clearance(thread)
            .unwrap()
            .with(netd.taint, Level::L1);
        kernel.trap_self_set_clearance(thread, lowered).unwrap();

        let err = netd.send(&mut env, client, b"forbidden").unwrap_err();
        assert!(matches!(err, UnixError::Kernel(_)), "got {err:?}");
        assert!(netd.wire_collect(&mut env).unwrap().is_empty());
        // The tx buffer header is untouched (still zeroed).
        let netd_thread = env.process(netd.pid).unwrap().thread;
        let head = env
            .machine_mut()
            .kernel_mut()
            .trap_segment_read(netd_thread, netd.tx_buffer, 0, 8)
            .unwrap();
        assert_eq!(head, vec![0u8; 8]);
    }

    #[test]
    fn tainted_process_cannot_reach_the_network() {
        let (mut env, init, netd) = setup();
        // A process tainted in a fresh category (like the virus scanner).
        let wrap_thread = env.process(init).unwrap().thread;
        let v = env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(wrap_thread)
            .unwrap();
        let scanner = env
            .spawn_with_label(init, "/usr/bin/clamscan", vec![], vec![(v, Level::L3)])
            .unwrap();
        let err = netd.send(&mut env, scanner, b"exfiltrate").unwrap_err();
        assert!(
            matches!(err, UnixError::Kernel(SyscallError::CannotModify(_))),
            "tainted sends must be refused by the kernel, got {err:?}"
        );
        assert!(netd.wire_collect(&mut env).unwrap().is_empty());
    }

    #[test]
    fn network_taint_blocks_writes_to_protected_files() {
        let (mut env, init, netd) = setup();
        // A protected "system file" writable only by owners of category s.
        let init_thread = env.process(init).unwrap().thread;
        let s = env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(init_thread)
            .unwrap();
        let protected = Label::builder().set(s, Level::L0).build();
        env.write_file_as(init, "/system.conf", b"safe", Some(protected))
            .unwrap();

        // A downloader owning s reads the network, picking up taint i...
        let downloader = env
            .spawn_with_label(init, "/bin/dl", vec![s], vec![])
            .unwrap();
        netd.wire_deliver(&mut env, b"malicious payload".to_vec())
            .unwrap();
        let body = netd.recv(&mut env, downloader).unwrap().unwrap();
        assert_eq!(body, b"malicious payload");
        // ...and can now no longer modify the protected file, even though it
        // owns the file's write category: taint i flows nowhere untainted.
        let err = env.write_file_as(downloader, "/system.conf", &body, None);
        assert!(
            matches!(
                err,
                Err(UnixError::Kernel(SyscallError::CannotModify(_)))
                    | Err(UnixError::Kernel(SyscallError::Label(_)))
            ),
            "trojan-horse write must be refused, got {err:?}"
        );
    }

    #[test]
    fn sockets_connect_accept_and_move_data_both_ways() {
        let (mut env, init, netd) = setup();
        let server = netd.spawn_tainted(&mut env, init, "/sbin/httpd").unwrap();
        let client = netd.spawn_tainted(&mut env, init, "/usr/bin/curl").unwrap();

        let listener = netd.listen(&mut env, server).unwrap();
        // Nothing pending yet: blocking accept parks (registers a watch).
        assert!(netd
            .accept(&mut env, server, listener.fd)
            .unwrap()
            .is_none());

        let cfd = netd.connect(&mut env, client, &listener).unwrap();
        let accepted = netd
            .accept(&mut env, server, listener.fd)
            .unwrap()
            .expect("a connection is pending after connect");

        // Request up, response down.
        assert_eq!(env.write(client, cfd, b"GET /index").unwrap(), 10);
        assert_eq!(
            env.read(server, accepted.fd, 64).unwrap(),
            b"GET /index".to_vec()
        );
        assert_eq!(env.write(server, accepted.fd, b"200 hello").unwrap(), 9);
        assert_eq!(env.read(client, cfd, 64).unwrap(), b"200 hello".to_vec());

        // An empty connection would block (no data, writers alive)...
        assert_eq!(env.read(client, cfd, 64), Err(UnixError::WouldBlock));
        // ...and turns to EOF when the peer closes.
        env.close(server, accepted.fd).unwrap();
        assert_eq!(env.read(client, cfd, 64).unwrap(), Vec::<u8>::new());
        env.close(client, cfd).unwrap();
    }

    #[test]
    fn third_parties_cannot_observe_or_write_a_connection() {
        let (mut env, init, netd) = setup();
        let server = netd.spawn_tainted(&mut env, init, "/sbin/httpd").unwrap();
        let client = netd.spawn_tainted(&mut env, init, "/usr/bin/curl").unwrap();
        // The snoop carries the network taint but owns neither of the
        // connection's categories.
        let snoop = netd
            .spawn_tainted(&mut env, init, "/usr/bin/snoop")
            .unwrap();

        let listener = netd.listen(&mut env, server).unwrap();
        let cfd = netd.connect(&mut env, client, &listener).unwrap();
        let accepted = netd
            .accept(&mut env, server, listener.fd)
            .unwrap()
            .expect("pending connection");
        env.write(client, cfd, b"secret request").unwrap();

        // The snoop reaches the very same descriptor segment (shared with
        // it explicitly) but the kernel refuses both directions: reading
        // needs ownership of the receive-taint category, writing needs
        // ownership of the write-protect category.
        let sfd = env.share_fd(server, accepted.fd, snoop).unwrap();
        let err = env.read(snoop, sfd, 64).unwrap_err();
        assert!(
            matches!(err, UnixError::Kernel(SyscallError::CannotObserve(_))),
            "snoop read must be refused, got {err:?}"
        );
        let err = env.write(snoop, sfd, b"forged response").unwrap_err();
        assert!(
            matches!(
                err,
                UnixError::Kernel(SyscallError::CannotObserve(_))
                    | UnixError::Kernel(SyscallError::CannotModify(_))
            ),
            "snoop write must be refused, got {err:?}"
        );
        // The server still reads the client's bytes intact.
        assert_eq!(
            env.read(server, accepted.fd, 64).unwrap(),
            b"secret request".to_vec()
        );
    }

    #[test]
    fn vpn_isolates_the_two_networks() {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let vpn = VpnIsolation::start(&mut env, init).unwrap();

        // Traffic arriving from the Internet is delivered to the VPN side
        // only through the client.
        vpn.internet
            .wire_deliver(&mut env, b"encrypted blob".to_vec())
            .unwrap();
        assert!(vpn.pump_inbound(&mut env).unwrap());
        assert!(!vpn.pump_inbound(&mut env).unwrap());

        // A process on the VPN side reads it (tainted v), and cannot then
        // send anything to the Internet.
        let corp_app = env.spawn(init, "/bin/corp-app", None).unwrap();
        let data = vpn.vpn.recv(&mut env, corp_app).unwrap().unwrap();
        assert_eq!(data, b"encrypted blob");
        let err = vpn.internet.send(&mut env, corp_app, b"leak to internet");
        assert!(err.is_err(), "v-tainted data must not reach the Internet");

        // Outbound pumping works for the client itself.
        vpn.vpn
            .wire_deliver(&mut env, b"corp reply".to_vec())
            .unwrap();
        assert!(vpn.pump_outbound(&mut env).unwrap());
        assert_eq!(
            vpn.internet.wire_collect(&mut env).unwrap(),
            vec![b"corp reply".to_vec()]
        );
    }
}
