//! Property tests for cross-node label translation.
//!
//! The security argument of the federation layer rests on two facts checked
//! here over thousands of random labels:
//!
//! 1. **No taint laundering** — a label round-tripped through two exporters
//!    is never weaker than the original (in fact translation is a partial
//!    bijection, so the round trip is the identity).
//! 2. **Delegation is required for remote `⋆`** — ownership never travels
//!    inside a data label, and claiming it without a certificate ends in
//!    refusal, ultimately by the receiving kernel.

use histar_exporter::{ExporterError, Fabric};
use histar_label::{Category, Label, Level};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

fn numeric_level(rng: &mut Rng) -> Level {
    match rng.below(4) {
        0 => Level::L0,
        1 => Level::L1,
        2 => Level::L2,
        _ => Level::L3,
    }
}

#[test]
fn round_trip_through_two_exporters_never_weakens_a_label() {
    let mut fabric = Fabric::new(2);
    let init = fabric.nodes[0].init();

    // A pool of exportable categories, all owned by init on node 0.
    let mut cats: Vec<Category> = Vec::new();
    {
        let n = &mut fabric.nodes[0];
        let thread = n.env.process(init).unwrap().thread;
        for _ in 0..8 {
            cats.push(
                n.env
                    .machine_mut()
                    .kernel_mut()
                    .trap_create_category(thread)
                    .unwrap(),
            );
        }
    }

    let mut rng = Rng(0x7ab5);
    for case in 0..500 {
        let mut b = Label::builder();
        for &c in &cats {
            if rng.below(2) == 0 {
                b = b.set(c, numeric_level(&mut rng));
            }
        }
        let label = b.build();
        let back = fabric
            .round_trip_label(0, 1, &label, init)
            .unwrap_or_else(|e| panic!("case {case}: round trip failed: {e}"));
        // Never weaker (the taint survives)...
        assert!(
            label.leq(&back),
            "case {case}: round trip weakened {label} to {back}"
        );
        // ...and in fact the identity: translation is a bijection between
        // bound categories, and levels are copied verbatim.
        assert_eq!(back, label, "case {case}");
    }
}

#[test]
fn shadow_categories_map_back_to_the_original() {
    // Once a category has crossed over, both nodes agree on the pairing for
    // good: exporting the shadow yields the original global name, never a
    // fresh one.
    let mut fabric = Fabric::new(2);
    let init = fabric.nodes[0].init();
    let cat = {
        let n = &mut fabric.nodes[0];
        let thread = n.env.process(init).unwrap().thread;
        n.env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(thread)
            .unwrap()
    };
    let global = fabric.export_category(0, init, cat).unwrap();
    let shadow = {
        let n = &mut fabric.nodes[1];
        n.exporter.import_category(&mut n.env, global).unwrap()
    };
    // Importing again yields the same shadow; exporting the shadow yields
    // the same global name.
    let shadow2 = {
        let n = &mut fabric.nodes[1];
        n.exporter.import_category(&mut n.env, global).unwrap()
    };
    assert_eq!(shadow, shadow2);
    let exporter_pid = fabric.nodes[1].exporter.pid();
    let global2 = fabric.export_category(1, exporter_pid, shadow).unwrap();
    assert_eq!(global2, global);
}

#[test]
fn unexportable_taint_cannot_leave_the_machine() {
    // A label tainted in a category nobody entrusted to the exporter is
    // refused outright — refusing is the only alternative to laundering.
    let mut fabric = Fabric::new(2);
    let init = fabric.nodes[0].init();
    // The category is owned by a process that is NOT offered as the
    // auto-export owner.
    let other = {
        let n = &mut fabric.nodes[0];
        n.env.spawn(init, "/bin/other", None).unwrap()
    };
    let cat = {
        let n = &mut fabric.nodes[0];
        let thread = n.env.process(other).unwrap().thread;
        n.env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(thread)
            .unwrap()
    };
    let label = Label::builder().set(cat, Level::L3).build();
    let err = fabric.round_trip_label(0, 1, &label, init).unwrap_err();
    assert!(
        matches!(err, ExporterError::NotExportable(_)),
        "expected NotExportable, got {err}"
    );
}

#[test]
fn remote_ownership_requires_a_delegation_certificate() {
    let mut fabric = Fabric::new(2);

    // Node 1's service category, exported (so node 0 can name it) but NOT
    // delegated to node 0.
    let (provider, s) = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        let p = n.env.spawn(init, "/usr/sbin/privd", None).unwrap();
        let t = n.env.process(p).unwrap().thread;
        let s = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(t)
            .unwrap();
        (p, s)
    };
    let clearance = Label::builder()
        .set(s, Level::L0)
        .default_level(Level::L2)
        .build();
    fabric
        .register_gated_service(
            1,
            "priv",
            provider,
            clearance,
            Box::new(|_e, _w, _r| vec![]),
        )
        .unwrap();
    let global = fabric.export_category(1, provider, s).unwrap();
    let shadow = {
        let n = &mut fabric.nodes[0];
        n.exporter.import_category(&mut n.env, global).unwrap()
    };

    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/frontend", None).unwrap()
    };

    // Claiming the shadow without even owning it locally is refused.
    let err = fabric
        .remote_call(0, client, 1, "priv", b"op", None, &[shadow])
        .unwrap_err();
    assert!(matches!(err, ExporterError::NotOwner(_)), "{err}");

    // Owning the shadow locally is still not enough: without a delegation
    // certificate the claim cannot even be sent.
    fabric.grant_shadow(0, client, shadow).unwrap();
    let err = fabric
        .remote_call(0, client, 1, "priv", b"op", None, &[shadow])
        .unwrap_err();
    assert!(matches!(err, ExporterError::MissingDelegation(_)), "{err}");

    // And not claiming at all leaves the receiving kernel to refuse the
    // gate entry — the label lattice has the last word.
    let err = fabric
        .remote_call(0, client, 1, "priv", b"op", None, &[])
        .unwrap_err();
    assert!(err.is_label_check(), "{err}");

    // A wire label that tries to smuggle `⋆` directly is rejected as a
    // protocol violation before any of this.
    use histar_exporter::{GlobalLabel, RpcMessage};
    let star_label = GlobalLabel {
        default: Level::L1.encode(),
        entries: vec![(global, Level::Star.encode())],
    };
    let msg = RpcMessage::Call {
        seq: 99,
        sender: fabric.nodes[0].exporter.id(),
        service: "priv".into(),
        label: star_label,
        claims: vec![],
        certs: vec![],
        payload: b"op".to_vec(),
    };
    let n = &mut fabric.nodes[1];
    let reply = n.exporter.dispatch(&mut n.env, msg);
    match reply {
        RpcMessage::Error { code, .. } => {
            assert_eq!(code, histar_exporter::ErrorCode::Internal)
        }
        other => panic!("smuggled ⋆ must be refused, got {other:?}"),
    }
}
