//! End-to-end tests of the exporter fabric: tunneled gate calls, taint
//! propagation across the wire, and delegation-gated privilege.

use histar_exporter::{ExporterError, Fabric};
use histar_label::{Label, Level};
use histar_sim::{LinkConfig, NetConfig, SimDuration, Topology};

#[test]
fn echo_round_trip_between_two_nodes() {
    let mut fabric = Fabric::new(2);
    let provider = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        n.env.spawn(init, "/usr/bin/echod", None).unwrap()
    };
    fabric
        .register_service(
            1,
            "echo",
            provider,
            Box::new(|_env, _worker, req| {
                let mut out = b"echo: ".to_vec();
                out.extend_from_slice(req);
                out
            }),
        )
        .unwrap();

    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/client", None).unwrap()
    };
    let reply = fabric
        .remote_call(0, client, 1, "echo", b"hello dstar", None, &[])
        .unwrap();
    let bytes = fabric.read_reply(0, client, &reply).unwrap();
    assert_eq!(bytes, b"echo: hello dstar");

    // The wire charged both clocks: simulated time advanced on both nodes.
    assert!(fabric.nodes[0].env.machine().uptime() > SimDuration::ZERO);
    assert!(fabric.nodes[1].env.machine().uptime() > SimDuration::ZERO);
}

#[test]
fn unknown_service_is_reported() {
    let mut fabric = Fabric::new(2);
    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/client", None).unwrap()
    };
    let err = fabric
        .remote_call(0, client, 1, "no-such-service", b"x", None, &[])
        .unwrap_err();
    assert!(matches!(err, ExporterError::UnknownService(_)), "{err}");
}

#[test]
fn tainted_request_label_crosses_the_wire_and_comes_back() {
    let mut fabric = Fabric::new(2);

    // A client on node 0 with a secret category, tainting its request.
    let (client, secret_cat) = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        let client = n.env.spawn(init, "/bin/client", None).unwrap();
        let thread = n.env.process(client).unwrap().thread;
        let c = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(thread)
            .unwrap();
        (client, c)
    };

    let provider = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        n.env.spawn(init, "/usr/bin/blind-echod", None).unwrap()
    };
    fabric
        .register_service(1, "echo", provider, Box::new(|_e, _w, req| req.to_vec()))
        .unwrap();

    let request_label = Label::builder().set(secret_cat, Level::L3).build();
    let reply = fabric
        .remote_call(
            0,
            client,
            1,
            "echo",
            b"classified",
            Some(request_label),
            &[],
        )
        .unwrap();

    // The reply landed back on node 0 still tainted in the ORIGINAL
    // category: translation round-tripped through node 1's shadow category
    // without laundering the taint.
    let label = fabric.reply_label(0, &reply).unwrap();
    assert_eq!(label.level(secret_cat), Level::L3);

    // The client owns the category, so it can read the reply...
    assert_eq!(fabric.read_reply(0, client, &reply).unwrap(), b"classified");

    // ...but an unrelated process on node 0 cannot: its clearance (2) stops
    // it from tainting itself to level 3.
    let outsider = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/outsider", None).unwrap()
    };
    assert!(fabric.read_reply(0, outsider, &reply).is_err());
}

#[test]
fn caller_cannot_understate_its_taint() {
    let mut fabric = Fabric::new(2);
    let provider = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        n.env.spawn(init, "/usr/bin/echod", None).unwrap()
    };
    fabric
        .register_service(1, "echo", provider, Box::new(|_e, _w, req| req.to_vec()))
        .unwrap();

    // A client tainted at level 3 in a category owned by init (so the
    // client cannot untaint itself).
    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        let init_thread = n.env.process(init).unwrap().thread;
        let c = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(init_thread)
            .unwrap();
        n.env
            .spawn_with_label(init, "/bin/tainted", vec![], vec![(c, Level::L3)])
            .unwrap()
    };

    // Declaring an unrestricted request label is refused by the CALLING
    // kernel: the tainted thread cannot write the declared-label segment.
    let err = fabric
        .remote_call(
            0,
            client,
            1,
            "echo",
            b"smuggle",
            Some(Label::unrestricted()),
            &[],
        )
        .unwrap_err();
    assert!(
        matches!(err, ExporterError::Unix(_)),
        "understated label must be refused locally, got {err}"
    );
}

#[test]
fn delegated_privilege_passes_the_gate_and_forged_certs_do_not() {
    let mut fabric = Fabric::new(2);

    // Node 1 hosts a privileged service: its gate clearance {s 0, 2}
    // admits only threads owning s.
    let (provider, s) = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        let provider = n.env.spawn(init, "/usr/sbin/privd", None).unwrap();
        let thread = n.env.process(provider).unwrap().thread;
        let s = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(thread)
            .unwrap();
        (provider, s)
    };
    let clearance = Label::builder()
        .set(s, Level::L0)
        .default_level(Level::L2)
        .build();
    fabric
        .register_gated_service(
            1,
            "priv",
            provider,
            clearance,
            Box::new(|_e, _w, _req| b"privileged ok".to_vec()),
        )
        .unwrap();

    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/frontend", None).unwrap()
    };

    // Without any delegation, the remote kernel's clearance check refuses
    // the tunneled call.
    let err = fabric
        .remote_call(0, client, 1, "priv", b"op", None, &[])
        .unwrap_err();
    assert!(err.is_label_check(), "expected a kernel refusal, got {err}");

    // Delegate s to node 0 and grant the client the shadow: now the call
    // passes the same kernel check.
    let shadow = fabric.delegate(1, provider, s, 0).unwrap();
    fabric.grant_shadow(0, client, shadow).unwrap();
    let reply = fabric
        .remote_call(0, client, 1, "priv", b"op", None, &[shadow])
        .unwrap();
    assert_eq!(
        fabric.read_reply(0, client, &reply).unwrap(),
        b"privileged ok"
    );
}

#[test]
fn spoofed_sender_cannot_exercise_peer_privileges() {
    use std::cell::Cell;
    use std::rc::Rc;

    // Node 1 hosts a gated service; only node 0 is delegated.  Node 2 tries
    // to pass as node 0.
    let mut fabric = Fabric::new(3);
    let (provider, s) = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        let p = n.env.spawn(init, "/usr/sbin/privd", None).unwrap();
        let t = n.env.process(p).unwrap().thread;
        let s = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(t)
            .unwrap();
        (p, s)
    };
    let ran = Rc::new(Cell::new(false));
    let ran_flag = ran.clone();
    let clearance = Label::builder()
        .set(s, Level::L0)
        .default_level(Level::L2)
        .build();
    fabric
        .register_gated_service(
            1,
            "priv",
            provider,
            clearance,
            Box::new(move |_e, _w, _r| {
                ran_flag.set(true);
                b"secret op done".to_vec()
            }),
        )
        .unwrap();
    let shadow0 = fabric.delegate(1, provider, s, 0).unwrap();
    let global = fabric.export_category(1, provider, s).unwrap();
    let _ = shadow0;

    let node0_id = fabric.nodes[0].exporter.id();

    // Attack 1: node 2 sends a correctly sealed envelope (it IS a known
    // peer) whose inner Call claims to be from node 0, with node 0's claim.
    let call = histar_exporter::RpcMessage::Call {
        seq: 1,
        sender: node0_id, // spoofed
        service: "priv".into(),
        label: histar_exporter::GlobalLabel {
            default: Level::L1.encode(),
            entries: vec![],
        },
        claims: vec![global],
        certs: vec![],
        payload: b"op".to_vec(),
    };
    let sealed = {
        let n1_id = fabric.nodes[1].exporter.id();
        fabric.nodes[2].exporter.seal_to(n1_id, &call).unwrap()
    };
    let frame = histar_net::Netd::encode_batch(&[sealed]);
    {
        let n = &mut fabric.nodes[1];
        n.netd.wire_deliver(&mut n.env, frame).unwrap();
    }
    fabric.dispatch(1);
    assert!(
        !ran.get(),
        "a sender-spoofed call must never reach the service"
    );

    // Attack 2: a raw forged envelope claiming node 0's identity with a
    // guessed tag — not even one of node 2's own envelopes.  Dropped with
    // no reply (count the frames queued on node 1's device).
    let mut forged = Vec::new();
    forged.extend_from_slice(&node0_id.0.to_le_bytes());
    forged.extend_from_slice(&0xdead_beefu64.to_le_bytes());
    let body = call.encode();
    forged.extend_from_slice(&(body.len() as u64).to_le_bytes());
    forged.extend_from_slice(&body);
    let frame = histar_net::Netd::encode_batch(&[forged]);
    {
        let n = &mut fabric.nodes[1];
        n.netd.wire_deliver(&mut n.env, frame).unwrap();
    }
    fabric.dispatch(1);
    assert!(!ran.get());
    let outbound = {
        let n = &mut fabric.nodes[1];
        n.netd.wire_collect(&mut n.env).unwrap()
    };
    // The spoof in attack 1 earned an error reply; the raw forgery in
    // attack 2 earned silence.
    assert!(outbound.len() <= 1, "forged envelopes must not be answered");
}

#[test]
fn malformed_frames_do_not_wedge_queued_traffic() {
    let mut fabric = Fabric::new(2);
    let provider = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        n.env.spawn(init, "/usr/bin/echod", None).unwrap()
    };
    fabric
        .register_service(1, "echo", provider, Box::new(|_e, _w, req| req.to_vec()))
        .unwrap();
    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/client", None).unwrap()
    };

    // Garbage arrives on node 1 ahead of the legitimate call.
    {
        let n = &mut fabric.nodes[1];
        n.netd
            .wire_deliver(&mut n.env, vec![0xff, 0xff, 0xff, 0xff])
            .unwrap();
        n.netd
            .wire_deliver(&mut n.env, b"not a frame".to_vec())
            .unwrap();
    }
    let reply = fabric
        .remote_call(0, client, 1, "echo", b"still here", None, &[])
        .unwrap();
    assert_eq!(fabric.read_reply(0, client, &reply).unwrap(), b"still here");
}

#[test]
fn denied_calls_do_not_accumulate_kernel_objects() {
    let mut fabric = Fabric::new(2);
    let (provider, s) = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        let p = n.env.spawn(init, "/usr/sbin/privd", None).unwrap();
        let t = n.env.process(p).unwrap().thread;
        let s = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(t)
            .unwrap();
        (p, s)
    };
    let clearance = Label::builder()
        .set(s, Level::L0)
        .default_level(Level::L2)
        .build();
    fabric
        .register_gated_service(
            1,
            "priv",
            provider,
            clearance,
            Box::new(|_e, _w, _r| vec![]),
        )
        .unwrap();
    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/frontend", None).unwrap()
    };

    // Warm up once (first call allocates long-lived translation state).
    let _ = fabric.remote_call(0, client, 1, "priv", b"op", None, &[]);
    let baseline = fabric.nodes[1].env.machine().kernel().object_count();
    for _ in 0..10 {
        let err = fabric
            .remote_call(0, client, 1, "priv", b"op", None, &[])
            .unwrap_err();
        assert!(err.is_label_check());
    }
    let after = fabric.nodes[1].env.machine().kernel().object_count();
    assert!(
        after <= baseline,
        "denied calls must not leak kernel objects: {baseline} -> {after}"
    );
}

#[test]
fn forged_delegation_certificate_is_rejected() {
    let mut fabric = Fabric::new(2);
    let (provider, s) = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        let p = n.env.spawn(init, "/usr/sbin/privd", None).unwrap();
        let t = n.env.process(p).unwrap().thread;
        let s = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_create_category(t)
            .unwrap();
        (p, s)
    };
    let clearance = Label::builder()
        .set(s, Level::L0)
        .default_level(Level::L2)
        .build();
    fabric
        .register_gated_service(
            1,
            "priv",
            provider,
            clearance,
            Box::new(|_e, _w, _r| vec![]),
        )
        .unwrap();

    // Forge the delegation by hand: export the category (so it has a global
    // name), build the shadow on node 0, but install a certificate whose
    // tag was minted with the wrong secret.
    let global = fabric.export_category(1, provider, s).unwrap();
    let grantee = fabric.nodes[0].exporter.id();
    let shadow = {
        let n = &mut fabric.nodes[0];
        n.exporter.import_category(&mut n.env, global).unwrap()
    };
    let forged = histar_exporter::DelegationCert::issue(0xbad_5ec, global, grantee);
    fabric.nodes[0].exporter.install_cert(forged);

    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/frontend", None).unwrap()
    };
    fabric.grant_shadow(0, client, shadow).unwrap();
    let err = fabric
        .remote_call(0, client, 1, "priv", b"op", None, &[shadow])
        .unwrap_err();
    assert!(
        matches!(err, ExporterError::BadCertificate(_)),
        "a forged certificate must be rejected outright, got {err}"
    );
}

#[test]
fn per_link_topology_shapes_latency() {
    let mut topology = Topology::fully_connected(3);
    topology.set_link(
        0,
        2,
        LinkConfig {
            net: NetConfig {
                bandwidth_bps: 1_000_000,
                latency: SimDuration::from_millis(40),
                mtu: 1500,
            },
            per_message_cpu: SimDuration::from_micros(10),
        },
    );
    let mut fabric = Fabric::with_topology(topology);

    for node in [1, 2] {
        let provider = {
            let n = &mut fabric.nodes[node];
            let init = n.init();
            n.env.spawn(init, "/usr/bin/echod", None).unwrap()
        };
        fabric
            .register_service(node, "echo", provider, Box::new(|_e, _w, req| req.to_vec()))
            .unwrap();
    }
    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/client", None).unwrap()
    };

    let before_lan = fabric.nodes[0].env.machine().uptime();
    fabric
        .remote_call(0, client, 1, "echo", b"fast", None, &[])
        .unwrap();
    let lan = fabric.nodes[0].env.machine().uptime() - before_lan;

    let before_wan = fabric.nodes[0].env.machine().uptime();
    fabric
        .remote_call(0, client, 2, "echo", b"slow", None, &[])
        .unwrap();
    let wan = fabric.nodes[0].env.machine().uptime() - before_wan;

    assert!(
        wan > lan + SimDuration::from_millis(50),
        "WAN call ({wan:?}) must be slower than LAN call ({lan:?}) by ≥ 2×40 ms latency"
    );
}

#[test]
fn batched_calls_amortize_per_message_costs() {
    let mut fabric = Fabric::new(2);
    let provider = {
        let n = &mut fabric.nodes[1];
        let init = n.init();
        n.env.spawn(init, "/usr/bin/echod", None).unwrap()
    };
    fabric
        .register_service(1, "echo", provider, Box::new(|_e, _w, req| req.to_vec()))
        .unwrap();
    let client = {
        let n = &mut fabric.nodes[0];
        let init = n.init();
        n.env.spawn(init, "/bin/client", None).unwrap()
    };

    const N: usize = 8;
    // N sequential calls.
    let before = fabric.nodes[0].env.machine().uptime();
    for i in 0..N {
        let reply = fabric
            .remote_call(0, client, 1, "echo", format!("m{i}").as_bytes(), None, &[])
            .unwrap();
        fabric.read_reply(0, client, &reply).unwrap();
    }
    let sequential = fabric.nodes[0].env.machine().uptime() - before;

    // The same N calls in one batch frame.
    let requests: Vec<Vec<u8>> = (0..N).map(|i| format!("m{i}").into_bytes()).collect();
    let before = fabric.nodes[0].env.machine().uptime();
    let replies = fabric
        .remote_call_batch(0, client, 1, "echo", &requests, None, &[])
        .unwrap();
    for (i, r) in replies.into_iter().enumerate() {
        let reply = r.unwrap();
        assert_eq!(
            fabric.read_reply(0, client, &reply).unwrap(),
            format!("m{i}").as_bytes()
        );
    }
    let batched = fabric.nodes[0].env.machine().uptime() - before;

    assert!(
        batched < sequential,
        "batched ({batched:?}) must beat sequential ({sequential:?}): \
         propagation latency is paid once per frame, not once per message"
    );
}
