//! The exporter daemon: one per node, it owns the node's end of every
//! cross-machine flow.
//!
//! An exporter is an ordinary untrusted process.  Its power comes entirely
//! from category ownership acquired through label-checked gates:
//!
//! * it owns the netd taint category `i`, so it can accept wire frames
//!   without being permanently tainted by them;
//! * it owns every *exported* local category, because exporting a category
//!   is an explicit grant by the category's owner (DStar's trust statement
//!   "the owner of c trusts exporter E with c", realized as a grant gate);
//! * it owns every *shadow* category it allocates for remote categories,
//!   because it created them — and on this node, the exporter is exactly the
//!   party entitled to speak for remote categories.
//!
//! The kernel's category-translation table (`sys_category_bind_remote` and
//! friends) is the authoritative bidirectional map between local categories
//! and self-certifying global names; the exporter drives it but cannot
//! falsify it, since binding requires ownership.

use crate::wire::{
    label_to_global, open, peel, public_from_secret, seal, shared_key, DelegationCert, ErrorCode,
    ExporterId, GlobalCategory, GlobalLabel, RpcMessage,
};
use crate::ExporterError;
use histar_kernel::bodies::DeviceBody;
use histar_kernel::object::{ContainerEntry, ObjectId};
use histar_label::{Category, Label, Level};
use histar_net::Netd;
use histar_unix::gatecall::{
    create_service_gate, enter_service_tainted, grant_categories, return_from_service, ServiceGate,
};
use histar_unix::process::{ExitStatus, Pid};
use histar_unix::{UnixEnv, UnixError};
use std::collections::HashMap;

type Result<T> = core::result::Result<T, ExporterError>;

/// A service a node makes callable from other nodes: a gate plus the code
/// behind it.  The handler runs on a worker thread whose label the kernel
/// has already vetted; it stands in for the service's program text.
pub struct RemoteService {
    /// The service gate remote calls are tunneled into.
    pub gate: ServiceGate,
    handler: Handler,
}

/// The code behind a remote service: `(env, worker pid, request) → reply`.
pub type Handler = Box<dyn FnMut(&mut UnixEnv, Pid, &[u8]) -> Vec<u8>>;

/// One node's exporter daemon.
pub struct Exporter {
    pid: Pid,
    secret: u64,
    public: u64,
    id: ExporterId,
    device: ObjectId,
    next_export_id: u64,
    next_seq: u64,
    /// Delegation certificates granted *to* this exporter by remote peers.
    certs: Vec<DelegationCert>,
    /// Known peers: identity → public key.  Traffic from (or to) an unknown
    /// peer is refused; peers are introduced out of band (the fabric's
    /// bootstrap, standing in for a key-distribution step).
    peers: HashMap<ExporterId, u64>,
    services: Vec<(String, RemoteService)>,
}

impl core::fmt::Debug for Exporter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Exporter")
            .field("pid", &self.pid)
            .field("id", &self.id)
            .field("device", &self.device)
            .field(
                "services",
                &self.services.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// A reply delivered to the calling node: a labelled segment holding the
/// payload.  Reading it is subject to the local kernel's label checks — the
/// remote taint arrived with the data.
#[derive(Clone, Copy, Debug)]
pub struct RemoteReply {
    /// Container entry of the reply segment.
    pub entry: ContainerEntry,
    /// Byte length of the payload.
    pub len: u64,
}

impl Exporter {
    /// Starts an exporter on a node: spawns the daemon owning the netd taint
    /// category and registers its kernel-visible endpoint device.
    pub fn start(env: &mut UnixEnv, parent: Pid, netd: &Netd, secret: u64) -> Result<Exporter> {
        let id = ExporterId::from_secret(secret);
        let pid = env.spawn_with_label(parent, "/sbin/exporter", vec![netd.taint], vec![])?;
        let thread = env.process(pid)?.thread;
        let kroot = env.machine().kernel().root_container();
        let kernel = env.machine_mut().kernel_mut();
        // The endpoint device: labelled so only the exporter drives it.
        let er = kernel.trap_create_category(thread)?;
        let ew = kernel.trap_create_category(thread)?;
        let label = Label::builder()
            .set(er, Level::L3)
            .set(ew, Level::L0)
            .build();
        let idb = id.0.to_le_bytes();
        let mac = [0x02, 0xd5, idb[0], idb[1], idb[2], idb[3]];
        let device = kernel
            .boot_create_device(kroot, label, DeviceBody::exporter(mac), "exporter0")
            .map_err(UnixError::from)?;
        Ok(Exporter {
            pid,
            secret,
            public: public_from_secret(secret),
            id,
            device,
            next_export_id: 1,
            next_seq: 1,
            certs: Vec::new(),
            peers: HashMap::new(),
            services: Vec::new(),
        })
    }

    /// The exporter's public identity (the hash of its public key).
    pub fn id(&self) -> ExporterId {
        self.id
    }

    /// The exporter daemon's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The kernel object ID of the exporter endpoint device.
    pub fn device(&self) -> ObjectId {
        self.device
    }

    /// The exporter's secret key.  Only the node's own trusted setup path
    /// uses this (to mint delegation certificates); it never crosses the
    /// wire.
    pub fn secret(&self) -> u64 {
        self.secret
    }

    /// The exporter's public key.
    pub fn public_key(&self) -> u64 {
        self.public
    }

    /// Introduces a peer exporter (identity + public key).  Refused if the
    /// identity does not commit to the key — the identity *is* the key hash.
    pub fn add_peer(&mut self, id: ExporterId, public: u64) -> core::result::Result<(), String> {
        if ExporterId::from_public(public) != id {
            return Err(format!("public key does not hash to {id}"));
        }
        self.peers.insert(id, public);
        Ok(())
    }

    /// Seals a message for a known peer under the pairwise channel key.
    pub fn seal_to(&self, peer: ExporterId, msg: &RpcMessage) -> Result<Vec<u8>> {
        let public = self
            .peers
            .get(&peer)
            .ok_or_else(|| ExporterError::Protocol(format!("unknown peer {peer}")))?;
        Ok(seal(shared_key(self.secret, *public), self.id, msg))
    }

    /// Opens and authenticates an inbound envelope: the claimed sender must
    /// be a known peer and the tag must verify under the pairwise key.
    pub fn open_from(&self, frame: &[u8]) -> Result<(ExporterId, RpcMessage)> {
        let (sender, tag, body) =
            peel(frame).map_err(|e| ExporterError::Protocol(format!("bad envelope: {e}")))?;
        let public = self
            .peers
            .get(&sender)
            .ok_or_else(|| ExporterError::Protocol(format!("unknown sender {sender}")))?;
        let msg = open(shared_key(self.secret, *public), tag, &body).ok_or_else(|| {
            ExporterError::BadCertificate(format!("envelope from {sender} fails authentication"))
        })?;
        Ok((sender, msg))
    }

    /// Installs a delegation certificate granted to this exporter.
    pub fn install_cert(&mut self, cert: DelegationCert) {
        if !self.certs.contains(&cert) {
            self.certs.push(cert);
        }
    }

    /// Registers a service behind an existing gate.
    pub fn register_service(&mut self, name: &str, gate: ServiceGate, handler: Handler) {
        self.services.retain(|(n, _)| n != name);
        self.services
            .push((name.to_string(), RemoteService { gate, handler }));
    }

    /// Registers a service behind a fresh default gate owned by `provider`.
    pub fn register_service_for(
        &mut self,
        env: &mut UnixEnv,
        name: &str,
        provider: Pid,
        handler: Handler,
    ) -> Result<()> {
        let gate = create_service_gate(env, provider, 0x7000, name)?;
        self.register_service(name, gate, handler);
        Ok(())
    }

    // ----- category translation ------------------------------------------

    /// Exports a category owned by `owner`: the owner grants the exporter
    /// ownership through a gate (the kernel checks the grant), and the
    /// exporter binds the category to a fresh self-certifying global name.
    pub fn export_category(
        &mut self,
        env: &mut UnixEnv,
        owner: Pid,
        category: Category,
    ) -> Result<GlobalCategory> {
        let thread = env.process(self.pid)?.thread;
        if let Some(name) = env
            .machine_mut()
            .kernel_mut()
            .trap_category_get_remote(thread, category)
            .map_err(UnixError::from)?
        {
            return Ok(GlobalCategory::from_kernel_name(name));
        }
        let exporter_owns = env
            .machine()
            .kernel()
            .thread_label(thread)
            .map_err(UnixError::from)?
            .owns(category);
        if !exporter_owns {
            grant_categories(env, owner, self.pid, &[category])?;
        }
        let global = GlobalCategory {
            home: self.id,
            id: self.next_export_id,
        };
        self.next_export_id += 1;
        env.machine_mut()
            .kernel_mut()
            .trap_category_bind_remote(thread, category, global.as_kernel_name())
            .map_err(UnixError::from)?;
        Ok(global)
    }

    /// Imports a global category, allocating (and binding) a local shadow
    /// category on first sight.  A name homed at *this* exporter must
    /// already be bound — a self-homed name this node never exported is
    /// forged.
    pub fn import_category(
        &mut self,
        env: &mut UnixEnv,
        global: GlobalCategory,
    ) -> Result<Category> {
        let thread = env.process(self.pid)?.thread;
        let kernel = env.machine_mut().kernel_mut();
        if let Some(local) = kernel
            .trap_category_resolve_remote(thread, global.as_kernel_name())
            .map_err(UnixError::from)?
        {
            return Ok(local);
        }
        if global.home == self.id {
            return Err(ExporterError::Protocol(format!(
                "{global} claims this exporter as home but was never exported"
            )));
        }
        let shadow = kernel
            .trap_create_category(thread)
            .map_err(UnixError::from)?;
        kernel
            .trap_category_bind_remote(thread, shadow, global.as_kernel_name())
            .map_err(UnixError::from)?;
        Ok(shadow)
    }

    /// Translates a local label to global names for the wire.
    ///
    /// Categories without a global name are exported on the fly when
    /// possible: if the exporter already owns the category it just binds a
    /// name; if `auto_export_owner` is given and that process owns the
    /// category, a kernel-checked grant runs first.  Otherwise the label is
    /// not exportable — data tainted in a category whose owner never
    /// authorized the exporter cannot leave the machine.
    pub fn outbound_label(
        &mut self,
        env: &mut UnixEnv,
        label: &Label,
        auto_export_owner: Option<Pid>,
    ) -> Result<GlobalLabel> {
        let thread = env.process(self.pid)?.thread;
        // Resolve (and where legal, create) bindings first.
        for (c, _) in label.entries().collect::<Vec<_>>() {
            let bound = env
                .machine_mut()
                .kernel_mut()
                .trap_category_get_remote(thread, c)
                .map_err(UnixError::from)?;
            if bound.is_some() {
                continue;
            }
            let exporter_owns = env
                .machine()
                .kernel()
                .thread_label(thread)
                .map_err(UnixError::from)?
                .owns(c);
            let owner_owns = match auto_export_owner {
                Some(owner) => {
                    let t = env.process(owner)?.thread;
                    env.machine()
                        .kernel()
                        .thread_label(t)
                        .map_err(UnixError::from)?
                        .owns(c)
                }
                None => false,
            };
            if exporter_owns {
                self.export_category(env, self.pid, c)?;
            } else if let (true, Some(owner)) = (owner_owns, auto_export_owner) {
                self.export_category(env, owner, c)?;
            } else {
                return Err(ExporterError::NotExportable(format!(
                    "category {c} has no global name and its owner has not authorized this exporter"
                )));
            }
        }
        let mut resolved: Vec<(Category, GlobalCategory)> = Vec::new();
        for (c, _) in label.entries() {
            let name = env
                .machine_mut()
                .kernel_mut()
                .trap_category_get_remote(thread, c)
                .map_err(UnixError::from)?
                .expect("bound above");
            resolved.push((c, GlobalCategory::from_kernel_name(name)));
        }
        label_to_global(label, |c| {
            resolved.iter().find(|(lc, _)| *lc == c).map(|(_, g)| *g)
        })
        .ok_or_else(|| ExporterError::Protocol("label translation lost an entry".into()))
    }

    /// Translates a wire label into local categories, allocating shadows as
    /// needed.  Levels are copied verbatim: translation can never weaken a
    /// label.
    pub fn import_label(&mut self, env: &mut UnixEnv, label: &GlobalLabel) -> Result<Label> {
        let default = Level::decode(label.default)
            .ok_or_else(|| ExporterError::Protocol("bad default level".into()))?;
        let mut b = Label::builder().default_level(default);
        for (g, bits) in &label.entries {
            let lvl = Level::decode(*bits)
                .ok_or_else(|| ExporterError::Protocol("bad entry level".into()))?;
            if lvl.is_star() {
                // Ownership never rides along inside a data label; it is
                // granted only through verified claims.
                return Err(ExporterError::Protocol(format!(
                    "wire label grants ownership of {g}"
                )));
            }
            let local = self.import_category(env, *g)?;
            b = b.set(local, lvl);
        }
        Ok(b.build())
    }

    // ----- outbound calls --------------------------------------------------

    /// Builds a call message on behalf of `caller`.
    ///
    /// The request payload passes through a segment labelled with the
    /// *declared* request label, written by the caller's own thread — so the
    /// local kernel refuses a caller trying to smuggle data more tainted
    /// than its declaration.  Claims name local categories the caller owns;
    /// claims on remote-homed categories are backed by the delegation
    /// certificates this exporter holds.
    pub fn prepare_call(
        &mut self,
        env: &mut UnixEnv,
        caller: Pid,
        service: &str,
        request: &[u8],
        label: &Label,
        claims: &[Category],
    ) -> Result<RpcMessage> {
        let caller_thread = env.process(caller)?.thread;
        let exporter_thread = env.process(self.pid)?.thread;
        let exporter_container = env.process(self.pid)?.process_container;

        let global_label = self.outbound_label(env, label, Some(caller))?;

        // Claims: the caller must own what it claims, locally and now.
        let caller_label = env
            .machine()
            .kernel()
            .thread_label(caller_thread)
            .map_err(UnixError::from)?;
        let mut global_claims = Vec::new();
        let mut certs = Vec::new();
        for &c in claims {
            if !caller_label.owns(c) {
                return Err(ExporterError::NotOwner(format!(
                    "caller does not own claimed category {c}"
                )));
            }
            let name = env
                .machine_mut()
                .kernel_mut()
                .trap_category_get_remote(exporter_thread, c)
                .map_err(UnixError::from)?;
            let global = match name {
                Some(n) => GlobalCategory::from_kernel_name(n),
                None => self.export_category(env, caller, c)?,
            };
            if global.home != self.id {
                // A remote-homed claim needs the delegation the home
                // exporter granted us; forward it as evidence.
                match self
                    .certs
                    .iter()
                    .find(|cert| cert.category == global && cert.grantee == self.id)
                {
                    Some(cert) => certs.push(*cert),
                    None => {
                        return Err(ExporterError::MissingDelegation(format!(
                            "no delegation certificate held for {global}"
                        )))
                    }
                }
            }
            global_claims.push(global);
        }

        // The declared-label handoff segment: created by the exporter,
        // written by the caller, read back by the exporter.  Both the write
        // and the read are ordinary label-checked system calls.
        let seg = env
            .machine_mut()
            .kernel_mut()
            .trap_segment_create(
                exporter_thread,
                exporter_container,
                label.clone(),
                request.len().max(1) as u64,
                "rpc request",
            )
            .map_err(UnixError::from)?;
        let entry = ContainerEntry::new(exporter_container, seg);
        env.machine_mut()
            .kernel_mut()
            .trap_segment_write(caller_thread, entry, 0, request)
            .map_err(UnixError::from)?;
        // The exporter's read-back and the segment's release cross the
        // boundary as one submission batch (the unref is best-effort).
        let mut results = env.machine_mut().kernel_mut().submit_calls(
            exporter_thread,
            vec![
                histar_kernel::Syscall::SegmentRead {
                    entry,
                    offset: 0,
                    len: request.len() as u64,
                },
                histar_kernel::Syscall::ObjUnref { entry },
            ],
        );
        let payload = results.remove(0).map_err(UnixError::from)?.into_bytes();

        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(RpcMessage::Call {
            seq,
            sender: self.id,
            service: service.to_string(),
            label: global_label,
            claims: global_claims,
            certs,
            payload,
        })
    }

    /// Lands a reply on the calling node: imports the reply label (remote
    /// taint becomes local shadow taint) and materializes the payload in a
    /// segment carrying it.  Whether the caller can read that segment is the
    /// local kernel's decision.
    pub fn land_reply(
        &mut self,
        env: &mut UnixEnv,
        label: &GlobalLabel,
        payload: &[u8],
    ) -> Result<RemoteReply> {
        let local_label = self.import_label(env, label)?;
        let thread = env.process(self.pid)?.thread;
        let container = env.process(self.pid)?.process_container;
        let kernel = env.machine_mut().kernel_mut();
        let seg = kernel
            .trap_segment_create(
                thread,
                container,
                local_label,
                payload.len().max(1) as u64,
                "rpc reply",
            )
            .map_err(UnixError::from)?;
        let entry = ContainerEntry::new(container, seg);
        kernel
            .trap_segment_write(thread, entry, 0, payload)
            .map_err(UnixError::from)?;
        Ok(RemoteReply {
            entry,
            len: payload.len() as u64,
        })
    }

    // ----- inbound dispatch ------------------------------------------------

    /// Authenticates one inbound envelope and dispatches it, returning the
    /// sealed reply — or `None` for frames that fail authentication (an
    /// unauthenticated peer deserves no observable response, not even an
    /// error).
    pub fn open_and_dispatch(&mut self, env: &mut UnixEnv, frame: &[u8]) -> Option<Vec<u8>> {
        let (envelope_sender, msg) = self.open_from(frame).ok()?;
        // A call's inner sender must agree with the authenticated envelope:
        // claims are honored against the party that *proved* it sent this.
        if let RpcMessage::Call { sender, seq, .. } = &msg {
            if *sender != envelope_sender {
                let reply = RpcMessage::Error {
                    seq: *seq,
                    code: ErrorCode::BadCertificate,
                    message: format!(
                        "call claims sender {sender} but the envelope authenticates {envelope_sender}"
                    ),
                };
                return self.seal_to(envelope_sender, &reply).ok();
            }
        }
        let reply = self.dispatch(env, msg);
        self.seal_to(envelope_sender, &reply).ok()
    }

    /// Handles one *authenticated* message, producing the message to send
    /// back.  Callers outside tests should use [`Exporter::open_and_dispatch`],
    /// which verifies the envelope first; this layer trusts its `sender`
    /// fields.
    pub fn dispatch(&mut self, env: &mut UnixEnv, msg: RpcMessage) -> RpcMessage {
        match msg {
            RpcMessage::Call {
                seq,
                sender,
                service,
                label,
                claims,
                certs,
                payload,
            } => match self.handle_call(env, sender, &service, &label, &claims, &certs, &payload) {
                Ok((reply_label, reply)) => RpcMessage::Reply {
                    seq,
                    label: reply_label,
                    payload: reply,
                },
                Err(e) => RpcMessage::Error {
                    seq,
                    code: e.wire_code(),
                    // The class crosses as the code; send only the detail so
                    // the caller-side rewrap does not stack prefixes.
                    message: match e {
                        ExporterError::RemoteLabelCheck(m)
                        | ExporterError::BadCertificate(m)
                        | ExporterError::UnknownService(m)
                        | ExporterError::NotExportable(m) => m,
                        other => other.to_string(),
                    },
                },
            },
            other => RpcMessage::Error {
                seq: 0,
                code: ErrorCode::Internal,
                message: format!("unexpected message: {other:?}"),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &mut self,
        env: &mut UnixEnv,
        sender: ExporterId,
        service: &str,
        label: &GlobalLabel,
        claims: &[GlobalCategory],
        certs: &[DelegationCert],
        payload: &[u8],
    ) -> Result<(GlobalLabel, Vec<u8>)> {
        let service_idx = self
            .services
            .iter()
            .position(|(n, _)| n == service)
            .ok_or_else(|| ExporterError::UnknownService(service.to_string()))?;

        // Re-impose the request's taint locally before anything else sees
        // the data.
        let request_label = self.import_label(env, label)?;
        if request_label.default_level() != Level::L1 {
            return Err(ExporterError::Protocol(
                "non-default request label defaults are not supported".into(),
            ));
        }

        // Sort the claims into granted privileges.  A claim on the sender's
        // own category is honored as such — the self-certifying name pins
        // the home, so the sender is exactly the party entitled to it.  A
        // claim on one of *our* categories requires the delegation
        // certificate we issued; a forged or mangled one is rejected
        // outright, a missing one simply grants nothing and leaves the
        // kernel to refuse the call.
        let mut granted: Vec<Category> = Vec::new();
        for claim in claims {
            let presented = certs.iter().find(|c| c.category == *claim);
            if claim.home == sender {
                granted.push(self.import_category(env, *claim)?);
            } else if claim.home == self.id {
                // Without a certificate the claim is simply unproven and the
                // kernel will have the last word.
                if let Some(cert) = presented {
                    if cert.grantee != sender || !cert.verify(self.secret) {
                        return Err(ExporterError::BadCertificate(format!(
                            "certificate for {claim} does not verify"
                        )));
                    }
                    granted.push(self.import_category(env, *claim)?);
                }
            } else {
                return Err(ExporterError::BadCertificate(format!(
                    "third-party delegation for {claim} is not supported"
                )));
            }
        }

        // A worker process carries the call.  It is born *owning* the local
        // shadows of the request's taint categories (plus the proven
        // claims), exactly as a Figure 7 caller owns the taint category it
        // allocates: ownership is what lets it pass the service gate's
        // clearance, and it is dropped to the tainted level at gate entry,
        // so the service code itself can never untaint the request.
        let taints: Vec<(Category, Level)> = request_label.entries().collect();
        let mut own: Vec<Category> = taints.iter().map(|(c, _)| *c).collect();
        for &g in &granted {
            if !own.contains(&g) {
                own.push(g);
            }
        }
        let worker = env.spawn_with_label(self.pid, "/sbin/exporter-worker", own, vec![])?;
        let result = self.run_worker(env, worker, service_idx, &request_label, payload);
        // Reap the per-call worker whatever happened, so a stream of denied
        // calls cannot accumulate processes.
        let _ = env.exit(worker, ExitStatus::Exited(0));
        let _ = env.wait(self.pid, worker);
        result
    }

    fn run_worker(
        &mut self,
        env: &mut UnixEnv,
        worker: Pid,
        service_idx: usize,
        request_label: &Label,
        payload: &[u8],
    ) -> Result<(GlobalLabel, Vec<u8>)> {
        let exporter_thread = env.process(self.pid)?.thread;
        let exporter_container = env.process(self.pid)?.process_container;

        // The request payload, under its translated label.
        let seg = env
            .machine_mut()
            .kernel_mut()
            .trap_segment_create(
                exporter_thread,
                exporter_container,
                request_label.clone(),
                payload.len().max(1) as u64,
                "rpc request (inbound)",
            )
            .map_err(UnixError::from)?;
        let entry = ContainerEntry::new(exporter_container, seg);

        // Per-call segments are released on every path — a stream of denied
        // calls must not accumulate objects in the exporter's container.
        let mut reply_entry: Option<ContainerEntry> = None;
        let result = self.run_worker_inner(
            env,
            worker,
            service_idx,
            request_label,
            payload,
            entry,
            &mut reply_entry,
        );
        let kernel = env.machine_mut().kernel_mut();
        let mut cleanup = vec![histar_kernel::Syscall::ObjUnref { entry }];
        if let Some(re) = reply_entry {
            cleanup.push(histar_kernel::Syscall::ObjUnref { entry: re });
        }
        // Best-effort release of the per-call segments, one batch.
        let _ = kernel.submit_calls(exporter_thread, cleanup);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_worker_inner(
        &mut self,
        env: &mut UnixEnv,
        worker: Pid,
        service_idx: usize,
        request_label: &Label,
        payload: &[u8],
        entry: ContainerEntry,
        reply_entry_out: &mut Option<ContainerEntry>,
    ) -> Result<(GlobalLabel, Vec<u8>)> {
        let exporter_thread = env.process(self.pid)?.thread;
        let exporter_container = env.process(self.pid)?.process_container;
        let worker_thread = env.process(worker)?.thread;

        env.machine_mut()
            .kernel_mut()
            .trap_segment_write(exporter_thread, entry, 0, payload)
            .map_err(UnixError::from)?;

        // The tunneled gate call.  This is where the receiving kernel
        // decides: the worker's label (request taint plus proven claims)
        // must pass the service gate's clearance exactly as a local caller's
        // would.  At entry the worker's shadow ownership drops to the
        // request's taint levels.
        let gate = self.services[service_idx].1.gate;
        let taint_entries: Vec<(Category, Level)> = request_label.entries().collect();
        let session =
            enter_service_tainted(env, worker, &gate, &taint_entries).map_err(label_refusal)?;

        // The worker reads the request — a label-checked observation.
        let request = match env.machine_mut().kernel_mut().trap_segment_read(
            worker_thread,
            entry,
            0,
            payload.len() as u64,
        ) {
            Ok(r) => r,
            Err(e) => {
                let _ = return_from_service(env, session);
                return Err(label_refusal(UnixError::Kernel(e)));
            }
        };

        let reply = (self.services[service_idx].1.handler)(env, worker, &request);

        return_from_service(env, session)?;

        // The reply is at least as tainted as the request the service read,
        // plus whatever taint the worker picked up along the way.  (The
        // worker regains its shadow ownership on return, but the *reply*
        // keeps the taint: only the category's real owner, back on its home
        // node, decides about untainting.)
        let residual = env
            .machine()
            .kernel()
            .thread_label(worker_thread)
            .map_err(UnixError::from)?
            .drop_ownership(Level::L1);
        let reply_label = request_label.lub(&residual);
        let reply_seg = env
            .machine_mut()
            .kernel_mut()
            .trap_segment_create(
                exporter_thread,
                exporter_container,
                reply_label.clone(),
                reply.len().max(1) as u64,
                "rpc reply (outbound)",
            )
            .map_err(|e| ExporterError::NotExportable(format!("reply label: {e}")))?;
        let reply_entry = ContainerEntry::new(exporter_container, reply_seg);
        *reply_entry_out = Some(reply_entry);
        env.machine_mut()
            .kernel_mut()
            .trap_segment_write(worker_thread, reply_entry, 0, &reply)
            .map_err(|e| label_refusal(UnixError::Kernel(e)))?;
        // The exporter may read the reply only if every taint category on it
        // was entrusted to it — otherwise the data stays on this machine.
        let reply_bytes = env
            .machine_mut()
            .kernel_mut()
            .trap_segment_read(exporter_thread, reply_entry, 0, reply.len() as u64)
            .map_err(|e| ExporterError::NotExportable(format!("reply not exportable: {e}")))?;
        let global_reply_label = self.outbound_label(env, &reply_label, None).map_err(|e| {
            ExporterError::NotExportable(format!("reply label not exportable: {e}"))
        })?;

        Ok((global_reply_label, reply_bytes))
    }
}

/// Maps a kernel label refusal to the wire error class that tells the remote
/// caller "the kernel said no", keeping every other failure distinct.
fn label_refusal(e: UnixError) -> ExporterError {
    use histar_kernel::syscall::SyscallError;
    match &e {
        UnixError::Kernel(
            SyscallError::GateClearance(_)
            | SyscallError::CannotObserve(_)
            | SyscallError::CannotModify(_)
            | SyscallError::Label(_)
            | SyscallError::VerifyLabel,
        ) => ExporterError::RemoteLabelCheck(e.to_string()),
        _ => ExporterError::Unix(e),
    }
}
