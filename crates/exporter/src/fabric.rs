//! A multi-node testbed: several independent `Machine`s joined by a
//! simulated topology, each running netd and an exporter.
//!
//! The fabric plays the role of the physical network: it moves frames
//! between the nodes' device queues and charges each end's clock with the
//! per-link wire time and per-message CPU cost from the
//! [`Topology`](histar_sim::Topology).  Everything above the wire — netd,
//! the exporters, the workers, the service gates — runs under the nodes' own
//! kernels with ordinary label checks.

use crate::exporter::{Exporter, Handler, RemoteReply};
use crate::wire::{DelegationCert, GlobalCategory, RpcMessage};
use crate::ExporterError;
use histar_kernel::machine::{Machine, MachineConfig};
use histar_label::{Category, Label, Level};
use histar_net::Netd;
use histar_obs::Span;
use histar_unix::gatecall::{grant_categories, raise_taint_for, ServiceGate};
use histar_unix::process::Pid;
use histar_unix::UnixEnv;

type Result<T> = core::result::Result<T, ExporterError>;

pub use histar_sim::{LinkConfig, Topology};

/// One node of the fabric: a machine with its Unix environment, network
/// daemon and exporter.
pub struct Node {
    /// The node's Unix environment (its own machine, kernel and clock).
    pub env: UnixEnv,
    /// The node's network daemon.
    pub netd: Netd,
    /// The node's exporter daemon.
    pub exporter: Exporter,
}

impl Node {
    /// The node's init pid (convenient for spawning test processes).
    pub fn init(&self) -> Pid {
        self.env.init_pid()
    }
}

/// Start tick for an `rpc` flight-recorder span on a node, `None` when
/// that node's recorder is disabled (the common case — spans must cost
/// nothing then).
fn rpc_span_start(n: &Node) -> Option<u64> {
    let kernel = n.env.machine().kernel();
    kernel
        .recorder()
        .is_enabled()
        .then(|| kernel.now().as_nanos())
}

/// Closes an `rpc` span opened by [`rpc_span_start`]; `seq` carries the
/// message count the phase handled.
fn rpc_span_end(n: &Node, name: &'static str, start: Option<u64>, seq: u64) {
    if let Some(start) = start {
        let kernel = n.env.machine().kernel();
        kernel.recorder().record(Span {
            cat: "rpc",
            name,
            start,
            end: kernel.now().as_nanos(),
            tid: 0,
            seq,
        });
    }
}

/// A set of HiStar nodes joined by a simulated network.
pub struct Fabric {
    /// The nodes, indexed by the topology's node indices.
    pub nodes: Vec<Node>,
    topology: Topology,
}

impl Fabric {
    /// Builds `n` nodes over a fully connected default topology.
    pub fn new(n: usize) -> Fabric {
        Fabric::with_topology(Topology::fully_connected(n))
    }

    /// Builds one node per topology slot.
    pub fn with_topology(topology: Topology) -> Fabric {
        let mut nodes = Vec::with_capacity(topology.nodes());
        for i in 0..topology.nodes() {
            // Distinct seeds per node: category and object IDs are local
            // names and must not be confusable across machines.
            let config = MachineConfig {
                seed: 0x5157_4f53_4f31_3337 ^ ((i as u64 + 1) << 32),
                ..MachineConfig::default()
            };
            let mut env = UnixEnv::on_machine(Machine::boot(config));
            let init = env.init_pid();
            let netd = Netd::start(&mut env, init, &format!("dstar{i}"))
                .expect("netd start cannot fail on a fresh node");
            let exporter = Exporter::start(&mut env, init, &netd, 0xe4b0_17e5 + i as u64)
                .expect("exporter start cannot fail on a fresh node");
            nodes.push(Node {
                env,
                netd,
                exporter,
            });
        }
        // Key distribution: every node learns every peer's public key (the
        // out-of-band introduction a real deployment gets from its PKI).
        let keys: Vec<_> = nodes
            .iter()
            .map(|n| (n.exporter.id(), n.exporter.public_key()))
            .collect();
        for (i, node) in nodes.iter_mut().enumerate() {
            for (j, &(id, public)) in keys.iter().enumerate() {
                if i != j {
                    node.exporter
                        .add_peer(id, public)
                        .expect("fabric-distributed keys are genuine");
                }
            }
        }
        Fabric { nodes, topology }
    }

    /// The fabric's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Moves every frame currently queued on `from`'s device to `to`'s
    /// device, charging both clocks for the transfer.
    pub fn pump(&mut self, from: usize, to: usize) {
        assert_ne!(from, to, "a node has no link to itself");
        let frames = {
            let node = &mut self.nodes[from];
            node.netd
                .wire_collect(&mut node.env)
                .expect("draining a device cannot fail")
        };
        let link = self.topology.link(from, to);
        for frame in frames {
            let messages = Netd::decode_batch(&frame).map_or(1, |b| b.len()) as u64;
            let wire = self.topology.transfer_time(from, to, frame.len() as u64);
            let cpu = link.per_message_cpu * messages;
            self.nodes[from].env.machine().clock().advance(wire + cpu);
            self.nodes[to].env.machine().clock().advance(wire + cpu);
            let node = &mut self.nodes[to];
            node.netd
                .wire_deliver(&mut node.env, frame)
                .expect("delivering a frame cannot fail");
        }
    }

    /// Lets `node`'s exporter process every pending inbound frame, queueing
    /// reply frames on its device (one reply batch per inbound batch).
    ///
    /// Unauthenticated or undecodable traffic is dropped and the drain
    /// continues — one garbage frame must not wedge the frames behind it.
    pub fn dispatch(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        let exporter_pid = n.exporter.pid();
        let serve_start = rpc_span_start(n);
        let mut served = 0u64;
        loop {
            let batch = match n.netd.recv_batch(&mut n.env, exporter_pid) {
                Ok(Some(batch)) => batch,
                Ok(None) => break,
                Err(_) => continue, // malformed frame: drop it, keep draining
            };
            let mut replies = Vec::with_capacity(batch.len());
            for raw in batch {
                if let Some(sealed_reply) = n.exporter.open_and_dispatch(&mut n.env, &raw) {
                    replies.push(sealed_reply);
                }
            }
            served += replies.len() as u64;
            if !replies.is_empty() {
                n.netd
                    .send_batch(&mut n.env, exporter_pid, &replies)
                    .expect("the exporter owns the netd taint category");
            }
        }
        rpc_span_end(n, "serve", serve_start, served);
    }

    // ----- federation setup ------------------------------------------------

    /// Exports a category owned by `owner` on `node`, returning its global
    /// name.
    pub fn export_category(
        &mut self,
        node: usize,
        owner: Pid,
        category: Category,
    ) -> Result<GlobalCategory> {
        let n = &mut self.nodes[node];
        n.exporter.export_category(&mut n.env, owner, category)
    }

    /// Delegates `category` (owned by `owner` on its home node) to another
    /// node's exporter: the owner grants its own exporter the category, the
    /// home exporter mints a delegation certificate for the peer, and the
    /// peer allocates a local shadow category bound to the global name.
    ///
    /// Returns the shadow category on `to` — the name by which that node's
    /// processes exercise the delegated privilege.
    pub fn delegate(
        &mut self,
        home: usize,
        owner: Pid,
        category: Category,
        to: usize,
    ) -> Result<Category> {
        let global = self.export_category(home, owner, category)?;
        let (secret, grantee) = (
            self.nodes[home].exporter.secret(),
            self.nodes[to].exporter.id(),
        );
        let cert = DelegationCert::issue(secret, global, grantee);
        let peer = &mut self.nodes[to];
        let shadow = peer.exporter.import_category(&mut peer.env, global)?;
        peer.exporter.install_cert(cert);
        Ok(shadow)
    }

    /// Grants local processes the use of a shadow category the node's
    /// exporter holds (typically right after [`Fabric::delegate`]).
    pub fn grant_shadow(&mut self, node: usize, to: Pid, shadow: Category) -> Result<()> {
        let n = &mut self.nodes[node];
        let exporter_pid = n.exporter.pid();
        grant_categories(&mut n.env, exporter_pid, to, &[shadow])?;
        Ok(())
    }

    /// Registers a remotely callable service on `node` behind a fresh
    /// default gate owned by `provider`.
    pub fn register_service(
        &mut self,
        node: usize,
        name: &str,
        provider: Pid,
        handler: Handler,
    ) -> Result<()> {
        let n = &mut self.nodes[node];
        n.exporter
            .register_service_for(&mut n.env, name, provider, handler)
    }

    /// Registers a service behind a gate with an explicit clearance — the
    /// way a service demands that callers prove category ownership (e.g.
    /// `{s 0, 2}`: only threads owning `s` may enter).
    pub fn register_gated_service(
        &mut self,
        node: usize,
        name: &str,
        provider: Pid,
        clearance: Label,
        handler: Handler,
    ) -> Result<()> {
        let n = &mut self.nodes[node];
        let (thread, container) = {
            let p = n.env.process(provider)?;
            (p.thread, p.process_container)
        };
        let kernel = n.env.machine_mut().kernel_mut();
        let label = kernel
            .thread_label(thread)
            .map_err(histar_unix::UnixError::from)?;
        let gate = kernel
            .trap_gate_create(
                thread,
                container,
                label,
                clearance,
                None,
                0x7100,
                vec![],
                name,
            )
            .map_err(histar_unix::UnixError::from)?;
        let gate = ServiceGate {
            gate: histar_kernel::object::ContainerEntry::new(container, gate),
            provider,
        };
        n.exporter.register_service(name, gate, handler);
        Ok(())
    }

    // ----- calls -----------------------------------------------------------

    /// A full label-checked RPC: `caller` on node `from` invokes `service`
    /// on node `to`.
    ///
    /// `label` declares the request payload's label (defaulting to the
    /// caller's current taint); `claims` names local categories whose
    /// ownership the caller wants to exercise remotely.  The reply lands in
    /// a labelled segment on the calling node.
    #[allow(clippy::too_many_arguments)]
    pub fn remote_call(
        &mut self,
        from: usize,
        caller: Pid,
        to: usize,
        service: &str,
        request: &[u8],
        label: Option<Label>,
        claims: &[Category],
    ) -> Result<RemoteReply> {
        let mut replies = self.remote_call_batch(
            from,
            caller,
            to,
            service,
            &[request.to_vec()],
            label,
            claims,
        )?;
        replies.pop().unwrap_or(Err(ExporterError::NoReply))
    }

    /// Batched RPC: several requests to the same service travel (and return)
    /// as a single wire frame, paying the per-frame costs once.
    #[allow(clippy::too_many_arguments)]
    pub fn remote_call_batch(
        &mut self,
        from: usize,
        caller: Pid,
        to: usize,
        service: &str,
        requests: &[Vec<u8>],
        label: Option<Label>,
        claims: &[Category],
    ) -> Result<Vec<Result<RemoteReply>>> {
        let label = match label {
            Some(l) => l,
            None => {
                let thread = self.nodes[from].env.process(caller)?.thread;
                self.nodes[from]
                    .env
                    .machine()
                    .kernel()
                    .thread_label(thread)
                    .map_err(histar_unix::UnixError::from)?
                    .drop_ownership(Level::L1)
            }
        };
        let peer = self.nodes[to].exporter.id();
        let mut encoded = Vec::with_capacity(requests.len());
        let mut seqs = Vec::with_capacity(requests.len());
        {
            let n = &mut self.nodes[from];
            let send_start = rpc_span_start(n);
            for request in requests {
                let msg = n
                    .exporter
                    .prepare_call(&mut n.env, caller, service, request, &label, claims)?;
                if let RpcMessage::Call { seq, .. } = &msg {
                    seqs.push(*seq);
                }
                encoded.push(n.exporter.seal_to(peer, &msg)?);
            }
            let exporter_pid = n.exporter.pid();
            n.netd
                .send_batch(&mut n.env, exporter_pid, &encoded)
                .map_err(ExporterError::Unix)?;
            rpc_span_end(n, "send", send_start, encoded.len() as u64);
        }

        self.pump(from, to);
        self.dispatch(to);
        self.pump(to, from);

        // Collect the reply batch on the calling node.
        let n = &mut self.nodes[from];
        let exporter_pid = n.exporter.pid();
        let recv_start = rpc_span_start(n);
        let mut received = 0u64;
        let mut results: Vec<Option<Result<RemoteReply>>> = (0..seqs.len()).map(|_| None).collect();
        loop {
            let batch = match n.netd.recv_batch(&mut n.env, exporter_pid) {
                Ok(Some(batch)) => batch,
                Ok(None) => break,
                Err(e) => return Err(ExporterError::Protocol(format!("bad reply frame: {e}"))),
            };
            for raw in batch {
                let (sender, msg) = n.exporter.open_from(&raw)?;
                if sender != peer {
                    return Err(ExporterError::Protocol(format!(
                        "reply authenticated as {sender}, expected {peer}"
                    )));
                }
                match msg {
                    RpcMessage::Reply {
                        seq,
                        label,
                        payload,
                    } => {
                        if let Some(slot) = seqs.iter().position(|s| *s == seq) {
                            received += 1;
                            results[slot] =
                                Some(n.exporter.land_reply(&mut n.env, &label, &payload));
                        }
                    }
                    RpcMessage::Error { seq, code, message } => {
                        if let Some(slot) = seqs.iter().position(|s| *s == seq) {
                            results[slot] = Some(Err(ExporterError::from_wire(code, message)));
                        }
                    }
                    RpcMessage::Call { .. } => {
                        return Err(ExporterError::Protocol(
                            "unexpected call on reply path".into(),
                        ))
                    }
                }
            }
        }
        rpc_span_end(n, "recv", recv_start, received);
        Ok(results
            .into_iter()
            .map(|r| r.unwrap_or(Err(ExporterError::NoReply)))
            .collect())
    }

    /// Reads a landed reply on behalf of `pid`, raising its taint as needed
    /// (bounded by its clearance) — the label that crossed the wire decides
    /// whether this succeeds.
    pub fn read_reply(&mut self, node: usize, pid: Pid, reply: &RemoteReply) -> Result<Vec<u8>> {
        let n = &mut self.nodes[node];
        let seg_label = {
            let thread = n.env.process(n.exporter.pid())?.thread;
            n.env
                .machine_mut()
                .kernel_mut()
                .trap_obj_get_label(thread, reply.entry)
                .map_err(histar_unix::UnixError::from)?
        };
        raise_taint_for(&mut n.env, pid, &seg_label)?;
        let thread = n.env.process(pid)?.thread;
        let bytes = n
            .env
            .machine_mut()
            .kernel_mut()
            .trap_segment_read(thread, reply.entry, 0, reply.len)
            .map_err(histar_unix::UnixError::from)?;
        Ok(bytes)
    }

    /// The label of a landed reply, as seen on the calling node.
    pub fn reply_label(&mut self, node: usize, reply: &RemoteReply) -> Result<Label> {
        let n = &mut self.nodes[node];
        let thread = n.env.process(n.exporter.pid())?.thread;
        Ok(n.env
            .machine_mut()
            .kernel_mut()
            .trap_obj_get_label(thread, reply.entry)
            .map_err(histar_unix::UnixError::from)?)
    }

    /// Round-trips a label from `from` through `to` and back, via the same
    /// translation path RPC labels take.  Used to verify that federation
    /// never launders taint: the result is never weaker than the input.
    pub fn round_trip_label(
        &mut self,
        from: usize,
        to: usize,
        label: &Label,
        owner: Pid,
    ) -> Result<Label> {
        let outbound = {
            let n = &mut self.nodes[from];
            n.exporter.outbound_label(&mut n.env, label, Some(owner))?
        };
        let translated = {
            let n = &mut self.nodes[to];
            n.exporter.import_label(&mut n.env, &outbound)?
        };
        let returned = {
            let n = &mut self.nodes[to];
            n.exporter.outbound_label(&mut n.env, &translated, None)?
        };
        let n = &mut self.nodes[from];
        n.exporter.import_label(&mut n.env, &returned)
    }
}
