//! The exporter wire protocol: self-certifying global category names,
//! delegation certificates, and serialized RPC messages.
//!
//! A category leaves its home machine under a *global name*: the hash of its
//! home exporter's public key plus a per-exporter identifier.  The name is
//! self-certifying — it simultaneously names the category and the only
//! exporter entitled to speak for it — so two machines that have never met
//! can still agree on what a label means, with no trusted naming authority
//! (the DStar design, applied to this reproduction's simulated network).
//!
//! Certificates are authenticated with a keyed hash in place of public-key
//! signatures (the container has no crypto dependency).  The construction
//! preserves exactly the checks that matter: only code holding the home
//! exporter's secret can mint a certificate, and the home exporter — the
//! only party that ever needs to honor one — can verify it.  Third-party
//! verification, which real DStar gets from Ed25519, is out of scope and
//! explicitly rejected.

use histar_label::{Label, Level};
use histar_store::codec::{DecodeError, Decoder, Encoder};

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A keyed hash over a sequence of words — the stand-in for a signature.
pub(crate) fn mac64(secret: u64, parts: &[u64]) -> u64 {
    let mut acc = splitmix(secret ^ 0x6d61_6336_3421); // "mac64!"
    for &p in parts {
        acc = splitmix(acc ^ p);
    }
    acc
}

/// A keyed hash over a byte string (used to authenticate whole messages).
pub(crate) fn mac_bytes(key: u64, bytes: &[u8]) -> u64 {
    let mut acc = splitmix(key ^ 0x6d61_6362); // "macb"
    acc = splitmix(acc ^ bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = splitmix(acc ^ u64::from_le_bytes(word));
    }
    acc
}

/// The 61-bit Mersenne prime `2^61 - 1` over which exporter key exchange
/// runs, and its generator.  A toy Diffie–Hellman — breakable offline, like
/// the category cipher — but structurally faithful: two exporters derive a
/// pairwise key from their own secret and the peer's public key, and only
/// they can authenticate traffic between them.
const DH_P: u64 = (1u64 << 61) - 1;
const DH_G: u64 = 3;

fn modpow(base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc: u128 = 1;
    let mut b: u128 = (base % modulus) as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % modulus as u128;
        }
        b = b * b % modulus as u128;
        exp >>= 1;
    }
    acc as u64
}

/// Maps a secret to a usable exponent: reduced into the group order, never
/// zero.  Injective over `1..p-1`, so distinct small secrets get distinct
/// public keys.
fn dh_exponent(secret: u64) -> u64 {
    let e = secret % (DH_P - 1);
    if e == 0 {
        1
    } else {
        e
    }
}

/// The public key derived from an exporter's secret.
pub fn public_from_secret(secret: u64) -> u64 {
    modpow(DH_G, dh_exponent(secret), DH_P)
}

/// The pairwise channel key shared by the holder of `my_secret` and the
/// holder of the secret behind `their_public` (commutative).
pub fn shared_key(my_secret: u64, their_public: u64) -> u64 {
    splitmix(modpow(their_public, dh_exponent(my_secret), DH_P) ^ 0x6368_616e) // "chan"
}

/// The hash of an exporter's public key: the machine-independent identity of
/// one exporter daemon.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExporterId(pub u64);

impl ExporterId {
    /// Derives the public identity from an exporter's secret key.  One-way:
    /// knowing the identity does not reveal the secret.
    pub fn from_secret(secret: u64) -> ExporterId {
        ExporterId::from_public(public_from_secret(secret))
    }

    /// The identity is the hash of the public key, so a name commits to the
    /// key material that authenticates the exporter's traffic.
    pub fn from_public(public: u64) -> ExporterId {
        ExporterId(splitmix(public ^ 0x7075_626b_6579)) // "pubkey"
    }
}

impl core::fmt::Debug for ExporterId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "exp:{:08x}", self.0)
    }
}

impl core::fmt::Display for ExporterId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "exp:{:08x}", self.0)
    }
}

/// The globally meaningful, self-certifying name of a category.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GlobalCategory {
    /// The exporter that owns (speaks for) the category.
    pub home: ExporterId,
    /// The category's identifier within its home exporter's namespace.
    pub id: u64,
}

impl GlobalCategory {
    /// The kernel's representation of this name (for the category-translation
    /// syscalls).
    pub fn as_kernel_name(self) -> (u64, u64) {
        (self.home.0, self.id)
    }

    /// Reconstructs a global name from the kernel's representation.
    pub fn from_kernel_name(name: (u64, u64)) -> GlobalCategory {
        GlobalCategory {
            home: ExporterId(name.0),
            id: name.1,
        }
    }
}

impl core::fmt::Display for GlobalCategory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/c{:x}", self.home, self.id)
    }
}

/// A label expressed entirely in global category names — what actually
/// crosses the wire.  Levels are copied verbatim from the local label;
/// translation never weakens (or strengthens) a level.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GlobalLabel {
    /// Default level for unmentioned categories.
    pub default: u8,
    /// `(category, level)` pairs, encoded with [`Level::encode`].
    pub entries: Vec<(GlobalCategory, u8)>,
}

impl GlobalLabel {
    /// The level of `cat` under this label, decoded.
    pub fn level(&self, cat: GlobalCategory) -> Option<Level> {
        for (c, bits) in &self.entries {
            if *c == cat {
                return Level::decode(*bits);
            }
        }
        Level::decode(self.default)
    }

    fn encode(&self, e: &mut Encoder) {
        e.put_u8(self.default);
        e.put_u64(self.entries.len() as u64);
        for (c, lvl) in &self.entries {
            e.put_u64(c.home.0);
            e.put_u64(c.id);
            e.put_u8(*lvl);
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<GlobalLabel, DecodeError> {
        let default = d.get_u8()?;
        let n = d.get_u64()? as usize;
        let mut entries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let home = ExporterId(d.get_u64()?);
            let id = d.get_u64()?;
            let lvl = d.get_u8()?;
            entries.push((GlobalCategory { home, id }, lvl));
        }
        Ok(GlobalLabel { default, entries })
    }
}

/// A delegation certificate: the home exporter of `category` states that
/// `grantee` may exercise ownership (`⋆`) of it remotely.
///
/// The tag is a keyed hash minted with the home exporter's secret; the home
/// exporter verifies it when a message claiming the privilege arrives.
/// Without a valid certificate the receiving exporter grants nothing, and
/// the receiving *kernel* then refuses the tunneled gate call — no flow is
/// exempt from the label lattice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DelegationCert {
    /// The delegated category.
    pub category: GlobalCategory,
    /// The exporter being delegated to.
    pub grantee: ExporterId,
    /// Keyed-hash authentication tag.
    pub tag: u64,
}

impl DelegationCert {
    /// Mints a certificate.  Only code holding the home exporter's secret
    /// can produce a tag that [`DelegationCert::verify`] accepts.
    pub fn issue(
        home_secret: u64,
        category: GlobalCategory,
        grantee: ExporterId,
    ) -> DelegationCert {
        DelegationCert {
            category,
            grantee,
            tag: mac64(home_secret, &[category.home.0, category.id, grantee.0]),
        }
    }

    /// Verifies the tag against the home exporter's secret, checking that
    /// the secret actually belongs to the category's home.
    pub fn verify(&self, home_secret: u64) -> bool {
        ExporterId::from_secret(home_secret) == self.category.home
            && self.tag
                == mac64(
                    home_secret,
                    &[self.category.home.0, self.category.id, self.grantee.0],
                )
    }
}

/// One exporter-to-exporter message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RpcMessage {
    /// A tunneled gate call.
    Call {
        /// Sequence number echoed by the reply.
        seq: u64,
        /// The calling exporter.  This is authenticated: every frame travels
        /// inside a [`seal`]ed envelope whose MAC is keyed by the pairwise
        /// channel key, and the receiver rejects a call whose inner sender
        /// disagrees with the authenticated envelope sender — a forged
        /// sender cannot produce a valid envelope.
        sender: ExporterId,
        /// Name of the remote service (gate) to invoke.
        service: String,
        /// The request payload's label, in global names.
        label: GlobalLabel,
        /// Categories the caller wants to exercise ownership of on the
        /// receiving node.
        claims: Vec<GlobalCategory>,
        /// Certificates backing the claims that need one.
        certs: Vec<DelegationCert>,
        /// The request payload.
        payload: Vec<u8>,
    },
    /// A successful reply.
    Reply {
        /// Sequence number of the call being answered.
        seq: u64,
        /// The reply payload's label, in global names (residual taint the
        /// service call acquired — it crosses the wire with the data).
        label: GlobalLabel,
        /// The reply payload.
        payload: Vec<u8>,
    },
    /// A failed call.
    Error {
        /// Sequence number of the call being answered.
        seq: u64,
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail (e.g. the receiving kernel's error).
        message: String,
    },
}

/// Failure classes an exporter reports back to the caller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The receiving kernel's label check refused the tunneled call.
    LabelCheck,
    /// A delegation certificate was missing, malformed or forged.
    BadCertificate,
    /// No service with the requested name is registered.
    UnknownService,
    /// The reply could not be exported (its label names a category whose
    /// owner never authorized the exporter).
    NotExportable,
    /// Anything else (marshalling, resources).
    Internal,
}

impl ErrorCode {
    fn encode(self) -> u8 {
        match self {
            ErrorCode::LabelCheck => 0,
            ErrorCode::BadCertificate => 1,
            ErrorCode::UnknownService => 2,
            ErrorCode::NotExportable => 3,
            ErrorCode::Internal => 4,
        }
    }

    fn decode(v: u8) -> Option<ErrorCode> {
        Some(match v {
            0 => ErrorCode::LabelCheck,
            1 => ErrorCode::BadCertificate,
            2 => ErrorCode::UnknownService,
            3 => ErrorCode::NotExportable,
            4 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl RpcMessage {
    /// Serializes the message for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            RpcMessage::Call {
                seq,
                sender,
                service,
                label,
                claims,
                certs,
                payload,
            } => {
                e.put_u8(0);
                e.put_u64(*seq);
                e.put_u64(sender.0);
                e.put_str(service);
                label.encode(&mut e);
                e.put_u64(claims.len() as u64);
                for c in claims {
                    e.put_u64(c.home.0);
                    e.put_u64(c.id);
                }
                e.put_u64(certs.len() as u64);
                for c in certs {
                    e.put_u64(c.category.home.0);
                    e.put_u64(c.category.id);
                    e.put_u64(c.grantee.0);
                    e.put_u64(c.tag);
                }
                e.put_bytes(payload);
            }
            RpcMessage::Reply {
                seq,
                label,
                payload,
            } => {
                e.put_u8(1);
                e.put_u64(*seq);
                label.encode(&mut e);
                e.put_bytes(payload);
            }
            RpcMessage::Error { seq, code, message } => {
                e.put_u8(2);
                e.put_u64(*seq);
                e.put_u8(code.encode());
                e.put_str(message);
            }
        }
        e.finish()
    }

    /// Deserializes a wire message.
    pub fn decode(bytes: &[u8]) -> Result<RpcMessage, DecodeError> {
        let mut d = Decoder::new(bytes);
        let msg = match d.get_u8()? {
            0 => {
                let seq = d.get_u64()?;
                let sender = ExporterId(d.get_u64()?);
                let service = d.get_str()?;
                let label = GlobalLabel::decode(&mut d)?;
                let nclaims = d.get_u64()? as usize;
                let mut claims = Vec::with_capacity(nclaims.min(1024));
                for _ in 0..nclaims {
                    let home = ExporterId(d.get_u64()?);
                    let id = d.get_u64()?;
                    claims.push(GlobalCategory { home, id });
                }
                let ncerts = d.get_u64()? as usize;
                let mut certs = Vec::with_capacity(ncerts.min(1024));
                for _ in 0..ncerts {
                    let home = ExporterId(d.get_u64()?);
                    let id = d.get_u64()?;
                    let grantee = ExporterId(d.get_u64()?);
                    let tag = d.get_u64()?;
                    certs.push(DelegationCert {
                        category: GlobalCategory { home, id },
                        grantee,
                        tag,
                    });
                }
                let payload = d.get_bytes()?;
                RpcMessage::Call {
                    seq,
                    sender,
                    service,
                    label,
                    claims,
                    certs,
                    payload,
                }
            }
            1 => RpcMessage::Reply {
                seq: d.get_u64()?,
                label: GlobalLabel::decode(&mut d)?,
                payload: d.get_bytes()?,
            },
            2 => RpcMessage::Error {
                seq: d.get_u64()?,
                code: ErrorCode::decode(d.get_u8()?).ok_or(DecodeError::BadLength)?,
                message: d.get_str()?,
            },
            _ => return Err(DecodeError::BadLength),
        };
        Ok(msg)
    }
}

/// Wraps an encoded message in an authenticated envelope:
/// `[sender id][MAC(channel key, body)][body]`.  Only the two endpoints of
/// the channel can mint (or verify) the tag.
pub fn seal(channel_key: u64, sender: ExporterId, msg: &RpcMessage) -> Vec<u8> {
    let body = msg.encode();
    let mut e = Encoder::new();
    e.put_u64(sender.0);
    e.put_u64(mac_bytes(channel_key, &body));
    e.put_bytes(&body);
    e.finish()
}

/// Splits an envelope into its claimed sender, tag, and body — *without*
/// verifying anything (the receiver must look up the sender's channel key
/// first).  Complete verification is [`open`].
pub fn peel(frame: &[u8]) -> Result<(ExporterId, u64, Vec<u8>), DecodeError> {
    let mut d = Decoder::new(frame);
    let sender = ExporterId(d.get_u64()?);
    let tag = d.get_u64()?;
    let body = d.get_bytes()?;
    Ok((sender, tag, body))
}

/// Verifies and decodes an envelope with the channel key the receiver holds
/// for the claimed sender.  Returns `None` if the tag does not verify.
pub fn open(channel_key: u64, tag: u64, body: &[u8]) -> Option<RpcMessage> {
    if mac_bytes(channel_key, body) != tag {
        return None;
    }
    RpcMessage::decode(body).ok()
}

/// Translates a local label to global names using a resolver from local
/// categories to global ones.  Returns `None` (not exportable) if any
/// non-default entry has no global name.
pub fn label_to_global<F>(label: &Label, mut resolve: F) -> Option<GlobalLabel>
where
    F: FnMut(histar_label::Category) -> Option<GlobalCategory>,
{
    let mut out = GlobalLabel {
        default: label.default_level().encode(),
        entries: Vec::with_capacity(label.len()),
    };
    for (c, lvl) in label.entries() {
        out.entries.push((resolve(c)?, lvl.encode()));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exporter_identity_is_one_way_and_stable() {
        let a = ExporterId::from_secret(1);
        let b = ExporterId::from_secret(1);
        let c = ExporterId::from_secret(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a.0, 1, "the identity must not expose the secret");
    }

    #[test]
    fn certificates_verify_only_with_the_home_secret() {
        let secret = 0xdead_beef;
        let home = ExporterId::from_secret(secret);
        let grantee = ExporterId::from_secret(7);
        let cat = GlobalCategory { home, id: 3 };
        let cert = DelegationCert::issue(secret, cat, grantee);
        assert!(cert.verify(secret));
        // A different secret (an impostor claiming to be the home) fails.
        assert!(!cert.verify(0xfeed));
        // A tampered tag fails.
        let forged = DelegationCert {
            tag: cert.tag ^ 1,
            ..cert
        };
        assert!(!forged.verify(secret));
        // A cert for a different grantee has a different tag.
        let other = DelegationCert::issue(secret, cat, ExporterId::from_secret(8));
        assert_ne!(other.tag, cert.tag);
    }

    #[test]
    fn key_exchange_is_commutative_and_envelope_tags_bind_the_channel() {
        let (sa, sb, sc) = (11, 22, 33);
        let (pa, pb, pc) = (
            public_from_secret(sa),
            public_from_secret(sb),
            public_from_secret(sc),
        );
        // Distinct secrets — including adjacent even/odd pairs — get
        // distinct public keys.
        assert_ne!(pa, pb);
        assert_ne!(
            public_from_secret(0xe4b0_17e6),
            public_from_secret(0xe4b0_17e7)
        );
        // Both ends derive the same channel key; a third party derives a
        // different one.
        let kab = shared_key(sa, pb);
        let kba = shared_key(sb, pa);
        assert_eq!(kab, kba);
        assert_ne!(kab, shared_key(sa, pc));
        assert_ne!(kab, shared_key(sc, pa));
        assert_ne!(kab, shared_key(sc, pb));

        let a = ExporterId::from_public(pa);
        let msg = RpcMessage::Reply {
            seq: 7,
            label: GlobalLabel::default(),
            payload: b"hi".to_vec(),
        };
        let frame = seal(kab, a, &msg);
        let (sender, tag, body) = peel(&frame).unwrap();
        assert_eq!(sender, a);
        assert_eq!(open(kab, tag, &body), Some(msg.clone()));
        // The wrong channel key — what a spoofer who is not one of the two
        // endpoints would have — fails verification.
        assert_eq!(open(shared_key(sc, pb), tag, &body), None);
        // So does a tampered body.
        let mut mangled = body.clone();
        mangled[0] ^= 1;
        assert_eq!(open(kab, tag, &mangled), None);
    }

    #[test]
    fn messages_round_trip_through_the_codec() {
        let home = ExporterId::from_secret(5);
        let cat = GlobalCategory { home, id: 9 };
        let call = RpcMessage::Call {
            seq: 17,
            sender: ExporterId::from_secret(6),
            service: "auth.check".into(),
            label: GlobalLabel {
                default: Level::L1.encode(),
                entries: vec![(cat, Level::L3.encode())],
            },
            claims: vec![cat],
            certs: vec![DelegationCert::issue(5, cat, ExporterId::from_secret(6))],
            payload: b"bob\0hunter2".to_vec(),
        };
        assert_eq!(RpcMessage::decode(&call.encode()).unwrap(), call);

        let reply = RpcMessage::Reply {
            seq: 17,
            label: GlobalLabel::default(),
            payload: b"ok".to_vec(),
        };
        assert_eq!(RpcMessage::decode(&reply.encode()).unwrap(), reply);

        let err = RpcMessage::Error {
            seq: 18,
            code: ErrorCode::LabelCheck,
            message: "gate clearance does not admit the calling thread".into(),
        };
        assert_eq!(RpcMessage::decode(&err.encode()).unwrap(), err);

        assert!(RpcMessage::decode(b"\x09").is_err());
        assert!(RpcMessage::decode(&[]).is_err());
    }

    #[test]
    fn label_translation_preserves_levels_exactly() {
        use histar_label::Category;
        let home = ExporterId::from_secret(1);
        let l = Label::builder()
            .set(Category::from_raw(1), Level::L3)
            .set(Category::from_raw(2), Level::L0)
            .build();
        let g = label_to_global(&l, |c| Some(GlobalCategory { home, id: c.raw() })).unwrap();
        assert_eq!(g.level(GlobalCategory { home, id: 1 }), Some(Level::L3));
        assert_eq!(g.level(GlobalCategory { home, id: 2 }), Some(Level::L0));
        assert_eq!(g.level(GlobalCategory { home, id: 99 }), Some(Level::L1));
        // An unexportable entry poisons the whole label rather than being
        // silently dropped — dropping taint would be laundering.
        assert!(label_to_global(&l, |c| (c.raw() == 1)
            .then_some(GlobalCategory { home, id: 1 }))
        .is_none());
    }
}
