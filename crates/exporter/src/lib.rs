//! DStar-style exporters: label-checked RPC across multiple HiStar nodes.
//!
//! The paper makes every information flow on *one* machine explicit; this
//! crate extends the guarantee across the (simulated) network, following the
//! design the paper's self-certifying netd/taint structure foreshadows and
//! DStar later built:
//!
//! * **Global names** ([`GlobalCategory`]) — a category leaves its home
//!   machine as `(exporter public-key hash, local id)`.  The name is
//!   self-certifying: it pins the only exporter entitled to speak for the
//!   category, so two kernels that have never met agree on what a label
//!   means without a trusted naming authority.
//! * **Translation** — each kernel keeps a bidirectional table between
//!   local categories and global names (`sys_category_bind_remote`).
//!   Binding requires *ownership* of the category, levels are copied
//!   verbatim, and bindings are write-once, so translation is a partial
//!   bijection that can never weaken a label (no taint laundering).
//! * **Delegation** ([`DelegationCert`]) — exercising ownership (`⋆`) of a
//!   category from another node requires a certificate minted by the
//!   category's home exporter.  Without it, the receiving exporter grants
//!   nothing and the receiving *kernel* refuses the tunneled gate call.
//! * **Tunneled gate calls** ([`Fabric::remote_call`]) — a call crosses as a
//!   serialized [`RpcMessage`] behind netd (picking up the `i` taint
//!   discipline of §5.7), is re-labelled on arrival, and enters the service
//!   gate through a worker thread whose label the receiving kernel checks
//!   exactly as it would a local caller's.  No flow is exempt from the
//!   label lattice on either machine.
//!
//! The [`Fabric`] joins several independent [`Machine`](histar_kernel::Machine)s
//! over a [`Topology`](histar_sim::Topology) with per-link latency and cost,
//! standing in for the physical network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exporter;
pub mod fabric;
pub mod wire;

pub use exporter::{Exporter, Handler, RemoteReply, RemoteService};
pub use fabric::{Fabric, Node};
pub use wire::{DelegationCert, ErrorCode, ExporterId, GlobalCategory, GlobalLabel, RpcMessage};

use histar_unix::UnixError;

/// Errors raised by the exporter subsystem.
#[derive(Debug)]
pub enum ExporterError {
    /// A local Unix-library or kernel error.
    Unix(UnixError),
    /// A kernel label check refused the call — on the receiving node this is
    /// the kernel's verdict on the tunneled gate call; on the calling node it
    /// arrives as an error reply.
    RemoteLabelCheck(String),
    /// A delegation certificate was forged, mangled, or issued to someone
    /// else.
    BadCertificate(String),
    /// The caller holds no delegation for a remote category it claims.
    MissingDelegation(String),
    /// The caller claimed a category its thread does not own.
    NotOwner(String),
    /// A label names a category whose owner has not entrusted it to the
    /// exporter; the data cannot leave the machine.
    NotExportable(String),
    /// No such remote service.
    UnknownService(String),
    /// A malformed or unexpected wire message.
    Protocol(String),
    /// The call produced no reply.
    NoReply,
}

impl ExporterError {
    /// The wire error class for this failure (receiving side).
    pub fn wire_code(&self) -> ErrorCode {
        match self {
            ExporterError::RemoteLabelCheck(_) => ErrorCode::LabelCheck,
            ExporterError::BadCertificate(_) | ExporterError::MissingDelegation(_) => {
                ErrorCode::BadCertificate
            }
            ExporterError::UnknownService(_) => ErrorCode::UnknownService,
            ExporterError::NotExportable(_) => ErrorCode::NotExportable,
            _ => ErrorCode::Internal,
        }
    }

    /// Reconstructs the failure from a wire error reply (calling side).
    pub fn from_wire(code: ErrorCode, message: String) -> ExporterError {
        match code {
            ErrorCode::LabelCheck => ExporterError::RemoteLabelCheck(message),
            ErrorCode::BadCertificate => ExporterError::BadCertificate(message),
            ErrorCode::UnknownService => ExporterError::UnknownService(message),
            ErrorCode::NotExportable => ExporterError::NotExportable(message),
            ErrorCode::Internal => ExporterError::Protocol(message),
        }
    }

    /// True if the failure is a kernel label check saying no — locally or on
    /// the remote node.
    pub fn is_label_check(&self) -> bool {
        matches!(self, ExporterError::RemoteLabelCheck(_))
    }
}

impl From<UnixError> for ExporterError {
    fn from(e: UnixError) -> ExporterError {
        ExporterError::Unix(e)
    }
}

impl From<histar_kernel::syscall::SyscallError> for ExporterError {
    fn from(e: histar_kernel::syscall::SyscallError) -> ExporterError {
        ExporterError::Unix(UnixError::Kernel(e))
    }
}

impl core::fmt::Display for ExporterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExporterError::Unix(e) => write!(f, "{e}"),
            ExporterError::RemoteLabelCheck(m) => write!(f, "kernel label check refused: {m}"),
            ExporterError::BadCertificate(m) => write!(f, "bad delegation certificate: {m}"),
            ExporterError::MissingDelegation(m) => write!(f, "missing delegation: {m}"),
            ExporterError::NotOwner(m) => write!(f, "claim without ownership: {m}"),
            ExporterError::NotExportable(m) => write!(f, "not exportable: {m}"),
            ExporterError::UnknownService(m) => write!(f, "unknown service: {m}"),
            ExporterError::Protocol(m) => write!(f, "protocol error: {m}"),
            ExporterError::NoReply => write!(f, "no reply"),
        }
    }
}

impl std::error::Error for ExporterError {}
