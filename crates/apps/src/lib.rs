//! Applications from the paper: the isolated virus scanner (§6.1) and the
//! application-level workloads of Figure 13.
//!
//! The centrepiece is `wrap`, the 110-line trusted launcher: it allocates an
//! isolation category `v`, creates a private `/tmp` writable at `v 3`,
//! launches the (completely untrusted) scanner tainted `v 3`, and is the
//! only component able to untaint the scanner's one-line result.  Everything
//! the scanner does — including spawning helper programs — stays behind `v`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod multilogin;

use histar_label::{Label, Level};
use histar_unix::fs::OpenFlags;
use histar_unix::process::{ExitStatus, Pid};
use histar_unix::{UnixEnv, UnixError};

/// Result alias for application code.
pub type Result<T> = core::result::Result<T, UnixError>;

/// A virus signature database (the ClamAV `.cvd` stand-in).
#[derive(Clone, Debug, Default)]
pub struct VirusDb {
    /// Byte signatures considered malicious.
    pub signatures: Vec<Vec<u8>>,
}

impl VirusDb {
    /// A small default database.
    pub fn builtin() -> VirusDb {
        VirusDb {
            signatures: vec![
                b"EICAR-STANDARD-ANTIVIRUS-TEST".to_vec(),
                b"\x4d\x5a\x90\x00MALWARE".to_vec(),
                b"rm -rf --no-preserve-root /".to_vec(),
            ],
        }
    }

    /// Serializes the database for storage in a file.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for sig in &self.signatures {
            out.extend_from_slice(&(sig.len() as u32).to_le_bytes());
            out.extend_from_slice(sig);
        }
        out
    }

    /// Decodes a database written by [`VirusDb::encode`].
    pub fn decode(bytes: &[u8]) -> VirusDb {
        let mut signatures = Vec::new();
        let mut pos = 0;
        while pos + 4 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if pos + len > bytes.len() {
                break;
            }
            signatures.push(bytes[pos..pos + len].to_vec());
            pos += len;
        }
        VirusDb { signatures }
    }

    /// Scans a byte buffer, returning the matched signature indexes.
    pub fn scan(&self, data: &[u8]) -> Vec<usize> {
        self.signatures
            .iter()
            .enumerate()
            .filter(|(_, sig)| !sig.is_empty() && data.windows(sig.len()).any(|w| w == &sig[..]))
            .map(|(i, _)| i)
            .collect()
    }
}

/// The result `wrap` reports back to the user: one line per scanned file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanReport {
    /// `(path, infected)` for every scanned file.
    pub results: Vec<(String, bool)>,
    /// Whether the scanner was able to leak anything to the network or the
    /// update daemon (always false unless the kernel's checks are broken —
    /// kept here so tests and benchmarks can assert it).
    pub leak_detected: bool,
}

/// The outcome of running the whole ClamAV deployment once.
#[derive(Debug)]
pub struct ClamAvDeployment {
    /// The wrap process (owns the isolation category `v`).
    pub wrap: Pid,
    /// The isolated scanner process (tainted `v 3`).
    pub scanner: Pid,
    /// The update daemon (can write the database, cannot read user data).
    pub update_daemon: Pid,
    /// The isolation category.
    pub isolation: histar_label::Category,
    /// The user whose files are being scanned.
    pub user: histar_unix::users::User,
}

/// Sets up the ClamAV scenario of Figures 1/2/4: a user with private files,
/// a world-readable virus database maintained by an update daemon, and a
/// `wrap` process holding the user's read privilege.
pub fn deploy_clamav(env: &mut UnixEnv, username: &str) -> Result<ClamAvDeployment> {
    let init = env.init_pid();
    let user = match env.users().lookup(username) {
        Some(u) => u.clone(),
        None => env.create_user(username)?,
    };

    // The virus database: world-readable, writable only by the updater.
    let updater_cat = {
        let init_thread = env.process(init)?.thread;
        env.machine_mut()
            .kernel_mut()
            .trap_create_category(init_thread)?
    };
    let db_label = Label::builder().set(updater_cat, Level::L0).build();
    env.write_file_as(
        init,
        "/clamav.cvd",
        &VirusDb::builtin().encode(),
        Some(db_label),
    )?;

    // The update daemon owns the database write category and talks to the
    // network; it must never gain the user's read category.
    let update_daemon =
        env.spawn_with_label(init, "/usr/sbin/freshclam", vec![updater_cat], vec![])?;

    // wrap runs with the user's privilege (ownership of ur/uw) and allocates
    // the isolation category v.
    let wrap = env.spawn(init, "/usr/bin/wrap", Some(username))?;
    let wrap_thread = env.process(wrap)?.thread;
    let isolation = env
        .machine_mut()
        .kernel_mut()
        .trap_create_category(wrap_thread)?;
    env.process_record_mut(wrap)?
        .extra_ownership
        .push(isolation);

    // Private /tmp for the scanner, writable at taint level 3 in v.
    let tmp_label = Label::builder()
        .set(isolation, Level::L3)
        .set(user.read_cat, Level::L3)
        .build();
    env.mkdir(wrap, "/scan-tmp", Some(tmp_label))?;

    // The scanner: completely untrusted, launched tainted v 3 (and allowed
    // to taint itself with the user's read category so it can read the
    // files it must scan).
    let scanner = env.spawn_with_label(
        wrap,
        "/usr/bin/clamscan",
        vec![],
        vec![(isolation, Level::L3), (user.read_cat, Level::L3)],
    )?;

    Ok(ClamAvDeployment {
        wrap,
        scanner,
        update_daemon,
        isolation,
        user,
    })
}

/// Runs the scanner over the given user files, exactly as `wrap` would:
/// the *scanner process* reads each file and the database, matches
/// signatures, writes its verdicts into the private `/tmp`, and `wrap`
/// (the only owner of `v`) reads them back and untaints the result.
pub fn wrap_scan(
    env: &mut UnixEnv,
    deployment: &ClamAvDeployment,
    paths: &[&str],
) -> Result<ScanReport> {
    let scanner = deployment.scanner;
    let wrap = deployment.wrap;

    // The scanner loads the database (world-readable, so this works even
    // though the scanner is tainted).
    let db = VirusDb::decode(&env.read_file_as(scanner, "/clamav.cvd")?);

    let mut results = Vec::new();
    for path in paths {
        let data = env.read_file_as(scanner, path)?;
        let infected = !db.scan(&data).is_empty();
        // The scanner records its verdict in the private /tmp (the only
        // place it can write).
        let verdict_path = format!("/scan-tmp/verdict-{}", results.len());
        let verdict_label = Label::builder()
            .set(deployment.isolation, Level::L3)
            .set(deployment.user.read_cat, Level::L3)
            .build();
        env.write_file_as(
            scanner,
            &verdict_path,
            if infected { b"INFECTED" } else { b"CLEAN" },
            Some(verdict_label),
        )?;
        // wrap, owning v and ur, reads the verdict and untaints it.
        let verdict = env.read_file_as(wrap, &verdict_path)?;
        results.push((path.to_string(), verdict == b"INFECTED"));
    }

    // Demonstrate the guarantee the whole construction is for: the scanner
    // cannot leak what it read to anything untainted.
    let leak_detected = env
        .write_file_as(scanner, "/leaked-data", b"user secrets", None)
        .is_ok();

    Ok(ScanReport {
        results,
        leak_detected,
    })
}

/// The Figure 13 virus-scan workload: scan a `size` byte randomized file,
/// returning the simulated time taken.  `isolated` selects whether the scan
/// runs under `wrap` (it makes no measurable difference — that is the row's
/// point).
pub fn scan_benchmark(
    env: &mut UnixEnv,
    size: usize,
    isolated: bool,
) -> Result<histar_sim::SimDuration> {
    let init = env.init_pid();
    let deployment = deploy_clamav(env, "scanuser")?;
    // Build the 100 MB (or scaled) randomized input as the user's file.
    let mut rng = histar_sim::SimRng::new(0x5eed);
    let data = rng.bytes(size);
    let label = deployment.user.private_file_label();
    env.write_file_as(init, "/sample.bin", &data, Some(label))?;

    let start = env.machine().clock().now();
    let pid = if isolated { deployment.scanner } else { init };
    let file = env.read_file_as(pid, "/sample.bin")?;
    // Signature matching is byte-proportional CPU work; charge it to the
    // simulated clock like the cost model does for application compute.
    let cost =
        histar_sim::CostModel::for_flavor(histar_sim::OsFlavor::HiStar).compute(file.len() as u64);
    env.machine().clock().advance(cost);
    let db = VirusDb::decode(&env.read_file_as(pid, "/clamav.cvd")?);
    let _ = db.scan(&file[..file.len().min(1 << 16)]);
    Ok(env.machine().clock().now() - start)
}

/// The Figure 13 "build the HiStar kernel" workload: a make-like driver that
/// spawns one compile process per source file, each of which reads its
/// source, burns CPU proportional to its size, and writes an object file.
pub fn build_benchmark(
    env: &mut UnixEnv,
    files: usize,
    file_size: usize,
) -> Result<histar_sim::SimDuration> {
    let init = env.init_pid();
    env.mkdir(init, "/src", None).ok();
    env.mkdir(init, "/obj", None).ok();
    let mut rng = histar_sim::SimRng::new(7);
    for i in 0..files {
        env.write_file_as(
            init,
            &format!("/src/file{i}.c"),
            &rng.bytes(file_size),
            None,
        )?;
    }
    let cost = histar_sim::CostModel::for_flavor(histar_sim::OsFlavor::HiStar);
    let start = env.machine().clock().now();
    for i in 0..files {
        let cc = env.spawn(init, "/usr/bin/gcc", None)?;
        let source = env.read_file_as(cc, &format!("/src/file{i}.c"))?;
        // "Compilation" costs ~20x the scanner's per-byte work.
        env.machine()
            .clock()
            .advance(cost.compute(source.len() as u64 * 20));
        env.write_file_as(
            cc,
            &format!("/obj/file{i}.o"),
            &source[..source.len() / 2],
            None,
        )?;
        env.exit(cc, ExitStatus::Exited(0))?;
        env.wait(init, cc)?;
    }
    Ok(env.machine().clock().now() - start)
}

/// A tiny `wget`-style download: pulls `size` bytes through netd from the
/// simulated wire into a file, charging wire time to the network model.
pub fn wget_benchmark(
    env: &mut UnixEnv,
    netd: &histar_net::Netd,
    size: u64,
) -> Result<histar_sim::SimDuration> {
    let init = env.init_pid();
    // wget is born network-tainted (`{i 2, 1}` like the paper's browser), so
    // its whole process environment can hold network-derived data.
    let client =
        env.spawn_with_label(init, "/usr/bin/wget", vec![], vec![(netd.taint, Level::L2)])?;
    let net_model = histar_sim::NetConfig::default();
    let mut sim_net = histar_sim::SimNetwork::new(net_model, env.machine().clock().clone());
    let start = env.machine().clock().now();
    // Downloads land in a directory that carries the network taint, so a
    // network-tainted wget can create and write files there.
    let dl_label = Label::builder().set(netd.taint, Level::L2).build();
    env.mkdir(init, "/downloads", Some(dl_label.clone()))?;
    // init (which owns the network taint category) pre-reserves quota so the
    // tainted downloader never needs to touch untainted ancestors.
    env.reserve_quota(init, "/downloads", size * 2 + (1 << 20))?;
    let fd = env.open_labeled(
        client,
        "/downloads/file.bin",
        OpenFlags::write_create(),
        Some(dl_label),
    )?;
    let mut received = 0u64;
    let chunk = vec![0xabu8; 32 * 1024];
    while received < size {
        let n = chunk.len().min((size - received) as usize);
        // Wire time for the chunk (the network is the bottleneck at
        // 100 Mbps), then deliver it through netd and into the file.
        sim_net.receive(n as u64);
        netd.wire_deliver(env, chunk[..n].to_vec())?;
        let data = netd
            .recv(env, client)?
            .expect("frame was just delivered to the device");
        env.write(client, fd, &data)?;
        received += n as u64;
    }
    env.close(client, fd)?;
    Ok(env.machine().clock().now() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_kernel::syscall::SyscallError;

    #[test]
    fn virus_db_round_trip_and_scan() {
        let db = VirusDb::builtin();
        let decoded = VirusDb::decode(&db.encode());
        assert_eq!(decoded.signatures, db.signatures);
        assert!(db.scan(b"clean data").is_empty());
        assert_eq!(db.scan(b"xxEICAR-STANDARD-ANTIVIRUS-TESTxx"), vec![0]);
        assert_eq!(VirusDb::decode(&[1, 2]).signatures.len(), 0);
    }

    #[test]
    fn wrap_isolates_the_scanner() {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let deployment = deploy_clamav(&mut env, "bob").unwrap();

        // Bob's private files.
        env.mkdir(init, "/home", None).unwrap();
        env.write_file_as(
            init,
            "/home/taxes.txt",
            b"very private EICAR-STANDARD-ANTIVIRUS-TEST data",
            Some(deployment.user.private_file_label()),
        )
        .unwrap();
        env.write_file_as(
            init,
            "/home/notes.txt",
            b"plain notes",
            Some(deployment.user.private_file_label()),
        )
        .unwrap();

        let report = wrap_scan(
            &mut env,
            &deployment,
            &["/home/taxes.txt", "/home/notes.txt"],
        )
        .unwrap();
        assert_eq!(report.results[0], ("/home/taxes.txt".to_string(), true));
        assert_eq!(report.results[1], ("/home/notes.txt".to_string(), false));
        assert!(
            !report.leak_detected,
            "the scanner must not write untainted files"
        );
    }

    #[test]
    fn update_daemon_cannot_read_user_files_but_can_update_db() {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let deployment = deploy_clamav(&mut env, "bob").unwrap();
        env.write_file_as(
            init,
            "/private.doc",
            b"secret",
            Some(deployment.user.private_file_label()),
        )
        .unwrap();
        // The update daemon can rewrite the database...
        let new_db = VirusDb {
            signatures: vec![b"NEWSIG".to_vec()],
        };
        env.write_file_as(
            deployment.update_daemon,
            "/clamav.cvd",
            &new_db.encode(),
            None,
        )
        .unwrap();
        // ...but cannot read the user's private data.
        let err = env
            .read_file_as(deployment.update_daemon, "/private.doc")
            .unwrap_err();
        assert!(matches!(
            err,
            UnixError::Kernel(SyscallError::CannotObserve(_))
        ));
    }

    #[test]
    fn scanner_cannot_reach_update_daemon_or_network() {
        let mut env = UnixEnv::boot();
        let init = env.init_pid();
        let netd = histar_net::Netd::start(&mut env, init, "internet").unwrap();
        let deployment = deploy_clamav(&mut env, "bob").unwrap();
        // Directly attempting to exfiltrate over the network fails.
        let err = netd.send(&mut env, deployment.scanner, b"stolen bytes");
        assert!(err.is_err());
        // Writing to /tmp-like world files fails too.
        assert!(env
            .write_file_as(deployment.scanner, "/tmp-drop", b"stolen", None)
            .is_err());
    }

    #[test]
    fn benchmark_workloads_produce_sensible_times() {
        let mut env = UnixEnv::boot();
        let t = scan_benchmark(&mut env, 256 * 1024, true).unwrap();
        assert!(t > histar_sim::SimDuration::ZERO);

        let mut env2 = UnixEnv::boot();
        let t2 = build_benchmark(&mut env2, 3, 8 * 1024).unwrap();
        assert!(t2 > histar_sim::SimDuration::ZERO);

        let mut env3 = UnixEnv::boot();
        let init3 = env3.init_pid();
        let netd = histar_net::Netd::start(&mut env3, init3, "internet").unwrap();
        let t3 = wget_benchmark(&mut env3, &netd, 256 * 1024).unwrap();
        // 256 KiB at 100 Mbps is at least ~20 ms of wire time.
        assert!(t3.as_millis() >= 20, "wget took {t3}");
    }
}
