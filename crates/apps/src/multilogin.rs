//! Multiprogrammed untrusted logins: N concurrent login processes
//! interleaved by the deterministic scheduler on one node.
//!
//! Each process is a scheduled program — a small state machine stepped one
//! quantum at a time — that performs a full gate-call round trip into a
//! shared daemon *split across quanta* (the gate entry, the tainted work
//! and the return gate run in different timeslices, with other processes
//! scheduled in between), then runs the paper's untrusted login protocol
//! and finally touches the user's private files.  Every kernel interaction
//! traps through `Kernel::dispatch`, so the whole workload is visible as
//! one auditable syscall stream, and the same scheduler seed replays the
//! identical interleaving.
//!
//! The gate-call argument spills (return gate + resource container + gate
//! label reads) and the login protocol's category/label pairs cross the
//! boundary as submission batches, so a quantum's kernel work pays one
//! trap cost instead of one per call — visible in the report's
//! [`DispatchStats`] batch-size histogram.

use histar_auth::{AuthService, AuthSystem, LoginOutcome};
use histar_kernel::sched::{
    Program, RunLimit, SchedConfig, SchedContext, ScheduleReport, Scheduler, Step, DEFAULT_SHARDS,
};
use histar_kernel::{DispatchStats, Kernel, SyscallStats};
use histar_label::Label;
use histar_sim::SimDuration;
use histar_unix::gatecall::{
    create_service_gate, enter_service, return_from_service, GateSession, ServiceGate,
};
use histar_unix::process::Pid;
use histar_unix::{UnixEnv, UnixError};

/// The shared world the scheduled login processes mutate.
pub struct LoginWorld {
    /// The Unix environment (one machine).
    pub env: UnixEnv,
    /// The authentication system (directory + per-user services).
    pub auth: AuthSystem,
    /// `(pid, outcome)` per completed login, in completion order.
    pub outcomes: Vec<(Pid, LoginOutcome)>,
    /// Errors hit by scheduled programs (empty on a healthy run).
    pub failures: Vec<(Pid, String)>,
}

impl SchedContext for LoginWorld {
    fn sched_kernel(&mut self) -> &mut Kernel {
        self.env.kernel_mut()
    }
}

/// Parameters of the multiprogramming scenario.
#[derive(Clone, Copy, Debug)]
pub struct MultiLoginParams {
    /// Number of concurrent login processes.
    pub processes: usize,
    /// Number of distinct user accounts they log into.
    pub users: usize,
    /// Scheduler seed (fixes the interleaving).
    pub seed: u64,
    /// Run-queue shards in the scheduler (the interleaving is a pure
    /// function of the `(seed, shards)` pair).
    pub shards: usize,
    /// Every `wrong_every`-th process presents a wrong password (0 = none),
    /// exercising the failure path under contention.
    pub wrong_every: usize,
    /// Keep a syscall audit trace of this capacity (0 = tracing off).
    pub trace_capacity: usize,
    /// Keep a flight-recorder span ring of this capacity (0 = recorder
    /// off), capturing dispatch/scheduler/store spans during the run.
    pub recorder_capacity: usize,
}

impl Default for MultiLoginParams {
    fn default() -> MultiLoginParams {
        MultiLoginParams {
            processes: 100,
            users: 8,
            seed: 0x10_91,
            shards: DEFAULT_SHARDS,
            wrong_every: 7,
            trace_capacity: 0,
            recorder_capacity: 0,
        }
    }
}

/// What the scenario measured.
#[derive(Clone, Copy, Debug)]
pub struct MultiLoginReport {
    /// The scheduler's view of the run.
    pub schedule: ScheduleReport,
    /// Logins that were granted.
    pub granted: usize,
    /// Logins rejected (wrong password).
    pub rejected: usize,
    /// Dispatched syscalls during the scheduled run.
    pub syscalls: u64,
    /// Kernel activity delta during the scheduled run.
    pub kernel: SyscallStats,
    /// Per-syscall dispatch counters delta during the scheduled run.
    pub dispatch: DispatchStats,
    /// Simulated time the run consumed.
    pub elapsed: SimDuration,
}

/// One login process's lifecycle, stepped one phase per quantum.
enum Phase {
    /// Invoke the shared daemon's service gate (tainted call).
    EnterGate,
    /// Inside the service: allocate scratch state in the donated resource
    /// container, still tainted by the call's taint category.
    TaintedWork(Box<GateSession>),
    /// Invoke the return gate, restoring the caller's own label.
    ReturnGate(Box<GateSession>),
    /// Run the untrusted login protocol against the auth system.
    Login,
    /// Use the granted privilege: write and read back a private file.
    UseFiles,
}

fn login_program(
    pid: Pid,
    service: ServiceGate,
    username: String,
    password: String,
) -> Program<LoginWorld> {
    let mut phase = Some(Phase::EnterGate);
    Box::new(move |world: &mut LoginWorld, _tid| {
        let fail = |world: &mut LoginWorld, err: UnixError| {
            world.failures.push((pid, err.to_string()));
            Step::Done
        };
        match phase.take().expect("program stepped after completion") {
            Phase::EnterGate => match enter_service(&mut world.env, pid, &service, true) {
                Ok(session) => {
                    phase = Some(Phase::TaintedWork(Box::new(session)));
                    Step::Yield
                }
                Err(e) => fail(world, e),
            },
            Phase::TaintedWork(session) => {
                // Tainted by the call's taint category, the thread can only
                // allocate inside the donated resource container.
                let thread = match world.env.process(pid) {
                    Ok(p) => p.thread,
                    Err(e) => return fail(world, e),
                };
                if let (Some(rc), Some(t)) = (session.resource_container, session.taint) {
                    let scratch_label = Label::builder().set(t, histar_label::Level::L3).build();
                    if let Err(e) = world.env.kernel_mut().trap_segment_create(
                        thread,
                        rc.object,
                        scratch_label,
                        128,
                        "gate scratch",
                    ) {
                        return fail(world, e.into());
                    }
                }
                phase = Some(Phase::ReturnGate(session));
                Step::Yield
            }
            Phase::ReturnGate(session) => {
                if let Err(e) = return_from_service(&mut world.env, *session) {
                    return fail(world, e);
                }
                phase = Some(Phase::Login);
                Step::Yield
            }
            Phase::Login => {
                let LoginWorld { env, auth, .. } = world;
                match auth.login(env, pid, &username, &password) {
                    Ok(outcome) => {
                        let granted = outcome == LoginOutcome::Granted;
                        world.outcomes.push((pid, outcome));
                        if granted {
                            phase = Some(Phase::UseFiles);
                            Step::Yield
                        } else {
                            Step::Done
                        }
                    }
                    Err(e) => fail(world, e),
                }
            }
            Phase::UseFiles => {
                let result = (|| -> Result<(), UnixError> {
                    let user = world.env.user(&username)?;
                    let path = format!("/home/{username}/session-{pid}");
                    world.env.write_file_as(
                        pid,
                        &path,
                        format!("session for {username}").as_bytes(),
                        Some(user.private_file_label()),
                    )?;
                    let back = world.env.read_file_as(pid, &path)?;
                    debug_assert!(!back.is_empty());
                    Ok(())
                })();
                match result {
                    Ok(()) => Step::Done,
                    Err(e) => fail(world, e),
                }
            }
        }
    })
}

/// Builds the world: one machine, `users` accounts with home directories, a
/// shared daemon exporting a service gate, and `processes` login processes
/// scheduled but not yet run.
pub fn build_multilogin(
    params: MultiLoginParams,
) -> Result<(LoginWorld, Scheduler<LoginWorld>), UnixError> {
    let mut env = UnixEnv::boot();
    let init = env.init_pid();
    let mut auth = AuthSystem::new();
    env.mkdir(init, "/home", None)?;
    let mut usernames = Vec::new();
    for u in 0..params.users.max(1) {
        let name = format!("user{u}");
        let user = env.create_user(&name)?;
        auth.register(AuthService::new(user, &format!("pw-{name}")));
        env.mkdir(init, &format!("/home/{name}"), None)?;
        usernames.push(name);
    }

    // The shared daemon every process gate-calls into before logging in.
    let daemon = env.spawn(init, "/usr/bin/timestampd", None)?;
    let service = create_service_gate(&mut env, daemon, 0x7100, "timestamp service")?;

    if params.trace_capacity > 0 {
        env.kernel_mut().enable_syscall_trace(params.trace_capacity);
    }
    if params.recorder_capacity > 0 {
        env.kernel_mut()
            .enable_flight_recorder(params.recorder_capacity);
    }

    let mut sched: Scheduler<LoginWorld> =
        Scheduler::new(SchedConfig::new().seed(params.seed).shards(params.shards));
    let mut world = LoginWorld {
        env,
        auth,
        outcomes: Vec::new(),
        failures: Vec::new(),
    };
    for i in 0..params.processes {
        let username = usernames[i % usernames.len()].clone();
        let password = if params.wrong_every > 0 && i % params.wrong_every == params.wrong_every - 1
        {
            "wrong-password".to_string()
        } else {
            format!("pw-{username}")
        };
        let pid = world.env.spawn(init, &format!("/bin/login-{i}"), None)?;
        let thread = world.env.process(pid)?.thread;
        sched.spawn(thread, login_program(pid, service, username, password));
    }
    Ok((world, sched))
}

/// Runs the full scenario to completion and reports what happened.
pub fn run_multilogin(
    params: MultiLoginParams,
) -> Result<(LoginWorld, MultiLoginReport), UnixError> {
    let (mut world, mut sched) = build_multilogin(params)?;
    let kernel_before = world.env.machine().kernel().stats();
    let dispatch_before = world.env.machine().kernel().dispatch_stats();
    let schedule = sched.run(&mut world, RunLimit::to_completion());
    let kernel = world.env.machine().kernel().stats().since(&kernel_before);
    let dispatch = world
        .env
        .machine()
        .kernel()
        .dispatch_stats()
        .since(&dispatch_before);
    let granted = world
        .outcomes
        .iter()
        .filter(|(_, o)| *o == LoginOutcome::Granted)
        .count();
    let rejected = world.outcomes.len() - granted;
    let report = MultiLoginReport {
        schedule,
        granted,
        rejected,
        syscalls: dispatch.total(),
        kernel,
        dispatch,
        elapsed: schedule.elapsed,
    };
    Ok((world, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_kernel::sched::StopReason;
    use histar_kernel::TraceRecord;

    #[test]
    fn hundred_processes_complete_deterministically() {
        let params = MultiLoginParams {
            processes: 100,
            users: 8,
            seed: 42,
            shards: DEFAULT_SHARDS,
            wrong_every: 7,
            trace_capacity: 1 << 20,
            recorder_capacity: 1 << 16,
        };
        let (world, report) = run_multilogin(params).unwrap();
        assert_eq!(report.schedule.stop, StopReason::AllComplete);
        assert!(world.failures.is_empty(), "failures: {:?}", world.failures);
        assert_eq!(world.outcomes.len(), 100);
        // ceil-ish arithmetic: processes 6, 13, 20, ... use a wrong password.
        let expected_rejected = 100 / 7;
        assert_eq!(report.rejected, expected_rejected);
        assert_eq!(report.granted, 100 - expected_rejected);
        assert!(report.syscalls > 1000, "got {} syscalls", report.syscalls);
        assert!(report.schedule.stats.context_switches >= 100);
        // The gate-call spills are batched: strictly fewer boundary
        // crossings than dispatched entries.
        assert!(report.dispatch.batches > 0);
        assert!(
            report.dispatch.mean_batch_size() > 1.0,
            "mean batch size {:.3} must exceed 1 when spills are batched",
            report.dispatch.mean_batch_size()
        );

        // Same seed ⇒ identical outcomes AND identical audit trace.
        let (world2, report2) = run_multilogin(params).unwrap();
        assert_eq!(world.outcomes, world2.outcomes);
        assert_eq!(report.syscalls, report2.syscalls);
        assert_eq!(report.schedule.stats.quanta, report2.schedule.stats.quanta);
        let t1: Vec<TraceRecord> = world
            .env
            .machine()
            .kernel()
            .syscall_trace()
            .unwrap()
            .records()
            .copied()
            .collect();
        let t2: Vec<TraceRecord> = world2
            .env
            .machine()
            .kernel()
            .syscall_trace()
            .unwrap()
            .records()
            .copied()
            .collect();
        assert!(!t1.is_empty());
        assert_eq!(t1, t2, "same seed must replay the identical syscall stream");
    }

    #[test]
    fn different_seed_changes_interleaving_not_outcomes() {
        let a = MultiLoginParams {
            processes: 24,
            users: 4,
            seed: 1,
            shards: DEFAULT_SHARDS,
            wrong_every: 0,
            trace_capacity: 0,
            recorder_capacity: 0,
        };
        let b = MultiLoginParams { seed: 2, ..a };
        let (wa, ra) = run_multilogin(a).unwrap();
        let (wb, rb) = run_multilogin(b).unwrap();
        assert_eq!(ra.granted, 24);
        assert_eq!(rb.granted, 24);
        // The multiset of outcomes matches even though the completion order
        // (and hence the trace) may differ.
        let mut oa = wa.outcomes.clone();
        let mut ob = wb.outcomes.clone();
        oa.sort_by_key(|(pid, _)| *pid);
        ob.sort_by_key(|(pid, _)| *pid);
        assert_eq!(oa, ob);
    }

    #[test]
    fn all_trapped_no_direct_syscalls_escape_dispatch() {
        // During the scheduled run, every kernel syscall is dispatched:
        // the aggregate kernel counter and the dispatch counter move in
        // lockstep.
        let (mut world, mut sched) = build_multilogin(MultiLoginParams {
            processes: 10,
            users: 2,
            seed: 3,
            shards: DEFAULT_SHARDS,
            wrong_every: 0,
            trace_capacity: 0,
            recorder_capacity: 0,
        })
        .unwrap();
        let k0 = world.env.machine().kernel().stats().syscalls;
        let d0 = world.env.machine().kernel().dispatch_stats().total();
        sched.run(&mut world, RunLimit::to_completion());
        let dk = world.env.machine().kernel().stats().syscalls - k0;
        let dd = world.env.machine().kernel().dispatch_stats().total() - d0;
        assert_eq!(
            dk, dd,
            "every syscall in the multiprogrammed run must cross dispatch"
        );
    }
}
