//! The HiStar kernel: six object types and explicit information flow.
//!
//! This crate implements Sections 3 and 4 of *Making Information Flow
//! Explicit in HiStar* (OSDI 2006).  All operating-system abstractions are
//! layered on top of six low-level kernel object types — segments, threads,
//! address spaces, containers, gates and devices — and every object carries
//! an immutable label.  The kernel interface is designed so that:
//!
//! > The contents of object A can only affect object B if, for every
//! > category c in which A is more tainted than B, a thread owning c takes
//! > part in the process.
//!
//! The kernel here is a *user-space reproduction*: threads are driven
//! cooperatively by the caller (the untrusted Unix library in
//! `histar-unix`), and hardware is simulated by `histar-sim`.  What is
//! preserved exactly is the object model, the system-call surface, and the
//! label checks performed on every operation.
//!
//! # Module map
//!
//! * [`object`] — object IDs, headers, flags, container entries.
//! * [`bodies`] — the per-type payloads of the six object types.
//! * [`syscall`] — the error type and syscall statistics.
//! * [`kernel`] — the [`Kernel`] itself: object table plus the syscall
//!   implementations with their label checks.
//! * [`serialize`] — binary encoding of kernel objects for the single-level
//!   store.
//! * [`machine`] — a [`machine::Machine`] bundles a kernel with a
//!   single-level store and a simulated clock, providing boot, snapshot and
//!   recovery.
//! * [`dispatch`] — the trap-style syscall ABI: a [`dispatch::Syscall`]
//!   value per entry point, decoded and executed only by
//!   [`Kernel::dispatch`](kernel::Kernel::dispatch) /
//!   [`Kernel::dispatch_batch`](kernel::Kernel::dispatch_batch), with
//!   per-syscall stats and a bounded audit trace.
//! * [`abi`] — the batched submission/completion lanes over dispatch
//!   (io_uring-style: one trap cost per batch) and per-thread capability
//!   [`abi::Handle`]s installed via reachability-checked resolution.
//! * [`sched`] — a deterministic round-robin [`sched::Scheduler`] stepping
//!   user-level programs one quantum at a time over any
//!   [`sched::SchedContext`], plus `Machine::run_until`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
pub mod bodies;
pub mod dispatch;
pub mod kernel;
pub mod machine;
pub mod object;
pub mod sched;
pub mod serialize;
pub mod syscall;

pub use abi::{
    Completion, CompletionKind, Handle, HandleTable, SqEntry, SqOp, SubmissionQueue,
    KERNEL_USER_DATA,
};
pub use dispatch::{DispatchStats, Syscall, SyscallResult, SyscallTrace, TraceRecord};
pub use kernel::Kernel;
pub use machine::{Machine, MachineConfig};
pub use object::{ContainerEntry, ObjectFlags, ObjectId, ObjectType};
pub use sched::{
    RunLimit, SchedConfig, SchedContext, SchedStats, ScheduleReport, Scheduler, Step, StopReason,
};
pub use syscall::{SyscallError, SyscallStats};

/// Convenience result alias for kernel operations.
pub type Result<T> = core::result::Result<T, SyscallError>;
