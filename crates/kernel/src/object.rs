//! Object identity, headers and flags.
//!
//! Every kernel object has a unique 61-bit object ID, a label, a quota
//! bounding its storage usage, 64 bytes of mutable user-defined metadata, a
//! 32-byte descriptive string, and a few flags such as the irrevocable
//! `immutable` flag (§3).

use histar_label::Label;

/// Number of bits in an object ID (same space as category names).
pub const OBJECT_ID_BITS: u32 = 61;

/// Mask selecting the low 61 bits.
pub const OBJECT_ID_MASK: u64 = (1u64 << OBJECT_ID_BITS) - 1;

/// Maximum length of an object's descriptive string, in bytes.
pub const DESCRIP_LEN: usize = 32;

/// Size of the mutable user-defined metadata area, in bytes.
pub const METADATA_LEN: usize = 64;

/// The reserved quota value meaning "unlimited" (the root container).
pub const QUOTA_INFINITE: u64 = u64::MAX;

/// The reserved object ID used as the "container" of handle-encoded
/// [`ContainerEntry`]s (see [`crate::abi::Handle::entry`]).  The kernel's
/// ID allocator never hands this value to a real object, so a
/// handle-encoded entry can always be told apart from a raw one.
pub const HANDLE_NAMESPACE: ObjectId = ObjectId(OBJECT_ID_MASK);

/// A unique, 61-bit kernel object identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Constructs an object ID from its raw value.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in 61 bits.
    pub fn from_raw(raw: u64) -> ObjectId {
        assert!(raw <= OBJECT_ID_MASK, "object id exceeds 61 bits");
        ObjectId(raw)
    }

    /// The raw 61-bit value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl core::fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Obj({:#x})", self.0)
    }
}

impl core::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "#{:x}", self.0)
    }
}

/// The six kernel object types (plus nothing else — §3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObjectType {
    /// A variable-length byte array.
    Segment,
    /// A thread of execution, with a mutable label and clearance.
    Thread,
    /// A list of virtual-address mappings onto segments.
    AddressSpace,
    /// A protected control-transfer entry point carrying privilege.
    Gate,
    /// A hierarchical holder of hard links to other objects.
    Container,
    /// A hardware device (the network interface).
    Device,
}

impl ObjectType {
    /// All object types.
    pub const ALL: [ObjectType; 6] = [
        ObjectType::Segment,
        ObjectType::Thread,
        ObjectType::AddressSpace,
        ObjectType::Gate,
        ObjectType::Container,
        ObjectType::Device,
    ];

    /// Bit used in a container's `avoid_types` mask for this type.
    pub fn mask_bit(self) -> u8 {
        match self {
            ObjectType::Segment => 1 << 0,
            ObjectType::Thread => 1 << 1,
            ObjectType::AddressSpace => 1 << 2,
            ObjectType::Gate => 1 << 3,
            ObjectType::Container => 1 << 4,
            ObjectType::Device => 1 << 5,
        }
    }

    /// Whether this object type's label may contain ownership (`⋆`).
    ///
    /// Only threads and gates can own categories (Figure 3).
    pub fn may_own_categories(self) -> bool {
        matches!(self, ObjectType::Thread | ObjectType::Gate)
    }

    /// Short lowercase name, used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            ObjectType::Segment => "segment",
            ObjectType::Thread => "thread",
            ObjectType::AddressSpace => "address-space",
            ObjectType::Gate => "gate",
            ObjectType::Container => "container",
            ObjectType::Device => "device",
        }
    }
}

/// Per-object flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObjectFlags {
    /// The object is irrevocably read-only.
    pub immutable: bool,
    /// The object's quota can no longer change; required before the object
    /// can be hard-linked into additional containers (§3.3).
    pub fixed_quota: bool,
}

/// A `⟨container ID, object ID⟩` pair.
///
/// Most system calls name objects by container entry rather than bare ID so
/// the kernel can check that the calling thread is allowed to know of the
/// object's existence (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ContainerEntry {
    /// The container through which the object is being named.
    pub container: ObjectId,
    /// The object itself.
    pub object: ObjectId,
}

impl ContainerEntry {
    /// Creates a container entry.
    pub fn new(container: ObjectId, object: ObjectId) -> ContainerEntry {
        ContainerEntry { container, object }
    }

    /// The special self-referential entry `⟨D, D⟩`: every container contains
    /// itself, so a thread that can read `D` can always name it this way.
    pub fn self_entry(container: ObjectId) -> ContainerEntry {
        ContainerEntry {
            container,
            object: container,
        }
    }

    /// Decodes a handle-encoded entry (see
    /// [`crate::abi::Handle::entry`]); `None` for ordinary entries.
    pub fn as_handle(self) -> Option<crate::abi::Handle> {
        if self.container == HANDLE_NAMESPACE && self.object.0 <= u32::MAX as u64 {
            Some(crate::abi::Handle(self.object.0 as u32))
        } else {
            None
        }
    }
}

impl core::fmt::Display for ContainerEntry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "<{}, {}>", self.container, self.object)
    }
}

/// The metadata every kernel object carries, regardless of type.
#[derive(Clone, Debug)]
pub struct ObjectHeader {
    /// The object's unique ID.
    pub id: ObjectId,
    /// The object's (immutable, except for threads) information-flow label.
    pub label: Label,
    /// The object's type.
    pub object_type: ObjectType,
    /// Storage quota in bytes ([`QUOTA_INFINITE`] for the root container).
    pub quota: u64,
    /// Current storage usage in bytes.
    pub usage: u64,
    /// 64 bytes of mutable, user-defined metadata (e.g. modification time).
    pub metadata: [u8; METADATA_LEN],
    /// Descriptive string giving a rough idea of the object's purpose.
    pub descrip: String,
    /// Object flags.
    pub flags: ObjectFlags,
    /// Number of containers holding a hard link to this object.
    pub links: u32,
}

impl ObjectHeader {
    /// Creates a header with empty metadata and default flags.
    ///
    /// The descriptive string is truncated to [`DESCRIP_LEN`] bytes.
    pub fn new(
        id: ObjectId,
        object_type: ObjectType,
        label: Label,
        quota: u64,
        descrip: &str,
    ) -> ObjectHeader {
        let descrip = truncate_descrip(descrip);
        ObjectHeader {
            id,
            label,
            object_type,
            quota,
            usage: 0,
            metadata: [0u8; METADATA_LEN],
            descrip,
            flags: ObjectFlags::default(),
            links: 0,
        }
    }

    /// Remaining quota (saturating; infinite quota always has space).
    pub fn quota_remaining(&self) -> u64 {
        if self.quota == QUOTA_INFINITE {
            QUOTA_INFINITE
        } else {
            self.quota.saturating_sub(self.usage)
        }
    }
}

/// Truncates a descriptive string to [`DESCRIP_LEN`] bytes on a character
/// boundary.
pub fn truncate_descrip(s: &str) -> String {
    if s.len() <= DESCRIP_LEN {
        return s.to_string();
    }
    let mut end = DESCRIP_LEN;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    s[..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use histar_label::Level;

    #[test]
    fn object_id_bounds() {
        let id = ObjectId::from_raw(OBJECT_ID_MASK);
        assert_eq!(id.raw(), OBJECT_ID_MASK);
        assert_eq!(id.to_string(), format!("#{:x}", OBJECT_ID_MASK));
    }

    #[test]
    #[should_panic(expected = "61 bits")]
    fn oversized_object_id_panics() {
        let _ = ObjectId::from_raw(1 << 61);
    }

    #[test]
    fn only_threads_and_gates_may_own() {
        for t in ObjectType::ALL {
            assert_eq!(
                t.may_own_categories(),
                matches!(t, ObjectType::Thread | ObjectType::Gate),
                "{t:?}"
            );
        }
    }

    #[test]
    fn mask_bits_are_distinct() {
        let mut seen = 0u8;
        for t in ObjectType::ALL {
            assert_eq!(seen & t.mask_bit(), 0);
            seen |= t.mask_bit();
        }
    }

    #[test]
    fn descrip_truncation() {
        assert_eq!(truncate_descrip("short"), "short");
        let long = "x".repeat(100);
        assert_eq!(truncate_descrip(&long).len(), DESCRIP_LEN);
        // Multi-byte characters are not split.
        let emoji = "é".repeat(40);
        let t = truncate_descrip(&emoji);
        assert!(t.len() <= DESCRIP_LEN);
        assert!(std::str::from_utf8(t.as_bytes()).is_ok());
    }

    #[test]
    fn quota_remaining() {
        let mut h = ObjectHeader::new(
            ObjectId::from_raw(1),
            ObjectType::Segment,
            Label::new(Level::L1),
            1000,
            "seg",
        );
        assert_eq!(h.quota_remaining(), 1000);
        h.usage = 400;
        assert_eq!(h.quota_remaining(), 600);
        h.usage = 2000;
        assert_eq!(h.quota_remaining(), 0);
        h.quota = QUOTA_INFINITE;
        assert_eq!(h.quota_remaining(), QUOTA_INFINITE);
    }

    #[test]
    fn container_entry_display_and_self() {
        let d = ObjectId::from_raw(5);
        let o = ObjectId::from_raw(9);
        let e = ContainerEntry::new(d, o);
        assert_eq!(e.to_string(), "<#5, #9>");
        let s = ContainerEntry::self_entry(d);
        assert_eq!(s.container, s.object);
    }
}
